// Dataset report: generates every registered Table-III replica, prints its
// structural statistics (vertices, edges, degree, homophily of the realized
// graph) and trains the single-machine reference GCN to show the accuracy
// each replica converges to. Used both as an example of the graph API and
// to document the calibration against the paper's Table V.
//
// Usage: dataset_report [dataset ...]   (default: all registered datasets)

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/single_machine.h"
#include "graph/datasets.h"

namespace {

double MeasureHomophily(const ecg::graph::Graph& g) {
  uint64_t same = 0, total = 0;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (uint32_t u : g.Neighbors(v)) {
      if (u > v) {
        ++total;
        if (g.labels()[u] == g.labels()[v]) ++same;
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(same) / total;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.push_back(argv[i]);
  if (names.empty()) names = ecg::graph::DatasetNames();

  std::printf("%-14s %10s %12s %6s %5s %7s %9s | %9s %9s %7s\n", "dataset",
              "|V|", "dir-edges", "dim", "C", "avg-deg", "homophily",
              "test-acc", "val-acc", "epochs");
  for (const auto& name : names) {
    auto gr = ecg::graph::LoadDataset(name);
    gr.status().CheckOk();
    const ecg::graph::Graph& g = *gr;
    auto spec = *ecg::graph::GetDatasetSpec(name);

    ecg::baselines::SingleMachineOptions opt;
    opt.model.num_layers = spec.default_layers;
    opt.model.hidden_dim = spec.default_hidden;
    opt.epochs = 200;
    opt.patience = 25;
    auto r = ecg::baselines::TrainSingleMachine(g, opt);
    r.status().CheckOk();

    std::printf("%-14s %10u %12llu %6zu %5d %7.2f %9.3f | %9.4f %9.4f %7zu\n",
                name.c_str(), g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()),
                g.feature_dim(), g.num_classes(), g.average_degree(),
                MeasureHomophily(g), r->test_acc_at_best_val,
                r->best_val_acc, r->epochs.size());
  }
  return 0;
}
