// Serving: train briefly, checkpoint, then answer per-vertex
// classification queries online with ecg::serve.
//
// Demonstrates the full serving path a deployment would use:
//   1. train a GCN for a few epochs, mirroring epoch checkpoints to disk;
//   2. bring up an InferenceServer from the checkpoint file (the server
//      is configured through the typed serve=SPEC surface, same grammar
//      as `ecgraph serve`);
//   3. answer a handful of point queries and show predictions vs labels;
//   4. drive an open-loop workload (heavy-tailed interarrivals, hot-vertex
//      skew) on the simulated serving clock and report p50/p99/QPS plus
//      the embedding-cache hit rate.
//
// Usage: serving [dataset] [train_epochs]   (default: cora-sim 10)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/trainer.h"
#include "graph/datasets.h"
#include "serve/load_gen.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "cora-sim";
  const uint32_t epochs = argc > 2 ? std::atoi(argv[2]) : 10;

  auto gr = ecg::graph::LoadDataset(dataset);
  gr.status().CheckOk();
  const ecg::graph::Graph& g = *gr;

  // 1) Train with an epoch-checkpoint mirror, like a production job.
  const std::string dir = "serving_example_ckpt";
  std::filesystem::create_directories(dir);
  ecg::core::TrainOptions opt;
  opt.epochs = epochs;
  opt.checkpoint_every = 1;
  opt.checkpoint_dir = dir;
  auto train = ecg::core::TrainDistributed(g, 4, opt);
  train.status().CheckOk();
  const std::string ckpt = dir + "/checkpoint_latest.bin";
  std::printf("trained %u epochs on %s (val=%.4f), checkpoint at %s\n\n",
              epochs, dataset.c_str(), train->best_val_acc, ckpt.c_str());

  // 2) Serve from the checkpoint. The spec keys mirror `ecgraph serve`.
  auto serve_opts =
      ecg::serve::ParseServeOptions("batch=32,cache_mb=64,queue=256");
  serve_opts.status().CheckOk();
  ecg::serve::InferenceServer server(&g, opt.model, *serve_opts);
  server.Init().CheckOk();
  server.LoadFromCheckpoint(ckpt).CheckOk();

  // 3) Point queries: predictions for the first few test vertices.
  std::vector<uint32_t> queries;
  for (uint32_t i = 0; i < 5 && i < g.test_set().size(); ++i) {
    queries.push_back(g.test_set()[i]);
  }
  ecg::tensor::Matrix logits;
  ecg::serve::InferenceServer::BatchStats stats;
  server.Classify(queries, &logits, &stats).CheckOk();
  for (size_t i = 0; i < queries.size(); ++i) {
    uint32_t best = 0;
    for (uint32_t c = 1; c < logits.cols(); ++c) {
      if (logits.At(i, c) > logits.At(i, best)) best = c;
    }
    std::printf("vertex %-6u predicted=%u label=%d\n", queries[i], best,
                g.labels()[queries[i]]);
  }

  // 4) Open-loop load: 2s at 5k qps with hot-vertex skew.
  auto workload = ecg::serve::ParseWorkloadOptions(
      "qps=5000,duration=2,zipf=1.1,hot=256,seed=7");
  workload.status().CheckOk();
  auto load = ecg::serve::RunOpenLoop(&server, *workload);
  load.status().CheckOk();
  std::printf("\nopen loop: offered=%llu served=%llu shed=%llu "
              "qps=%.0f\n",
              static_cast<unsigned long long>(load->offered),
              static_cast<unsigned long long>(load->served),
              static_cast<unsigned long long>(load->shed),
              load->achieved_qps);
  std::printf("latency: p50=%.3fms p99=%.3fms  batch=%.1f  "
              "cache-hit=%.2f\n",
              load->p50_ms, load->p99_ms, load->mean_batch,
              load->cache_hit_rate);
  return 0;
}
