// Partition explorer: compares the Hash and METIS-like partitioners on a
// dataset replica across machine counts — edge cut, balance, halo sizes,
// and the resulting exact per-epoch communication volume of a 2-layer
// EC-Graph run (with and without 2-bit EC compression). This is the
// decision data behind Fig. 11 and Section III-A's partitioning
// discussion.
//
// Usage: partition_explorer [dataset] [max_workers]
//        (default: pubmed-sim 8)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/halo.h"
#include "core/trainer.h"
#include "graph/datasets.h"
#include "graph/partition.h"

namespace {

uint64_t TotalHalo(const std::vector<ecg::core::WorkerPlan>& plans) {
  uint64_t total = 0;
  for (const auto& p : plans) total += p.num_halo();
  return total;
}

uint64_t EpochBytes(const ecg::graph::Graph& g,
                    const ecg::graph::Partition& partition, bool compress) {
  ecg::core::TrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  if (compress) {
    opt.fp_mode = ecg::core::FpMode::kReqEc;
    opt.bp_mode = ecg::core::BpMode::kResEc;
    opt.exchange.fp_bits = 2;
    opt.exchange.bp_bits = 2;
  }
  opt.epochs = 2;
  ecg::core::DistributedTrainer trainer(g, partition, opt);
  auto r = trainer.Train();
  r.status().CheckOk();
  return r->epochs.back().comm_bytes;  // steady-state epoch
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "pubmed-sim";
  const uint32_t max_workers = argc > 2 ? std::atoi(argv[2]) : 8;

  auto gr = ecg::graph::LoadDataset(dataset);
  gr.status().CheckOk();
  const ecg::graph::Graph& g = *gr;
  std::printf("dataset %s: |V|=%u directed-edges=%llu\n\n", dataset.c_str(),
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  std::printf("%8s %6s | %10s %8s %10s | %12s %12s\n", "workers", "algo",
              "edge-cut", "balance", "halo-rows", "epoch-bytes",
              "2bit-bytes");
  for (uint32_t workers = 2; workers <= max_workers; workers *= 2) {
    for (const bool metis : {false, true}) {
      auto partition =
          metis ? ecg::graph::MetisLikePartition(g, workers)
                : ecg::graph::HashPartition(g, workers);
      partition.status().CheckOk();
      std::vector<ecg::core::WorkerPlan> plans;
      ecg::core::BuildWorkerPlans(g, *partition, &plans).CheckOk();
      std::printf("%8u %6s | %10llu %8.3f %10llu | %10.2fMB %10.2fMB\n",
                  workers, metis ? "metis" : "hash",
                  static_cast<unsigned long long>(partition->EdgeCut(g)),
                  partition->BalanceFactor(),
                  static_cast<unsigned long long>(TotalHalo(plans)),
                  EpochBytes(g, *partition, false) / (1024.0 * 1024.0),
                  EpochBytes(g, *partition, true) / (1024.0 * 1024.0));
      std::fflush(stdout);
    }
  }
  std::printf("\nLower edge-cut => smaller halos => fewer exchanged bytes;\n"
              "EC compression stacks on top of whatever the partitioner "
              "saves.\n");
  return 0;
}
