// Compression playground: a hands-on walkthrough of the paper's Section IV
// machinery on real numbers, mirroring Figs. 3-5.
//
//   1. Bucket-quantize an embedding matrix at several bit widths and show
//      reconstruction error + exact wire size (Fig. 3).
//   2. Run the ReqEC-FP Selector by hand on a drifting embedding stream:
//      print which of {compressed, predicted, average} wins per epoch and
//      the bytes saved by unsent predicted rows (Fig. 4).
//   3. Demonstrate ResEC-BP error feedback: the running mean of the
//      decompressed gradient stream converges to the true gradient, while
//      compression-only keeps a persistent bias (Fig. 5 / Eqs. 11-12).
//
// Usage: compression_playground

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "compress/quantize.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

using ecg::compress::BucketValueMode;
using ecg::compress::QuantizerOptions;
using ecg::tensor::Matrix;

namespace {

Matrix RandomEmbeddings(ecg::Rng* rng, size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->NextDouble());  // [0,1) like H
  }
  return m;
}

void Part1BitWidths() {
  std::printf("--- 1) bucket quantization at each bit width (64x128 "
              "embeddings) ---\n");
  ecg::Rng rng(1);
  const Matrix h = RandomEmbeddings(&rng, 64, 128);
  const size_t raw = h.size() * sizeof(float);
  std::printf("%5s %12s %10s %12s %12s\n", "bits", "wire-bytes", "ratio",
              "mean|err|", "alpha");
  for (int bits : {1, 2, 4, 8, 16}) {
    QuantizerOptions opts{bits, BucketValueMode::kMidpoint};
    auto q = ecg::compress::Quantize(h, opts);
    q.status().CheckOk();
    auto rec = ecg::compress::Dequantize(*q);
    rec.status().CheckOk();
    double err = 0.0;
    for (size_t i = 0; i < h.size(); ++i) {
      err += std::fabs(h.data()[i] - rec->data()[i]);
    }
    auto alpha = ecg::compress::MeasureAlpha(h, opts);
    alpha.status().CheckOk();
    std::printf("%5d %12zu %9.1fx %12.5f %12.4f\n", bits, q->WireBytes(),
                static_cast<double>(raw) / q->WireBytes(),
                err / h.size(), *alpha);
  }
}

void Part2Selector() {
  std::printf("\n--- 2) ReqEC-FP selector on a drifting stream "
              "(T_tr = 5, B = 2) ---\n");
  ecg::Rng rng(2);
  const size_t n = 8, dim = 16;
  const uint32_t t_tr = 5;
  // Half the vertices drift linearly (predictable), half jump randomly.
  Matrix base = RandomEmbeddings(&rng, n, dim);
  Matrix drift(n, dim);
  for (size_t v = 0; v < n / 2; ++v) {
    for (size_t c = 0; c < dim; ++c) drift.At(v, c) = 0.02f;
  }

  Matrix h_last, m_cr;
  bool have_trend = false;
  std::printf("%6s  per-vertex selector (c=compressed p=predicted "
              "a=average)\n", "epoch");
  for (uint32_t t = 0; t < 12; ++t) {
    Matrix h = base;
    for (size_t v = 0; v < n; ++v) {
      for (size_t c = 0; c < dim; ++c) {
        h.At(v, c) += drift.At(v, c) * t +
                      (v >= n / 2 ? 0.3f * static_cast<float>(
                                               rng.NextGaussian())
                                  : 0.0f);
      }
    }
    if ((t + 1) % t_tr == 0) {
      if (have_trend) {
        m_cr = h;
        ecg::tensor::SubInPlace(&m_cr, h_last);
        ecg::tensor::ScaleInPlace(&m_cr, 1.0f / t_tr);
      } else {
        m_cr.Reset(n, dim);
      }
      h_last = h;
      have_trend = true;
      std::printf("%6u  trend epoch: exact H + M_cr shipped\n", t);
      continue;
    }
    if (!have_trend) {
      std::printf("%6u  cold start: compressed-only\n", t);
      continue;
    }
    auto q = ecg::compress::Quantize(
        h, QuantizerOptions{2, BucketValueMode::kMidpoint});
    q.status().CheckOk();
    auto h_cps = ecg::compress::Dequantize(*q);
    h_cps.status().CheckOk();
    Matrix h_pdt = h_last;
    ecg::tensor::Axpy(static_cast<float>(t % t_tr + 1), m_cr, &h_pdt);
    Matrix h_avg = h_pdt;
    ecg::tensor::AddInPlace(&h_avg, *h_cps);
    ecg::tensor::ScaleInPlace(&h_avg, 0.5f);

    const auto s_cps = ecg::tensor::RowL1Distance(*h_cps, h);
    const auto s_pdt = ecg::tensor::RowL1Distance(h_pdt, h);
    const auto s_avg = ecg::tensor::RowL1Distance(h_avg, h);
    std::printf("%6u  ", t);
    size_t predicted = 0;
    for (size_t v = 0; v < n; ++v) {
      char pick = 'c';
      float best = s_cps[v];
      if (s_pdt[v] < best) {
        pick = 'p';
        best = s_pdt[v];
      }
      if (s_avg[v] < best) pick = 'a';
      predicted += (pick == 'p');
      std::printf("%c ", pick);
    }
    std::printf(" (%.0f%% predicted -> not shipped)\n",
                100.0 * predicted / n);
  }
}

void Part3ErrorFeedback() {
  std::printf("\n--- 3) ResEC-BP error feedback vs compression-only "
              "(B = 1, constant gradient) ---\n");
  ecg::Rng rng(3);
  const Matrix g_true = RandomEmbeddings(&rng, 4, 8);
  Matrix delta(4, 8), sum_ec(4, 8), sum_plain(4, 8);
  const int epochs = 50;
  for (int t = 0; t < epochs; ++t) {
    QuantizerOptions opts{1, BucketValueMode::kMidpoint};
    // compression-only
    auto qp = ecg::compress::Quantize(g_true, opts);
    qp.status().CheckOk();
    ecg::tensor::AddInPlace(&sum_plain, *ecg::compress::Dequantize(*qp));
    // error feedback
    Matrix compensated = g_true;
    ecg::tensor::AddInPlace(&compensated, delta);
    auto qe = ecg::compress::Quantize(compensated, opts);
    qe.status().CheckOk();
    auto decoded = ecg::compress::Dequantize(*qe);
    decoded.status().CheckOk();
    ecg::tensor::AddInPlace(&sum_ec, *decoded);
    delta = compensated;
    ecg::tensor::SubInPlace(&delta, *decoded);
  }
  ecg::tensor::ScaleInPlace(&sum_plain, 1.0f / epochs);
  ecg::tensor::ScaleInPlace(&sum_ec, 1.0f / epochs);
  ecg::tensor::SubInPlace(&sum_plain, g_true);
  ecg::tensor::SubInPlace(&sum_ec, g_true);
  std::printf("time-averaged reconstruction error after %d epochs:\n",
              epochs);
  std::printf("  compression-only : %.6f (persistent bias)\n",
              sum_plain.L1Norm() / sum_plain.size());
  std::printf("  ResEC feedback   : %.6f (bias cancelled by residual "
              "carry)\n",
              sum_ec.L1Norm() / sum_ec.size());
}

}  // namespace

int main() {
  Part1BitWidths();
  Part2Selector();
  Part3ErrorFeedback();
  return 0;
}
