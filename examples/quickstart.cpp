// Quickstart: load a dataset replica, train GCN three ways and compare.
//
//   1. single machine (the DGL/PyG stand-in),
//   2. EC-Graph with compression off (Non-cp),
//   3. EC-Graph with ReqEC-FP + ResEC-BP at 2 bits (the paper's system).
//
// The distributed runs are configured through the typed spec surface
// (ecg::core::ParseTrainSpec) — the same `key=value` grammar the
// `ecgraph train` command accepts, validated with ranges and enums.
//
// Prints per-run summary lines: accuracy, simulated epoch time, and the
// exact communication volume, demonstrating the headline effect: the
// compressed runs move ~16x fewer bytes at (near-)equal accuracy.
//
// Usage: quickstart [dataset] [workers]   (default: cora-sim 4)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/single_machine.h"
#include "core/train_spec.h"
#include "core/trainer.h"
#include "graph/datasets.h"

namespace {

void PrintRow(const char* system, const ecg::core::TrainResult& r) {
  std::printf("%-28s test_acc=%.4f best_val=%.4f epochs=%zu "
              "avg_epoch=%.4fs comm=%.2f MB\n",
              system, r.test_acc_at_best_val, r.best_val_acc,
              r.epochs.size(), r.avg_epoch_seconds,
              static_cast<double>(r.total_comm_bytes) / (1024.0 * 1024.0));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "cora-sim";
  const uint32_t workers = argc > 2 ? std::atoi(argv[2]) : 4;

  auto graph_result = ecg::graph::LoadDataset(dataset);
  graph_result.status().CheckOk();
  const ecg::graph::Graph& g = *graph_result;
  auto spec = *ecg::graph::GetDatasetSpec(dataset);
  std::printf("dataset %s: |V|=%u directed-edges=%llu features=%zu "
              "classes=%d avg-degree=%.2f\n",
              dataset.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              g.feature_dim(), g.num_classes(), g.average_degree());

  const std::string shape = "layers=" + std::to_string(spec.default_layers);
  const std::string width = "hidden=" + std::to_string(spec.default_hidden);
  const std::string nw = "workers=" + std::to_string(workers);

  // 1) Single machine (no spec surface: baselines keep the raw struct).
  ecg::baselines::SingleMachineOptions single;
  single.model.num_layers = spec.default_layers;
  single.model.hidden_dim = spec.default_hidden;
  single.epochs = 120;
  single.patience = 20;
  auto r1 = ecg::baselines::TrainSingleMachine(g, single);
  r1.status().CheckOk();
  PrintRow("single-machine (DGL-like)", *r1);

  // 2) Distributed, no compression.
  auto noncp = ecg::core::ParseTrainSpec(
      {shape, width, nw, "epochs=120", "patience=20", "fp=exact",
       "bp=exact", "log_every=0"});
  noncp.status().CheckOk();
  auto r2 = ecg::core::TrainDistributed(g, noncp->workers, noncp->options);
  r2.status().CheckOk();
  PrintRow("EC-Graph Non-cp", *r2);

  // 3) Distributed, error-compensated 2-bit compression (fp=reqec and
  // bp=resec are the spec defaults — only the bit widths are explicit).
  auto ec = ecg::core::ParseTrainSpec(
      {shape, width, nw, "epochs=120", "patience=20", "fp_bits=2",
       "bp_bits=2", "log_every=0"});
  ec.status().CheckOk();
  auto r3 = ecg::core::TrainDistributed(g, ec->workers, ec->options);
  r3.status().CheckOk();
  PrintRow("EC-Graph ReqEC+ResEC (2bit)", *r3);

  return 0;
}
