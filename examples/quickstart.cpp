// Quickstart: load a dataset replica, train GCN three ways and compare.
//
//   1. single machine (the DGL/PyG stand-in),
//   2. EC-Graph with compression off (Non-cp),
//   3. EC-Graph with ReqEC-FP + ResEC-BP at 2 bits (the paper's system).
//
// Prints per-run summary lines: accuracy, simulated epoch time, and the
// exact communication volume, demonstrating the headline effect: the
// compressed runs move ~16x fewer bytes at (near-)equal accuracy.
//
// Usage: quickstart [dataset] [workers]   (default: cora-sim 4)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/single_machine.h"
#include "core/trainer.h"
#include "graph/datasets.h"

namespace {

void PrintRow(const char* system, const ecg::core::TrainResult& r) {
  std::printf("%-28s test_acc=%.4f best_val=%.4f epochs=%zu "
              "avg_epoch=%.4fs comm=%.2f MB\n",
              system, r.test_acc_at_best_val, r.best_val_acc,
              r.epochs.size(), r.avg_epoch_seconds,
              static_cast<double>(r.total_comm_bytes) / (1024.0 * 1024.0));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "cora-sim";
  const uint32_t workers = argc > 2 ? std::atoi(argv[2]) : 4;

  auto graph_result = ecg::graph::LoadDataset(dataset);
  graph_result.status().CheckOk();
  const ecg::graph::Graph& g = *graph_result;
  auto spec = *ecg::graph::GetDatasetSpec(dataset);
  std::printf("dataset %s: |V|=%u directed-edges=%llu features=%zu "
              "classes=%d avg-degree=%.2f\n",
              dataset.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              g.feature_dim(), g.num_classes(), g.average_degree());

  ecg::core::GcnConfig model;
  model.num_layers = spec.default_layers;
  model.hidden_dim = spec.default_hidden;

  // 1) Single machine.
  ecg::baselines::SingleMachineOptions single;
  single.model = model;
  single.epochs = 120;
  single.patience = 20;
  auto r1 = ecg::baselines::TrainSingleMachine(g, single);
  r1.status().CheckOk();
  PrintRow("single-machine (DGL-like)", *r1);

  // 2) Distributed, no compression.
  ecg::core::TrainOptions noncp;
  noncp.model = model;
  noncp.epochs = 120;
  noncp.patience = 20;
  noncp.fp_mode = ecg::core::FpMode::kExact;
  noncp.bp_mode = ecg::core::BpMode::kExact;
  auto r2 = ecg::core::TrainDistributed(g, workers, noncp);
  r2.status().CheckOk();
  PrintRow("EC-Graph Non-cp", *r2);

  // 3) Distributed, error-compensated 2-bit compression.
  ecg::core::TrainOptions ec = noncp;
  ec.fp_mode = ecg::core::FpMode::kReqEc;
  ec.bp_mode = ecg::core::BpMode::kResEc;
  ec.exchange.fp_bits = 2;
  ec.exchange.bp_bits = 2;
  auto r3 = ecg::core::TrainDistributed(g, workers, ec);
  r3.status().CheckOk();
  PrintRow("EC-Graph ReqEC+ResEC (2bit)", *r3);

  return 0;
}
