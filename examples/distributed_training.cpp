// Distributed training, end to end, on one dataset: the full EC-Graph
// pipeline a user would run — configure through the typed spec surface
// (ecg::core::ParseTrainSpec, the same grammar `ecgraph train` accepts),
// partition (METIS-like), train with the adaptive Bit-Tuner, and print the
// per-epoch telemetry the system collects (loss, accuracy, simulated epoch
// time, exact exchanged bytes).
//
// Also shows the sampling mode (EC-Graph-S) via the nested sampling=SPEC
// clause on the same partition for comparison.
//
// Usage: distributed_training [dataset] [workers] [epochs]
//        (default: pubmed-sim 6 30)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/sampling_trainer.h"
#include "core/train_spec.h"
#include "core/trainer.h"
#include "graph/datasets.h"
#include "graph/partition.h"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "pubmed-sim";
  const uint32_t workers = argc > 2 ? std::atoi(argv[2]) : 6;
  const uint32_t epochs = argc > 3 ? std::atoi(argv[3]) : 30;

  auto gr = ecg::graph::LoadDataset(dataset);
  gr.status().CheckOk();
  const ecg::graph::Graph& g = *gr;
  auto dspec = *ecg::graph::GetDatasetSpec(dataset);

  // Shared clauses for both runs; fp=reqec/bp=resec are the defaults.
  const std::vector<std::string> base = {
      "layers=" + std::to_string(dspec.default_layers),
      "hidden=" + std::to_string(dspec.default_hidden),
      "workers=" + std::to_string(workers),
      "epochs=" + std::to_string(epochs),
      "partitioner=metis",
      "fp_bits=2", "bp_bits=2", "log_every=0"};

  // Full-batch EC-Graph with the adaptive Bit-Tuner.
  std::vector<std::string> full = base;
  full.push_back("adapt=on");
  auto ts = ecg::core::ParseTrainSpec(full);
  ts.status().CheckOk();

  auto partition = ecg::core::MakePartition(g, ts->workers, ts->partitioner);
  partition.status().CheckOk();
  std::printf("%s on %u workers (METIS-like partition, edge-cut %llu, "
              "balance %.3f)\n\n",
              dataset.c_str(), ts->workers,
              static_cast<unsigned long long>(partition->EdgeCut(g)),
              partition->BalanceFactor());

  ecg::core::DistributedTrainer trainer(g, *partition, ts->options);
  auto r = trainer.Train();
  r.status().CheckOk();

  std::printf("%6s %9s %9s %9s %10s %10s\n", "epoch", "loss", "val-acc",
              "test-acc", "sim-time", "comm");
  const size_t step = std::max<size_t>(1, r->epochs.size() / 15);
  for (size_t e = 0; e < r->epochs.size(); e += step) {
    const auto& m = r->epochs[e];
    std::printf("%6zu %9.4f %9.4f %9.4f %9.4fs %8.2fMB\n", e, m.loss,
                m.val_acc, m.test_acc, m.sim_seconds,
                m.comm_bytes / (1024.0 * 1024.0));
  }
  std::printf("\nEC-Graph (adaptive): best test acc %.4f, avg epoch %.4fs, "
              "total comm %.2fMB\n",
              r->test_acc_at_best_val, r->avg_epoch_seconds,
              r->total_comm_bytes / (1024.0 * 1024.0));

  // Sampling mode on the same partition, via the nested sampling= clause
  // (shared keys like bit widths carry over; fp/bp map to plain cp).
  std::string fanout = "sampling=fanout=10";
  for (int l = 1; l < dspec.default_layers; ++l) fanout += "x10";
  std::vector<std::string> sampled = base;
  for (std::string& clause : sampled) {
    if (clause == "fp_bits=2") clause = "fp_bits=8";
    if (clause == "bp_bits=2") clause = "bp_bits=8";
  }
  sampled.push_back(fanout + ":seed=77");
  auto sts = ecg::core::ParseTrainSpec(sampled);
  sts.status().CheckOk();
  ecg::core::SamplingTrainer strainer(g, *partition, sts->sampling);
  auto sr = strainer.Train();
  sr.status().CheckOk();
  std::printf("EC-Graph-S (fanout 10): best test acc %.4f, avg epoch "
              "%.4fs, total comm %.2fMB\n",
              sr->test_acc_at_best_val, sr->avg_epoch_seconds,
              sr->total_comm_bytes / (1024.0 * 1024.0));
  return 0;
}
