// Distributed training, end to end, on one dataset: the full EC-Graph
// pipeline a user would run — load, partition (METIS-like), train with
// the adaptive Bit-Tuner, and print the per-epoch telemetry the system
// collects (loss, accuracy, simulated epoch time, exact exchanged bytes).
//
// Also shows the sampling mode (EC-Graph-S) on the same partition for
// comparison.
//
// Usage: distributed_training [dataset] [workers] [epochs]
//        (default: pubmed-sim 6 30)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/sampling_trainer.h"
#include "core/trainer.h"
#include "graph/datasets.h"
#include "graph/partition.h"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "pubmed-sim";
  const uint32_t workers = argc > 2 ? std::atoi(argv[2]) : 6;
  const uint32_t epochs = argc > 3 ? std::atoi(argv[3]) : 30;

  auto gr = ecg::graph::LoadDataset(dataset);
  gr.status().CheckOk();
  const ecg::graph::Graph& g = *gr;
  auto spec = *ecg::graph::GetDatasetSpec(dataset);

  auto partition = ecg::graph::MetisLikePartition(g, workers);
  partition.status().CheckOk();
  std::printf("%s on %u workers (METIS-like partition, edge-cut %llu, "
              "balance %.3f)\n\n",
              dataset.c_str(), workers,
              static_cast<unsigned long long>(partition->EdgeCut(g)),
              partition->BalanceFactor());

  // Full-batch EC-Graph with the adaptive Bit-Tuner.
  ecg::core::TrainOptions opt;
  opt.model.num_layers = spec.default_layers;
  opt.model.hidden_dim = spec.default_hidden;
  opt.fp_mode = ecg::core::FpMode::kReqEc;
  opt.bp_mode = ecg::core::BpMode::kResEc;
  opt.exchange.fp_bits = 2;
  opt.exchange.bp_bits = 2;
  opt.exchange.adaptive_bits = true;  // Bit-Tuner on
  opt.epochs = epochs;

  ecg::core::DistributedTrainer trainer(g, *partition, opt);
  auto r = trainer.Train();
  r.status().CheckOk();

  std::printf("%6s %9s %9s %9s %10s %10s\n", "epoch", "loss", "val-acc",
              "test-acc", "sim-time", "comm");
  const size_t step = std::max<size_t>(1, r->epochs.size() / 15);
  for (size_t e = 0; e < r->epochs.size(); e += step) {
    const auto& m = r->epochs[e];
    std::printf("%6zu %9.4f %9.4f %9.4f %9.4fs %8.2fMB\n", e, m.loss,
                m.val_acc, m.test_acc, m.sim_seconds,
                m.comm_bytes / (1024.0 * 1024.0));
  }
  std::printf("\nEC-Graph (adaptive): best test acc %.4f, avg epoch %.4fs, "
              "total comm %.2fMB\n",
              r->test_acc_at_best_val, r->avg_epoch_seconds,
              r->total_comm_bytes / (1024.0 * 1024.0));

  // Sampling mode on the same partition.
  ecg::core::SamplingTrainOptions sopt;
  sopt.model = opt.model;
  sopt.fanouts.assign(spec.default_layers, 10);
  sopt.exchange.fp_bits = 8;
  sopt.exchange.bp_bits = 8;
  sopt.epochs = epochs;
  ecg::core::SamplingTrainer strainer(g, *partition, sopt);
  auto sr = strainer.Train();
  sr.status().CheckOk();
  std::printf("EC-Graph-S (fanout 10): best test acc %.4f, avg epoch "
              "%.4fs, total comm %.2fMB\n",
              sr->test_acc_at_best_val, sr->avg_epoch_seconds,
              sr->total_comm_bytes / (1024.0 * 1024.0));
  return 0;
}
