file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_papers.dir/bench_fig10_papers.cc.o"
  "CMakeFiles/bench_fig10_papers.dir/bench_fig10_papers.cc.o.d"
  "bench_fig10_papers"
  "bench_fig10_papers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_papers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
