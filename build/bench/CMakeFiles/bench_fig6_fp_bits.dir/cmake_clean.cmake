file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fp_bits.dir/bench_fig6_fp_bits.cc.o"
  "CMakeFiles/bench_fig6_fp_bits.dir/bench_fig6_fp_bits.cc.o.d"
  "bench_fig6_fp_bits"
  "bench_fig6_fp_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fp_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
