# Empty dependencies file for bench_fig6_fp_bits.
# This may be replaced when dependencies are built.
