
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_accuracy.cc" "bench/CMakeFiles/bench_table5_accuracy.dir/bench_table5_accuracy.cc.o" "gcc" "bench/CMakeFiles/bench_table5_accuracy.dir/bench_table5_accuracy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ecg_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ecg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ecg_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ecg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ecg_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ecg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
