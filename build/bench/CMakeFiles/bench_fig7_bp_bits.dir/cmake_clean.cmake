file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_bp_bits.dir/bench_fig7_bp_bits.cc.o"
  "CMakeFiles/bench_fig7_bp_bits.dir/bench_fig7_bp_bits.cc.o.d"
  "bench_fig7_bp_bits"
  "bench_fig7_bp_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_bp_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
