# Empty dependencies file for bench_fig7_bp_bits.
# This may be replaced when dependencies are built.
