file(REMOVE_RECURSE
  "CMakeFiles/ecg_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ecg_bench_util.dir/bench_util.cc.o.d"
  "libecg_bench_util.a"
  "libecg_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
