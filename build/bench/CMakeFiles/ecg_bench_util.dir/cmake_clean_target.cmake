file(REMOVE_RECURSE
  "libecg_bench_util.a"
)
