# Empty compiler generated dependencies file for ecg_bench_util.
# This may be replaced when dependencies are built.
