file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_bound.dir/bench_thm1_bound.cc.o"
  "CMakeFiles/bench_thm1_bound.dir/bench_thm1_bound.cc.o.d"
  "bench_thm1_bound"
  "bench_thm1_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
