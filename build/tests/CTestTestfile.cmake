# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/bytes_test[1]_include.cmake")
include("/root/repo/build/tests/bitpack_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_ops_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/csr_test[1]_include.cmake")
include("/root/repo/build/tests/quantize_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/param_server_test[1]_include.cmake")
include("/root/repo/build/tests/halo_test[1]_include.cmake")
include("/root/repo/build/tests/exchange_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/sage_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/wire_util_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/timer_logging_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_conformance_test[1]_include.cmake")
