
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/param_server_test.cc" "tests/CMakeFiles/param_server_test.dir/param_server_test.cc.o" "gcc" "tests/CMakeFiles/param_server_test.dir/param_server_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ecg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ecg_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ecg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ecg_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ecg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
