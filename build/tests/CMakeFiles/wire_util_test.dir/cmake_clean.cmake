file(REMOVE_RECURSE
  "CMakeFiles/wire_util_test.dir/wire_util_test.cc.o"
  "CMakeFiles/wire_util_test.dir/wire_util_test.cc.o.d"
  "wire_util_test"
  "wire_util_test.pdb"
  "wire_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
