# Empty dependencies file for wire_util_test.
# This may be replaced when dependencies are built.
