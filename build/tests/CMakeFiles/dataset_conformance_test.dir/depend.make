# Empty dependencies file for dataset_conformance_test.
# This may be replaced when dependencies are built.
