file(REMOVE_RECURSE
  "CMakeFiles/dataset_conformance_test.dir/dataset_conformance_test.cc.o"
  "CMakeFiles/dataset_conformance_test.dir/dataset_conformance_test.cc.o.d"
  "dataset_conformance_test"
  "dataset_conformance_test.pdb"
  "dataset_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
