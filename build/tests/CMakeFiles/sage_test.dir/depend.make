# Empty dependencies file for sage_test.
# This may be replaced when dependencies are built.
