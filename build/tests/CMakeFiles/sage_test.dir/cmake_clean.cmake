file(REMOVE_RECURSE
  "CMakeFiles/sage_test.dir/sage_test.cc.o"
  "CMakeFiles/sage_test.dir/sage_test.cc.o.d"
  "sage_test"
  "sage_test.pdb"
  "sage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
