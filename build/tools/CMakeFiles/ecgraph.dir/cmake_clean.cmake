file(REMOVE_RECURSE
  "CMakeFiles/ecgraph.dir/ecgraph_cli.cc.o"
  "CMakeFiles/ecgraph.dir/ecgraph_cli.cc.o.d"
  "ecgraph"
  "ecgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
