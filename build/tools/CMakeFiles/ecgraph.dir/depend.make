# Empty dependencies file for ecgraph.
# This may be replaced when dependencies are built.
