file(REMOVE_RECURSE
  "CMakeFiles/compression_playground.dir/compression_playground.cpp.o"
  "CMakeFiles/compression_playground.dir/compression_playground.cpp.o.d"
  "compression_playground"
  "compression_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
