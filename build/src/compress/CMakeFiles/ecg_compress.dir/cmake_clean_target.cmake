file(REMOVE_RECURSE
  "libecg_compress.a"
)
