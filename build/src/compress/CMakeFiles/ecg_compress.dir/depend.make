# Empty dependencies file for ecg_compress.
# This may be replaced when dependencies are built.
