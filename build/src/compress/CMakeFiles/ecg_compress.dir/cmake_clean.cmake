file(REMOVE_RECURSE
  "CMakeFiles/ecg_compress.dir/quantize.cc.o"
  "CMakeFiles/ecg_compress.dir/quantize.cc.o.d"
  "libecg_compress.a"
  "libecg_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
