file(REMOVE_RECURSE
  "libecg_core.a"
)
