# Empty compiler generated dependencies file for ecg_core.
# This may be replaced when dependencies are built.
