
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bp_exchange.cc" "src/core/CMakeFiles/ecg_core.dir/bp_exchange.cc.o" "gcc" "src/core/CMakeFiles/ecg_core.dir/bp_exchange.cc.o.d"
  "/root/repo/src/core/fp_exchange.cc" "src/core/CMakeFiles/ecg_core.dir/fp_exchange.cc.o" "gcc" "src/core/CMakeFiles/ecg_core.dir/fp_exchange.cc.o.d"
  "/root/repo/src/core/halo.cc" "src/core/CMakeFiles/ecg_core.dir/halo.cc.o" "gcc" "src/core/CMakeFiles/ecg_core.dir/halo.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/core/CMakeFiles/ecg_core.dir/sampling.cc.o" "gcc" "src/core/CMakeFiles/ecg_core.dir/sampling.cc.o.d"
  "/root/repo/src/core/sampling_trainer.cc" "src/core/CMakeFiles/ecg_core.dir/sampling_trainer.cc.o" "gcc" "src/core/CMakeFiles/ecg_core.dir/sampling_trainer.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/ecg_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/ecg_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ecg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ecg_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ecg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ecg_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
