file(REMOVE_RECURSE
  "CMakeFiles/ecg_core.dir/bp_exchange.cc.o"
  "CMakeFiles/ecg_core.dir/bp_exchange.cc.o.d"
  "CMakeFiles/ecg_core.dir/fp_exchange.cc.o"
  "CMakeFiles/ecg_core.dir/fp_exchange.cc.o.d"
  "CMakeFiles/ecg_core.dir/halo.cc.o"
  "CMakeFiles/ecg_core.dir/halo.cc.o.d"
  "CMakeFiles/ecg_core.dir/sampling.cc.o"
  "CMakeFiles/ecg_core.dir/sampling.cc.o.d"
  "CMakeFiles/ecg_core.dir/sampling_trainer.cc.o"
  "CMakeFiles/ecg_core.dir/sampling_trainer.cc.o.d"
  "CMakeFiles/ecg_core.dir/trainer.cc.o"
  "CMakeFiles/ecg_core.dir/trainer.cc.o.d"
  "libecg_core.a"
  "libecg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
