# Empty compiler generated dependencies file for ecg_common.
# This may be replaced when dependencies are built.
