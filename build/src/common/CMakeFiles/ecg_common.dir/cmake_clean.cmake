file(REMOVE_RECURSE
  "CMakeFiles/ecg_common.dir/bitpack.cc.o"
  "CMakeFiles/ecg_common.dir/bitpack.cc.o.d"
  "CMakeFiles/ecg_common.dir/logging.cc.o"
  "CMakeFiles/ecg_common.dir/logging.cc.o.d"
  "CMakeFiles/ecg_common.dir/status.cc.o"
  "CMakeFiles/ecg_common.dir/status.cc.o.d"
  "CMakeFiles/ecg_common.dir/thread_pool.cc.o"
  "CMakeFiles/ecg_common.dir/thread_pool.cc.o.d"
  "libecg_common.a"
  "libecg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
