file(REMOVE_RECURSE
  "libecg_common.a"
)
