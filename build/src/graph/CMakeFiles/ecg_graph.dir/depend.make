# Empty dependencies file for ecg_graph.
# This may be replaced when dependencies are built.
