
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/datasets.cc" "src/graph/CMakeFiles/ecg_graph.dir/datasets.cc.o" "gcc" "src/graph/CMakeFiles/ecg_graph.dir/datasets.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/graph/CMakeFiles/ecg_graph.dir/generator.cc.o" "gcc" "src/graph/CMakeFiles/ecg_graph.dir/generator.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/ecg_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/ecg_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/ecg_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/ecg_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/ecg_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/ecg_graph.dir/partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ecg_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
