file(REMOVE_RECURSE
  "libecg_graph.a"
)
