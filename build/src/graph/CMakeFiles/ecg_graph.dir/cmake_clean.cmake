file(REMOVE_RECURSE
  "CMakeFiles/ecg_graph.dir/datasets.cc.o"
  "CMakeFiles/ecg_graph.dir/datasets.cc.o.d"
  "CMakeFiles/ecg_graph.dir/generator.cc.o"
  "CMakeFiles/ecg_graph.dir/generator.cc.o.d"
  "CMakeFiles/ecg_graph.dir/graph.cc.o"
  "CMakeFiles/ecg_graph.dir/graph.cc.o.d"
  "CMakeFiles/ecg_graph.dir/graph_io.cc.o"
  "CMakeFiles/ecg_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/ecg_graph.dir/partition.cc.o"
  "CMakeFiles/ecg_graph.dir/partition.cc.o.d"
  "libecg_graph.a"
  "libecg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
