# Empty dependencies file for ecg_tensor.
# This may be replaced when dependencies are built.
