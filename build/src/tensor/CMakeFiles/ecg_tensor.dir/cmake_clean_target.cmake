file(REMOVE_RECURSE
  "libecg_tensor.a"
)
