file(REMOVE_RECURSE
  "CMakeFiles/ecg_tensor.dir/csr.cc.o"
  "CMakeFiles/ecg_tensor.dir/csr.cc.o.d"
  "CMakeFiles/ecg_tensor.dir/matrix.cc.o"
  "CMakeFiles/ecg_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/ecg_tensor.dir/nn.cc.o"
  "CMakeFiles/ecg_tensor.dir/nn.cc.o.d"
  "CMakeFiles/ecg_tensor.dir/ops.cc.o"
  "CMakeFiles/ecg_tensor.dir/ops.cc.o.d"
  "libecg_tensor.a"
  "libecg_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
