file(REMOVE_RECURSE
  "CMakeFiles/ecg_baselines.dir/ml_centered.cc.o"
  "CMakeFiles/ecg_baselines.dir/ml_centered.cc.o.d"
  "CMakeFiles/ecg_baselines.dir/single_machine.cc.o"
  "CMakeFiles/ecg_baselines.dir/single_machine.cc.o.d"
  "libecg_baselines.a"
  "libecg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
