# Empty compiler generated dependencies file for ecg_baselines.
# This may be replaced when dependencies are built.
