file(REMOVE_RECURSE
  "libecg_baselines.a"
)
