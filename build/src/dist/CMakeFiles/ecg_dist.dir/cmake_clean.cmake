file(REMOVE_RECURSE
  "CMakeFiles/ecg_dist.dir/cluster.cc.o"
  "CMakeFiles/ecg_dist.dir/cluster.cc.o.d"
  "CMakeFiles/ecg_dist.dir/comm.cc.o"
  "CMakeFiles/ecg_dist.dir/comm.cc.o.d"
  "CMakeFiles/ecg_dist.dir/param_server.cc.o"
  "CMakeFiles/ecg_dist.dir/param_server.cc.o.d"
  "libecg_dist.a"
  "libecg_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
