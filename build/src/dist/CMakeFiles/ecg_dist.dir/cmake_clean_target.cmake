file(REMOVE_RECURSE
  "libecg_dist.a"
)
