# Empty dependencies file for ecg_dist.
# This may be replaced when dependencies are built.
