
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/cluster.cc" "src/dist/CMakeFiles/ecg_dist.dir/cluster.cc.o" "gcc" "src/dist/CMakeFiles/ecg_dist.dir/cluster.cc.o.d"
  "/root/repo/src/dist/comm.cc" "src/dist/CMakeFiles/ecg_dist.dir/comm.cc.o" "gcc" "src/dist/CMakeFiles/ecg_dist.dir/comm.cc.o.d"
  "/root/repo/src/dist/param_server.cc" "src/dist/CMakeFiles/ecg_dist.dir/param_server.cc.o" "gcc" "src/dist/CMakeFiles/ecg_dist.dir/param_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ecg_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
