// ecgraph — command-line driver for the EC-Graph library.
//
//   ecgraph info <dataset-or-.ecg-file>
//       Structural statistics of a dataset replica or a saved graph file.
//   ecgraph generate <dataset> <out.ecg>
//       Materializes a Table III replica to disk (binary format).
//   ecgraph partition <dataset> <workers> [hash|metis|streaming]
//       Partitions and reports edge-cut / balance / halo sizes.
//   ecgraph train <dataset> [key=value ...]
//       Distributed training. Keys: workers, epochs, layers, hidden,
//       model(gcn|sage), fp(exact|cp|reqec|delayed), bp(exact|cp|resec),
//       fp_bits, bp_bits, adapt(0|1), partitioner(hash|metis|streaming),
//       patience, lr, overlap(on|off), int8_gemm(on|off),
//       checkpoint_every, checkpoint_dir.
//   ecgraph trace-report <trace.json|flight_N.json>
//       Offline phase/peer breakdown of a Chrome trace or flight dump.
//
// Exit code 0 on success; errors print the Status and exit 1.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "common/trace_report.h"
#include "core/halo.h"
#include "core/trainer.h"
#include "dist/fault.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "graph/partition.h"

namespace {

using ecg::Result;
using ecg::Status;

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

Result<ecg::graph::Graph> LoadAny(const std::string& name) {
  if (name.size() > 4 && name.substr(name.size() - 4) == ".ecg") {
    return ecg::graph::LoadGraph(name);
  }
  return ecg::graph::LoadDataset(name);
}

Result<ecg::graph::Partition> MakePartition(const ecg::graph::Graph& g,
                                            uint32_t workers,
                                            const std::string& algo) {
  if (algo == "hash") return ecg::graph::HashPartition(g, workers);
  if (algo == "metis") return ecg::graph::MetisLikePartition(g, workers);
  if (algo == "streaming") return ecg::graph::StreamingPartition(g, workers);
  return Status::InvalidArgument("unknown partitioner '" + algo +
                                 "' (hash|metis|streaming)");
}

/// Parses trailing "key=value" arguments.
std::map<std::string, std::string> ParseKv(int argc, char** argv, int from) {
  std::map<std::string, std::string> kv;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return kv;
}

std::string Get(const std::map<std::string, std::string>& kv,
                const std::string& key, const std::string& fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : it->second;
}

int CmdInfo(const std::string& name) {
  auto g = LoadAny(name);
  if (!g.ok()) return Fail(g.status());
  std::printf("name         %s\n", g->name.empty() ? name.c_str()
                                                   : g->name.c_str());
  std::printf("vertices     %u\n", g->num_vertices());
  std::printf("dir-edges    %llu\n",
              static_cast<unsigned long long>(g->num_edges()));
  std::printf("avg-degree   %.2f\n", g->average_degree());
  std::printf("features     %zu\n", g->feature_dim());
  std::printf("classes      %d\n", g->num_classes());
  std::printf("splits       train=%zu val=%zu test=%zu\n",
              g->train_set().size(), g->val_set().size(),
              g->test_set().size());
  return 0;
}

int CmdGenerate(const std::string& dataset, const std::string& out) {
  auto g = ecg::graph::LoadDataset(dataset);
  if (!g.ok()) return Fail(g.status());
  const Status s = ecg::graph::SaveGraph(*g, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s (%u vertices)\n", out.c_str(), g->num_vertices());
  return 0;
}

int CmdPartition(const std::string& name, uint32_t workers,
                 const std::string& algo) {
  auto g = LoadAny(name);
  if (!g.ok()) return Fail(g.status());
  auto p = MakePartition(*g, workers, algo);
  if (!p.ok()) return Fail(p.status());
  std::vector<ecg::core::WorkerPlan> plans;
  const Status s = ecg::core::BuildWorkerPlans(*g, *p, &plans);
  if (!s.ok()) return Fail(s);
  uint64_t halo = 0, send = 0;
  for (const auto& plan : plans) {
    halo += plan.num_halo();
    send += plan.total_send_rows();
  }
  std::printf("partitioner  %s\n", algo.c_str());
  std::printf("edge-cut     %llu\n",
              static_cast<unsigned long long>(p->EdgeCut(*g)));
  std::printf("balance      %.3f\n", p->BalanceFactor());
  std::printf("halo-rows    %llu (avg %.1f per worker)\n",
              static_cast<unsigned long long>(halo),
              static_cast<double>(halo) / workers);
  std::printf("send-rows    %llu\n", static_cast<unsigned long long>(send));
  return 0;
}

int CmdTrain(const std::string& name,
             const std::map<std::string, std::string>& kv) {
  auto g = LoadAny(name);
  if (!g.ok()) return Fail(g.status());

  ecg::core::TrainOptions opt;
  opt.model.num_layers = std::atoi(Get(kv, "layers", "2").c_str());
  opt.model.hidden_dim =
      static_cast<uint32_t>(std::atoi(Get(kv, "hidden", "16").c_str()));
  opt.model.learning_rate =
      static_cast<float>(std::atof(Get(kv, "lr", "0.01").c_str()));
  if (Get(kv, "model", "gcn") == "sage") {
    opt.model.kind = ecg::core::GnnKind::kSage;
  }
  opt.epochs = static_cast<uint32_t>(std::atoi(
      Get(kv, "epochs", "100").c_str()));
  opt.patience = static_cast<uint32_t>(std::atoi(
      Get(kv, "patience", "0").c_str()));
  const std::string fp = Get(kv, "fp", "reqec");
  if (fp == "exact") opt.fp_mode = ecg::core::FpMode::kExact;
  else if (fp == "cp") opt.fp_mode = ecg::core::FpMode::kCompressed;
  else if (fp == "reqec") opt.fp_mode = ecg::core::FpMode::kReqEc;
  else if (fp == "delayed") opt.fp_mode = ecg::core::FpMode::kDelayed;
  else return Fail(Status::InvalidArgument("bad fp mode " + fp));
  const std::string bp = Get(kv, "bp", "resec");
  if (bp == "exact") opt.bp_mode = ecg::core::BpMode::kExact;
  else if (bp == "cp") opt.bp_mode = ecg::core::BpMode::kCompressed;
  else if (bp == "resec") opt.bp_mode = ecg::core::BpMode::kResEc;
  else return Fail(Status::InvalidArgument("bad bp mode " + bp));
  opt.exchange.fp_bits = std::atoi(Get(kv, "fp_bits", "2").c_str());
  opt.exchange.bp_bits = std::atoi(Get(kv, "bp_bits", "2").c_str());
  opt.exchange.adaptive_bits = Get(kv, "adapt", "0") == "1";
  const std::string overlap = Get(kv, "overlap", "on");
  if (overlap == "on") opt.overlap = true;
  else if (overlap == "off") opt.overlap = false;
  else return Fail(Status::InvalidArgument("bad overlap value " + overlap +
                                           " (on|off)"));
  const std::string int8_gemm = Get(kv, "int8_gemm", "off");
  if (int8_gemm == "on") opt.int8_gemm = true;
  else if (int8_gemm == "off") opt.int8_gemm = false;
  else return Fail(Status::InvalidArgument("bad int8_gemm value " +
                                           int8_gemm + " (on|off)"));
  opt.log_every =
      static_cast<uint32_t>(std::atoi(Get(kv, "log_every", "10").c_str()));
  opt.checkpoint_every = static_cast<uint32_t>(
      std::atoi(Get(kv, "checkpoint_every", "0").c_str()));
  opt.checkpoint_dir = Get(kv, "checkpoint_dir", "");
  opt.elastic = Get(kv, "elastic", "");
  const std::string scale_spec = Get(kv, "worker_scale", "");
  if (!scale_spec.empty()) {
    // Colon-separated per-worker compute multipliers, e.g. 1:1:2 makes
    // worker 2 twice as slow (missing trailing entries are 1.0).
    size_t pos = 0;
    for (;;) {
      const size_t next = scale_spec.find(':', pos);
      const std::string tok = scale_spec.substr(
          pos, next == std::string::npos ? std::string::npos : next - pos);
      const double v = std::atof(tok.c_str());
      if (v <= 0.0) {
        return Fail(Status::InvalidArgument(
            "bad worker_scale entry '" + tok + "' (need > 0)"));
      }
      opt.worker_compute_scale.push_back(v);
      if (next == std::string::npos) break;
      pos = next + 1;
    }
  }

  const uint32_t workers =
      static_cast<uint32_t>(std::atoi(Get(kv, "workers", "6").c_str()));
  auto partition =
      MakePartition(*g, workers, Get(kv, "partitioner", "hash"));
  if (!partition.ok()) return Fail(partition.status());

  ecg::core::DistributedTrainer trainer(*g, *partition, opt);
  auto r = trainer.Train();
  // Write the telemetry even on a failed run — a trace of the epochs that
  // did complete is exactly what debugs the failure.
  const Status flush = ecg::obs::FlushObservability();
  if (!flush.ok()) std::fprintf(stderr, "warning: %s\n",
                                flush.ToString().c_str());
  if (!r.ok()) return Fail(r.status());
  std::printf("\nmodel        %s, %d layers, hidden %u\n",
              ecg::core::GnnKindName(opt.model.kind), opt.model.num_layers,
              opt.model.hidden_dim);
  std::printf("epochs-run   %zu (best val at %u)\n", r->epochs.size(),
              r->best_epoch);
  std::printf("best-val     %.4f\n", r->best_val_acc);
  std::printf("test-acc     %.4f\n", r->test_acc_at_best_val);
  std::printf("avg-epoch    %.4fs (simulated)\n", r->avg_epoch_seconds);
  std::printf("total-comm   %.2f MB\n",
              r->total_comm_bytes / (1024.0 * 1024.0));
  if (const ecg::dist::FaultInjector* inj = ecg::dist::GlobalFaultInjector()) {
    const ecg::dist::FaultCounters& c = inj->counters();
    std::printf("faults       dropped=%llu corrupted=%llu duplicated=%llu "
                "delayed=%llu retried=%llu lost=%llu\n",
                static_cast<unsigned long long>(c.dropped.load()),
                static_cast<unsigned long long>(c.corrupted.load()),
                static_cast<unsigned long long>(c.duplicated.load()),
                static_cast<unsigned long long>(c.delayed.load()),
                static_cast<unsigned long long>(c.retried.load()),
                static_cast<unsigned long long>(c.lost.load()));
    std::printf("degraded     fp_pdt=%llu fp_stale=%llu bp_resec=%llu\n",
                static_cast<unsigned long long>(c.degraded_pdt.load()),
                static_cast<unsigned long long>(c.degraded_stale.load()),
                static_cast<unsigned long long>(c.degraded_resec.load()));
    std::printf("recovery     checkpoints=%llu crashes=%llu restores=%llu\n",
                static_cast<unsigned long long>(c.checkpoints.load()),
                static_cast<unsigned long long>(c.crashes.load()),
                static_cast<unsigned long long>(c.restores.load()));
  }
  return 0;
}

int CmdTraceReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Fail(Status::NotFound("cannot open artefact '" + path + "'"));
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto report = ecg::obs::BuildTraceReport(text.str());
  if (!report.ok()) return Fail(report.status());
  std::fputs(ecg::obs::FormatTraceReport(*report).c_str(), stdout);
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: ecgraph <info|generate|partition|train|trace-report>"
               " ...\n"
               "  info <dataset|file.ecg>\n"
               "  generate <dataset> <out.ecg>\n"
               "  partition <dataset|file.ecg> <workers> "
               "[hash|metis|streaming]\n"
               "  train <dataset|file.ecg> [key=value ...]\n"
               "  trace-report <trace.json|flight_N.json>   offline "
               "compute/comm/stall + per-link retry breakdown\n"
               "\n"
               "train scheduling:\n"
               "  overlap=on|off      split-phase halo exchange overlapped "
               "with interior\n"
               "                      aggregation (default on; results are "
               "bitwise identical,\n"
               "                      off restores the sequential "
               "schedule)\n"
               "  int8_gemm=on|off    boundary-row transform in the int8 "
               "packed domain\n"
               "                      (default off; trades weight-"
               "quantization error for\n"
               "                      GEMM throughput, falls back to float "
               "on unsupported shapes)\n"
               "\n"
               "kernel dispatch (any command):\n"
               "  --kernels=NAME      force a kernel registry variant: "
               "scalar|avx2|avx512|neon|auto\n"
               "  ECG_KERNELS=NAME    environment equivalent of --kernels "
               "(flag wins)\n"
               "\n"
               "train keys for fault tolerance:\n"
               "  checkpoint_every=N  epoch checkpoint cadence (0 = auto: "
               "every epoch iff a crash is scheduled)\n"
               "  checkpoint_dir=DIR  mirror the latest checkpoint to "
               "DIR/checkpoint_latest.bin (atomic rename)\n"
               "\n"
               "train keys for elastic membership:\n"
               "  elastic=SPEC        membership schedule + rebalancer, "
               "clauses joined by ','\n"
               "                      leave@epoch=E:worker=W | join@epoch=E "
               "| on_crash=shrink|replace|restore |\n"
               "                      rebalance=on|off | threshold=F | "
               "hysteresis=N | budget=F | cooldown=N |\n"
               "                      downtime=S | cap=F | max_imbalance=F "
               "| seed=N  (empty = fixed membership)\n"
               "  worker_scale=A:B:.. per-worker compute slowdown "
               "multipliers (straggler demo: 1:1:2)\n"
               "\n"
               "observability flags (any command, position-independent):\n"
               "  --trace_out=PATH    Chrome-trace JSON (open in "
               "ui.perfetto.dev or chrome://tracing)\n"
               "  --trace_level=N     0=off, 1=phase spans (default with "
               "--trace_out), 2=+codec detail\n"
               "  --stats_out=PATH    per-epoch JSONL of compression/"
               "timing stats\n"
               "  --metrics_port=N    serve live Prometheus text on "
               "http://0.0.0.0:N/metrics (0 = ephemeral)\n"
               "  --metrics_out=PATH  write one Prometheus snapshot at "
               "exit (CI-friendly scrapeless mode)\n"
               "  --flight_dir=DIR    arm the crash flight recorder; "
               "aborts/SIGTERM/injected crashes dump\n"
               "                      flight_<worker>.json (spans + metrics "
               "+ fault counters) into DIR\n"
               "  --log_level=LEVEL   debug|info|warning|error\n"
               "\n"
               "fault-injection flags (chaos testing the halo exchange):\n"
               "  --faults=SPEC       deterministic fault schedule, e.g.\n"
               "                      'drop=0.05,corrupt=0.01,seed=7' or\n"
               "                      'crash@epoch=5:worker=1'. Clauses:\n"
               "                      drop|corrupt|dup|delay|straggle=P,\n"
               "                      crash; filters @epoch=A[-B]:layer=N:"
               "from=N:to=N:secs=F;\n"
               "                      config seed|retries|timeout_ms|"
               "backoff|restart=V\n"
               "  --recv_timeout_ms=N per-attempt Recv deadline "
               "(default 2000)\n"
               "  --max_retries=N     redelivery attempts per message "
               "(default 3)\n"
               "With faults active, train prints fault/degradation/recovery "
               "counters,\nand --stats_out gains per-epoch fault.* and "
               "ckpt.* rows.\n");
}

}  // namespace

int main(int argc, char** argv) {
  ecg::obs::InitObservabilityFromArgs(&argc, argv);
  ecg::dist::InitFaultsFromArgs(&argc, argv);
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    Usage();
    return 0;
  }
  if (cmd == "info" && argc >= 3) return CmdInfo(argv[2]);
  if (cmd == "generate" && argc >= 4) return CmdGenerate(argv[2], argv[3]);
  if (cmd == "partition" && argc >= 4) {
    return CmdPartition(argv[2],
                        static_cast<uint32_t>(std::atoi(argv[3])),
                        argc >= 5 ? argv[4] : "metis");
  }
  if (cmd == "train" && argc >= 3) {
    return CmdTrain(argv[2], ParseKv(argc, argv, 3));
  }
  if (cmd == "trace-report" && argc >= 3) return CmdTraceReport(argv[2]);
  Usage();
  return 1;
}
