// ecgraph — command-line driver for the EC-Graph library.
//
//   ecgraph info <dataset-or-.ecg-file>
//       Structural statistics of a dataset replica or a saved graph file.
//   ecgraph generate <dataset> <out.ecg>
//       Materializes a Table III replica to disk (binary format).
//   ecgraph partition <dataset> <workers> [hash|metis|streaming]
//       Partitions and reports edge-cut / balance / halo sizes.
//   ecgraph train <dataset> [key=value ...]
//       Distributed training; keys parsed by ecg::config::Spec — run
//       `ecgraph help` for the generated reference.
//   ecgraph serve <dataset> [key=value ...]
//       Online inference serving from a trained checkpoint under an
//       open-loop workload (keys: checkpoint, train_epochs, serve=SPEC,
//       load=SPEC).
//   ecgraph trace-report <trace.json|flight_N.json>
//       Offline phase/peer breakdown of a Chrome trace or flight dump.
//
// Exit code 0 on success; errors print the Status and exit 1.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "common/trace_report.h"
#include "core/halo.h"
#include "core/sampling_trainer.h"
#include "core/train_spec.h"
#include "core/trainer.h"
#include "dist/fault.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "graph/partition.h"
#include "serve/load_gen.h"
#include "serve/server.h"

namespace {

using ecg::Result;
using ecg::Status;

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

Result<ecg::graph::Graph> LoadAny(const std::string& name) {
  if (name.size() > 4 && name.substr(name.size() - 4) == ".ecg") {
    return ecg::graph::LoadGraph(name);
  }
  return ecg::graph::LoadDataset(name);
}

Result<ecg::graph::Partition> PartitionByName(const ecg::graph::Graph& g,
                                              uint32_t workers,
                                              const std::string& algo) {
  ecg::core::PartitionerKind kind;
  if (algo == "hash") kind = ecg::core::PartitionerKind::kHash;
  else if (algo == "metis") kind = ecg::core::PartitionerKind::kMetis;
  else if (algo == "streaming") kind = ecg::core::PartitionerKind::kStreaming;
  else return Status::InvalidArgument("unknown partitioner '" + algo +
                                      "' (hash|metis|streaming)");
  return ecg::core::MakePartition(g, workers, kind);
}

/// Parses trailing "key=value" arguments.
std::map<std::string, std::string> ParseKv(int argc, char** argv, int from) {
  std::map<std::string, std::string> kv;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return kv;
}

std::string Get(const std::map<std::string, std::string>& kv,
                const std::string& key, const std::string& fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : it->second;
}

int CmdInfo(const std::string& name) {
  auto g = LoadAny(name);
  if (!g.ok()) return Fail(g.status());
  std::printf("name         %s\n", g->name.empty() ? name.c_str()
                                                   : g->name.c_str());
  std::printf("vertices     %u\n", g->num_vertices());
  std::printf("dir-edges    %llu\n",
              static_cast<unsigned long long>(g->num_edges()));
  std::printf("avg-degree   %.2f\n", g->average_degree());
  std::printf("features     %zu\n", g->feature_dim());
  std::printf("classes      %d\n", g->num_classes());
  std::printf("splits       train=%zu val=%zu test=%zu\n",
              g->train_set().size(), g->val_set().size(),
              g->test_set().size());
  return 0;
}

int CmdGenerate(const std::string& dataset, const std::string& out) {
  auto g = ecg::graph::LoadDataset(dataset);
  if (!g.ok()) return Fail(g.status());
  const Status s = ecg::graph::SaveGraph(*g, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s (%u vertices)\n", out.c_str(), g->num_vertices());
  return 0;
}

int CmdPartition(const std::string& name, uint32_t workers,
                 const std::string& algo) {
  auto g = LoadAny(name);
  if (!g.ok()) return Fail(g.status());
  auto p = PartitionByName(*g, workers, algo);
  if (!p.ok()) return Fail(p.status());
  std::vector<ecg::core::WorkerPlan> plans;
  const Status s = ecg::core::BuildWorkerPlans(*g, *p, &plans);
  if (!s.ok()) return Fail(s);
  uint64_t halo = 0, send = 0;
  for (const auto& plan : plans) {
    halo += plan.num_halo();
    send += plan.total_send_rows();
  }
  std::printf("partitioner  %s\n", algo.c_str());
  std::printf("edge-cut     %llu\n",
              static_cast<unsigned long long>(p->EdgeCut(*g)));
  std::printf("balance      %.3f\n", p->BalanceFactor());
  std::printf("halo-rows    %llu (avg %.1f per worker)\n",
              static_cast<unsigned long long>(halo),
              static_cast<double>(halo) / workers);
  std::printf("send-rows    %llu\n", static_cast<unsigned long long>(send));
  return 0;
}

int CmdTrain(const std::string& name, const std::vector<std::string>& args) {
  auto g = LoadAny(name);
  if (!g.ok()) return Fail(g.status());

  auto spec = ecg::core::ParseTrainSpec(args);
  if (!spec.ok()) return Fail(spec.status());

  auto partition = ecg::core::MakePartition(*g, spec->workers,
                                            spec->partitioner);
  if (!partition.ok()) return Fail(partition.status());

  Result<ecg::core::TrainResult> r = Status::Internal("unreachable");
  if (spec->use_sampling) {
    ecg::core::SamplingTrainer trainer(*g, *partition, spec->sampling);
    r = trainer.Train();
  } else {
    ecg::core::DistributedTrainer trainer(*g, *partition, spec->options);
    r = trainer.Train();
  }
  // Write the telemetry even on a failed run — a trace of the epochs that
  // did complete is exactly what debugs the failure.
  const Status flush = ecg::obs::FlushObservability();
  if (!flush.ok()) std::fprintf(stderr, "warning: %s\n",
                                flush.ToString().c_str());
  if (!r.ok()) return Fail(r.status());
  const ecg::core::GcnConfig& model =
      spec->use_sampling ? spec->sampling.model : spec->options.model;
  std::printf("\nmodel        %s, %d layers, hidden %u%s\n",
              ecg::core::GnnKindName(model.kind), model.num_layers,
              model.hidden_dim, spec->use_sampling ? " (sampled)" : "");
  std::printf("epochs-run   %zu (best val at %u)\n", r->epochs.size(),
              r->best_epoch);
  std::printf("best-val     %.4f\n", r->best_val_acc);
  std::printf("test-acc     %.4f\n", r->test_acc_at_best_val);
  std::printf("avg-epoch    %.4fs (simulated)\n", r->avg_epoch_seconds);
  std::printf("total-comm   %.2f MB\n",
              r->total_comm_bytes / (1024.0 * 1024.0));
  if (const ecg::dist::FaultInjector* inj = ecg::dist::GlobalFaultInjector()) {
    const ecg::dist::FaultCounters& c = inj->counters();
    std::printf("faults       dropped=%llu corrupted=%llu duplicated=%llu "
                "delayed=%llu retried=%llu lost=%llu\n",
                static_cast<unsigned long long>(c.dropped.load()),
                static_cast<unsigned long long>(c.corrupted.load()),
                static_cast<unsigned long long>(c.duplicated.load()),
                static_cast<unsigned long long>(c.delayed.load()),
                static_cast<unsigned long long>(c.retried.load()),
                static_cast<unsigned long long>(c.lost.load()));
    std::printf("degraded     fp_pdt=%llu fp_stale=%llu bp_resec=%llu\n",
                static_cast<unsigned long long>(c.degraded_pdt.load()),
                static_cast<unsigned long long>(c.degraded_stale.load()),
                static_cast<unsigned long long>(c.degraded_resec.load()));
    std::printf("recovery     checkpoints=%llu crashes=%llu restores=%llu\n",
                static_cast<unsigned long long>(c.checkpoints.load()),
                static_cast<unsigned long long>(c.crashes.load()),
                static_cast<unsigned long long>(c.restores.load()));
  }
  return 0;
}

// Serves per-vertex classification queries from a trained checkpoint under
// an open-loop workload on the simulated serving clock. Without
// checkpoint=PATH a quick training run produces one first (mirroring epoch
// checkpoints the way a production job would).
int CmdServe(const std::string& name,
             const std::map<std::string, std::string>& kv) {
  auto g = LoadAny(name);
  if (!g.ok()) return Fail(g.status());

  auto serve_opts = ecg::serve::ParseServeOptions(Get(kv, "serve", ""));
  if (!serve_opts.ok()) return Fail(serve_opts.status());
  auto workload = ecg::serve::ParseWorkloadOptions(Get(kv, "load", ""));
  if (!workload.ok()) return Fail(workload.status());

  ecg::core::GcnConfig model;
  model.num_layers = std::atoi(Get(kv, "layers", "2").c_str());
  model.hidden_dim =
      static_cast<uint32_t>(std::atoi(Get(kv, "hidden", "16").c_str()));
  if (Get(kv, "model", "gcn") == "sage") {
    model.kind = ecg::core::GnnKind::kSage;
  }

  std::string ckpt = Get(kv, "checkpoint", "");
  if (ckpt.empty()) {
    const uint32_t epochs = static_cast<uint32_t>(
        std::atoi(Get(kv, "train_epochs", "10").c_str()));
    const std::string dir = "ecgraph_serve_ckpt";
    std::filesystem::create_directories(dir);
    ecg::core::TrainOptions opt;
    opt.model = model;
    opt.epochs = epochs;
    opt.checkpoint_every = 1;
    opt.checkpoint_dir = dir;
    auto train = ecg::core::TrainDistributed(*g, 6, opt);
    if (!train.ok()) return Fail(train.status());
    ckpt = dir + "/checkpoint_latest.bin";
    std::printf("trained %u epochs (val=%.4f), checkpoint at %s\n",
                epochs, train->best_val_acc, ckpt.c_str());
  }

  ecg::serve::InferenceServer server(&*g, model, *serve_opts);
  Status s = server.Init();
  if (!s.ok()) return Fail(s);
  s = server.LoadFromCheckpoint(ckpt);
  if (!s.ok()) return Fail(s);

  auto res = ecg::serve::RunOpenLoop(&server, *workload);
  const Status flush = ecg::obs::FlushObservability();
  if (!flush.ok()) std::fprintf(stderr, "warning: %s\n",
                                flush.ToString().c_str());
  if (!res.ok()) return Fail(res.status());

  std::printf("offered      %llu queries (%.0f qps over %.2fs)\n",
              static_cast<unsigned long long>(res->offered),
              res->achieved_qps, res->duration_seconds);
  std::printf("served       %llu (shed %llu, %llu batches, avg batch "
              "%.1f)\n",
              static_cast<unsigned long long>(res->served),
              static_cast<unsigned long long>(res->shed),
              static_cast<unsigned long long>(res->batches),
              res->mean_batch);
  std::printf("latency      p50=%.3fms p99=%.3fms max=%.3fms\n",
              res->p50_ms, res->p99_ms, res->max_ms);
  std::printf("cache        hit-rate=%.2f (rows computed=%llu "
              "cached=%llu)\n",
              res->cache_hit_rate,
              static_cast<unsigned long long>(res->rows_computed),
              static_cast<unsigned long long>(res->rows_cached));
  return 0;
}

int CmdTraceReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Fail(Status::NotFound("cannot open artefact '" + path + "'"));
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto report = ecg::obs::BuildTraceReport(text.str());
  if (!report.ok()) return Fail(report.status());
  std::fputs(ecg::obs::FormatTraceReport(*report).c_str(), stdout);
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: ecgraph "
               "<info|generate|partition|train|serve|trace-report> ...\n"
               "  info <dataset|file.ecg>\n"
               "  generate <dataset> <out.ecg>\n"
               "  partition <dataset|file.ecg> <workers> "
               "[hash|metis|streaming]\n"
               "  train <dataset|file.ecg> [key=value ...]\n"
               "  serve <dataset|file.ecg> [key=value ...]\n"
               "  trace-report <trace.json|flight_N.json>   offline "
               "compute/comm/stall + per-link retry breakdown\n"
               "\n"
               "train keys (parsed by ecg::config::Spec; one key=value per "
               "argument):\n%s\n"
               "serve keys:\n"
               "  checkpoint=PATH     serve from this checkpoint file "
               "(omit to quick-train one)\n"
               "  train_epochs=N      epochs for the quick-train path "
               "(default 10)\n"
               "  layers=N hidden=N model=gcn|sage\n"
               "                      model shape; must match the "
               "checkpoint being served\n"
               "  serve=SPEC          server tuning, clauses joined by "
               "','\n%s"
               "  load=SPEC           open-loop workload, clauses joined "
               "by ','\n%s"
               "\n"
               "kernel dispatch (any command):\n",
               ecg::core::TrainSpecHelp().c_str(),
               ecg::serve::ServeSpecHelp().c_str(),
               ecg::serve::WorkloadSpecHelp().c_str());
  std::fprintf(stderr,
               "  --kernels=NAME      force a kernel registry variant: "
               "scalar|avx2|avx512|neon|auto\n"
               "  ECG_KERNELS=NAME    environment equivalent of --kernels "
               "(flag wins)\n"
               "\n"
               "observability flags (any command, position-independent):\n"
               "  --trace_out=PATH    Chrome-trace JSON (open in "
               "ui.perfetto.dev or chrome://tracing)\n"
               "  --trace_level=N     0=off, 1=phase spans (default with "
               "--trace_out), 2=+codec detail\n"
               "  --stats_out=PATH    per-epoch JSONL of compression/"
               "timing stats\n"
               "  --metrics_port=N    serve live Prometheus text on "
               "http://0.0.0.0:N/metrics (0 = ephemeral)\n"
               "  --metrics_out=PATH  write one Prometheus snapshot at "
               "exit (CI-friendly scrapeless mode)\n"
               "  --flight_dir=DIR    arm the crash flight recorder; "
               "aborts/SIGTERM/injected crashes dump\n"
               "                      flight_<worker>.json (spans + metrics "
               "+ fault counters) into DIR\n"
               "  --log_level=LEVEL   debug|info|warning|error\n"
               "\n"
               "fault-injection flags (chaos testing the halo exchange):\n"
               "  --faults=SPEC       deterministic fault schedule, e.g.\n"
               "                      'drop=0.05,corrupt=0.01,seed=7' or\n"
               "                      'crash@epoch=5:worker=1'. Clauses:\n"
               "                      drop|corrupt|dup|delay|straggle=P,\n"
               "                      crash; filters @epoch=A[-B]:layer=N:"
               "from=N:to=N:secs=F;\n"
               "                      config seed|retries|timeout_ms|"
               "backoff|restart=V\n"
               "  --recv_timeout_ms=N per-attempt Recv deadline "
               "(default 2000)\n"
               "  --max_retries=N     redelivery attempts per message "
               "(default 3)\n"
               "With faults active, train prints fault/degradation/recovery "
               "counters,\nand --stats_out gains per-epoch fault.* and "
               "ckpt.* rows.\n");
}

}  // namespace

int main(int argc, char** argv) {
  ecg::obs::InitObservabilityFromArgs(&argc, argv);
  ecg::dist::InitFaultsFromArgs(&argc, argv);
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    Usage();
    return 0;
  }
  if (cmd == "info" && argc >= 3) return CmdInfo(argv[2]);
  if (cmd == "generate" && argc >= 4) return CmdGenerate(argv[2], argv[3]);
  if (cmd == "partition" && argc >= 4) {
    return CmdPartition(argv[2],
                        static_cast<uint32_t>(std::atoi(argv[3])),
                        argc >= 5 ? argv[4] : "metis");
  }
  if (cmd == "train" && argc >= 3) {
    return CmdTrain(argv[2],
                    std::vector<std::string>(argv + 3, argv + argc));
  }
  if (cmd == "serve" && argc >= 3) {
    return CmdServe(argv[2], ParseKv(argc, argv, 3));
  }
  if (cmd == "trace-report" && argc >= 3) return CmdTraceReport(argv[2]);
  Usage();
  return 1;
}
