#ifndef ECGRAPH_BASELINES_ML_CENTERED_H_
#define ECGRAPH_BASELINES_ML_CENTERED_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/gcn.h"
#include "core/epoch_metrics.h"
#include "core/sampling.h"
#include "dist/network_model.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace ecg::baselines {

/// The ML-centered family of Fig. 2b (AliGraph-FG, AGL): every worker
/// materializes the L-hop ego networks of its target vertices during
/// preprocessing (features pulled from the parameter servers once), then
/// trains with NO worker-to-worker traffic — paying instead the ḡ^L
/// memory/compute blow-up of Table II, because boundary vertices are
/// recomputed on every worker that needs them.
///
/// `fanouts` empty = full L-hop expansion (the paper's AliGraph-FG
/// full-graph mode); non-empty = sampled ego-nets (AGL-style). AGL's disk
/// I/O and vectorization are excluded, as in the paper's own
/// re-implementation ("can be hidden by pipelining").
struct MlCenteredOptions {
  core::GcnConfig model;
  core::Fanouts fanouts;  // empty = full expansion
  uint32_t epochs = 100;
  uint32_t num_servers = 1;
  dist::NetworkModel network;
  dist::MachineModel machine;
  uint32_t patience = 0;
  uint32_t log_every = 0;
  uint64_t sample_seed = 55;
};

/// Extra observability for the Table II cost comparison.
struct MlCenteredCosts {
  /// Sum over workers of cached vertices (the ḡ^L blow-up, counted with
  /// multiplicity across workers).
  uint64_t cached_vertices = 0;
  /// One-time feature+adjacency pull during preprocessing.
  uint64_t preprocess_bytes = 0;
};

Result<core::TrainResult> TrainMlCentered(const graph::Graph& g,
                                          const graph::Partition& partition,
                                          const MlCenteredOptions& options,
                                          MlCenteredCosts* costs = nullptr);

/// Convenience wrapper with hash partitioning of the target vertices.
Result<core::TrainResult> TrainMlCentered(const graph::Graph& g,
                                          uint32_t num_workers,
                                          const MlCenteredOptions& options,
                                          MlCenteredCosts* costs = nullptr);

}  // namespace ecg::baselines

#endif  // ECGRAPH_BASELINES_ML_CENTERED_H_
