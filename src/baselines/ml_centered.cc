#include "baselines/ml_centered.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/metrics_board.h"
#include "dist/cluster.h"
#include "dist/param_server.h"
#include "tensor/csr.h"
#include "tensor/nn.h"
#include "tensor/ops.h"

namespace ecg::baselines {
namespace {

using core::internal::MetricsBoard;
using dist::ParameterServerGroup;
using dist::SimulatedCluster;
using dist::WorkerContext;
using tensor::CsrMatrix;
using tensor::Matrix;

/// One worker's materialized ego-network stack: level vertex sets
/// S_L ⊆ ... ⊆ S_0 (S_L = the worker's target vertices) and per-layer
/// aggregation matrices A_l (rows = S_l, cols = S_{l-1}).
struct EgoStack {
  std::vector<std::vector<uint32_t>> levels;  // levels[l] = S_l, global ids
  std::vector<CsrMatrix> adj;                 // adj[l-1] = A_l
  std::vector<CsrMatrix> adj_t;               // transposed, for BP
  uint64_t preprocess_bytes = 0;              // features + adjacency pulled
};

Result<EgoStack> BuildEgoStack(const graph::Graph& g,
                               const std::vector<uint32_t>& targets, int L,
                               const core::Fanouts& fanouts, Rng* rng) {
  EgoStack stack;
  stack.levels.resize(L + 1);
  stack.levels[L] = targets;

  // Expand outward: S_{l-1} = S_l ∪ (sampled) neighbours of S_l. Sampled
  // neighbour choices are memoized per vertex so a vertex aggregates the
  // same neighbours at every level (AGL's GraphFlat materializes one
  // ego-net per target).
  std::unordered_map<uint32_t, std::vector<uint32_t>> sampled_neighbors;
  auto neighbors_of = [&](uint32_t v, uint32_t fanout)
      -> const std::vector<uint32_t>& {
    auto it = sampled_neighbors.find(v);
    if (it != sampled_neighbors.end()) return it->second;
    std::vector<uint32_t> nb(g.Neighbors(v).begin(), g.Neighbors(v).end());
    if (fanout > 0 && nb.size() > fanout) {
      for (uint32_t i = 0; i < fanout; ++i) {
        const uint64_t j = i + rng->NextBelow(nb.size() - i);
        std::swap(nb[i], nb[j]);
      }
      nb.resize(fanout);
      std::sort(nb.begin(), nb.end());
    }
    return sampled_neighbors.emplace(v, std::move(nb)).first->second;
  };

  for (int l = L; l >= 1; --l) {
    const uint32_t fanout =
        fanouts.empty() ? 0 : fanouts[static_cast<size_t>(l - 1)];
    std::vector<uint32_t> next = stack.levels[l];
    for (uint32_t v : stack.levels[l]) {
      const auto& nb = neighbors_of(v, fanout);
      next.insert(next.end(), nb.begin(), nb.end());
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    stack.levels[l - 1] = std::move(next);
  }

  // Aggregation matrices with full-graph GCN normalization.
  stack.adj.resize(L);
  stack.adj_t.resize(L);
  for (int l = 1; l <= L; ++l) {
    const auto& rows = stack.levels[l];
    const auto& cols = stack.levels[l - 1];
    std::unordered_map<uint32_t, uint32_t> col_of;
    col_of.reserve(cols.size() * 2);
    for (uint32_t i = 0; i < cols.size(); ++i) col_of[cols[i]] = i;
    const uint32_t fanout =
        fanouts.empty() ? 0 : fanouts[static_cast<size_t>(l - 1)];
    std::vector<std::tuple<uint32_t, uint32_t, float>> trips;
    for (uint32_t r = 0; r < rows.size(); ++r) {
      const uint32_t v = rows[r];
      trips.emplace_back(r, col_of.at(v), g.NormWeight(v, v));
      const auto& nb = neighbors_of(v, fanout);
      // Importance rescale: the sampled neighbours stand in for the full
      // neighbourhood, so their weights are scaled by deg/|sampled| to
      // keep the aggregated mass unbiased (otherwise high-degree vertices
      // see systematically shrunken aggregates).
      const float scale =
          nb.empty() ? 1.0f
                     : static_cast<float>(g.Degree(v)) /
                           static_cast<float>(nb.size());
      for (uint32_t u : nb) {
        trips.emplace_back(r, col_of.at(u), scale * g.NormWeight(v, u));
      }
    }
    ECG_ASSIGN_OR_RETURN(stack.adj[l - 1],
                         CsrMatrix::FromTriplets(rows.size(), cols.size(),
                                                 trips));
    stack.adj_t[l - 1] = stack.adj[l - 1].Transposed();
  }

  // Preprocessing pull: features of S_0 plus adjacency lists of S_1..S_L
  // (8 bytes per edge entry: id + metadata) — the O(ḡ^L · d_0) of
  // Table II.
  stack.preprocess_bytes =
      static_cast<uint64_t>(stack.levels[0].size()) * g.feature_dim() *
      sizeof(float);
  for (int l = 1; l <= L; ++l) {
    stack.preprocess_bytes += stack.adj[l - 1].nnz() * 8ull;
  }
  return stack;
}

}  // namespace

Result<core::TrainResult> TrainMlCentered(const graph::Graph& g,
                                          const graph::Partition& partition,
                                          const MlCenteredOptions& options,
                                          MlCenteredCosts* costs) {
  const int L = options.model.num_layers;
  if (L < 1) return Status::InvalidArgument("GCN needs at least one layer");
  if (g.train_set().empty()) {
    return Status::FailedPrecondition("graph has no training split");
  }
  if (!options.fanouts.empty() &&
      options.fanouts.size() != static_cast<size_t>(L)) {
    return Status::InvalidArgument("need one fan-out per layer");
  }
  if (options.model.kind != core::GnnKind::kGcn) {
    return Status::NotImplemented("ML-centered baselines train GCN only");
  }
  const uint32_t workers = partition.num_parts;

  // Preprocessing: materialize each worker's ego stack.
  Timer preprocess_timer;
  std::vector<EgoStack> stacks(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    Rng rng(options.sample_seed + w);
    ECG_ASSIGN_OR_RETURN(
        stacks[w],
        BuildEgoStack(g, partition.members[w], L, options.fanouts, &rng));
  }
  if (costs != nullptr) {
    costs->cached_vertices = 0;
    costs->preprocess_bytes = 0;
    for (const auto& s : stacks) {
      costs->cached_vertices += s.levels[0].size();
      costs->preprocess_bytes += s.preprocess_bytes;
    }
  }

  std::vector<size_t> dims(L + 1);
  dims[0] = g.feature_dim();
  for (int l = 1; l <= L; ++l) {
    dims[l] = (l == L) ? static_cast<size_t>(g.num_classes())
                       : options.model.hidden_dim;
  }
  ParameterServerGroup ps(
      core::GcnLayerShapes(options.model, dims[0], g.num_classes()),
      options.num_servers, workers, options.model.learning_rate,
      options.model.seed);

  std::vector<uint8_t> split_of(g.num_vertices(), 0);
  for (uint32_t v : g.train_set()) split_of[v] = 1;
  for (uint32_t v : g.val_set()) split_of[v] = 2;
  for (uint32_t v : g.test_set()) split_of[v] = 3;
  const size_t global_train = g.train_set().size();

  MetricsBoard board;
  const double preprocess_cpu = preprocess_timer.ElapsedSeconds();

  SimulatedCluster cluster(workers, options.network, options.machine);
  auto worker_fn = [&](WorkerContext* ctx) -> Status {
    ThreadPool::SetSerialMode(true);
    const uint32_t me = ctx->worker_id();
    const EgoStack& stack = stacks[me];

    ThreadCpuTimer cpu;
    Matrix x0 = tensor::GatherRows(g.features(), stack.levels[0]);
    // Target-row bookkeeping (rows of S_L).
    std::vector<int32_t> labels_local(stack.levels[L].size());
    std::vector<uint32_t> rows_of[3];
    for (uint32_t r = 0; r < stack.levels[L].size(); ++r) {
      const uint32_t v = stack.levels[L][r];
      labels_local[r] = g.labels()[v];
      if (split_of[v] >= 1) rows_of[split_of[v] - 1].push_back(r);
    }
    ctx->ChargeCompute(cpu.ElapsedSeconds());

    // One-time preprocessing pull of the L-hop information.
    ctx->ChargeCommSeconds(ctx->net().TransferSeconds(
        stack.preprocess_bytes, ps.num_servers()));
    ctx->BarrierSync();
    if (me == 0) {
      board.last_clock = ctx->total_seconds();
      board.last_comm_bytes = cluster.stats().TotalBytes();
    }
    ctx->BarrierSync();

    std::vector<Matrix> h(L + 1), p(L + 1), z(L + 1), w(L), b(L);
    h[0] = std::move(x0);
    Matrix grads;
    for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
      for (int l = 1; l <= L; ++l) {
        const auto pull = ps.Pull(l - 1, &w[l - 1], &b[l - 1]);
        ctx->ChargeCommSeconds(pull.Seconds(ctx->net()));
        board.param_bytes.fetch_add(pull.bytes, std::memory_order_relaxed);
        cpu.Reset();
        stack.adj[l - 1].SpMM(h[l - 1], &p[l]);
        tensor::Gemm(p[l], w[l - 1], &z[l]);
        tensor::AddRowBias(&z[l], b[l - 1]);
        h[l] = z[l];
        if (l < L) tensor::ReluInPlace(&h[l]);
        ctx->ChargeCompute(cpu.ElapsedSeconds());
      }

      cpu.Reset();
      const double local_loss = tensor::SoftmaxCrossEntropy(
          h[L], labels_local, rows_of[0], global_train, &grads);
      uint64_t correct[3], totals[3];
      for (int s = 0; s < 3; ++s) {
        totals[s] = rows_of[s].size();
        correct[s] = static_cast<uint64_t>(
            tensor::Accuracy(h[L], labels_local, rows_of[s]) *
                static_cast<double>(rows_of[s].size()) +
            0.5);
      }
      ctx->ChargeCompute(cpu.ElapsedSeconds());
      board.AddLocal(ctx->worker_id(), local_loss, correct, totals);

      std::vector<Matrix> dw(L), db(L);
      Matrix grad = std::move(grads);
      for (int l = L; l >= 1; --l) {
        cpu.Reset();
        tensor::GemmTransposeA(p[l], grad, &dw[l - 1]);
        db[l - 1] = tensor::ColumnSums(grad);
        if (l > 1) {
          // G^{l-1}[S_{l-1}] = (A_l^T G^l) W^T ⊙ σ'(Z^{l-1}); everything
          // is local to the cached ego-net — no worker-to-worker traffic.
          Matrix t;
          stack.adj_t[l - 1].SpMM(grad, &t);
          Matrix g_prev;
          tensor::GemmTransposeB(t, w[l - 1], &g_prev);
          const Matrix mask = tensor::ReluGrad(z[l - 1]);
          tensor::HadamardInPlace(&g_prev, mask);
          grad = std::move(g_prev);
        }
        ctx->ChargeCompute(cpu.ElapsedSeconds());
      }
      const auto push = ps.Push(me, std::move(dw), std::move(db));
      ctx->ChargeCommSeconds(push.Seconds(ctx->net()));
      board.param_bytes.fetch_add(push.bytes, std::memory_order_relaxed);
      ctx->BarrierSync();

      if (me == 0) {
        board.FinalizeEpoch(epoch, ctx->total_seconds(),
                            cluster.stats().TotalBytes(), global_train,
                            options.patience);
        if (options.log_every > 0 && epoch % options.log_every == 0) {
          const core::EpochMetrics& m = board.epochs.back();
          ECG_LOG(Info) << g.name << " [ml-centered] epoch " << epoch
                        << " loss " << m.loss << " val " << m.val_acc;
        }
      }
      ctx->BarrierSync();
      if (board.stop.load(std::memory_order_relaxed)) break;
    }
    return Status::OK();
  };

  ECG_RETURN_IF_ERROR(cluster.Run(worker_fn));
  return board.ToResult(preprocess_cpu);
}

Result<core::TrainResult> TrainMlCentered(const graph::Graph& g,
                                          uint32_t num_workers,
                                          const MlCenteredOptions& options,
                                          MlCenteredCosts* costs) {
  ECG_ASSIGN_OR_RETURN(graph::Partition p,
                       graph::HashPartition(g, num_workers));
  return TrainMlCentered(g, p, options, costs);
}

}  // namespace ecg::baselines
