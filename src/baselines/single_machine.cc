#include "baselines/single_machine.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "tensor/csr.h"
#include "tensor/nn.h"
#include "tensor/ops.h"

namespace ecg::baselines {

using tensor::CsrMatrix;
using tensor::Matrix;

namespace {

Result<CsrMatrix> BuildNormalizedAdjacency(const graph::Graph& g) {
  std::vector<std::tuple<uint32_t, uint32_t, float>> triplets;
  triplets.reserve(g.num_edges() + g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    triplets.emplace_back(v, v, g.NormWeight(v, v));
    for (uint32_t u : g.Neighbors(v)) {
      triplets.emplace_back(v, u, g.NormWeight(v, u));
    }
  }
  return CsrMatrix::FromTriplets(g.num_vertices(), g.num_vertices(),
                                 triplets);
}

Result<CsrMatrix> BuildMeanAdjacency(const graph::Graph& g) {
  std::vector<std::tuple<uint32_t, uint32_t, float>> triplets;
  triplets.reserve(g.num_edges());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (uint32_t u : g.Neighbors(v)) {
      triplets.emplace_back(v, u, g.MeanWeight(v, u));
    }
  }
  return CsrMatrix::FromTriplets(g.num_vertices(), g.num_vertices(),
                                 triplets);
}

Result<CsrMatrix> BuildAdjacencyFor(const graph::Graph& g,
                                    core::GnnKind kind) {
  return kind == core::GnnKind::kSage ? BuildMeanAdjacency(g)
                                      : BuildNormalizedAdjacency(g);
}

}  // namespace

Result<GcnGradients> ComputeFullBatchGradients(
    const graph::Graph& g, const std::vector<Matrix>& w,
    const std::vector<Matrix>& b, core::GnnKind kind) {
  const int L = static_cast<int>(w.size());
  if (L < 1 || b.size() != w.size()) {
    return Status::InvalidArgument("need matching weight/bias stacks");
  }
  const bool sage = kind == core::GnnKind::kSage;
  ECG_ASSIGN_OR_RETURN(CsrMatrix adj, BuildAdjacencyFor(g, kind));
  CsrMatrix adj_t;
  if (sage) adj_t = adj.Transposed();

  std::vector<Matrix> h(L + 1), p(L + 1), z(L + 1);
  h[0] = g.features();
  for (int l = 1; l <= L; ++l) {
    if (sage) {
      Matrix agg;
      adj.SpMM(h[l - 1], &agg);
      p[l] = tensor::ConcatCols(h[l - 1], agg);
    } else {
      adj.SpMM(h[l - 1], &p[l]);
    }
    tensor::Gemm(p[l], w[l - 1], &z[l]);
    tensor::AddRowBias(&z[l], b[l - 1]);
    h[l] = z[l];
    if (l < L) tensor::ReluInPlace(&h[l]);
  }

  GcnGradients out;
  out.dw.resize(L);
  out.db.resize(L);
  Matrix grad;
  out.loss = tensor::SoftmaxCrossEntropy(h[L], g.labels(), g.train_set(),
                                         g.train_set().size(), &grad) /
             static_cast<double>(g.train_set().size());
  for (int l = L; l >= 1; --l) {
    tensor::GemmTransposeA(p[l], grad, &out.dw[l - 1]);
    out.db[l - 1] = tensor::ColumnSums(grad);
    if (l > 1) {
      const size_t din = h[l - 1].cols();
      Matrix g_prev;
      if (sage) {
        Matrix t_full;
        tensor::GemmTransposeB(grad, w[l - 1], &t_full);
        Matrix t_agg = tensor::SliceCols(t_full, din, 2 * din);
        adj_t.SpMM(t_agg, &g_prev);
        Matrix t_self = tensor::SliceCols(t_full, 0, din);
        tensor::AddInPlace(&g_prev, t_self);
      } else {
        Matrix t;
        adj.SpMM(grad, &t);
        tensor::GemmTransposeB(t, w[l - 1], &g_prev);
      }
      const Matrix mask = tensor::ReluGrad(z[l - 1]);
      tensor::HadamardInPlace(&g_prev, mask);
      grad = std::move(g_prev);
    }
  }
  return out;
}

Result<core::TrainResult> TrainSingleMachine(
    const graph::Graph& g, const SingleMachineOptions& options) {
  const int L = options.model.num_layers;
  if (L < 1) return Status::InvalidArgument("GCN needs at least one layer");
  if (g.train_set().empty()) {
    return Status::FailedPrecondition("graph has no training split");
  }
  // The single machine is modelled with the same per-core budget as each
  // simulated worker machine (thread-CPU time, serial kernels).
  ThreadPool::SetSerialMode(true);

  // Aggregation matrix over the full graph (Â for GCN, row-mean for SAGE).
  const bool sage = options.model.kind == core::GnnKind::kSage;
  ECG_ASSIGN_OR_RETURN(CsrMatrix adj, BuildAdjacencyFor(g, options.model.kind));
  CsrMatrix adj_t;
  if (sage) adj_t = adj.Transposed();

  std::vector<size_t> dims(L + 1);
  dims[0] = g.feature_dim();
  for (int l = 1; l <= L; ++l) {
    dims[l] = (l == L) ? static_cast<size_t>(g.num_classes())
                       : options.model.hidden_dim;
  }

  // Parameters + Adam live locally; identical init to the server group.
  dist::ParameterServerGroup ps(
      core::GcnLayerShapes(options.model, dims[0], g.num_classes()),
      /*num_servers=*/1, /*num_workers=*/1, options.model.learning_rate,
      options.model.seed);

  core::TrainResult result;
  double best_val = -1.0;
  uint32_t since_best = 0;

  std::vector<Matrix> h(L + 1), p(L + 1), z(L + 1), w(L), b(L);
  h[0] = g.features();
  Matrix grads;
  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    ThreadCpuTimer cpu;
    for (int l = 1; l <= L; ++l) {
      ps.Pull(l - 1, &w[l - 1], &b[l - 1]);
      if (sage) {
        Matrix agg;
        adj.SpMM(h[l - 1], &agg);
        p[l] = tensor::ConcatCols(h[l - 1], agg);
      } else {
        adj.SpMM(h[l - 1], &p[l]);
      }
      tensor::Gemm(p[l], w[l - 1], &z[l]);
      tensor::AddRowBias(&z[l], b[l - 1]);
      h[l] = z[l];
      if (l < L) tensor::ReluInPlace(&h[l]);
    }

    core::EpochMetrics m;
    const double loss_sum = tensor::SoftmaxCrossEntropy(
        h[L], g.labels(), g.train_set(), g.train_set().size(), &grads);
    m.loss = loss_sum / static_cast<double>(g.train_set().size());
    m.train_acc = tensor::Accuracy(h[L], g.labels(), g.train_set());
    m.val_acc = tensor::Accuracy(h[L], g.labels(), g.val_set());
    m.test_acc = tensor::Accuracy(h[L], g.labels(), g.test_set());

    std::vector<Matrix> dw(L), db(L);
    Matrix grad = std::move(grads);
    for (int l = L; l >= 1; --l) {
      tensor::GemmTransposeA(p[l], grad, &dw[l - 1]);
      db[l - 1] = tensor::ColumnSums(grad);
      if (l > 1) {
        const size_t din = h[l - 1].cols();
        Matrix g_prev;
        if (sage) {
          Matrix t_full;
          tensor::GemmTransposeB(grad, w[l - 1], &t_full);
          Matrix t_agg = tensor::SliceCols(t_full, din, 2 * din);
          adj_t.SpMM(t_agg, &g_prev);
          Matrix t_self = tensor::SliceCols(t_full, 0, din);
          tensor::AddInPlace(&g_prev, t_self);
        } else {
          Matrix t;
          adj.SpMM(grad, &t);
          tensor::GemmTransposeB(t, w[l - 1], &g_prev);
        }
        const Matrix mask = tensor::ReluGrad(z[l - 1]);
        tensor::HadamardInPlace(&g_prev, mask);
        grad = std::move(g_prev);
      }
    }
    ps.Push(0, std::move(dw), std::move(db));

    m.sim_seconds = options.machine.ComputeSeconds(cpu.ElapsedSeconds());
    result.epochs.push_back(m);
    if (options.log_every > 0 && epoch % options.log_every == 0) {
      ECG_LOG(Info) << g.name << " [single] epoch " << epoch << " loss "
                    << m.loss << " val " << m.val_acc << " test "
                    << m.test_acc;
    }

    if (m.val_acc > best_val) {
      best_val = m.val_acc;
      result.best_val_acc = m.val_acc;
      result.test_acc_at_best_val = m.test_acc;
      result.best_epoch = epoch;
      since_best = 0;
    } else if (options.patience > 0 && ++since_best >= options.patience) {
      break;
    }
  }

  for (const auto& e : result.epochs) result.total_sim_seconds += e.sim_seconds;
  if (!result.epochs.empty()) {
    result.avg_epoch_seconds =
        result.total_sim_seconds / static_cast<double>(result.epochs.size());
  }
  ThreadPool::SetSerialMode(false);
  return result;
}

}  // namespace ecg::baselines
