#ifndef ECGRAPH_BASELINES_SINGLE_MACHINE_H_
#define ECGRAPH_BASELINES_SINGLE_MACHINE_H_

#include "common/status.h"
#include "core/gcn.h"
#include "dist/network_model.h"
#include "core/epoch_metrics.h"
#include "graph/graph.h"

namespace ecg::baselines {

/// Knobs for the standalone full-batch GCN trainer (the DGL / PyG row of
/// Tables IV-V): same kernels, one address space, zero communication.
/// The distributed trainer with compression off must match this trainer's
/// outputs bit-for-bit (tested in tests/trainer_equivalence_test.cc).
struct SingleMachineOptions {
  core::GcnConfig model;
  uint32_t epochs = 100;
  uint32_t patience = 0;
  uint32_t log_every = 0;
  /// CPU model of the machine (same model as the cluster workers use, so
  /// the DGL-vs-distributed epoch-time ratios are apples to apples).
  dist::MachineModel machine;
};

/// Trains on the whole graph in-process and reports the same metric
/// curves as the distributed trainer (sim_seconds = thread-CPU compute,
/// comm_bytes = 0).
Result<core::TrainResult> TrainSingleMachine(const graph::Graph& g,
                                             const SingleMachineOptions& options);

/// One full-batch forward+backward pass with explicitly supplied
/// parameters. Exposed so tests can check the analytic GCN gradients
/// (Eqs. 4-6) against numerical differentiation of the loss.
struct GcnGradients {
  double loss = 0.0;  // mean cross-entropy over the training split
  std::vector<tensor::Matrix> dw;
  std::vector<tensor::Matrix> db;
};
Result<GcnGradients> ComputeFullBatchGradients(
    const graph::Graph& g, const std::vector<tensor::Matrix>& w,
    const std::vector<tensor::Matrix>& b,
    core::GnnKind kind = core::GnnKind::kGcn);

}  // namespace ecg::baselines

#endif  // ECGRAPH_BASELINES_SINGLE_MACHINE_H_
