#ifndef ECGRAPH_DIST_NETWORK_MODEL_H_
#define ECGRAPH_DIST_NETWORK_MODEL_H_

#include <algorithm>
#include <cstdint>

namespace ecg::dist {

/// Analytic model of one cluster machine's CPU. Worker compute is measured
/// on a single core (thread-CPU time) and then scaled by the parallel
/// speedup a real multi-core worker machine would get from its intra-node
/// BLAS/OpenMP parallelism. The paper's cluster-1 machines have 4 cores
/// (E3-1226 v3), cluster-2 has 32 (Xeon Silver 4110).
struct MachineModel {
  int cores = 4;
  /// Fraction of ideal scaling achieved beyond the first core.
  double parallel_efficiency = 0.8;

  double Speedup() const {
    return 1.0 + (cores - 1) * parallel_efficiency;
  }
  /// Converts measured single-core seconds into modelled machine seconds.
  double ComputeSeconds(double single_core_seconds) const {
    return single_core_seconds / Speedup();
  }
};

/// Analytic cost model of the cluster interconnect. The simulated workers
/// run in one address space, so wire time is *modelled*, not measured:
/// every exchange phase converts its exact byte/message counts into
/// seconds with this model. Defaults match the paper's testbed (Gigabit
/// Ethernet, gRPC round-trip overhead on commodity NICs).
struct NetworkModel {
  /// Effective point-to-point bandwidth. 1 GbE ~ 125 MB/s with ~94%
  /// achievable goodput.
  double bandwidth_bytes_per_sec = 117.5e6;
  /// Per-message fixed overhead (serialization + RPC round trip share).
  double latency_sec = 250e-6;

  /// Time for one worker to push `bytes` in `messages` discrete sends.
  double TransferSeconds(uint64_t bytes, uint64_t messages) const {
    return static_cast<double>(messages) * latency_sec +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }

  /// Time of a full-duplex phase where a worker concurrently sends and
  /// receives: the slower direction dominates.
  double PhaseSeconds(uint64_t sent_bytes, uint64_t sent_msgs,
                      uint64_t recv_bytes, uint64_t recv_msgs) const {
    return std::max(TransferSeconds(sent_bytes, sent_msgs),
                    TransferSeconds(recv_bytes, recv_msgs));
  }
};

}  // namespace ecg::dist

#endif  // ECGRAPH_DIST_NETWORK_MODEL_H_
