#include "dist/cluster.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "common/stats.h"
#include "common/trace.h"

namespace ecg::dist {

void WorkerContext::Send(uint32_t to, uint64_t tag,
                         std::vector<uint8_t> payload) {
  if (obs::StatsEnabled()) {
    // Tags carry (epoch, layer) by construction (MakeTag), so the
    // transport can attribute every wire byte without the exchangers
    // passing coordinates down.
    obs::RecordStat("comm.sent_bytes", static_cast<double>(payload.size()),
                    MessageHub::TagEpoch(tag), MessageHub::TagLayer(tag),
                    static_cast<int32_t>(to));
  }
  phase_sent_bytes_ += payload.size();
  ++phase_sent_msgs_;
  hub_->Send(worker_id_, to, tag, std::move(payload));
}

std::vector<uint8_t> WorkerContext::Recv(uint32_t from, uint64_t tag) {
  std::vector<uint8_t> payload = hub_->Recv(worker_id_, from, tag);
  phase_recv_bytes_ += payload.size();
  ++phase_recv_msgs_;
  return payload;
}

Status WorkerContext::TryRecv(uint32_t from, uint64_t tag,
                              std::vector<uint8_t>* out) {
  RecvOutcome outcome;
  Status status = hub_->TryRecv(worker_id_, from, tag, out, &outcome);
  phase_penalty_seconds_ += outcome.penalty_seconds;
  if (status.ok()) {
    phase_recv_bytes_ += out->size();
    ++phase_recv_msgs_;
  }
  return status;
}

Status WorkerContext::TryRecvAny(const std::vector<uint32_t>& froms,
                                 uint64_t tag, uint32_t* from_out,
                                 std::vector<uint8_t>* out,
                                 double* penalty_seconds) {
  RecvOutcome outcome;
  Status status =
      hub_->TryRecvAny(worker_id_, froms, tag, from_out, out, &outcome);
  if (penalty_seconds != nullptr) *penalty_seconds = outcome.penalty_seconds;
  if (status.ok()) {
    phase_recv_bytes_ += out->size();
    ++phase_recv_msgs_;
  }
  return status;
}

void WorkerContext::EndCommPhase(const char* phase) {
  EndCommPhaseOverlapped(phase, 0.0);
}

double WorkerContext::EndCommPhaseOverlapped(const char* phase,
                                             double overlap_credit_seconds,
                                             double* phase_comm_seconds) {
  const double seconds =
      net_.PhaseSeconds(phase_sent_bytes_, phase_sent_msgs_,
                        phase_recv_bytes_, phase_recv_msgs_) +
      phase_penalty_seconds_;
  if (phase_comm_seconds != nullptr) *phase_comm_seconds = seconds;
  const double hidden = std::min(seconds, overlap_credit_seconds);
  const double charged = seconds - hidden;
  if (obs::TraceEnabled() && hidden > 0.0) {
    // The hidden wire time ran concurrently with already-charged compute:
    // draw it under the compute span it hid behind.
    obs::Tracer::Global().RecordSimSpan("overlap_hidden", worker_id_, -1,
                                        std::max(0.0, total_seconds() - hidden),
                                        hidden);
  }
  if (obs::TraceEnabled() && charged > 0.0) {
    obs::Tracer::Global().RecordSimSpan(phase, worker_id_, -1,
                                        total_seconds(), charged);
  }
  comm_seconds_ += charged;
  phase_sent_bytes_ = phase_sent_msgs_ = 0;
  phase_recv_bytes_ = phase_recv_msgs_ = 0;
  phase_penalty_seconds_ = 0.0;
  return hidden;
}

void WorkerContext::BarrierSync() { cluster_->BarrierSyncImpl(this); }

SimulatedCluster::SimulatedCluster(uint32_t num_workers, NetworkModel net,
                                   MachineModel machine,
                                   std::vector<double> worker_compute_scale)
    : num_workers_(num_workers), net_(net), machine_(machine),
      worker_compute_scale_(std::move(worker_compute_scale)),
      hub_(num_workers), barrier_(num_workers), clocks_(num_workers, 0.0) {}

void SimulatedCluster::BarrierSyncImpl(WorkerContext* ctx) {
  clocks_[ctx->worker_id_] = ctx->total_seconds();
  barrier_.Wait();
  const double mx = *std::max_element(clocks_.begin(), clocks_.end());
  // Waiting for the slowest peer is idle time, booked as communication
  // stall so the clocks stay aligned (lock-step BSP semantics).
  const double stall = mx - ctx->total_seconds();
  if (obs::TraceEnabled() && stall > 0.0) {
    obs::Tracer::Global().RecordSimSpan("barrier_stall", ctx->worker_id_, -1,
                                        ctx->total_seconds(), stall);
  }
  ctx->comm_seconds_ += stall;
  barrier_.Wait();
}

Status SimulatedCluster::Run(
    const std::function<Status(WorkerContext*)>& worker_fn) {
  std::vector<WorkerContext> contexts(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    contexts[w].worker_id_ = w;
    contexts[w].num_workers_ = num_workers_;
    contexts[w].net_ = net_;
    contexts[w].machine_ = machine_;
    contexts[w].compute_scale_ = w < worker_compute_scale_.size()
                                     ? worker_compute_scale_[w]
                                     : 1.0;
    contexts[w].hub_ = &hub_;
    contexts[w].cluster_ = this;
  }

  Status first_error;
  std::mutex error_mu;
  std::vector<std::thread> threads;
  threads.reserve(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    threads.emplace_back([&, w] {
      // Names this thread's real-time trace track "worker-N" and routes a
      // flight-recorder dump from this thread to flight_<N>.json.
      obs::SetCurrentThreadWorker(w);
      Status s = worker_fn(&contexts[w]);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = std::move(s);
      }
    });
  }
  for (auto& t : threads) t.join();

  makespan_seconds_ = 0.0;
  total_compute_seconds_ = 0.0;
  total_comm_seconds_ = 0.0;
  for (const auto& ctx : contexts) {
    makespan_seconds_ = std::max(makespan_seconds_, ctx.total_seconds());
    total_compute_seconds_ += ctx.compute_seconds();
    total_comm_seconds_ += ctx.comm_seconds();
  }
  return first_error;
}

}  // namespace ecg::dist
