#ifndef ECGRAPH_DIST_PARAM_SERVER_H_
#define ECGRAPH_DIST_PARAM_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "dist/network_model.h"
#include "tensor/matrix.h"
#include "tensor/nn.h"

namespace ecg::dist {

/// The PM side of the paper's architecture: `num_servers` logical servers
/// hold a range-partitioned copy of every layer's weights W^l and biases
/// b^l (the paper's built-in range-based partition divides each layer's W
/// and B evenly). Workers `Pull` parameters per layer and `Push` their
/// local gradients; when all workers of an epoch have pushed, the global
/// gradient (summed in worker-id order for determinism) is applied with
/// Adam.
///
/// The object is shared by the worker threads of one SimulatedCluster;
/// traffic is charged to each worker through the returned
/// ParamTrafficSample (callers add it to their WorkerContext clocks).
class ParameterServerGroup {
 public:
  struct LayerShape {
    size_t in_dim;
    size_t out_dim;
  };

  /// Creates servers for the given layer shapes; weights Xavier-initialized
  /// deterministically from `seed`.
  ParameterServerGroup(const std::vector<LayerShape>& shapes,
                       uint32_t num_servers, uint32_t num_workers, float lr,
                       uint64_t seed);

  size_t num_layers() const { return weights_.size(); }
  uint32_t num_servers() const { return num_servers_; }
  float learning_rate() const { return lr_; }

  /// Bytes a worker moves per operation, to be charged by the caller.
  struct ParamTrafficSample {
    uint64_t bytes = 0;
    uint64_t messages = 0;
    double Seconds(const NetworkModel& net) const {
      return net.TransferSeconds(bytes, messages);
    }
  };

  /// Copies the layer's current parameters into *w / *b and reports the
  /// pull traffic (messages = number of servers holding slices).
  ParamTrafficSample Pull(size_t layer, tensor::Matrix* w,
                          tensor::Matrix* b) const;

  /// Deposits a worker's gradient contribution for all layers. When the
  /// last worker of the epoch arrives, the summed gradient is applied.
  /// dw[l] / db[l] must match the layer shapes.
  ParamTrafficSample Push(uint32_t worker, std::vector<tensor::Matrix> dw,
                          std::vector<tensor::Matrix> db);

  /// Read-only access for tests (current global parameters).
  const tensor::Matrix& weight(size_t layer) const { return weights_[layer]; }
  const tensor::Matrix& bias(size_t layer) const { return biases_[layer]; }

  /// Serializes every layer's weights, biases, and Adam moments into an
  /// epoch checkpoint. Called between epochs (no pushes pending).
  void SaveTo(ByteWriter* w) const;

  /// Restores the state written by SaveTo and clears any pending push
  /// bookkeeping, so the restored epoch re-runs from a clean barrier.
  Status LoadFrom(ByteReader* r);

  /// Monotonic parameter version: 0 at construction, bumped by every
  /// optimizer apply and every LoadFrom. Readers (e.g. the serve tier's
  /// embedding cache) key their snapshots on it.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Registers a callback fired after each parameter publish (optimizer
  /// apply or checkpoint restore) with the new version. Invoked OUTSIDE
  /// the group mutex, so the callback may call Pull()/version() freely —
  /// but it runs on whichever worker thread triggered the publish, so it
  /// must be fast and thread-safe. One callback slot; pass nullptr to
  /// clear. Not synchronized against concurrent Push: install before
  /// training starts.
  void SetPublishCallback(std::function<void(uint64_t version)> cb);

 private:
  void ApplyLocked();
  /// Bumps version_ and fires the publish callback. Call without mu_ held.
  void NotifyPublish();

  const uint32_t num_servers_;
  const uint32_t num_workers_;
  const float lr_;

  mutable std::mutex mu_;
  std::vector<tensor::Matrix> weights_;
  std::vector<tensor::Matrix> biases_;
  std::vector<tensor::AdamState> w_opt_;
  std::vector<tensor::AdamState> b_opt_;
  // Per-worker pending contributions for the current epoch.
  std::vector<bool> pushed_;
  std::vector<std::vector<tensor::Matrix>> pending_dw_;
  std::vector<std::vector<tensor::Matrix>> pending_db_;
  uint32_t pushes_this_epoch_ = 0;

  std::atomic<uint64_t> version_{0};
  std::function<void(uint64_t)> publish_cb_;
};

}  // namespace ecg::dist

#endif  // ECGRAPH_DIST_PARAM_SERVER_H_
