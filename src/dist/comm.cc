#include "dist/comm.h"

#include "common/logging.h"

namespace ecg::dist {

void MessageHub::Send(uint32_t from, uint32_t to, uint64_t tag,
                      std::vector<uint8_t> payload) {
  ECG_CHECK(from < parties_ && to < parties_) << "bad worker id in Send";
  stats_.RecordSend(from, to, payload.size());
  Mailbox& box = boxes_[to];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    const auto key = std::make_pair(from, tag);
    ECG_CHECK(box.messages.find(key) == box.messages.end())
        << "duplicate message from " << from << " tag " << tag;
    box.messages.emplace(key, std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<uint8_t> MessageHub::Recv(uint32_t to, uint32_t from,
                                      uint64_t tag) {
  ECG_CHECK(from < parties_ && to < parties_) << "bad worker id in Recv";
  Mailbox& box = boxes_[to];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(from, tag);
  box.cv.wait(lock, [&] { return box.messages.count(key) > 0; });
  auto it = box.messages.find(key);
  std::vector<uint8_t> payload = std::move(it->second);
  box.messages.erase(it);
  return payload;
}

}  // namespace ecg::dist
