#include "dist/comm.h"

#include <chrono>
#include <cstring>
#include <sstream>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/trace.h"

namespace ecg::dist {
namespace {

/// Flow-event id shared by every trace event of one logical message:
/// splitmix64 over (tag, from, to). Retransmit attempts keep the same id —
/// they are steps of the same flow, which is exactly how a retry storm
/// should render in the viewer.
uint64_t FlowId(uint32_t from, uint32_t to, uint64_t tag) {
  uint64_t x = tag + 0x9E3779B97F4A7C15ull * (1 + from) +
               0xBF58476D1CE4E5B9ull * (1 + to);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

int32_t FlowLayer(uint64_t tag) {
  return static_cast<int32_t>(MessageHub::TagLayer(tag));
}

/// Deterministic bit corruption for the kCorrupt fault: flips one bit in
/// the payload region (past the header, so the CRC — not the field checks —
/// is what must catch it) at a position derived from the tag and attempt.
void CorruptFrame(std::vector<uint8_t>* frame, uint64_t tag,
                  uint32_t attempt) {
  if (frame->size() <= MessageHub::kEnvelopeBytes) {
    // Header-only frame (empty payload): flip a length byte instead.
    (*frame)[frame->size() - 5] ^= 0x10;
    return;
  }
  const size_t span = frame->size() - MessageHub::kEnvelopeBytes;
  const size_t pos =
      MessageHub::kEnvelopeBytes + ((tag ^ (attempt * 0x9E3779B9u)) % span);
  (*frame)[pos] ^= 1u << (attempt % 8);
}

}  // namespace

std::vector<uint8_t> MessageHub::FrameEnvelope(
    uint64_t tag, uint32_t attempt, const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kEnvelopeBytes + payload.size());
  ByteWriter w(&frame);
  w.PutU32(kEnvelopeMagic);
  w.PutU8(kEnvelopeVersion);
  w.PutU8(0);  // flags (reserved)
  w.PutU32(attempt);
  w.PutU64(tag);
  w.PutU64(payload.size());
  w.PutU32(Crc32c(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

Status MessageHub::ParseEnvelope(const std::vector<uint8_t>& frame,
                                 uint64_t tag,
                                 std::vector<uint8_t>* payload) {
  if (frame.size() < kEnvelopeBytes) {
    return Status::InvalidArgument(
        "envelope truncated: " + std::to_string(frame.size()) + " bytes < " +
        std::to_string(kEnvelopeBytes) + "-byte header");
  }
  ByteReader r(frame);
  uint32_t magic = 0, attempt = 0, crc = 0;
  uint8_t version = 0, flags = 0;
  uint64_t tag_echo = 0, length = 0;
  ECG_RETURN_IF_ERROR(r.GetU32(&magic));
  ECG_RETURN_IF_ERROR(r.GetU8(&version));
  ECG_RETURN_IF_ERROR(r.GetU8(&flags));
  ECG_RETURN_IF_ERROR(r.GetU32(&attempt));
  ECG_RETURN_IF_ERROR(r.GetU64(&tag_echo));
  ECG_RETURN_IF_ERROR(r.GetU64(&length));
  ECG_RETURN_IF_ERROR(r.GetU32(&crc));
  if (magic != kEnvelopeMagic) {
    std::ostringstream os;
    os << "envelope magic mismatch: got 0x" << std::hex << magic
       << " want 0x" << kEnvelopeMagic;
    return Status::InvalidArgument(os.str());
  }
  if (version != kEnvelopeVersion) {
    return Status::InvalidArgument(
        "envelope version mismatch: got " + std::to_string(version) +
        " want " + std::to_string(kEnvelopeVersion));
  }
  if (tag_echo != tag) {
    return Status::InvalidArgument(
        "envelope tag echo mismatch: got " + std::to_string(tag_echo) +
        " want " + std::to_string(tag));
  }
  if (length != frame.size() - kEnvelopeBytes) {
    return Status::InvalidArgument(
        "envelope length mismatch: header says " + std::to_string(length) +
        " bytes, frame carries " +
        std::to_string(frame.size() - kEnvelopeBytes));
  }
  const uint8_t* body = frame.data() + kEnvelopeBytes;
  const uint32_t actual_crc = Crc32c(body, length);
  if (actual_crc != crc) {
    std::ostringstream os;
    os << "envelope CRC mismatch: got 0x" << std::hex << actual_crc
       << " want 0x" << crc << " over " << std::dec << length << " bytes";
    return Status::InvalidArgument(os.str());
  }
  payload->assign(body, body + length);
  return Status::OK();
}

void MessageHub::DeliverAttempt(Mailbox& box, uint32_t from, uint32_t to,
                                uint64_t tag, uint32_t attempt,
                                const std::vector<uint8_t>& frame) {
  const FaultDecision decision = injector_->OnAttempt(from, to, tag, attempt);
  FaultCounters& counters = injector_->counters();
  const uint32_t epoch = TagEpoch(tag);
  const int32_t layer = static_cast<int32_t>(TagLayer(tag));
  if (decision.drop) {
    counters.dropped.fetch_add(1, std::memory_order_relaxed);
    obs::RecordStat("fault.dropped", 1.0, epoch, layer,
                    static_cast<int32_t>(from));
    return;  // the attempt vanishes; the receiver times out or NACKs
  }
  const auto key = std::make_pair(from, tag);
  Delivery delivery;
  delivery.bytes = frame;
  delivery.delay_seconds = decision.delay_seconds;
  if (decision.corrupt) {
    counters.corrupted.fetch_add(1, std::memory_order_relaxed);
    obs::RecordStat("fault.corrupted", 1.0, epoch, layer,
                    static_cast<int32_t>(from));
    // Re-frame with the right attempt echo, then flip bits: the receiver
    // must detect this via the CRC, not via a stale attempt field.
    CorruptFrame(&delivery.bytes, tag, attempt);
  }
  if (decision.delay_seconds > 0.0) {
    counters.delayed.fetch_add(1, std::memory_order_relaxed);
    obs::RecordStat("fault.delayed", 1.0, epoch, layer,
                    static_cast<int32_t>(from));
  }
  if (decision.duplicate) {
    counters.duplicated.fetch_add(1, std::memory_order_relaxed);
    obs::RecordStat("fault.duplicated", 1.0, epoch, layer,
                    static_cast<int32_t>(from));
    box.messages[key].push_back(delivery);
  }
  box.messages[key].push_back(std::move(delivery));
}

void MessageHub::Send(uint32_t from, uint32_t to, uint64_t tag,
                      std::vector<uint8_t> payload) {
  ECG_CHECK(from < parties_ && to < parties_)
      << "Send worker id out of range: from=" << from << " to=" << to
      << " parties=" << parties_;
  stats_.RecordSend(from, to, payload.size());
  if (obs::TraceEnabled(1)) {
    obs::Tracer::Global().RecordFlow(obs::FlowPhase::kStart, "msg", from, to,
                                     FlowLayer(tag), FlowId(from, to, tag));
  }
  if (obs::MetricsEnabled()) {
    std::atomic<obs::Counter*>& slot =
        sent_counters_[static_cast<size_t>(from) * parties_ + to];
    obs::Counter* counter = slot.load(std::memory_order_acquire);
    if (counter == nullptr) {
      // Racing acquirers get the same cell back from the registry, so the
      // last store wins harmlessly.
      counter = obs::MetricsRegistry::Global().GetCounter(
          "ecg_hub_sent_bytes_total",
          "Payload bytes entering the hub, by sender and peer.",
          {{"worker", std::to_string(from)}, {"peer", std::to_string(to)}});
      slot.store(counter, std::memory_order_release);
    }
    counter->Inc(static_cast<double>(payload.size()));
  }
  Mailbox& box = boxes_[to];
  if (injector_ == nullptr) {
    // Fault-free fast path: raw payload, no framing, no copies retained.
    std::lock_guard<std::mutex> lock(box.mu);
    const auto key = std::make_pair(from, tag);
    ECG_CHECK(box.messages.find(key) == box.messages.end())
        << "duplicate message from " << from << " tag " << tag;
    box.messages[key].push_back(Delivery{std::move(payload), 0.0});
    box.cv.notify_all();
    return;
  }
  std::vector<uint8_t> frame = FrameEnvelope(tag, /*attempt=*/0, payload);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    const auto key = std::make_pair(from, tag);
    ECG_CHECK(box.retained.find(key) == box.retained.end())
        << "duplicate message from " << from << " tag " << tag;
    Retained& slot = box.retained[key];
    slot.frame = frame;
    slot.last_attempt = 0;
    DeliverAttempt(box, from, to, tag, /*attempt=*/0, frame);
  }
  box.cv.notify_all();
}

std::vector<uint8_t> MessageHub::Recv(uint32_t to, uint32_t from,
                                      uint64_t tag) {
  ECG_CHECK(from < parties_ && to < parties_)
      << "Recv worker id out of range: to=" << to << " from=" << from
      << " parties=" << parties_;
  if (injector_ != nullptr) {
    // The payload is framed when an injector is attached, so even traffic
    // the fault model exempts (preprocessing) must go through envelope
    // parsing. TryRecv handles both.
    std::vector<uint8_t> payload;
    Status status = TryRecv(to, from, tag, &payload);
    ECG_CHECK(status.ok()) << "blocking Recv on fault-injected hub failed: "
                           << status.ToString() << " (use TryRecv)";
    return payload;
  }
  Mailbox& box = boxes_[to];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(from, tag);
#ifndef NDEBUG
  // Debug-build stall diagnostic: if the message does not arrive within the
  // threshold, dump every pending (from, epoch, layer, kind) in the mailbox
  // once — almost always a tag-mismatch bug — then keep waiting.
  constexpr auto kStallThreshold = std::chrono::seconds(10);
  if (!box.cv.wait_for(lock, kStallThreshold,
                       [&] { return box.messages.count(key) > 0; })) {
    std::ostringstream os;
    os << "Recv stalled >10s: worker " << to << " waiting on from=" << from
       << " epoch=" << TagEpoch(tag) << " layer=" << TagLayer(tag)
       << " kind=" << TagKind(tag) << "; pending mailbox tags:";
    if (box.messages.empty()) os << " (none)";
    for (const auto& [k, queue] : box.messages) {
      os << " [from=" << k.first << " epoch=" << TagEpoch(k.second)
         << " layer=" << TagLayer(k.second) << " kind=" << TagKind(k.second)
         << " n=" << queue.size() << "]";
    }
    ECG_LOG(Warning) << os.str();
  }
#endif
  box.cv.wait(lock, [&] { return box.messages.count(key) > 0; });
  auto it = box.messages.find(key);
  std::vector<uint8_t> payload = std::move(it->second.front().bytes);
  box.messages.erase(it);
  if (obs::TraceEnabled(1)) {
    obs::Tracer::Global().RecordFlow(obs::FlowPhase::kEnd, "msg", to, from,
                                     FlowLayer(tag), FlowId(from, to, tag));
  }
  return payload;
}

Status MessageHub::TryRecv(uint32_t to, uint32_t from, uint64_t tag,
                           std::vector<uint8_t>* out, RecvOutcome* outcome) {
  ECG_CHECK(from < parties_ && to < parties_)
      << "TryRecv worker id out of range: to=" << to << " from=" << from
      << " parties=" << parties_;
  RecvOutcome local;
  RecvOutcome& oc = outcome != nullptr ? *outcome : local;
  oc = RecvOutcome{};
  if (injector_ == nullptr) {
    *out = Recv(to, from, tag);
    return Status::OK();
  }

  Mailbox& box = boxes_[to];
  std::unique_lock<std::mutex> lock(box.mu);
  return ResolveFramedLocked(box, lock, to, from, tag, out, oc);
}

Status MessageHub::ResolveFramedLocked(Mailbox& box,
                                       std::unique_lock<std::mutex>& lock,
                                       uint32_t to, uint32_t from,
                                       uint64_t tag,
                                       std::vector<uint8_t>* out,
                                       RecvOutcome& oc) {
  FaultCounters& counters = injector_->counters();
  const uint32_t max_retries = injector_->max_retries();
  const auto attempt_timeout =
      std::chrono::milliseconds(injector_->recv_timeout_ms());
  // Overall real-time budget: a sender that never calls Send at all (a hung
  // peer, not a faulty link) must not hang us forever either.
  const auto deadline = std::chrono::steady_clock::now() +
                        attempt_timeout * (max_retries + 2);

  const auto key = std::make_pair(from, tag);
  uint32_t attempt = 0;
  oc.attempts = 0;
  while (true) {
    // Wait until either a delivery is queued or the sender's retained slot
    // proves attempt `attempt` was already applied (i.e. it was dropped:
    // applied but nothing queued).
    const bool signalled = box.cv.wait_until(lock, deadline, [&] {
      if (box.messages.count(key) > 0) return true;
      auto it = box.retained.find(key);
      return it != box.retained.end() && it->second.last_attempt >= attempt;
    });
    if (!signalled) {
      // Nobody ever sent: distinct from fault-schedule loss.
      return Status::IoError(
          "TryRecv deadline: no sender for to=" + std::to_string(to) +
          " from=" + std::to_string(from) +
          " epoch=" + std::to_string(TagEpoch(tag)) +
          " layer=" + std::to_string(TagLayer(tag)) +
          " kind=" + std::to_string(TagKind(tag)));
    }

    auto qit = box.messages.find(key);
    bool attempt_failed = false;
    if (qit != box.messages.end()) {
      Delivery delivery = qit->second.pop_front();
      if (qit->second.empty()) box.messages.erase(qit);
      oc.attempts += 1;
      oc.penalty_seconds += delivery.delay_seconds;
      Status parsed = ParseEnvelope(delivery.bytes, tag, out);
      if (parsed.ok()) {
        // Success: drain duplicate deliveries of the same message and drop
        // the retransmit buffer.
        box.messages.erase(key);
        box.retained.erase(key);
        if (obs::TraceEnabled(1)) {
          obs::Tracer::Global().RecordFlow(obs::FlowPhase::kEnd, "msg", to,
                                           from, FlowLayer(tag),
                                           FlowId(from, to, tag));
        }
        return Status::OK();
      }
      ECG_LOG(Debug) << "TryRecv attempt " << attempt
                     << " failed validation: " << parsed.ToString();
      attempt_failed = true;
    } else {
      // Retained proves the attempt was applied but nothing arrived — it
      // was dropped. Counts as a consumed attempt without a timeout wait.
      oc.attempts += 1;
      attempt_failed = true;
    }

    if (attempt_failed) {
      if (attempt >= max_retries) {
        box.messages.erase(key);
        box.retained.erase(key);
        counters.lost.fetch_add(1, std::memory_order_relaxed);
        obs::RecordStat("fault.lost", 1.0, TagEpoch(tag), TagLayer(tag),
                        static_cast<int32_t>(from));
        return Status::ResourceExhausted(
            "message lost after " + std::to_string(max_retries + 1) +
            " attempts: from=" + std::to_string(from) +
            " epoch=" + std::to_string(TagEpoch(tag)) +
            " layer=" + std::to_string(TagLayer(tag)) +
            " kind=" + std::to_string(TagKind(tag)));
      }
      // NACK: re-request the retained pristine frame. The retransmission
      // draws its own fault decision, and its backoff is charged to the
      // simulated clock.
      ++attempt;
      auto rit = box.retained.find(key);
      ECG_CHECK(rit != box.retained.end())
          << "retransmit buffer missing for from=" << from << " tag=" << tag;
      rit->second.last_attempt = attempt;
      counters.retried.fetch_add(1, std::memory_order_relaxed);
      counters.nacks.fetch_add(1, std::memory_order_relaxed);
      obs::RecordStat("fault.retried", 1.0, TagEpoch(tag), TagLayer(tag),
                      static_cast<int32_t>(from));
      obs::RecordStat("fault.nack", 1.0, TagEpoch(tag), TagLayer(tag),
                      static_cast<int32_t>(from));
      const double backoff = injector_->retry_backoff_seconds();
      oc.penalty_seconds += backoff;
      std::vector<uint8_t> frame =
          FrameEnvelope(tag, attempt,
                        std::vector<uint8_t>(
                            rit->second.frame.begin() + kEnvelopeBytes,
                            rit->second.frame.end()));
      counters.retransmit_bytes.fetch_add(frame.size(),
                                          std::memory_order_relaxed);
      obs::RecordStat("fault.retransmit_bytes",
                      static_cast<double>(frame.size()), TagEpoch(tag),
                      TagLayer(tag), static_cast<int32_t>(from));
      if (obs::MetricsEnabled()) {
        // Per-link backoff distribution: the retry-storm signal the chaos
        // bench watches (worker = receiver issuing the NACK).
        obs::MetricsRegistry::Global()
            .GetHistogram(
                "ecg_fault_backoff_seconds",
                "Simulated retry backoff charged per NACK, per link.",
                {{"worker", std::to_string(to)},
                 {"peer", std::to_string(from)}})
            ->Observe(backoff);
      }
      if (obs::TraceEnabled(1)) {
        obs::Tracer::Global().RecordFlow(obs::FlowPhase::kStep, "msg", to,
                                         from, FlowLayer(tag),
                                         FlowId(from, to, tag));
      }
      DeliverAttempt(box, from, to, tag, attempt, frame);
    }
  }
}

Status MessageHub::TryRecvAny(uint32_t to,
                              const std::vector<uint32_t>& froms,
                              uint64_t tag, uint32_t* from_out,
                              std::vector<uint8_t>* out,
                              RecvOutcome* outcome) {
  ECG_CHECK(to < parties_) << "TryRecvAny worker id out of range: to=" << to
                           << " parties=" << parties_;
  for (uint32_t from : froms) {
    ECG_CHECK(from < parties_)
        << "TryRecvAny worker id out of range: from=" << from
        << " parties=" << parties_;
  }
  if (froms.empty()) {
    return Status::InvalidArgument("TryRecvAny: empty candidate set");
  }
  RecvOutcome local;
  RecvOutcome& oc = outcome != nullptr ? *outcome : local;
  oc = RecvOutcome{};

  Mailbox& box = boxes_[to];
  std::unique_lock<std::mutex> lock(box.mu);
  if (injector_ == nullptr) {
    // Fault-free transport: block until any candidate's message is queued
    // (same unbounded-wait semantics as Recv).
    box.cv.wait(lock, [&] {
      for (uint32_t from : froms) {
        if (box.messages.count(std::make_pair(from, tag)) > 0) return true;
      }
      return false;
    });
    for (uint32_t from : froms) {
      auto it = box.messages.find(std::make_pair(from, tag));
      if (it == box.messages.end()) continue;
      *from_out = from;
      *out = std::move(it->second.front().bytes);
      box.messages.erase(it);
      if (obs::TraceEnabled(1)) {
        obs::Tracer::Global().RecordFlow(obs::FlowPhase::kEnd, "msg", to,
                                         from, FlowLayer(tag),
                                         FlowId(from, to, tag));
      }
      return Status::OK();
    }
    ECG_CHECK(false) << "TryRecvAny woke without a ready peer";
    return Status::IoError("unreachable");
  }

  const uint32_t max_retries = injector_->max_retries();
  const auto attempt_timeout =
      std::chrono::milliseconds(injector_->recv_timeout_ms());
  const auto deadline = std::chrono::steady_clock::now() +
                        attempt_timeout * (max_retries + 2);
  // A peer is "ready" once a delivery is queued or its retained slot exists
  // (Send installs the slot before the first delivery attempt, so its
  // presence is proof the sender has sent — a missing queue entry then
  // means the attempt was dropped and the NACK path can run without any
  // further waiting).
  const bool signalled = box.cv.wait_until(lock, deadline, [&] {
    for (uint32_t from : froms) {
      const auto key = std::make_pair(from, tag);
      if (box.messages.count(key) > 0) return true;
      if (box.retained.count(key) > 0) return true;
    }
    return false;
  });
  if (!signalled) {
    return Status::IoError(
        "TryRecvAny deadline: no sender for to=" + std::to_string(to) +
        " among " + std::to_string(froms.size()) +
        " peers, epoch=" + std::to_string(TagEpoch(tag)) +
        " layer=" + std::to_string(TagLayer(tag)) +
        " kind=" + std::to_string(TagKind(tag)));
  }
  // Prefer a peer with a clean queued delivery over one with only drop
  // evidence so undamaged arrivals resolve first.
  uint32_t chosen = parties_;
  for (uint32_t from : froms) {
    if (box.messages.count(std::make_pair(from, tag)) > 0) {
      chosen = from;
      break;
    }
  }
  if (chosen == parties_) {
    for (uint32_t from : froms) {
      if (box.retained.count(std::make_pair(from, tag)) > 0) {
        chosen = from;
        break;
      }
    }
  }
  ECG_CHECK(chosen != parties_) << "TryRecvAny woke without a ready peer";
  *from_out = chosen;
  return ResolveFramedLocked(box, lock, to, chosen, tag, out, oc);
}

}  // namespace ecg::dist
