#include "dist/elastic.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/spec.h"
#include "common/stats.h"
#include "common/trace.h"

namespace ecg::elastic {
namespace {

Status ParseU32(const std::string& s, uint32_t* out) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad integer '" + s + "'");
    }
    v = v * 10 + (c - '0');
    if (v > 0xFFFFFFFFull) return Status::InvalidArgument("integer overflow");
  }
  *out = static_cast<uint32_t>(v);
  return Status::OK();
}

// Parses "event@filter:filter" — e.g. "leave@epoch=3:worker=1".
Status ParseEvent(const std::string& clause, bool join, ElasticEvent* out) {
  out->join = join;
  const size_t at = clause.find('@');
  if (at == std::string::npos) {
    return Status::InvalidArgument("elastic event needs @epoch=N: '" +
                                   clause + "'");
  }
  bool have_epoch = false;
  bool have_worker = false;
  std::string rest = clause.substr(at + 1);
  size_t pos = 0;
  while (pos <= rest.size()) {
    size_t colon = rest.find(':', pos);
    if (colon == std::string::npos) colon = rest.size();
    const std::string f = rest.substr(pos, colon - pos);
    pos = colon + 1;
    if (f.empty()) continue;
    const size_t eq = f.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad elastic filter '" + f + "'");
    }
    const std::string key = f.substr(0, eq);
    const std::string val = f.substr(eq + 1);
    if (key == "epoch") {
      ECG_RETURN_IF_ERROR(ParseU32(val, &out->epoch));
      have_epoch = true;
    } else if (key == "worker") {
      ECG_RETURN_IF_ERROR(ParseU32(val, &out->worker));
      have_worker = true;
    } else {
      return Status::InvalidArgument("unknown elastic filter '" + key + "'");
    }
  }
  if (!have_epoch || out->epoch == 0) {
    return Status::InvalidArgument(
        "elastic events need epoch>=1 (epoch 0 has no prior state to "
        "migrate): '" + clause + "'");
  }
  if (!join && !have_worker) {
    return Status::InvalidArgument("leave needs worker=N: '" + clause + "'");
  }
  if (join && have_worker) {
    return Status::InvalidArgument(
        "join takes no worker= (the new worker is appended): '" + clause +
        "'");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// ElasticStateBag
// ---------------------------------------------------------------------------

void ElasticStateBag::RemapWorkers(const std::vector<int32_t>& old_to_new) {
  auto map_worker = [&](uint32_t w) -> int32_t {
    return w < old_to_new.size() ? old_to_new[w] : -1;
  };
  std::map<std::tuple<uint16_t, uint32_t, uint32_t>, std::vector<float>>
      residual;
  for (auto& [key, row] : bp_residual) {
    const int32_t nw = map_worker(std::get<2>(key));
    if (nw < 0) continue;
    residual.emplace(std::make_tuple(std::get<0>(key), std::get<1>(key),
                                     static_cast<uint32_t>(nw)),
                     std::move(row));
  }
  bp_residual = std::move(residual);

  std::map<std::pair<uint32_t, uint32_t>, int> bits;
  for (const auto& [key, v] : request_bits) {
    const int32_t a = map_worker(key.first);
    const int32_t b = map_worker(key.second);
    if (a < 0 || b < 0) continue;
    bits.emplace(std::make_pair(static_cast<uint32_t>(a),
                                static_cast<uint32_t>(b)),
                 v);
  }
  request_bits = std::move(bits);

  std::map<std::pair<uint32_t, uint32_t>, float> prop;
  for (const auto& [key, v] : proportion) {
    const int32_t a = map_worker(key.first);
    const int32_t b = map_worker(key.second);
    if (a < 0 || b < 0) continue;
    prop.emplace(std::make_pair(static_cast<uint32_t>(a),
                                static_cast<uint32_t>(b)),
                 v);
  }
  proportion = std::move(prop);

  // Per-(layer, link) solver widths: both coordinates are workers, so a
  // departed end drops the entry and a renumbered end follows its new id.
  auto remap_group_bits =
      [&](std::map<std::tuple<uint16_t, uint32_t, uint32_t>, int>* m) {
        std::map<std::tuple<uint16_t, uint32_t, uint32_t>, int> next;
        for (const auto& [key, v] : *m) {
          const int32_t a = map_worker(std::get<1>(key));
          const int32_t b = map_worker(std::get<2>(key));
          if (a < 0 || b < 0) continue;
          next.emplace(std::make_tuple(std::get<0>(key),
                                       static_cast<uint32_t>(a),
                                       static_cast<uint32_t>(b)),
                       v);
        }
        *m = std::move(next);
      };
  remap_group_bits(&fp_group_bits);
  remap_group_bits(&bp_group_bits);
  // fp_trend is keyed by (layer, vertex) only — nothing to remap.
}

void ElasticStateBag::Clear() {
  fp_trend.clear();
  bp_residual.clear();
  request_bits.clear();
  proportion.clear();
  fp_group_bits.clear();
  bp_group_bits.clear();
}

// ---------------------------------------------------------------------------
// ElasticOptions::Parse
// ---------------------------------------------------------------------------

config::Spec& BindElasticSpec(config::Spec& spec, ElasticOptions* opts) {
  spec.Clause("leave", "leave@epoch=E:worker=W",
              "worker W departs before epoch E (E >= 1)",
              [opts](const std::string& clause) -> Status {
                ElasticEvent e;
                ECG_RETURN_IF_ERROR(ParseEvent(clause, /*join=*/false, &e));
                opts->events.push_back(e);
                return Status::OK();
              });
  spec.Clause("join", "join@epoch=E",
              "one worker joins before epoch E (appended id)",
              [opts](const std::string& clause) -> Status {
                ElasticEvent e;
                ECG_RETURN_IF_ERROR(ParseEvent(clause, /*join=*/true, &e));
                opts->events.push_back(e);
                return Status::OK();
              });
  spec.Enum<OnCrash>("on_crash", &opts->on_crash,
                     {{"shrink", OnCrash::kShrink},
                      {"replace", OnCrash::kReplace},
                      {"restore", OnCrash::kRestore}})
      .Help("crash policy");
  spec.Bool("rebalance", &opts->rebalance).Help("straggler rebalancer");
  spec.F64("ewma", &opts->ewma)
      .Check([opts]() -> Status {
        if (!(opts->ewma > 0.0 && opts->ewma <= 1.0)) {
          return Status::InvalidArgument("ewma must be in (0, 1]");
        }
        return Status::OK();
      })
      .Help("EWMA smoothing for per-epoch compute");
  spec.F64("threshold", &opts->threshold)
      .Check([opts]() -> Status {
        if (!(opts->threshold > 1.0)) {
          return Status::InvalidArgument("threshold must exceed 1.0");
        }
        return Status::OK();
      })
      .Help("straggler score (ewma/median) trigger");
  spec.U32("hysteresis", &opts->hysteresis)
      .Min(1)
      .Help("consecutive epochs above threshold");
  spec.F64("budget", &opts->budget)
      .Check([opts]() -> Status {
        if (!(opts->budget > 0.0 && opts->budget <= 1.0)) {
          return Status::InvalidArgument("budget must be in (0, 1]");
        }
        return Status::OK();
      })
      .Help("max fraction of straggler rows moved per round");
  spec.U32("cooldown", &opts->cooldown)
      .Help("epochs between membership changes");
  spec.F64("downtime", &opts->downtime_seconds)
      .Min(0)
      .Help("fixed simulated pause per transition, seconds");
  spec.F64("cap", &opts->cap)
      .Min(1.0)
      .Help("rebalance destination size cap x(n/k)");
  spec.F64("max_imbalance", &opts->max_imbalance)
      .Min(1.0)
      .Help("delta-repartition bound");
  spec.U64("seed", &opts->seed)
      .Max(0xFFFFFFFF)
      .Help("delta-repartition stream seed");
  return spec;
}

std::string ElasticSpecHelp() {
  ElasticOptions defaults;
  config::Spec spec("elastic");
  BindElasticSpec(spec, &defaults);
  return spec.HelpText();
}

Result<ElasticOptions> ElasticOptions::Parse(const std::string& spec_text) {
  ElasticOptions opts;
  config::Spec spec("elastic");
  BindElasticSpec(spec, &opts);
  const std::vector<std::string> clauses =
      config::Spec::Split(spec_text, ",;");
  if (clauses.empty()) return opts;  // inactive
  opts.active = true;
  ECG_RETURN_IF_ERROR(spec.ParseClauses(clauses));
  std::sort(opts.events.begin(), opts.events.end(),
            [](const ElasticEvent& a, const ElasticEvent& b) {
              return a.epoch < b.epoch;
            });
  for (size_t i = 1; i < opts.events.size(); ++i) {
    if (opts.events[i].epoch == opts.events[i - 1].epoch) {
      return Status::InvalidArgument(
          "at most one elastic event per epoch (epoch " +
          std::to_string(opts.events[i].epoch) + " has two)");
    }
  }
  return opts;
}

// ---------------------------------------------------------------------------
// Rebalancer
// ---------------------------------------------------------------------------

void Rebalancer::Configure(const ElasticOptions& opts, uint32_t num_workers) {
  opts_ = opts;
  pending_.assign(num_workers, 0.0);
  ewma_.assign(num_workers, 0.0);
  have_ewma_ = false;
  streak_ = 0;
  streak_worker_ = -1;
  last_event_epoch_ = -1;
}

void Rebalancer::Deposit(uint32_t worker, double compute_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < pending_.size()) pending_[worker] += compute_seconds;
}

int32_t Rebalancer::EndEpoch(uint32_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t k = pending_.size();
  if (k < 2) return -1;
  if (!have_ewma_) {
    ewma_ = pending_;
    have_ewma_ = true;
  } else {
    for (size_t w = 0; w < k; ++w) {
      ewma_[w] = opts_.ewma * pending_[w] + (1.0 - opts_.ewma) * ewma_[w];
    }
  }
  std::fill(pending_.begin(), pending_.end(), 0.0);

  std::vector<double> sorted = ewma_;
  std::sort(sorted.begin(), sorted.end());
  const double median = k % 2 == 1
                            ? sorted[k / 2]
                            : 0.5 * (sorted[k / 2 - 1] + sorted[k / 2]);
  if (!(median > 0.0)) return -1;
  size_t straggler = 0;
  for (size_t w = 1; w < k; ++w) {
    if (ewma_[w] > ewma_[straggler]) straggler = w;
  }
  const double score = ewma_[straggler] / median;
  if (obs::StatsEnabled()) {
    obs::RecordStat("elastic.straggler_score", score, epoch);
  }
  if (score >= opts_.threshold) {
    if (streak_worker_ == static_cast<int32_t>(straggler)) {
      ++streak_;
    } else {
      streak_worker_ = static_cast<int32_t>(straggler);
      streak_ = 1;
    }
  } else {
    streak_ = 0;
    streak_worker_ = -1;
  }
  const bool cooled =
      last_event_epoch_ < 0 ||
      epoch >= static_cast<int64_t>(last_event_epoch_) + opts_.cooldown;
  if (streak_ >= opts_.hysteresis && cooled) {
    streak_ = 0;
    const int32_t victim = streak_worker_;
    streak_worker_ = -1;
    last_event_epoch_ = epoch;
    return victim;
  }
  return -1;
}

void Rebalancer::OnMembershipChange(uint32_t epoch, uint32_t num_workers) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.assign(num_workers, 0.0);
  ewma_.assign(num_workers, 0.0);
  have_ewma_ = false;
  streak_ = 0;
  streak_worker_ = -1;
  last_event_epoch_ = epoch;
}

// ---------------------------------------------------------------------------
// MembershipLog
// ---------------------------------------------------------------------------

MembershipLog& MembershipLog::Global() {
  static MembershipLog* log = new MembershipLog();
  return *log;
}

void MembershipLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void MembershipLog::Add(const MembershipEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(e);
}

std::vector<MembershipEvent> MembershipLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string MembershipLog::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"events\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const MembershipEvent& e = events_[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"epoch\":%u,\"kind\":\"%s\",\"worker\":%d,"
                  "\"num_workers\":%u,\"moved_rows\":%" PRIu64
                  ",\"downtime_seconds\":%.6f}",
                  i == 0 ? "" : ",", e.epoch,
                  obs::JsonEscape(e.kind).c_str(), e.worker, e.num_workers,
                  e.moved_rows, e.downtime_seconds);
    out += buf;
  }
  out += "]}";
  return out;
}

void RegisterElasticFlightSection() {
  obs::FlightRecorder::Global().AddSection("elastic_state", [] {
    return MembershipLog::Global().ToJson();
  });
}

// ---------------------------------------------------------------------------
// ElasticController
// ---------------------------------------------------------------------------

ElasticController::ElasticController(ElasticOptions opts,
                                     uint32_t num_workers,
                                     std::vector<double> worker_scale)
    : opts_(std::move(opts)),
      num_workers_(num_workers),
      worker_scale_(std::move(worker_scale)) {
  rebalancer_.Configure(opts_, num_workers_);
  if (opts_.active) RegisterElasticFlightSection();
}

uint32_t ElasticController::NextEventEpoch(uint32_t after_epoch) const {
  for (const ElasticEvent& e : opts_.events) {
    if (e.epoch > after_epoch) return e.epoch;
  }
  return std::numeric_limits<uint32_t>::max();
}

Result<Transition> ElasticController::ApplyScheduled(
    const graph::Graph& g, const graph::Partition& part, uint32_t epoch) {
  const ElasticEvent* ev = nullptr;
  for (const ElasticEvent& e : opts_.events) {
    if (e.epoch == epoch) ev = &e;
  }
  if (ev == nullptr) {
    return Status::InvalidArgument("no elastic event at epoch " +
                                   std::to_string(epoch));
  }
  Transition t;
  graph::DeltaRepartitionOptions dopt;
  dopt.max_imbalance = opts_.max_imbalance;
  dopt.seed = opts_.seed;
  if (ev->join) {
    t.kind = "join";
    t.worker = static_cast<int32_t>(num_workers_);  // appended id
    t.new_num_workers = num_workers_ + 1;
    t.old_to_new.resize(num_workers_);
    for (uint32_t w = 0; w < num_workers_; ++w) {
      t.old_to_new[w] = static_cast<int32_t>(w);
    }
  } else {
    if (ev->worker >= num_workers_) {
      return Status::InvalidArgument(
          "leave worker " + std::to_string(ev->worker) + " out of range (" +
          std::to_string(num_workers_) + " workers)");
    }
    if (num_workers_ < 2) {
      return Status::InvalidArgument("cannot leave below 1 worker");
    }
    t.kind = "leave";
    t.worker = static_cast<int32_t>(ev->worker);
    t.new_num_workers = num_workers_ - 1;
    t.old_to_new.resize(num_workers_);
    for (uint32_t w = 0; w < num_workers_; ++w) {
      t.old_to_new[w] = w == ev->worker ? -1
                        : w < ev->worker ? static_cast<int32_t>(w)
                                         : static_cast<int32_t>(w - 1);
    }
  }
  ECG_ASSIGN_OR_RETURN(
      t.partition,
      graph::DeltaRepartition(g, part, t.old_to_new, t.new_num_workers,
                              dopt));
  t.moved_rows = CountMovedRows(part, t.old_to_new, t.partition);
  return t;
}

Result<Transition> ElasticController::ApplyCrash(const graph::Graph& g,
                                                 const graph::Partition& part,
                                                 uint32_t epoch,
                                                 int32_t victim) {
  (void)epoch;
  if (victim < 0 || static_cast<uint32_t>(victim) >= num_workers_) {
    return Status::InvalidArgument("crash victim out of range");
  }
  Transition t;
  if (opts_.on_crash == OnCrash::kReplace) {
    // A standby takes the victim's slot: same assignment, nothing moves.
    t.kind = "crash_replace";
    t.worker = victim;
    t.new_num_workers = num_workers_;
    t.partition = part;
    t.old_to_new.resize(num_workers_);
    for (uint32_t w = 0; w < num_workers_; ++w) {
      t.old_to_new[w] = static_cast<int32_t>(w);
    }
    t.moved_rows = 0;
    return t;
  }
  if (num_workers_ < 2) {
    return Status::InvalidArgument("cannot shrink below 1 worker");
  }
  t.kind = "crash_shrink";
  t.worker = victim;
  t.new_num_workers = num_workers_ - 1;
  t.old_to_new.resize(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    t.old_to_new[w] = static_cast<int32_t>(w) == victim ? -1
                      : static_cast<int32_t>(w) < victim
                          ? static_cast<int32_t>(w)
                          : static_cast<int32_t>(w - 1);
  }
  graph::DeltaRepartitionOptions dopt;
  dopt.max_imbalance = opts_.max_imbalance;
  dopt.seed = opts_.seed;
  ECG_ASSIGN_OR_RETURN(
      t.partition,
      graph::DeltaRepartition(g, part, t.old_to_new, t.new_num_workers,
                              dopt));
  t.moved_rows = CountMovedRows(part, t.old_to_new, t.partition);
  return t;
}

Result<Transition> ElasticController::ApplyRebalance(
    const graph::Graph& g, const graph::Partition& part, uint32_t epoch,
    int32_t straggler) {
  (void)epoch;
  if (straggler < 0 || static_cast<uint32_t>(straggler) >= num_workers_) {
    return Status::InvalidArgument("straggler out of range");
  }
  const uint32_t s = static_cast<uint32_t>(straggler);
  const std::vector<double>& ewma = rebalancer_.ewma();
  std::vector<double> sorted = ewma;
  std::sort(sorted.begin(), sorted.end());
  const size_t k = sorted.size();
  const double median =
      k % 2 == 1 ? sorted[k / 2] : 0.5 * (sorted[k / 2 - 1] + sorted[k / 2]);
  const double ratio = median > 0.0 ? ewma[s] / median : opts_.threshold;

  Transition t;
  t.kind = "rebalance";
  t.worker = straggler;
  t.new_num_workers = num_workers_;
  t.old_to_new.resize(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    t.old_to_new[w] = static_cast<int32_t>(w);
  }
  t.partition = part;

  const uint32_t n = static_cast<uint32_t>(part.owner.size());
  std::vector<uint32_t> part_size(num_workers_, 0);
  for (uint32_t v = 0; v < n; ++v) ++part_size[t.partition.owner[v]];
  const uint32_t size_s = part_size[s];
  if (size_s < 2) return t;  // nothing sensible to move

  // How many rows to shed: enough that the straggler's remaining share,
  // run at `ratio`× per-row cost, matches the median worker — capped by
  // the per-round migration budget so one decision can't over-correct on
  // a noisy estimate (the EWMA re-converges and the hysteresis re-arms
  // before the next migration).
  const double want =
      ratio > 1.0 ? std::ceil(size_s * (1.0 - 1.0 / ratio)) : 0.0;
  const uint32_t budget_rows = std::max<uint32_t>(
      1, static_cast<uint32_t>(size_s * opts_.budget));
  uint32_t moves = static_cast<uint32_t>(
      std::min<double>(want, static_cast<double>(budget_rows)));
  moves = std::min(moves, size_s - 1);
  if (moves == 0) return t;

  // Prefer boundary-light rows: fewest same-part neighbours first — they
  // lose the least locality when they leave (ties by id keep it
  // deterministic).
  std::vector<std::pair<uint32_t, uint32_t>> cost;  // (internal deg, v)
  cost.reserve(size_s);
  for (uint32_t v = 0; v < n; ++v) {
    if (t.partition.owner[v] != s) continue;
    uint32_t internal = 0;
    for (uint32_t u : g.Neighbors(v)) {
      if (t.partition.owner[u] == s) ++internal;
    }
    cost.emplace_back(internal, v);
  }
  std::sort(cost.begin(), cost.end());

  const uint32_t dest_cap = static_cast<uint32_t>(
      opts_.cap * n / num_workers_) + 1;
  uint64_t moved = 0;
  for (uint32_t i = 0; i < moves && i < cost.size(); ++i) {
    const uint32_t v = cost[i].second;
    // Destination: the peer holding the most of v's neighbourhood, ties
    // broken towards the least-loaded (lowest-EWMA) worker, then lowest id.
    std::vector<uint32_t> neigh(num_workers_, 0);
    for (uint32_t u : g.Neighbors(v)) ++neigh[t.partition.owner[u]];
    int32_t best = -1;
    for (uint32_t q = 0; q < num_workers_; ++q) {
      if (q == s || part_size[q] + 1 > dest_cap) continue;
      if (best < 0 || neigh[q] > neigh[best] ||
          (neigh[q] == neigh[best] &&
           (q < ewma.size() && static_cast<size_t>(best) < ewma.size() &&
            ewma[q] < ewma[best]))) {
        best = static_cast<int32_t>(q);
      }
    }
    if (best < 0) break;  // everything else at cap
    t.partition.owner[v] = static_cast<uint32_t>(best);
    --part_size[s];
    ++part_size[best];
    ++moved;
  }
  graph::RebuildMembers(&t.partition);
  t.moved_rows = moved;
  return t;
}

void ElasticController::Commit(const Transition& t, uint32_t resume_epoch,
                               double downtime_seconds, double sim_clock) {
  MembershipEvent e;
  e.epoch = resume_epoch;
  e.kind = t.kind;
  e.worker = t.worker;
  e.num_workers = t.new_num_workers;
  e.moved_rows = t.moved_rows;
  e.downtime_seconds = downtime_seconds;
  MembershipLog::Global().Add(e);

  if (obs::StatsEnabled()) {
    obs::RecordStat("elastic.migrated_rows",
                    static_cast<double>(t.moved_rows), resume_epoch);
    obs::RecordStat("elastic.repartition_seconds", downtime_seconds,
                    resume_epoch);
  }
  if (obs::MetricsEnabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("ecg_elastic_migrated_rows_total",
                   "Vertex rows moved by elastic membership transitions",
                   {{"kind", t.kind}})
        ->Inc(static_cast<double>(t.moved_rows));
    reg.GetCounter("ecg_elastic_repartition_seconds",
                   "Simulated seconds spent in elastic transitions "
                   "(downtime + state migration)",
                   {{"kind", t.kind}})
        ->Inc(downtime_seconds);
  }
  if (obs::TraceEnabled()) {
    obs::Tracer::Global().RecordSimSpan("elastic_repartition", /*worker=*/0,
                                        /*layer=*/-1, sim_clock,
                                        downtime_seconds);
  }

  // Remap per-worker compute scales into the new id space. A replacement
  // machine (crash_replace) starts at scale 1.0; a joiner is appended at
  // 1.0.
  std::vector<double> scale(t.new_num_workers, 1.0);
  if (!worker_scale_.empty() && t.kind != "crash_replace") {
    for (uint32_t w = 0; w < num_workers_ && w < worker_scale_.size(); ++w) {
      const int32_t nw = w < t.old_to_new.size() ? t.old_to_new[w] : -1;
      if (nw >= 0 && static_cast<uint32_t>(nw) < scale.size()) {
        scale[nw] = worker_scale_[w];
      }
    }
    worker_scale_ = std::move(scale);
  } else if (!worker_scale_.empty() && t.kind == "crash_replace") {
    worker_scale_.resize(t.new_num_workers, 1.0);
    if (t.worker >= 0 &&
        static_cast<size_t>(t.worker) < worker_scale_.size()) {
      worker_scale_[t.worker] = 1.0;
    }
  }
  num_workers_ = t.new_num_workers;
  rebalancer_.OnMembershipChange(resume_epoch, num_workers_);
}

uint64_t CountMovedRows(const graph::Partition& base,
                        const std::vector<int32_t>& old_to_new,
                        const graph::Partition& next) {
  uint64_t moved = 0;
  for (uint32_t v = 0; v < base.owner.size(); ++v) {
    const uint32_t old = base.owner[v];
    const int32_t mapped = old < old_to_new.size() ? old_to_new[old] : -1;
    if (mapped < 0 || static_cast<uint32_t>(mapped) != next.owner[v]) {
      ++moved;
    }
  }
  return moved;
}

}  // namespace ecg::elastic
