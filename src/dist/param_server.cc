#include "dist/param_server.h"

#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "common/trace.h"
#include "tensor/ops.h"

namespace ecg::dist {

ParameterServerGroup::ParameterServerGroup(
    const std::vector<LayerShape>& shapes, uint32_t num_servers,
    uint32_t num_workers, float lr, uint64_t seed)
    : num_servers_(num_servers), num_workers_(num_workers), lr_(lr),
      pushed_(num_workers, false), pending_dw_(num_workers),
      pending_db_(num_workers) {
  ECG_CHECK(num_servers_ >= 1 && num_workers_ >= 1)
      << "need at least one server and one worker";
  Rng rng(seed);
  for (const auto& shape : shapes) {
    tensor::Matrix w(shape.in_dim, shape.out_dim);
    tensor::XavierInit(&w, &rng);
    weights_.push_back(std::move(w));
    biases_.emplace_back(1, shape.out_dim);
    w_opt_.emplace_back();
    b_opt_.emplace_back();
  }
}

ParameterServerGroup::ParamTrafficSample ParameterServerGroup::Pull(
    size_t layer, tensor::Matrix* w, tensor::Matrix* b) const {
  std::lock_guard<std::mutex> lock(mu_);
  ECG_CHECK(layer < weights_.size()) << "pull of unknown layer";
  *w = weights_[layer];
  *b = biases_[layer];
  ParamTrafficSample t;
  t.bytes = (w->size() + b->size()) * sizeof(float);
  t.messages = num_servers_;  // one slice per server (range partition)
  return t;
}

ParameterServerGroup::ParamTrafficSample ParameterServerGroup::Push(
    uint32_t worker, std::vector<tensor::Matrix> dw,
    std::vector<tensor::Matrix> db) {
  bool published = false;
  ParamTrafficSample t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ECG_CHECK(worker < num_workers_) << "push from unknown worker";
    ECG_CHECK(!pushed_[worker]) << "double push from worker " << worker;
    ECG_CHECK(dw.size() == weights_.size() && db.size() == biases_.size())
        << "push layer count mismatch";

    for (const auto& m : dw) t.bytes += m.size() * sizeof(float);
    for (const auto& m : db) t.bytes += m.size() * sizeof(float);
    t.messages = num_servers_;

    pending_dw_[worker] = std::move(dw);
    pending_db_[worker] = std::move(db);
    pushed_[worker] = true;
    if (++pushes_this_epoch_ == num_workers_) {
      ApplyLocked();
      published = true;
    }
  }
  // Fired outside mu_: the callback may Pull() (same mutex) without
  // deadlocking.
  if (published) NotifyPublish();
  return t;
}

void ParameterServerGroup::SetPublishCallback(
    std::function<void(uint64_t)> cb) {
  publish_cb_ = std::move(cb);
}

void ParameterServerGroup::NotifyPublish() {
  const uint64_t v = version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (publish_cb_) publish_cb_(v);
}

void ParameterServerGroup::ApplyLocked() {
  // The apply runs on whichever worker thread pushed last; the span lands
  // on that thread's real-clock track under the server-side name.
  ECG_TRACE_SCOPE("ps_apply", /*worker=*/0, -1);
  ThreadCpuTimer apply_cpu;
  // Sum contributions in worker-id order: deterministic float reduction.
  for (size_t l = 0; l < weights_.size(); ++l) {
    tensor::Matrix dw_sum(weights_[l].rows(), weights_[l].cols());
    tensor::Matrix db_sum(1, biases_[l].cols());
    for (uint32_t w = 0; w < num_workers_; ++w) {
      tensor::AddInPlace(&dw_sum, pending_dw_[w][l]);
      tensor::AddInPlace(&db_sum, pending_db_[w][l]);
    }
    w_opt_[l].Step(dw_sum, lr_, &weights_[l]);
    b_opt_[l].Step(db_sum, lr_, &biases_[l]);
  }
  if (obs::StatsEnabled()) {
    obs::RecordStat("ps.apply_seconds", apply_cpu.ElapsedSeconds());
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetHistogram("ecg_ps_apply_seconds",
                      "Real CPU seconds spent applying one optimizer step "
                      "over all workers' gradients.",
                      {})
        ->Observe(apply_cpu.ElapsedSeconds());
  }
  for (uint32_t w = 0; w < num_workers_; ++w) {
    pending_dw_[w].clear();
    pending_db_[w].clear();
    pushed_[w] = false;
  }
  pushes_this_epoch_ = 0;
}

void ParameterServerGroup::SaveTo(ByteWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->PutU32(static_cast<uint32_t>(weights_.size()));
  for (size_t l = 0; l < weights_.size(); ++l) {
    tensor::SaveMatrix(weights_[l], w);
    tensor::SaveMatrix(biases_[l], w);
    w_opt_[l].SaveTo(w);
    b_opt_[l].SaveTo(w);
  }
}

Status ParameterServerGroup::LoadFrom(ByteReader* r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t layers = 0;
    ECG_RETURN_IF_ERROR(r->GetU32(&layers));
    if (layers != weights_.size()) {
      return Status::InvalidArgument(
          "parameter checkpoint has " + std::to_string(layers) +
          " layers, server group holds " + std::to_string(weights_.size()));
    }
    for (size_t l = 0; l < weights_.size(); ++l) {
      ECG_RETURN_IF_ERROR(tensor::LoadMatrix(r, &weights_[l]));
      ECG_RETURN_IF_ERROR(tensor::LoadMatrix(r, &biases_[l]));
      ECG_RETURN_IF_ERROR(w_opt_[l].LoadFrom(r));
      ECG_RETURN_IF_ERROR(b_opt_[l].LoadFrom(r));
    }
    for (uint32_t w = 0; w < num_workers_; ++w) {
      pending_dw_[w].clear();
      pending_db_[w].clear();
      pushed_[w] = false;
    }
    pushes_this_epoch_ = 0;
  }
  // A restore rewrites the parameters just like an apply does.
  NotifyPublish();
  return Status::OK();
}

}  // namespace ecg::dist
