#include "dist/fault.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/spec.h"
#include "dist/comm.h"

namespace ecg::dist {
namespace {

/// splitmix64 finalizer: the per-decision hash. Good avalanche, so nearby
/// (tag, attempt) coordinates give independent-looking draws.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtol(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

std::vector<std::string> SplitOn(const std::string& s, const char* seps) {
  std::vector<std::string> parts;
  size_t begin = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || std::strchr(seps, s[i]) != nullptr) {
      if (i > begin) parts.push_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return parts;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDuplicate:
      return "dup";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kStraggle:
      return "straggle";
    case FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

namespace {

/// Parses one `kind=prob@filter:filter` fault-rule clause into `*rule`.
/// `kind` was already picked off the clause head by the Spec dispatcher.
Status ParseFaultRuleClause(const std::string& clause, FaultKind kind,
                            FaultRule* rule) {
  const size_t at = clause.find('@');
  const std::string head = clause.substr(0, at);
  const std::string filters =
      at == std::string::npos ? "" : clause.substr(at + 1);
  const size_t eq = head.find('=');
  const std::string key = head.substr(0, eq);
  const std::string arg = eq == std::string::npos ? "" : head.substr(eq + 1);

  rule->kind = kind;
  if (!arg.empty() && !ParseDouble(arg, &rule->probability)) {
    return Status::InvalidArgument("faults: bad probability for '" + key +
                                   "': '" + arg + "'");
  }
  if (rule->probability < 0.0 || rule->probability > 1.0) {
    return Status::InvalidArgument("faults: probability out of [0,1] for '" +
                                   key + "'");
  }
  if (kind == FaultKind::kDelay || kind == FaultKind::kStraggle) {
    rule->seconds = 0.001;  // default latency; override with secs=
  }

  for (const std::string& f : SplitOn(filters, ":")) {
    const size_t feq = f.find('=');
    if (feq == std::string::npos) {
      return Status::InvalidArgument("faults: filter '" + f +
                                     "' is not key=value");
    }
    const std::string fk = f.substr(0, feq);
    const std::string fv = f.substr(feq + 1);
    if (fk == "epoch") {
      const size_t dash = fv.find('-');
      int64_t lo = 0, hi = 0;
      if (dash == std::string::npos) {
        if (!ParseInt(fv, &lo)) {
          return Status::InvalidArgument("faults: bad epoch '" + fv + "'");
        }
        hi = lo;
      } else if (!ParseInt(fv.substr(0, dash), &lo) ||
                 !ParseInt(fv.substr(dash + 1), &hi)) {
        return Status::InvalidArgument("faults: bad epoch range '" + fv +
                                       "'");
      }
      rule->epoch_lo = lo;
      rule->epoch_hi = hi;
    } else if (fk == "layer" || fk == "from" || fk == "to" ||
               fk == "worker") {
      int64_t v = 0;
      if (!ParseInt(fv, &v)) {
        return Status::InvalidArgument("faults: bad integer filter '" + f +
                                       "'");
      }
      if (fk == "layer") rule->layer = static_cast<int32_t>(v);
      if (fk == "from" || fk == "worker") {
        rule->from = static_cast<int32_t>(v);
      }
      if (fk == "to") rule->to = static_cast<int32_t>(v);
    } else {
      if (fk == "secs") {
        if (!ParseDouble(fv, &rule->seconds)) {
          return Status::InvalidArgument("faults: bad secs '" + fv + "'");
        }
        continue;
      }
      return Status::InvalidArgument("faults: unknown filter '" + fk +
                                     "' (epoch|layer|from|to|worker|secs)");
    }
  }
  if (kind == FaultKind::kCrash && (rule->from < 0 || rule->epoch_lo < 0)) {
    return Status::InvalidArgument(
        "faults: crash needs worker= and epoch= filters");
  }
  return Status::OK();
}

}  // namespace

Result<FaultInjector> FaultInjector::Parse(const std::string& spec_text) {
  FaultInjector injector;
  config::Spec spec("faults");
  spec.U64("seed", &injector.seed_).Help("schedule seed");
  spec.U32("retries", &injector.max_retries_)
      .Help("max redelivery attempts");
  spec.U32("timeout_ms", &injector.recv_timeout_ms_)
      .Help("per-attempt Recv deadline, real milliseconds");
  spec.F64("backoff", &injector.retry_backoff_seconds_)
      .Min(0)
      .Help("simulated seconds charged per retry");
  spec.F64("restart", &injector.restart_seconds_)
      .Min(0)
      .Help("simulated seconds a crash recovery costs");
  static const struct {
    const char* keyword;
    FaultKind kind;
    const char* grammar;
    const char* help;
  } kRuleClauses[] = {
      {"drop", FaultKind::kDrop, "drop=P[@filters]",
       "attempt dropped with probability P"},
      {"corrupt", FaultKind::kCorrupt, "corrupt=P[@filters]",
       "deterministic bit flips (CRC detects)"},
      {"dup", FaultKind::kDuplicate, "dup=P[@filters]",
       "message delivered twice"},
      {"delay", FaultKind::kDelay, "delay=P[@filters]",
       "late arrival; latency via secs="},
      {"straggle", FaultKind::kStraggle, "straggle=P[@worker=W]",
       "every send from W is late"},
      {"crash", FaultKind::kCrash, "crash@epoch=E:worker=W",
       "worker W fails at epoch E"},
  };
  for (const auto& rc : kRuleClauses) {
    spec.Clause(rc.keyword, rc.grammar, rc.help,
                [&injector, kind = rc.kind](const std::string& clause) {
                  FaultRule rule;
                  ECG_RETURN_IF_ERROR(
                      ParseFaultRuleClause(clause, kind, &rule));
                  injector.rules_.push_back(rule);
                  return Status::OK();
                });
  }
  ECG_RETURN_IF_ERROR(spec.Parse(spec_text));
  return injector;
}

void FaultInjector::AddRule(const FaultRule& rule) {
  rules_.push_back(rule);
}

double FaultInjector::DrawUniform(size_t rule_index, FaultKind kind,
                                  uint32_t from, uint32_t to, uint64_t tag,
                                  uint32_t attempt) const {
  // Pure function of the schedule seed and the full coordinates of the
  // decision: thread interleaving cannot change the fault schedule, and
  // sender/receiver can both evaluate it.
  uint64_t h = Mix64(seed_ ^ (0xFA017EC5ULL + rule_index));
  h = Mix64(h ^ (static_cast<uint64_t>(kind) << 56) ^ tag);
  h = Mix64(h ^ (static_cast<uint64_t>(from) << 32) ^ to);
  h = Mix64(h ^ attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultDecision FaultInjector::OnAttempt(uint32_t from, uint32_t to,
                                       uint64_t tag,
                                       uint32_t attempt) const {
  FaultDecision decision;
  const uint32_t epoch = MessageHub::TagEpoch(tag);
  if (epoch == 0xFFFFFFFFu) return decision;  // preprocessing is exempt
  const int32_t layer = static_cast<int32_t>(MessageHub::TagLayer(tag));
  for (size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.kind == FaultKind::kCrash) continue;
    if (r.epoch_lo >= 0 &&
        (epoch < r.epoch_lo || epoch > r.epoch_hi)) {
      continue;
    }
    if (r.layer >= 0 && layer != r.layer) continue;
    if (r.from >= 0 && static_cast<int32_t>(from) != r.from) continue;
    if (r.to >= 0 && static_cast<int32_t>(to) != r.to) continue;
    if (DrawUniform(i, r.kind, from, to, tag, attempt) >= r.probability) {
      continue;
    }
    switch (r.kind) {
      case FaultKind::kDrop:
        decision.drop = true;
        break;
      case FaultKind::kCorrupt:
        decision.corrupt = true;
        break;
      case FaultKind::kDuplicate:
        decision.duplicate = true;
        break;
      case FaultKind::kDelay:
      case FaultKind::kStraggle:
        decision.delay_seconds += r.seconds;
        break;
      case FaultKind::kCrash:
        break;
    }
  }
  return decision;
}

bool FaultInjector::PermanentlyLost(uint32_t from, uint32_t to,
                                    uint64_t tag) const {
  if (rules_.empty()) return false;
  for (uint32_t attempt = 0; attempt <= max_retries_; ++attempt) {
    if (!OnAttempt(from, to, tag, attempt).FailsAttempt()) return false;
  }
  return true;
}

bool FaultInjector::HasCrashSchedule() const {
  for (const FaultRule& r : rules_) {
    if (r.kind == FaultKind::kCrash) return true;
  }
  return false;
}

bool FaultInjector::TakeCrash(uint32_t epoch) {
  return TakeCrash(epoch, nullptr);
}

bool FaultInjector::TakeCrash(uint32_t epoch, int32_t* victim) {
  std::lock_guard<std::mutex> lock(crash_mu_);
  for (uint32_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.kind != FaultKind::kCrash) continue;
    if (epoch < r.epoch_lo || epoch > r.epoch_hi) continue;
    const auto key = std::make_pair(epoch, i);
    if (fired_crashes_.count(key)) continue;  // already fired; re-run is ok
    fired_crashes_.insert(key);
    counters_.crashes.fetch_add(1, std::memory_order_relaxed);
    counters_.crash_detected.fetch_add(1, std::memory_order_relaxed);
    if (victim != nullptr) *victim = r.from;
    ECG_LOG(Warning) << "fault: injected crash of worker " << r.from
                     << " at epoch " << epoch;
    return true;
  }
  return false;
}

namespace internal {
std::atomic<FaultInjector*> g_fault_injector{nullptr};
}  // namespace internal

FaultInjector* SetGlobalFaultInjector(FaultInjector* injector) {
  // The flight recorder's "fault_counters" dump section always reads
  // whatever injector is installed at crash time (dependency inversion:
  // common/ cannot see dist/, so dist/ registers the section).
  obs::FlightRecorder::Global().AddSection("fault_counters", [] {
    FaultInjector* current = GlobalFaultInjector();
    if (current == nullptr) return std::string("null");
    const FaultCounters& c = current->counters();
    auto u64 = [](const std::atomic<uint64_t>& v) {
      return std::to_string(v.load(std::memory_order_relaxed));
    };
    return std::string("{") + "\"dropped\":" + u64(c.dropped) +
           ",\"corrupted\":" + u64(c.corrupted) +
           ",\"duplicated\":" + u64(c.duplicated) +
           ",\"delayed\":" + u64(c.delayed) +
           ",\"retried\":" + u64(c.retried) + ",\"nacks\":" + u64(c.nacks) +
           ",\"retransmit_bytes\":" + u64(c.retransmit_bytes) +
           ",\"lost\":" + u64(c.lost) +
           ",\"degraded_pdt\":" + u64(c.degraded_pdt) +
           ",\"degraded_stale\":" + u64(c.degraded_stale) +
           ",\"degraded_resec\":" + u64(c.degraded_resec) +
           ",\"crashes\":" + u64(c.crashes) +
           ",\"crash_detected\":" + u64(c.crash_detected) +
           ",\"checkpoints\":" + u64(c.checkpoints) +
           ",\"restores\":" + u64(c.restores) + "}";
  });
  return internal::g_fault_injector.exchange(injector,
                                             std::memory_order_acq_rel);
}

namespace {

/// Matches "--name=value" (or "--name value" is not supported, mirroring
/// the observability flag parser's conventions).
bool ConsumeFaultFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int InitFaultsFromArgs(int* argc, char** argv) {
  std::string spec, timeout_ms, retries;
  if (const char* env = std::getenv("ECG_FAULTS")) spec = env;
  if (const char* env = std::getenv("ECG_RECV_TIMEOUT_MS")) timeout_ms = env;
  if (const char* env = std::getenv("ECG_MAX_RETRIES")) retries = env;

  int kept = 1;
  int consumed = 0;
  for (int i = 1; i < *argc; ++i) {
    if (ConsumeFaultFlag(argv[i], "--faults", &spec) ||
        ConsumeFaultFlag(argv[i], "--recv_timeout_ms", &timeout_ms) ||
        ConsumeFaultFlag(argv[i], "--max_retries", &retries)) {
      ++consumed;
    } else {
      argv[kept++] = argv[i];
    }
  }
  if (kept < *argc) argv[kept] = nullptr;
  *argc = kept;

  if (spec.empty() && timeout_ms.empty() && retries.empty()) return consumed;

  // Build (or rebuild) the process-lifetime injector. A timeout/retry
  // override without a schedule still installs an (empty) injector: that
  // enables the framed transport and bounded Recv without injecting any
  // faults — the hang-prevention configuration.
  auto r = FaultInjector::Parse(spec);
  ECG_CHECK(r.ok()) << r.status().ToString();
  if (!timeout_ms.empty()) {
    r->set_recv_timeout_ms(
        static_cast<uint32_t>(std::atoi(timeout_ms.c_str())));
  }
  if (!retries.empty()) {
    r->set_max_retries(static_cast<uint32_t>(std::atoi(retries.c_str())));
  }
  static FaultInjector* process_injector = nullptr;
  FaultInjector* fresh = new FaultInjector(std::move(*r));
  SetGlobalFaultInjector(fresh);
  delete process_injector;  // only ever frees an injector a prior Init made
  process_injector = fresh;
  return consumed;
}

}  // namespace ecg::dist
