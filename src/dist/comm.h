#ifndef ECGRAPH_DIST_COMM_H_
#define ECGRAPH_DIST_COMM_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace ecg::dist {

/// Thread-safe per-worker traffic accounting. Every byte that crosses a
/// worker boundary in the simulated cluster is recorded here; the benches
/// read these counters to report exact communication volumes (paper's
/// Table II communication column and the compression-ratio results).
class CommStats {
 public:
  explicit CommStats(uint32_t parties)
      : bytes_sent_(parties, 0), bytes_received_(parties, 0),
        messages_sent_(parties, 0), messages_received_(parties, 0) {}

  void RecordSend(uint32_t from, uint32_t to, uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_sent_[from] += bytes;
    bytes_received_[to] += bytes;
    ++messages_sent_[from];
    ++messages_received_[to];
  }

  uint64_t TotalBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (uint64_t b : bytes_sent_) total += b;
    return total;
  }
  uint64_t TotalMessages() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (uint64_t m : messages_sent_) total += m;
    return total;
  }
  uint64_t BytesSent(uint32_t worker) const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_sent_[worker];
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    std::fill(bytes_sent_.begin(), bytes_sent_.end(), 0);
    std::fill(bytes_received_.begin(), bytes_received_.end(), 0);
    std::fill(messages_sent_.begin(), messages_sent_.end(), 0);
    std::fill(messages_received_.begin(), messages_received_.end(), 0);
  }

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> bytes_sent_;
  std::vector<uint64_t> bytes_received_;
  std::vector<uint64_t> messages_sent_;
  std::vector<uint64_t> messages_received_;
};

/// In-memory point-to-point transport between simulated workers. Messages
/// are byte buffers addressed by (from, to, tag); Recv blocks until the
/// matching message arrives. Tags disambiguate (epoch, layer, direction)
/// so a fast worker can never consume a slow worker's message for the
/// wrong superstep.
class MessageHub {
 public:
  explicit MessageHub(uint32_t parties)
      : parties_(parties), boxes_(parties), stats_(parties) {}

  MessageHub(const MessageHub&) = delete;
  MessageHub& operator=(const MessageHub&) = delete;

  uint32_t parties() const { return parties_; }
  CommStats& stats() { return stats_; }

  /// Delivers `payload` to worker `to`. Never blocks (unbounded queues).
  void Send(uint32_t from, uint32_t to, uint64_t tag,
            std::vector<uint8_t> payload);

  /// Blocks until the (from, tag) message addressed to `to` arrives and
  /// returns its payload.
  std::vector<uint8_t> Recv(uint32_t to, uint32_t from, uint64_t tag);

  /// Builds a collision-free tag from superstep coordinates.
  static uint64_t MakeTag(uint32_t epoch, uint16_t layer, uint16_t kind) {
    return (static_cast<uint64_t>(epoch) << 32) |
           (static_cast<uint64_t>(layer) << 16) | kind;
  }

  /// Inverts MakeTag — the transport-level telemetry attributes traffic
  /// back to its (epoch, layer) without the exchangers having to thread
  /// those coordinates through every Send.
  static uint32_t TagEpoch(uint64_t tag) {
    return static_cast<uint32_t>(tag >> 32);
  }
  static uint16_t TagLayer(uint64_t tag) {
    return static_cast<uint16_t>((tag >> 16) & 0xFFFF);
  }

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<uint32_t, uint64_t>, std::vector<uint8_t>> messages;
  };

  const uint32_t parties_;
  std::vector<Mailbox> boxes_;
  CommStats stats_;
};

}  // namespace ecg::dist

#endif  // ECGRAPH_DIST_COMM_H_
