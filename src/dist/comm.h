#ifndef ECGRAPH_DIST_COMM_H_
#define ECGRAPH_DIST_COMM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "dist/fault.h"

namespace ecg::obs {
class Counter;  // common/metrics.h; Send caches per-link handles to it
}  // namespace ecg::obs

namespace ecg::dist {

/// Thread-safe per-worker traffic accounting. Every byte that crosses a
/// worker boundary in the simulated cluster is recorded here; the benches
/// read these counters to report exact communication volumes (paper's
/// Table II communication column and the compression-ratio results).
class CommStats {
 public:
  explicit CommStats(uint32_t parties)
      : bytes_sent_(parties, 0), bytes_received_(parties, 0),
        messages_sent_(parties, 0), messages_received_(parties, 0) {}

  void RecordSend(uint32_t from, uint32_t to, uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    bytes_sent_[from] += bytes;
    bytes_received_[to] += bytes;
    ++messages_sent_[from];
    ++messages_received_[to];
  }

  uint64_t TotalBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (uint64_t b : bytes_sent_) total += b;
    return total;
  }
  uint64_t TotalMessages() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (uint64_t m : messages_sent_) total += m;
    return total;
  }
  uint64_t BytesSent(uint32_t worker) const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_sent_[worker];
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    std::fill(bytes_sent_.begin(), bytes_sent_.end(), 0);
    std::fill(bytes_received_.begin(), bytes_received_.end(), 0);
    std::fill(messages_sent_.begin(), messages_sent_.end(), 0);
    std::fill(messages_received_.begin(), messages_received_.end(), 0);
  }

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> bytes_sent_;
  std::vector<uint64_t> bytes_received_;
  std::vector<uint64_t> messages_sent_;
  std::vector<uint64_t> messages_received_;
};

/// What one bounded receive cost beyond the happy path. The simulated
/// seconds accumulate retry backoff and injected delivery delays; the
/// caller charges them to its modelled comm clock so chaos runs report
/// honest makespans.
struct RecvOutcome {
  uint32_t attempts = 1;        // delivery attempts consumed (1 = clean)
  double penalty_seconds = 0.0;  // simulated backoff + injected delay
};

/// In-memory point-to-point transport between simulated workers. Messages
/// are byte buffers addressed by (from, to, tag); Recv blocks until the
/// matching message arrives. Tags disambiguate (epoch, layer, direction)
/// so a fast worker can never consume a slow worker's message for the
/// wrong superstep.
///
/// When a FaultInjector is attached (set_fault_injector), every payload is
/// wrapped in a framed envelope (magic, version, attempt, tag echo, length,
/// CRC32C) and delivery attempts consult the injector: drops leave the
/// mailbox empty, corruption flips payload bits that the CRC catches at
/// parse time, duplicates enqueue twice, delays ride along as simulated
/// seconds. The pristine frame is retained sender-side so TryRecv can run a
/// bounded NACK/retransmit protocol; with no injector the wire format and
/// blocking behavior are byte-identical to the fault-free build.
class MessageHub {
 public:
  explicit MessageHub(uint32_t parties)
      : parties_(parties), boxes_(parties), stats_(parties),
        sent_counters_(static_cast<size_t>(parties) * parties) {}

  MessageHub(const MessageHub&) = delete;
  MessageHub& operator=(const MessageHub&) = delete;

  uint32_t parties() const { return parties_; }
  CommStats& stats() { return stats_; }

  /// Attaches the fault injector (not owned; nullptr detaches and restores
  /// the exact fault-free transport). Must be called before workers start
  /// exchanging — the framing decision is read on every Send/Recv.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Delivers `payload` to worker `to`. Never blocks (unbounded queues).
  /// Traffic accounting records the logical payload size in both modes so
  /// fault-injected runs report comparable communication volumes.
  void Send(uint32_t from, uint32_t to, uint64_t tag,
            std::vector<uint8_t> payload);

  /// Blocks until the (from, tag) message addressed to `to` arrives and
  /// returns its payload. Requires the fault-free transport (no injector);
  /// use TryRecv when faults may be active.
  std::vector<uint8_t> Recv(uint32_t to, uint32_t from, uint64_t tag);

  /// Bounded receive. With no injector attached this is exactly Recv
  /// (blocking, always OK). With an injector it waits up to the injector's
  /// per-attempt timeout, validates the envelope, and on a failed attempt
  /// (drop detected, corrupt frame) NACKs a retransmission of the retained
  /// pristine frame — the retransmitted attempt draws its own fault
  /// decision — up to max_retries times. Returns ResourceExhausted when
  /// every attempt failed (the caller degrades) or IoError when no sender
  /// ever showed up within the overall deadline. `outcome` (optional)
  /// reports attempts used and the simulated seconds of backoff/delay the
  /// caller must charge to its comm clock.
  Status TryRecv(uint32_t to, uint32_t from, uint64_t tag,
                 std::vector<uint8_t>* out, RecvOutcome* outcome = nullptr);

  /// Arrival-order receive: blocks until *any* of the candidate `froms`
  /// peers is ready on `tag` — a delivery is queued, or (with an injector)
  /// the sender's retained slot proves its attempt was applied — then
  /// resolves that one peer with the full TryRecv NACK/retransmit protocol.
  /// Peers with a clean queued delivery are preferred over peers with only
  /// drop evidence, so fast arrivals are consumed first instead of
  /// head-of-line blocking behind a slow or faulty peer. `*from_out` names
  /// the resolved peer on OK and on ResourceExhausted (so the caller can
  /// retire it from its pending set and degrade just that peer); it is
  /// untouched on IoError (nobody sent within the deadline).
  Status TryRecvAny(uint32_t to, const std::vector<uint32_t>& froms,
                    uint64_t tag, uint32_t* from_out,
                    std::vector<uint8_t>* out, RecvOutcome* outcome = nullptr);

  /// Builds a collision-free tag from superstep coordinates.
  static uint64_t MakeTag(uint32_t epoch, uint16_t layer, uint16_t kind) {
    return (static_cast<uint64_t>(epoch) << 32) |
           (static_cast<uint64_t>(layer) << 16) | kind;
  }

  /// Inverts MakeTag — the transport-level telemetry attributes traffic
  /// back to its (epoch, layer) without the exchangers having to thread
  /// those coordinates through every Send.
  static uint32_t TagEpoch(uint64_t tag) {
    return static_cast<uint32_t>(tag >> 32);
  }
  static uint16_t TagLayer(uint64_t tag) {
    return static_cast<uint16_t>((tag >> 16) & 0xFFFF);
  }
  static uint16_t TagKind(uint64_t tag) {
    return static_cast<uint16_t>(tag & 0xFFFF);
  }

  /// Framed envelope header size in bytes (magic u32, version u8, flags u8,
  /// attempt u32, tag u64, payload length u64, payload CRC32C u32).
  static constexpr size_t kEnvelopeBytes = 30;
  static constexpr uint32_t kEnvelopeMagic = 0x46474345u;  // "ECGF"
  static constexpr uint8_t kEnvelopeVersion = 1;

  /// Wraps `payload` in the framed envelope. Exposed for tests.
  static std::vector<uint8_t> FrameEnvelope(uint64_t tag, uint32_t attempt,
                                            const std::vector<uint8_t>& payload);

  /// Validates and strips the envelope: checks magic, version, tag echo,
  /// length, and payload CRC. Exposed for tests.
  static Status ParseEnvelope(const std::vector<uint8_t>& frame, uint64_t tag,
                              std::vector<uint8_t>* payload);

 private:
  /// One queued delivery. `delay_seconds` is the injected latency the
  /// receiver charges to its simulated comm clock when it pops the message.
  struct Delivery {
    std::vector<uint8_t> bytes;
    double delay_seconds = 0.0;
  };

  /// Per-(from, tag) delivery queue. A tag almost always carries exactly
  /// one delivery — only injected duplicates ever queue a second — so the
  /// first delivery lives inline in the map node and extras overflow to a
  /// lazily-allocated vector. This keeps the fault-free path free of any
  /// per-message allocation beyond the seed transport's map node (measured
  /// by bench_microkernels --fault_overhead).
  struct DeliveryQueue {
    Delivery first;
    bool has_first = false;
    std::vector<Delivery> overflow;

    bool empty() const { return !has_first && overflow.empty(); }
    void push_back(Delivery d) {
      if (empty()) {
        first = std::move(d);
        has_first = true;
      } else {
        overflow.push_back(std::move(d));
      }
    }
    Delivery& front() { return has_first ? first : overflow.front(); }
    Delivery pop_front() {
      if (has_first) {
        has_first = false;
        return std::move(first);
      }
      Delivery d = std::move(overflow.front());
      overflow.erase(overflow.begin());
      return d;
    }
  };

  /// Sender-retained pristine frame for NACK retransmission. `last_attempt`
  /// is the highest attempt index already applied; the receiver uses
  /// last_attempt >= its current attempt plus an empty queue to conclude
  /// "that attempt was dropped" without waiting out the timeout.
  struct Retained {
    std::vector<uint8_t> frame;
    uint32_t last_attempt = 0;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<uint32_t, uint64_t>, DeliveryQueue> messages;
    std::map<std::pair<uint32_t, uint64_t>, Retained> retained;
  };

  /// Applies the injector's verdict for one delivery attempt of the retained
  /// frame and enqueues the surviving copies. Caller holds box.mu.
  void DeliverAttempt(Mailbox& box, uint32_t from, uint32_t to, uint64_t tag,
                      uint32_t attempt, const std::vector<uint8_t>& frame);

  /// The framed NACK/retransmit loop shared by TryRecv and TryRecvAny:
  /// resolves one (from, tag) stream to either a validated payload, loss
  /// (ResourceExhausted), or a no-sender deadline (IoError). Requires an
  /// attached injector; caller holds `lock` on box.mu.
  Status ResolveFramedLocked(Mailbox& box, std::unique_lock<std::mutex>& lock,
                             uint32_t to, uint32_t from, uint64_t tag,
                             std::vector<uint8_t>* out, RecvOutcome& oc);

  const uint32_t parties_;
  std::vector<Mailbox> boxes_;
  CommStats stats_;
  FaultInjector* injector_ = nullptr;
  /// Lazily acquired `ecg_hub_sent_bytes_total{worker,peer}` handles, one
  /// per directed link (parties² cells). Acquisition locks the metrics
  /// registry and builds label strings; caching keeps the per-Send cost at
  /// one relaxed load plus a lock-free Inc.
  mutable std::vector<std::atomic<obs::Counter*>> sent_counters_;
};

}  // namespace ecg::dist

#endif  // ECGRAPH_DIST_COMM_H_
