#ifndef ECGRAPH_DIST_FAULT_H_
#define ECGRAPH_DIST_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace ecg::dist {

/// Fault kinds the injector can impose on the simulated transport.
///   * kDrop      — a delivery attempt is silently discarded;
///   * kCorrupt   — deterministic bit flips in the framed bytes (the
///                  envelope CRC / tag echo detects them at Recv);
///   * kDuplicate — the message is delivered twice;
///   * kDelay     — the message arrives `seconds` late on the simulated
///                  clock (charged to the receiver's comm clock);
///   * kStraggle  — like kDelay but keyed on the *sending worker*: every
///                  message that worker sends while the rule matches is
///                  late, modelling a slow machine;
///   * kCrash     — a worker fails at the start of the matching epoch; the
///                  trainer restores the whole job from the last epoch
///                  checkpoint (BSP lock-step: one dead worker stalls all).
enum class FaultKind : uint8_t {
  kDrop = 0,
  kCorrupt,
  kDuplicate,
  kDelay,
  kStraggle,
  kCrash,
};

const char* FaultKindName(FaultKind kind);

/// One clause of the fault schedule. Filters with value -1 are wildcards;
/// epochs match the inclusive range [epoch_lo, epoch_hi]. `probability`
/// applies per delivery *attempt* (the retransmission attempts of one
/// logical message draw independently, so a retry can succeed where the
/// first delivery was dropped — or a targeted probability-1 rule can keep
/// dropping every attempt, forcing the degradation path).
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  double probability = 1.0;
  /// Delay magnitude in simulated seconds (kDelay / kStraggle).
  double seconds = 0.0;
  int64_t epoch_lo = -1;
  int64_t epoch_hi = -1;
  int32_t layer = -1;
  int32_t from = -1;  // sending worker (also the victim of kStraggle/kCrash)
  int32_t to = -1;    // receiving worker
};

/// What the injector decided for one delivery attempt.
struct FaultDecision {
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  double delay_seconds = 0.0;

  bool FailsAttempt() const { return drop || corrupt; }
};

/// Monotonic event counters, readable without enabling the stats registry
/// (tests and the chaos bench assert on them directly). All relaxed: the
/// counts are diagnostics, not synchronization.
struct FaultCounters {
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> corrupted{0};
  std::atomic<uint64_t> duplicated{0};
  std::atomic<uint64_t> delayed{0};
  std::atomic<uint64_t> retried{0};
  std::atomic<uint64_t> nacks{0};             // NACKs sent (= retransmit
                                              // requests issued)
  std::atomic<uint64_t> retransmit_bytes{0};  // framed bytes re-sent on NACK
  std::atomic<uint64_t> lost{0};            // all retries exhausted
  std::atomic<uint64_t> degraded_pdt{0};    // FP fell back to prediction
  std::atomic<uint64_t> degraded_stale{0};  // FP kept stale halo rows
  std::atomic<uint64_t> degraded_resec{0};  // BP loss folded into residual
  std::atomic<uint64_t> crashes{0};
  std::atomic<uint64_t> crash_detected{0};  // crashes observed by a trainer
                                            // (TakeCrash hits; drives the
                                            // elastic crash response)
  std::atomic<uint64_t> checkpoints{0};
  std::atomic<uint64_t> restores{0};
};

/// Deterministic, seed-driven fault schedule for the simulated cluster.
///
/// Every decision is a pure function of (seed, rule, message coordinates,
/// attempt index) — no hidden RNG state — so the same seed produces the
/// same fault schedule regardless of thread interleaving, and both ends of
/// a link can independently agree on whether a message is permanently lost
/// (the responder uses that to fold an undeliverable gradient into its
/// ResEC residual, and ReqEC to keep both trend baselines consistent).
///
/// Schedule grammar (`Parse`): clauses separated by ';' or ','. Each clause
/// is `kind=arg[@filter[:filter...]]` or a config key:
///   drop=P | corrupt=P | dup=P           probability per delivery attempt
///   delay=P | straggle=P                 probability; latency via secs=
///   crash[=1]                            needs worker= and epoch= filters
///   seed=N                               schedule seed (default 1)
///   retries=N                            max redelivery attempts (def. 3)
///   timeout_ms=N                         per-attempt Recv deadline (real
///                                        milliseconds, default 2000)
///   backoff=S                            simulated seconds charged per
///                                        retry (default 0.001)
///   restart=S                            simulated seconds a crash
///                                        recovery costs (default 5)
/// Filters: epoch=N or epoch=A-B, layer=N, from=N, to=N, worker=N
/// (alias for from), secs=F (delay magnitude, default 0.001).
/// Example: "drop=0.05,corrupt=0.01,seed=7" or
/// "crash@epoch=5:worker=1;drop=1@epoch=3:layer=1:from=0:to=1".
class FaultInjector {
 public:
  static Result<FaultInjector> Parse(const std::string& spec);

  FaultInjector() = default;

  /// Movable so it can travel through Result<FaultInjector>. Moving takes
  /// the schedule and configuration; the counters and crash bookkeeping
  /// start fresh (moving a live, mid-run injector is not supported).
  FaultInjector(FaultInjector&& other) noexcept
      : seed_(other.seed_),
        max_retries_(other.max_retries_),
        recv_timeout_ms_(other.recv_timeout_ms_),
        retry_backoff_seconds_(other.retry_backoff_seconds_),
        restart_seconds_(other.restart_seconds_),
        rules_(std::move(other.rules_)),
        fired_crashes_(std::move(other.fired_crashes_)) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void AddRule(const FaultRule& rule);
  const std::vector<FaultRule>& rules() const { return rules_; }

  void set_seed(uint64_t seed) { seed_ = seed; }
  uint64_t seed() const { return seed_; }

  uint32_t max_retries() const { return max_retries_; }
  void set_max_retries(uint32_t n) { max_retries_ = n; }
  uint32_t recv_timeout_ms() const { return recv_timeout_ms_; }
  void set_recv_timeout_ms(uint32_t ms) { recv_timeout_ms_ = ms; }
  double retry_backoff_seconds() const { return retry_backoff_seconds_; }
  void set_retry_backoff_seconds(double s) { retry_backoff_seconds_ = s; }
  double restart_seconds() const { return restart_seconds_; }
  void set_restart_seconds(double s) { restart_seconds_ = s; }

  /// The combined verdict for delivery attempt `attempt` of the message
  /// (from, to, tag). Preprocessing-time exchanges (tag epoch ==
  /// 0xFFFFFFFF) are exempt: the fault model targets the per-epoch hot
  /// path, not one-off setup traffic.
  FaultDecision OnAttempt(uint32_t from, uint32_t to, uint64_t tag,
                          uint32_t attempt) const;

  /// True iff every delivery attempt 0..max_retries of the message fails
  /// (drop or corrupt) — i.e. the receiver will exhaust its retries and
  /// degrade. Deterministic, so sender and receiver agree without any
  /// extra communication.
  bool PermanentlyLost(uint32_t from, uint32_t to, uint64_t tag) const;

  bool HasCrashSchedule() const;

  /// One-shot crash query for the epoch about to start: returns true the
  /// first time a scheduled crash for `epoch` is observed and never again
  /// (the post-restore re-run of the same epoch proceeds normally). Called
  /// by worker 0 only, between BSP barriers.
  bool TakeCrash(uint32_t epoch);

  /// Like TakeCrash(epoch), additionally reporting the crashed worker's id
  /// through `*victim` (the matching rule's `from`/`worker=` filter; -1 if
  /// the rule had no victim filter). The elastic trainer uses the victim to
  /// shrink or replace the right worker.
  bool TakeCrash(uint32_t epoch, int32_t* victim);

  FaultCounters& counters() { return counters_; }
  const FaultCounters& counters() const { return counters_; }

 private:
  double DrawUniform(size_t rule_index, FaultKind kind, uint32_t from,
                     uint32_t to, uint64_t tag, uint32_t attempt) const;

  uint64_t seed_ = 1;
  uint32_t max_retries_ = 3;
  uint32_t recv_timeout_ms_ = 2000;
  double retry_backoff_seconds_ = 0.001;
  double restart_seconds_ = 5.0;
  std::vector<FaultRule> rules_;

  std::mutex crash_mu_;
  std::set<std::pair<uint32_t, uint32_t>> fired_crashes_;  // (epoch, rule)

  mutable FaultCounters counters_;
};

namespace internal {
extern std::atomic<FaultInjector*> g_fault_injector;
}  // namespace internal

/// Process-wide injector hook. Like the tracer, the disabled path is one
/// relaxed atomic load and a predictable branch; nullptr means no faults.
inline FaultInjector* GlobalFaultInjector() {
  return internal::g_fault_injector.load(std::memory_order_acquire);
}
inline bool FaultsEnabled() { return GlobalFaultInjector() != nullptr; }

/// Installs `injector` as the process-wide injector (not owned; pass
/// nullptr to disable). Returns the previous injector.
FaultInjector* SetGlobalFaultInjector(FaultInjector* injector);

/// RAII installer for tests and benches.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector)
      : previous_(SetGlobalFaultInjector(injector)) {}
  ~ScopedFaultInjector() { SetGlobalFaultInjector(previous_); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

/// Consumes the fault-tolerance flags from (argc, argv), mirroring
/// InitObservabilityFromArgs (recognized flags are removed in place):
///   --faults=SPEC         fault schedule (grammar above); installs a
///                         process-lifetime global injector
///   --recv_timeout_ms=N   per-attempt Recv deadline override
///   --max_retries=N       redelivery attempts override
/// Environment variables ECG_FAULTS / ECG_RECV_TIMEOUT_MS /
/// ECG_MAX_RETRIES supply defaults when the flags are absent. Returns the
/// number of argv entries consumed; a malformed spec is a fatal error
/// (the run would silently test nothing otherwise).
int InitFaultsFromArgs(int* argc, char** argv);

}  // namespace ecg::dist

#endif  // ECGRAPH_DIST_FAULT_H_
