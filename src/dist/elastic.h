#ifndef ECGRAPH_DIST_ELASTIC_H_
#define ECGRAPH_DIST_ELASTIC_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/partition.h"

/// Elastic cluster membership (DESIGN.md §14): mid-training worker
/// join/leave/crash-replace plus straggler-aware row migration. The trainer
/// runs rounds of fixed membership; between rounds the ElasticController
/// produces a Transition (delta-repartitioned assignment + old→new worker
/// map), compensation/optimizer state rides across in an ElasticStateBag
/// keyed by *global vertex id* (ownership-independent), and the
/// MembershipLog records what happened for flight dumps and trace reports.
namespace ecg::elastic {

// ---------------------------------------------------------------------------
// Elastic state bag: exchanger compensation state keyed by global vertex.
// ---------------------------------------------------------------------------

/// One ReqEC trend entry: the last reconstructed embedding row (h_last) and
/// its change-rate row (m_cr), both `cols` floats.
struct TrendRow {
  std::vector<float> h;
  std::vector<float> m;
};

/// Ownership-independent snapshot of the error-compensation state both
/// exchangers keep per halo row, plus the Bit-Tuner's per-link knobs. The
/// trainer fills it from the departing membership's checkpoint (via
/// `ExportElasticState`), remaps worker-keyed entries, and the next round's
/// exchangers pull their rows back out (via `ImportElasticState`) — so a
/// vertex that migrates between workers keeps its trend/residual history.
///
/// ReqEC trend rows are canonical per (layer, vertex): both link ends of the
/// protocol maintain the same baseline in the fault-free case, so one copy
/// (exported from the responder side) serves the responder and every
/// requester after the transition. If faults had diverged a pair's baselines
/// (degraded-delivery paths), the transition collapses them back to the
/// canonical copy on both ends — consistent decode, documented loss of the
/// divergent per-pair state.
struct ElasticStateBag {
  /// (layer, global vertex) → trend state.
  std::map<std::pair<uint16_t, uint32_t>, TrendRow> fp_trend;
  /// (layer, global vertex, receiver worker) → ResEC residual row. Keyed by
  /// receiver because a boundary vertex accumulates an independent residual
  /// per peer it ships gradients to.
  std::map<std::tuple<uint16_t, uint32_t, uint32_t>, std::vector<float>>
      bp_residual;
  /// Bit-Tuner state, keyed by directed link (requester, responder).
  std::map<std::pair<uint32_t, uint32_t>, int> request_bits;
  std::map<std::pair<uint32_t, uint32_t>, float> proportion;
  /// bit_alloc solver widths, keyed per message group:
  /// (layer, requester, responder) for the FP request widths and
  /// (layer, sender, receiver) for the ResEC sender widths. Entries whose
  /// link lost either end are dropped by RemapWorkers — the surviving
  /// pairs keep their solved width, new pairs start at the configured
  /// global width until the next solve.
  std::map<std::tuple<uint16_t, uint32_t, uint32_t>, int> fp_group_bits;
  std::map<std::tuple<uint16_t, uint32_t, uint32_t>, int> bp_group_bits;

  /// Rewrites worker-keyed entries through `old_to_new` (old worker id →
  /// new id, -1 = departed). Entries touching a departed worker are
  /// dropped; vertex-keyed trend/residual rows survive untouched except for
  /// the receiver coordinate.
  void RemapWorkers(const std::vector<int32_t>& old_to_new);

  void Clear();
  bool Empty() const {
    return fp_trend.empty() && bp_residual.empty() && request_bits.empty() &&
           proportion.empty() && fp_group_bits.empty() &&
           bp_group_bits.empty();
  }
};

// ---------------------------------------------------------------------------
// Membership schedule and options.
// ---------------------------------------------------------------------------

/// What to do when the fault transport detects a scheduled kCrash:
///   * kRestore — PR-3 behavior: restore every worker from the checkpoint
///                and re-run the epoch on the same membership;
///   * kShrink  — treat the crash as a permanent leave: delta-repartition
///                the victim's vertices onto the survivors and continue
///                with one fewer worker;
///   * kReplace — a standby machine takes the victim's slot: same
///                partition, state restored from the checkpoint.
enum class OnCrash : uint8_t { kRestore = 0, kShrink, kReplace };

/// One scheduled membership event. `worker` ids are interpreted in the
/// numbering current at `epoch` (earlier leaves shift later ids down).
struct ElasticEvent {
  uint32_t epoch = 0;
  bool join = false;    // false = leave
  uint32_t worker = 0;  // leave only: departing worker id
};

/// Parsed `elastic=SPEC` (CLI train key). Grammar: clauses separated by
/// ',' or ';'.
///   leave@epoch=E:worker=W   worker W departs before epoch E (E >= 1)
///   join@epoch=E             one worker joins before epoch E (appended id)
///   on_crash=shrink|replace|restore   crash policy (default shrink)
///   rebalance=on|off         straggler rebalancer (default off)
///   ewma=F                   EWMA smoothing for per-epoch compute (0.3)
///   threshold=F              straggler score (ewma/median) trigger (1.5)
///   hysteresis=N             consecutive epochs above threshold (3)
///   budget=F                 max fraction of the straggler's rows moved
///                            per migration round (0.2)
///   cooldown=N               epochs between membership changes (3)
///   downtime=S               simulated seconds of fixed pause per
///                            transition, on top of modelled row-transfer
///                            time (1.0)
///   cap=F                    rebalance destination size cap ×(n/k) (2.0)
///   max_imbalance=F          delta-repartition bound (kDefaultMaxImbalance)
///   seed=N                   delta-repartition stream seed (29)
/// An empty spec parses to an inactive controller (trainer bit-identical
/// to the fixed-membership path).
struct ElasticOptions {
  bool active = false;
  std::vector<ElasticEvent> events;  // sorted by epoch, one per epoch
  OnCrash on_crash = OnCrash::kShrink;
  bool rebalance = false;
  double ewma = 0.3;
  double threshold = 1.5;
  uint32_t hysteresis = 3;
  double budget = 0.2;
  uint32_t cooldown = 3;
  double downtime_seconds = 1.0;
  double cap = 2.0;
  double max_imbalance = graph::kDefaultMaxImbalance;
  uint64_t seed = 29;

  static Result<ElasticOptions> Parse(const std::string& spec);
};

/// Auto-generated `elastic=SPEC` reference (from the config::Spec binding)
/// for CLI help output.
std::string ElasticSpecHelp();

// ---------------------------------------------------------------------------
// Straggler rebalancer.
// ---------------------------------------------------------------------------

/// Watches per-worker per-epoch compute seconds (deposited by the workers
/// from their `ChargeCompute` deltas) and flags a persistent straggler:
/// score = EWMA(compute) / median over workers; a worker must stay above
/// `threshold` for `hysteresis` consecutive epochs, and at least `cooldown`
/// epochs must have passed since the last membership change, before a
/// migration is triggered — both knobs exist so one noisy epoch (or the
/// rebalancer's own migration) cannot start a thrash loop.
class Rebalancer {
 public:
  void Configure(const ElasticOptions& opts, uint32_t num_workers);

  /// Worker `w` contributes its compute seconds for the epoch in progress.
  /// Thread-safe; called by every worker before the end-of-epoch barrier.
  void Deposit(uint32_t worker, double compute_seconds);

  /// Folds the epoch's deposits into the EWMAs and evaluates the trigger.
  /// Returns the straggler's worker id when a migration should run after
  /// this epoch, -1 otherwise. Called by worker 0 only, between barriers.
  int32_t EndEpoch(uint32_t epoch);

  /// Resets scores/streak after a membership change (worker count and
  /// row placement both changed, so history is stale).
  void OnMembershipChange(uint32_t epoch, uint32_t num_workers);

  const std::vector<double>& ewma() const { return ewma_; }

 private:
  ElasticOptions opts_;
  std::mutex mu_;
  std::vector<double> pending_;
  std::vector<double> ewma_;
  bool have_ewma_ = false;
  uint32_t streak_ = 0;
  int32_t streak_worker_ = -1;
  int64_t last_event_epoch_ = -1;
};

// ---------------------------------------------------------------------------
// Membership log (flight-recorder section + trace-report source).
// ---------------------------------------------------------------------------

struct MembershipEvent {
  uint32_t epoch = 0;      // first epoch run under the new membership
  std::string kind;        // "leave"|"join"|"crash_shrink"|"crash_replace"|
                           // "rebalance"
  int32_t worker = -1;     // departing/joining/straggler worker id
  uint32_t num_workers = 0;  // membership size after the event
  uint64_t moved_rows = 0;
  double downtime_seconds = 0.0;
};

/// Process-wide membership history. Registered as the `elastic_state`
/// flight-recorder section, so a crash dump shows every join/leave/
/// migration that preceded the failure; `ecgraph trace-report` renders the
/// same rows from the dump.
class MembershipLog {
 public:
  static MembershipLog& Global();

  void Reset();
  void Add(const MembershipEvent& e);
  std::vector<MembershipEvent> Snapshot() const;
  /// `{"events":[{...},...]}` — the flight-recorder section payload.
  std::string ToJson() const;

 private:
  MembershipLog() = default;
  mutable std::mutex mu_;
  std::vector<MembershipEvent> events_;
};

// ---------------------------------------------------------------------------
// Controller.
// ---------------------------------------------------------------------------

/// One planned membership transition, produced between training rounds.
struct Transition {
  graph::Partition partition;       // assignment for the next round
  std::vector<int32_t> old_to_new;  // old worker id → new id, -1 = departed
  uint32_t new_num_workers = 0;
  uint64_t moved_rows = 0;  // vertices whose owner changed
  std::string kind;         // MembershipEvent.kind
  int32_t worker = -1;      // event subject (old id space)
};

/// Drives the membership state machine for one training job. Owns the
/// schedule, the per-worker compute-scale vector (remapped across
/// transitions), and the Rebalancer. Not thread-safe: the trainer calls it
/// from the coordinator thread between rounds (Rebalancer::Deposit is the
/// one concurrent entry point, and it locks internally).
class ElasticController {
 public:
  ElasticController(ElasticOptions opts, uint32_t num_workers,
                    std::vector<double> worker_scale);

  bool active() const { return opts_.active; }
  bool rebalance_enabled() const { return opts_.rebalance; }
  OnCrash on_crash() const { return opts_.on_crash; }
  const ElasticOptions& options() const { return opts_; }
  uint32_t num_workers() const { return num_workers_; }
  /// Per-worker compute multipliers for the current membership (empty =
  /// all 1.0).
  const std::vector<double>& worker_scale() const { return worker_scale_; }
  Rebalancer& rebalancer() { return rebalancer_; }

  /// Epoch of the first scheduled event after `after_epoch` (i.e. the next
  /// round must stop before running that epoch), or UINT32_MAX.
  uint32_t NextEventEpoch(uint32_t after_epoch) const;

  /// Plans the scheduled event at exactly `epoch` (leave or join).
  Result<Transition> ApplyScheduled(const graph::Graph& g,
                                    const graph::Partition& part,
                                    uint32_t epoch);
  /// Plans the crash response for `victim` per on_crash (kShrink/kReplace;
  /// kRestore never reaches the controller).
  Result<Transition> ApplyCrash(const graph::Graph& g,
                                const graph::Partition& part,
                                uint32_t epoch, int32_t victim);
  /// Plans a straggler migration away from `straggler` (same worker set).
  Result<Transition> ApplyRebalance(const graph::Graph& g,
                                    const graph::Partition& part,
                                    uint32_t epoch, int32_t straggler);

  /// Records the committed transition: membership log + `elastic.*` stats +
  /// `ecg_elastic_*` metrics + an `elastic_repartition` span on the
  /// simulated timeline at `sim_clock`, then remaps worker scales, adopts
  /// the new worker count and resets the rebalancer.
  void Commit(const Transition& t, uint32_t resume_epoch,
              double downtime_seconds, double sim_clock);

 private:
  ElasticOptions opts_;
  uint32_t num_workers_;
  std::vector<double> worker_scale_;
  Rebalancer rebalancer_;
};

/// Vertices whose owning *new* worker differs from their old owner mapped
/// through `old_to_new` (departed owners count as moved).
uint64_t CountMovedRows(const graph::Partition& base,
                        const std::vector<int32_t>& old_to_new,
                        const graph::Partition& next);

/// Registers the `elastic_state` flight-recorder section (idempotent).
void RegisterElasticFlightSection();

}  // namespace ecg::elastic

#endif  // ECGRAPH_DIST_ELASTIC_H_
