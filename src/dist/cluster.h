#ifndef ECGRAPH_DIST_CLUSTER_H_
#define ECGRAPH_DIST_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/barrier.h"
#include "common/status.h"
#include "common/trace.h"
#include "dist/comm.h"
#include "dist/network_model.h"

namespace ecg::dist {

class SimulatedCluster;

/// Per-worker handle inside SimulatedCluster::Run. It wraps the transport
/// with two clocks:
///   * compute clock — real measured seconds, charged via ChargeCompute();
///   * comm clock — modelled seconds from the NetworkModel, charged when a
///     communication phase ends (EndCommPhase).
/// BarrierSync() is the BSP superstep boundary: all workers align their
/// simulated clocks to the slowest one, exactly like a lock-step cluster.
class WorkerContext {
 public:
  uint32_t worker_id() const { return worker_id_; }
  uint32_t num_workers() const { return num_workers_; }
  const NetworkModel& net() const { return net_; }

  /// The hub's fault injector, or nullptr when faults are off. Exchangers
  /// consult it to agree — deterministically, with no extra messages —
  /// on which of their sends can never be delivered (PermanentlyLost) so
  /// responder-side compensation state stays consistent with the peer.
  FaultInjector* fault_injector() const { return hub_->fault_injector(); }

  /// Sends a payload to `to`; traffic is attributed to the current phase.
  void Send(uint32_t to, uint64_t tag, std::vector<uint8_t> payload);

  /// Blocking receive of the (from, tag) message.
  std::vector<uint8_t> Recv(uint32_t from, uint64_t tag);

  /// Bounded receive (see MessageHub::TryRecv). With no fault injector on
  /// the hub this blocks exactly like Recv and always returns OK. Retry
  /// backoff and injected delays are charged to the current comm phase so
  /// chaos runs report honest makespans.
  Status TryRecv(uint32_t from, uint64_t tag, std::vector<uint8_t>* out);

  /// Arrival-order bounded receive over a candidate peer set (see
  /// MessageHub::TryRecvAny). Unlike TryRecv, the fault penalty is NOT
  /// folded into the phase automatically: a receiver fanning in from many
  /// peers waits on them concurrently, so the caller collects the per-peer
  /// penalties, takes the max, and charges it once via ChargePhasePenalty.
  /// `*penalty_seconds` (optional) reports this call's penalty.
  Status TryRecvAny(const std::vector<uint32_t>& froms, uint64_t tag,
                    uint32_t* from_out, std::vector<uint8_t>* out,
                    double* penalty_seconds = nullptr);

  /// Adds fault-induced wait seconds (retry backoff, injected delay) to the
  /// current comm phase. Fan-in callers charge the max across concurrently
  /// awaited peers, not the sum.
  void ChargePhasePenalty(double seconds) { phase_penalty_seconds_ += seconds; }

  /// Adds measured single-core compute seconds to this worker's clock,
  /// scaled by the machine model's multi-core speedup. When tracing is on,
  /// the charge lands as a span on this worker's simulated-clock track.
  /// Returns the charged (machine-scaled) seconds so overlapped schedules
  /// can credit them against an in-flight exchange.
  double ChargeCompute(double single_core_seconds) {
    const double charged =
        machine_.ComputeSeconds(single_core_seconds) * compute_scale_;
    if (obs::TraceEnabled() && charged > 0.0) {
      obs::Tracer::Global().RecordSimSpan("compute", worker_id_, -1,
                                          total_seconds(), charged);
    }
    compute_seconds_ += charged;
    return charged;
  }

  /// Adds modelled seconds directly (parameter-server pulls/pushes, which
  /// bypass the worker-to-worker hub).
  void ChargeCommSeconds(double seconds) { comm_seconds_ += seconds; }

  /// Ends the current communication phase: converts the bytes/messages
  /// sent and received since the last call into modelled seconds
  /// (full-duplex, slower direction dominates) and resets phase counters.
  /// `phase` names the span on the simulated-clock trace track; it must be
  /// a string literal (the tracer stores the pointer, not a copy).
  void EndCommPhase(const char* phase = "comm");

  /// Ends the current communication phase with overlap credit: compute that
  /// ran while the exchange was in flight hides up to its own duration of
  /// the wire time, so the phase charges max(0, comm − credit). Returns the
  /// hidden seconds (min(comm, credit)) for overlap.* stats;
  /// `*phase_comm_seconds` (optional) reports the full modelled comm time
  /// of the phase before the credit. With credit 0 this is exactly
  /// EndCommPhase.
  double EndCommPhaseOverlapped(const char* phase,
                                double overlap_credit_seconds,
                                double* phase_comm_seconds = nullptr);

  /// BSP barrier that also propagates the slowest worker's simulated time
  /// to everyone.
  void BarrierSync();

  double compute_seconds() const { return compute_seconds_; }
  double comm_seconds() const { return comm_seconds_; }
  double total_seconds() const { return compute_seconds_ + comm_seconds_; }

 private:
  friend class SimulatedCluster;

  // Phase traffic counters, reset by EndCommPhase().
  uint64_t phase_sent_bytes_ = 0;
  uint64_t phase_sent_msgs_ = 0;
  uint64_t phase_recv_bytes_ = 0;
  uint64_t phase_recv_msgs_ = 0;
  // Simulated seconds of fault-induced retry backoff and injected delay
  // accumulated this phase (TryRecv), folded in by EndCommPhase().
  double phase_penalty_seconds_ = 0.0;

  double compute_seconds_ = 0.0;
  double comm_seconds_ = 0.0;
  // Per-worker slowdown multiplier on charged compute (1.0 = nominal).
  // Models a heterogeneous / degraded machine: 2.0 = every compute second
  // costs two simulated seconds on this worker. Set from the cluster's
  // worker_compute_scale at Run().
  double compute_scale_ = 1.0;

  uint32_t worker_id_ = 0;
  uint32_t num_workers_ = 0;
  NetworkModel net_;
  MachineModel machine_;
  MessageHub* hub_ = nullptr;
  SimulatedCluster* cluster_ = nullptr;
};

/// Runs N workers as threads in lock-step. Owns the MessageHub and the
/// shared barrier. One SimulatedCluster instance = one training job.
class SimulatedCluster {
 public:
  /// `worker_compute_scale` (optional) gives per-worker compute slowdown
  /// multipliers — entry w scales worker w's ChargeCompute; missing entries
  /// default to 1.0. Used to model persistent stragglers (elastic bench).
  SimulatedCluster(uint32_t num_workers, NetworkModel net,
                   MachineModel machine = {},
                   std::vector<double> worker_compute_scale = {});

  /// Executes `worker_fn(ctx)` once per worker, concurrently, and joins.
  /// Statuses from workers are aggregated (first error wins).
  Status Run(const std::function<Status(WorkerContext*)>& worker_fn);

  MessageHub& hub() { return hub_; }
  CommStats& stats() { return hub_.stats(); }

  /// After Run: simulated makespan = max over workers of total_seconds.
  double MakespanSeconds() const { return makespan_seconds_; }
  double TotalComputeSeconds() const { return total_compute_seconds_; }
  double TotalCommSeconds() const { return total_comm_seconds_; }

 private:
  friend class WorkerContext;

  void BarrierSyncImpl(WorkerContext* ctx);

  const uint32_t num_workers_;
  NetworkModel net_;
  MachineModel machine_;
  std::vector<double> worker_compute_scale_;
  MessageHub hub_;
  Barrier barrier_;
  std::vector<double> clocks_;  // per-worker total_seconds at last sync
  double makespan_seconds_ = 0.0;
  double total_compute_seconds_ = 0.0;
  double total_comm_seconds_ = 0.0;
};

}  // namespace ecg::dist

#endif  // ECGRAPH_DIST_CLUSTER_H_
