#ifndef ECGRAPH_CORE_EXCHANGE_H_
#define ECGRAPH_CORE_EXCHANGE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/thread_pool.h"
#include "compress/quantize.h"
#include "core/halo.h"
#include "dist/cluster.h"
#include "dist/elastic.h"
#include "tensor/matrix.h"

namespace ecg::core {

/// True for peers this worker actually exchanges halo rows with (cut edges
/// exist in both directions or neither — the relation is symmetric).
inline bool ActivePeer(const WorkerPlan& plan, uint32_t p) {
  return p != plan.worker_id && !plan.send_rows[p].empty();
}

/// Runs fn(peer) for every active peer on the global ThreadPool — each
/// peer's encode/decode is independent — and returns the first error in
/// peer order. Inside a simulated worker (ThreadPool serial mode) this
/// degrades to the old sequential loop, so the per-worker compute clock is
/// unaffected.
inline Status ForEachActivePeerParallel(
    const WorkerPlan& plan, uint32_t num_workers,
    const std::function<Status(uint32_t)>& fn) {
  std::vector<uint32_t> peers;
  peers.reserve(num_workers);
  for (uint32_t p = 0; p < num_workers; ++p) {
    if (ActivePeer(plan, p)) peers.push_back(p);
  }
  std::vector<Status> statuses(peers.size());
  ThreadPool::Global().ParallelFor(
      peers.size(), 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) statuses[i] = fn(peers[i]);
      });
  for (Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

/// Forward-propagation message policies (who ships H how).
enum class FpMode {
  /// Raw float32 rows every epoch (the paper's Non-cp baseline).
  kExact,
  /// B-bit bucket quantization, no compensation (Cp-fp-B).
  kCompressed,
  /// The paper's ReqEC-FP: trend snapshots + selector + optional Bit-Tuner.
  kReqEc,
  /// DistGNN's delayed remote partial aggregation: only 1/r of the halo is
  /// refreshed (exactly) per epoch, the rest stays stale.
  kDelayed,
};

/// Backward-propagation message policies (who ships G how).
enum class BpMode {
  kExact,       // Non-cp
  kCompressed,  // Cp-bp-B
  kResEc,       // the paper's ResEC-BP error feedback
};

/// Section IV-B's three approximation-selection schemas. Vertex-wise is
/// the paper's choice ("yields the best balance between the message size
/// and the accuracy"); element-wise picks per coordinate (most accurate,
/// biggest selector overhead: 2 bits per element); matrix-wise picks one
/// approximation for the whole message.
enum class SelectorGranularity { kElement, kVertex, kMatrix };

/// Hard ceiling of every adaptive width path (Bit-Tuner growth, bit_alloc
/// solver): the bucket codecs pack {1, 2, 4, 8, 16}-bit ids, so 16 is the
/// widest quantized message the wire format can carry. fp_bits/bp_bits are
/// validated against the same set at the spec layer.
inline constexpr int kBitTunerMaxBits = 16;

/// Shared knobs of all exchangers.
struct ExchangeConfig {
  int fp_bits = 2;
  int bp_bits = 2;
  compress::BucketValueMode value_mode =
      compress::BucketValueMode::kMidpoint;
  /// T_tr: trend-group length of ReqEC-FP (paper default 10).
  uint32_t trend_period = 10;
  /// Enables the adaptive Bit-Tuner of Section IV-B.
  bool adaptive_bits = false;
  /// Bit-Tuner thresholds: grow B above hi, shrink below lo. Must satisfy
  /// hi > lo (the spec layer rejects hi <= lo: the tuner would oscillate
  /// every epoch inside the dead band).
  double tuner_hi = 0.6;
  double tuner_lo = 0.4;
  /// AdaQP-style per-(layer, peer) bit allocation (DESIGN.md §16): every
  /// trend_period epochs a greedy marginal-gain solver re-divides a total
  /// traffic budget across message groups, replacing the single global
  /// Bit-Tuner width. The FP requester drives its per-layer request widths
  /// from observed range/saturation; ResEC-BP picks per-peer sender widths
  /// from residual L2. Off = bit-identical to the global tuner path.
  bool bit_alloc = false;
  /// Traffic budget of the solver as a fraction of what the same groups
  /// would weigh at the configured global width (fp_bits / bp_bits).
  double bit_budget = 0.75;
  SelectorGranularity selector = SelectorGranularity::kVertex;
  /// DistGNN delay rounds r (only used by FpMode::kDelayed).
  uint32_t delay_rounds = 5;
  /// Degrade gracefully when a halo message is permanently lost under
  /// fault injection (all retries exhausted): FP falls back to the
  /// requester-side pdt prediction (ReqEC, zero wire bytes — exactly
  /// Eq. 8's candidate) or to the stale cached halo rows (other modes);
  /// BP skips the lost gradient, and ResEC folds the whole compensated
  /// gradient into the responder's residual so Eqs. 11-12 absorb it next
  /// epoch. When false, a lost message is a training error.
  bool fault_fallback = true;
};

/// Result of a loss-tolerant halo fan-in. `bufs[p]` holds the payload of
/// every peer whose message arrived; `lost[p]` marks peers whose message
/// was permanently lost (retries exhausted) and must be covered by a
/// degradation path.
struct PeerRecvResult {
  std::vector<std::vector<uint8_t>> bufs;
  std::vector<bool> lost;
  bool any_lost = false;
};

/// Receives from every active peer with bounded waits, consuming peers in
/// *arrival order* (MessageHub::TryRecvAny) rather than fixed ascending
/// peer id — a slow or faulty peer no longer head-of-line blocks the fast
/// ones. The receiver waits on all peers concurrently, so the fault
/// penalties (retry backoff, injected delay) are charged as the MAX across
/// peers, not the sum. A permanently lost message (ResourceExhausted from
/// the transport's retry protocol) is tolerated when `allow_loss` is set
/// and reported via `lost`; any other failure — including loss with
/// fallback disabled — propagates.
inline Result<PeerRecvResult> TryRecvFromActivePeers(
    dist::WorkerContext* ctx, const WorkerPlan& plan, uint64_t tag,
    bool allow_loss) {
  PeerRecvResult out;
  out.bufs.resize(ctx->num_workers());
  out.lost.assign(ctx->num_workers(), false);
  std::vector<uint32_t> pending;
  for (uint32_t p = 0; p < ctx->num_workers(); ++p) {
    if (ActivePeer(plan, p)) pending.push_back(p);
  }
  double max_penalty = 0.0;
  while (!pending.empty()) {
    uint32_t from = 0;
    std::vector<uint8_t> buf;
    double penalty = 0.0;
    Status s = ctx->TryRecvAny(pending, tag, &from, &buf, &penalty);
    if (s.ok() || s.code() == StatusCode::kResourceExhausted) {
      max_penalty = std::max(max_penalty, penalty);
      pending.erase(std::find(pending.begin(), pending.end(), from));
      if (s.ok()) {
        out.bufs[from] = std::move(buf);
        continue;
      }
      if (!allow_loss) {
        ctx->ChargePhasePenalty(max_penalty);
        return s;
      }
      out.lost[from] = true;
      out.any_lost = true;
      continue;
    }
    ctx->ChargePhasePenalty(max_penalty);
    return s;
  }
  ctx->ChargePhasePenalty(max_penalty);
  return out;
}

/// Wire-tag kinds (combined with epoch/layer in MessageHub::MakeTag).
enum ExchangeTagKind : uint16_t {
  kTagFpRequest = 1,
  kTagFpData = 2,
  kTagBpData = 3,
};

/// Fetches the halo rows of H^layer each epoch. `h_owned` holds the owned
/// rows (local order); the exchanger fills the rows of `h_halo`
/// (plan.num_halo() x dim). h_halo persists across epochs so stale-cache
/// policies (kDelayed) can leave rows untouched.
class FpExchanger {
 public:
  virtual ~FpExchanger() = default;

  /// Split-phase API for overlapped schedules. Start encodes and SENDS
  /// everything this exchange will put on the wire (for ReqEC that means
  /// the whole request/respond handshake: it also *drains* the peers'
  /// requests and ships the responses). Start may mutate responder-side
  /// compensation state; it must not touch h_halo. Between Start and
  /// Finish the caller may run arbitrary compute — the comm phase counters
  /// keep accumulating until the caller ends the phase.
  virtual Status Start(dist::WorkerContext* ctx, const WorkerPlan& plan,
                       uint32_t epoch, uint16_t layer,
                       const tensor::Matrix& h_owned) = 0;

  /// Receives (in arrival order) and decodes into h_halo, updating
  /// requester-side compensation state. Does NOT end the comm phase: the
  /// caller charges it, with overlap credit when compute ran in between
  /// (WorkerContext::EndCommPhaseOverlapped).
  virtual Status Finish(dist::WorkerContext* ctx, const WorkerPlan& plan,
                        uint32_t epoch, uint16_t layer,
                        tensor::Matrix* h_halo) = 0;

  /// One-shot exchange: Start + Finish + EndCommPhase("fp_comm"). Every
  /// pre-split call site and the non-overlapped schedule use this; by
  /// construction it is equivalent to the split-phase path. A streaming
  /// Finish still earns its arrival-order decode credit here — the decode
  /// of early peers ran while later ones were in flight regardless of the
  /// caller's schedule.
  Status Exchange(dist::WorkerContext* ctx, const WorkerPlan& plan,
                  uint32_t epoch, uint16_t layer,
                  const tensor::Matrix& h_owned, tensor::Matrix* h_halo) {
    ECG_RETURN_IF_ERROR(Start(ctx, plan, epoch, layer, h_owned));
    ECG_RETURN_IF_ERROR(Finish(ctx, plan, epoch, layer, h_halo));
    const double credit = TakeFinishCredit();
    if (credit > 0.0) {
      ctx->EndCommPhaseOverlapped("fp_comm", credit);
    } else {
      ctx->EndCommPhase("fp_comm");
    }
    return Status::OK();
  }

  /// Current compression bits toward peer `p` (for logging/benches);
  /// 32 means uncompressed. With bit_alloc on the width is per layer —
  /// this reports layer 0's.
  virtual int BitsTowards(uint32_t peer) const { return 32; }

  /// Per-(layer, peer) width (the bit_alloc solver's unit of allocation).
  /// Exchangers without per-layer state report the global width.
  virtual int BitsTowards(uint16_t layer, uint32_t peer) const {
    return BitsTowards(peer);
  }

  /// Decode compute charged during Finish while later peers were still in
  /// flight (the streaming arrival-order decode of the bit_alloc path:
  /// each peer's boundary rows decode the moment its message lands, so an
  /// early narrow peer's decode hides under the wait for the wide ones).
  /// Overlapped schedules fold this into their interior-compute credit;
  /// reading resets the accumulator. Exchangers without a streaming path
  /// return 0.
  virtual double TakeFinishCredit() { return 0.0; }

  /// Serializes the exchanger's compensation state (ReqEC trend baselines,
  /// Bit-Tuner widths) into the epoch checkpoint. Stateless exchangers
  /// write nothing.
  virtual void SaveState(ByteWriter* w) const {}
  virtual Status LoadState(ByteReader* r) { return Status::OK(); }

  /// Elastic membership support: re-keys the compensation state by global
  /// vertex id into `bag` (Export) / pulls this plan's rows back out
  /// (Import), so state follows a vertex across a delta-repartition.
  /// Stateless exchangers are no-ops.
  virtual void ExportElasticState(const WorkerPlan& plan,
                                  elastic::ElasticStateBag* bag) const {}
  virtual Status ImportElasticState(const WorkerPlan& plan,
                                    const elastic::ElasticStateBag& bag) {
    return Status::OK();
  }
};

/// Fetches the halo rows of G^layer each epoch during BP.
class BpExchanger {
 public:
  virtual ~BpExchanger() = default;

  /// Split-phase API, mirroring FpExchanger. Start encodes and sends
  /// (ResEC mutates its residual state here — the residual update depends
  /// only on the outgoing gradient); Finish receives in arrival order and
  /// decodes into g_halo without ending the comm phase.
  virtual Status Start(dist::WorkerContext* ctx, const WorkerPlan& plan,
                       uint32_t epoch, uint16_t layer,
                       const tensor::Matrix& g_owned) = 0;
  virtual Status Finish(dist::WorkerContext* ctx, const WorkerPlan& plan,
                        uint32_t epoch, uint16_t layer,
                        tensor::Matrix* g_halo) = 0;

  /// One-shot exchange: Start + Finish + EndCommPhase("bp_comm").
  Status Exchange(dist::WorkerContext* ctx, const WorkerPlan& plan,
                  uint32_t epoch, uint16_t layer,
                  const tensor::Matrix& g_owned, tensor::Matrix* g_halo) {
    ECG_RETURN_IF_ERROR(Start(ctx, plan, epoch, layer, g_owned));
    ECG_RETURN_IF_ERROR(Finish(ctx, plan, epoch, layer, g_halo));
    ctx->EndCommPhase("bp_comm");
    return Status::OK();
  }

  /// Per-(layer, peer) sender-side width (the bit_alloc solver's unit of
  /// allocation); 32 means uncompressed / not width-adaptive.
  virtual int BitsTowards(uint16_t layer, uint32_t peer) const {
    return 32;
  }

  /// Serializes the error-feedback state (ResEC residuals) into the epoch
  /// checkpoint. Stateless exchangers write nothing.
  virtual void SaveState(ByteWriter* w) const {}
  virtual Status LoadState(ByteReader* r) { return Status::OK(); }

  /// Elastic membership support (see FpExchanger::ExportElasticState).
  virtual void ExportElasticState(const WorkerPlan& plan,
                                  elastic::ElasticStateBag* bag) const {}
  virtual Status ImportElasticState(const WorkerPlan& plan,
                                    const elastic::ElasticStateBag& bag) {
    return Status::OK();
  }
};

/// Factories. `num_layers` lets stateful exchangers pre-size per-layer
/// state. One exchanger instance per worker (they hold per-peer state).
std::unique_ptr<FpExchanger> MakeFpExchanger(FpMode mode,
                                             const ExchangeConfig& config,
                                             uint16_t num_layers,
                                             const WorkerPlan& plan);
std::unique_ptr<BpExchanger> MakeBpExchanger(BpMode mode,
                                             const ExchangeConfig& config,
                                             uint16_t num_layers,
                                             const WorkerPlan& plan);

const char* FpModeName(FpMode mode);
const char* BpModeName(BpMode mode);

}  // namespace ecg::core

#endif  // ECGRAPH_CORE_EXCHANGE_H_
