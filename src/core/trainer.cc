#include "core/trainer.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>

#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "compress/int8_gemm.h"
#include "core/checkpoint.h"
#include "core/halo.h"
#include "core/metrics_board.h"
#include "core/wire_util.h"
#include "dist/cluster.h"
#include "dist/elastic.h"
#include "dist/fault.h"
#include "tensor/nn.h"
#include "tensor/ops.h"

namespace ecg::core {
namespace {

using dist::ParameterServerGroup;
using dist::SimulatedCluster;
using dist::WorkerContext;
using internal::BuildCat;
using internal::MetricsBoard;
using tensor::Matrix;

/// Sim-clock phase accounting for one scope (see metrics_board.h).
using Phase = internal::PhaseScope<WorkerContext>;

enum class SplitKind : uint8_t { kNone = 0, kTrain, kVal, kTest };

}  // namespace

DistributedTrainer::DistributedTrainer(const graph::Graph& g,
                                       const graph::Partition& partition,
                                       TrainOptions options)
    : graph_(g), partition_(partition), options_(std::move(options)) {}

Result<TrainResult> DistributedTrainer::Train() {
  const int L = options_.model.num_layers;
  if (L < 1) return Status::InvalidArgument("GCN needs at least one layer");
  if (graph_.train_set().empty()) {
    return Status::FailedPrecondition("graph has no training split");
  }
  // Elastic membership (DESIGN.md §14): parse the spec up front. An empty
  // spec yields an inactive controller and the loop below runs exactly one
  // fixed-membership round — that path is bit-identical to the pre-elastic
  // trainer (same barriers, same clock arithmetic).
  ECG_ASSIGN_OR_RETURN(elastic::ElasticOptions eopts,
                       elastic::ElasticOptions::Parse(options_.elastic));
  const bool elastic_on = eopts.active;
  elastic::ElasticController controller(eopts, partition_.num_parts,
                                        options_.worker_compute_scale);
  if (elastic_on) elastic::MembershipLog::Global().Reset();

  const bool sage = options_.model.kind == GnnKind::kSage;

  // Per-layer output dims: d0 -> hidden^(L-1) -> classes.
  std::vector<size_t> dims(L + 1);
  dims[0] = graph_.feature_dim();
  for (int l = 1; l <= L; ++l) {
    dims[l] = (l == L) ? static_cast<size_t>(graph_.num_classes())
                       : options_.model.hidden_dim;
  }

  // Split membership lookup shared by all workers.
  std::vector<SplitKind> split_of(graph_.num_vertices(), SplitKind::kNone);
  for (uint32_t v : graph_.train_set()) split_of[v] = SplitKind::kTrain;
  for (uint32_t v : graph_.val_set()) split_of[v] = SplitKind::kVal;
  for (uint32_t v : graph_.test_set()) split_of[v] = SplitKind::kTest;
  const size_t global_train = graph_.train_set().size();

  MetricsBoard board;

  // Fault tolerance wiring: the process-wide injector (from --faults /
  // ScopedFaultInjector) attaches to each round's hub, switching the
  // transport to framed envelopes with bounded, retrying receives. A crash
  // schedule forces checkpointing on (every epoch unless configured
  // coarser) so the restore path always has a snapshot to rewind to; an
  // elastic schedule does too, because every membership transition
  // migrates model/optimizer/compensation state out of the latest
  // checkpoint.
  dist::FaultInjector* injector = dist::GlobalFaultInjector();
  uint32_t checkpoint_every = options_.checkpoint_every;
  if (checkpoint_every == 0 && injector != nullptr &&
      injector->HasCrashSchedule()) {
    checkpoint_every = 1;
  }
  if (elastic_on && checkpoint_every == 0) checkpoint_every = 1;

  // Working assignment: starts at the caller's partition and is replaced
  // by every committed membership transition.
  graph::Partition part = partition_;

  // Cross-round accumulators. Each round runs its own SimulatedCluster
  // whose clocks start at zero, so the board sees `base + in-round clock`
  // — the per-epoch deltas telescope across round boundaries. Migrated
  // compensation state rides between rounds in the bag, the parameter
  // servers in ps_blob.
  double sim_base = 0.0;
  uint64_t comm_base = 0;
  bool first_round = true;
  double preprocess_cpu = 0.0;
  elastic::ElasticStateBag bag;
  bool have_bag = false;
  std::vector<uint8_t> ps_blob;
  bool have_ps_blob = false;

  // Per-round objects, rebuilt whenever the membership changes. worker_fn
  // below captures them by reference and only runs while they are alive.
  uint32_t workers = part.num_parts;
  std::vector<WorkerPlan> plans;
  std::unique_ptr<ParameterServerGroup> ps;
  std::unique_ptr<CheckpointStore> ckpt;
  std::unique_ptr<SimulatedCluster> cluster;
  uint32_t epoch_base = 0;             // first epoch of the current round
  uint32_t round_stop = options_.epochs;  // run epochs [epoch_base, stop)

  // Worker 0's crash verdict for the epoch about to start, published to
  // the other workers across a barrier.
  std::atomic<bool> crash_pending{false};
  std::atomic<int32_t> crash_victim{-1};
  // Rebalance verdict: the epoch a straggler migration starts at (the
  // round breaks just before it; 0 = none) and the straggler's id.
  std::atomic<uint32_t> rebal_break_at{0};
  std::atomic<int32_t> rebal_straggler{-1};
  // How the round's workers exited: 0 = ran to round_stop (or early
  // stop), 1 = crash with an elastic response, 2 = rebalance break.
  std::atomic<int> round_exit{0};
  const bool elastic_crash =
      elastic_on && eopts.on_crash != elastic::OnCrash::kRestore;

  auto worker_fn = [&](WorkerContext* ctx) -> Status {
    ThreadPool::SetSerialMode(true);
    const WorkerPlan& plan = plans[ctx->worker_id()];
    const uint16_t num_layers = static_cast<uint16_t>(L);

    // ---- Local data setup -------------------------------------------
    ThreadCpuTimer cpu;
    Matrix x_local = tensor::GatherRows(graph_.features(), plan.owned);
    std::vector<int32_t> labels_local(plan.num_owned());
    std::vector<uint32_t> rows_of[3];
    for (uint32_t r = 0; r < plan.num_owned(); ++r) {
      const uint32_t v = plan.owned[r];
      labels_local[r] = graph_.labels()[v];
      switch (split_of[v]) {
        case SplitKind::kTrain:
          rows_of[0].push_back(r);
          break;
        case SplitKind::kVal:
          rows_of[1].push_back(r);
          break;
        case SplitKind::kTest:
          rows_of[2].push_back(r);
          break;
        default:
          break;
      }
    }

    auto fp_ex =
        MakeFpExchanger(options_.fp_mode, options_.exchange, num_layers, plan);
    auto bp_ex =
        MakeBpExchanger(options_.bp_mode, options_.exchange, num_layers, plan);
    auto exact_fp = MakeFpExchanger(FpMode::kExact, options_.exchange,
                                    num_layers, plan);
    if (have_bag) {
      // Compensation state migrated from the previous membership round,
      // keyed by global vertex id: rows this worker now owns (or now
      // requests) pick up exactly the history they had under the old
      // assignment; rows with no history cold-start as usual.
      ECG_RETURN_IF_ERROR(fp_ex->ImportElasticState(plan, bag));
      ECG_RETURN_IF_ERROR(bp_ex->ImportElasticState(plan, bag));
    }

    std::vector<Matrix> h_owned(L + 1), h_halo(L), p_cache(L + 1),
        z_cache(L + 1), g_halo(L + 1), w(L), bias(L);
    h_owned[0] = std::move(x_local);
    for (int l = 0; l < L; ++l) h_halo[l].Reset(plan.num_halo(), dims[l]);
    ctx->ChargeCompute(cpu.ElapsedSeconds());

    // Feature-halo caching (Section III-A): ship H^0 once, exactly.
    if (options_.cache_features) {
      ECG_TRACE_SCOPE("feature_cache", ctx->worker_id(), 0);
      ECG_RETURN_IF_ERROR(exact_fp->Exchange(ctx, plan, /*epoch=*/0xFFFFFFFFu,
                                             /*layer=*/0, h_owned[0],
                                             &h_halo[0]));
    }
    ctx->BarrierSync();
    if (ctx->worker_id() == 0 && first_round) {
      board.SetEpochBaseline(ctx->total_seconds(),
                             cluster->stats().TotalBytes());
    }
    ctx->BarrierSync();

    // Cooperative epoch checkpoint, taken between two barriers: worker 0
    // stages the snapshot and deposits the global section (parameter
    // servers), every worker deposits its exchanger compensation state,
    // worker 0 seals it.
    auto take_checkpoint = [&](uint32_t next_epoch) {
      if (ctx->worker_id() == 0) ckpt->Begin(next_epoch);
      ctx->BarrierSync();
      std::vector<uint8_t> blob;
      ByteWriter bw(&blob);
      fp_ex->SaveState(&bw);
      bp_ex->SaveState(&bw);
      ckpt->PutWorker(ctx->worker_id(), std::move(blob));
      if (ctx->worker_id() == 0) {
        std::vector<uint8_t> global;
        ByteWriter gw(&global);
        ps->SaveTo(&gw);
        ckpt->PutGlobal(std::move(global));
      }
      ctx->BarrierSync();
      if (ctx->worker_id() == 0) {
        const Status mirrored = ckpt->Commit();
        if (!mirrored.ok()) {
          ECG_LOG(Warning) << "checkpoint disk mirror failed: "
                           << mirrored.ToString();
        }
        if (injector != nullptr) {
          injector->counters().checkpoints.fetch_add(
              1, std::memory_order_relaxed);
        }
        if (obs::StatsEnabled()) {
          obs::RecordStat("ckpt.save", 1.0, next_epoch);
        }
      }
    };

    // Crash recovery: rewind model, optimizer, and compensation state to
    // the latest checkpoint. Every worker pays the modelled restart
    // downtime — BSP lock-step means one dead worker stalls the cluster.
    auto restore_checkpoint = [&]() -> Status {
      {
        const std::vector<uint8_t> blob =
            ckpt->worker_blob(ctx->worker_id());
        ByteReader r(blob);
        ECG_RETURN_IF_ERROR(fp_ex->LoadState(&r));
        ECG_RETURN_IF_ERROR(bp_ex->LoadState(&r));
      }
      if (ctx->worker_id() == 0) {
        const std::vector<uint8_t> global = ckpt->global();
        ByteReader r(global);
        ECG_RETURN_IF_ERROR(ps->LoadFrom(&r));
        board.RollbackTo(ckpt->next_epoch());
      }
      ctx->ChargeCommSeconds(injector->restart_seconds());
      return Status::OK();
    };

    // The initial checkpoint makes a crash during any epoch of the round
    // recoverable, even before the first periodic checkpoint lands — and
    // guarantees elastic transitions always find a snapshot at or after
    // the round's first epoch.
    if (ckpt != nullptr) take_checkpoint(epoch_base);

    // ---- Epoch loop ---------------------------------------------------
    // A while-loop instead of a for: a crash restore rewinds `epoch` to
    // the latest checkpoint; fault-free runs step through it identically.
    // The round covers epochs [epoch_base, round_stop); an elastic crash
    // response or a rebalance trigger breaks out early and the coordinator
    // starts the next round.
    Matrix cat, grads_logits;
    double compute_mark = ctx->compute_seconds();  // rebalancer deposit base
    uint32_t epoch = epoch_base;
    while (epoch < round_stop) {
      if (ckpt != nullptr && injector != nullptr) {
        if (ctx->worker_id() == 0) {
          int32_t victim = -1;
          const bool crashed = injector->TakeCrash(epoch, &victim);
          crash_victim.store(victim, std::memory_order_relaxed);
          crash_pending.store(crashed, std::memory_order_relaxed);
          if (crashed && obs::StatsEnabled()) {
            obs::RecordStat("fault.crash_detected", 1.0, epoch);
          }
        }
        ctx->BarrierSync();
        if (crash_pending.load(std::memory_order_relaxed)) {
          if (ctx->worker_id() == 0 &&
              obs::FlightRecorder::Global().armed()) {
            // Post-mortem of the pre-crash state, before the restore
            // rewinds it. Failure to dump must not fail the recovery.
            (void)obs::FlightRecorder::Global().DumpNow(
                "injected_crash", "epoch=" + std::to_string(epoch));
          }
          if (elastic_crash) {
            // Permanent-failure policy (shrink/replace): leave the round;
            // the coordinator rewinds to the latest checkpoint and
            // delta-repartitions the victim away.
            if (ctx->worker_id() == 0) {
              round_exit.store(1, std::memory_order_relaxed);
            }
            break;
          }
          ECG_RETURN_IF_ERROR(restore_checkpoint());
          ctx->BarrierSync();
          if (ctx->worker_id() == 0) {
            injector->counters().restores.fetch_add(
                1, std::memory_order_relaxed);
            if (obs::StatsEnabled()) {
              obs::RecordStat("ckpt.restore", 1.0, epoch);
            }
          }
          epoch = ckpt->next_epoch();
          continue;
        }
      }
      // Forward propagation (Algorithm 1). With overlap on, the exchange
      // of H^(l-1) is Started as soon as H^(l-1) exists; the interior rows
      // — owned rows whose whole in-neighborhood is owned — aggregate
      // while the messages are in flight, and only the boundary rows wait
      // for Finish. The comm phase then charges max(0, comm − interior
      // compute). Both schedules produce bitwise-identical activations.
      bool fp_pending = false;  // split-phase exchange of layer l-1 in flight
      for (int l = 1; l <= L; ++l) {
        Matrix* wl = &w[l - 1];
        Matrix* bl = &bias[l - 1];
        {
          Phase phase(ctx, &board, epoch, "param_sync");
          ECG_TRACE_SCOPE("param_pull", ctx->worker_id(), l - 1);
          const auto pull = ps->Pull(l - 1, wl, bl);
          ctx->ChargeCommSeconds(pull.Seconds(ctx->net()));
          board.param_bytes.fetch_add(pull.bytes, std::memory_order_relaxed);
          if (obs::StatsEnabled()) {
            obs::RecordStat("ps.pull_bytes",
                            static_cast<double>(pull.bytes), epoch, l - 1);
          }
        }

        if (l == 1 && !options_.cache_features) {
          Phase phase(ctx, &board, epoch, "fp_exchange");
          ECG_TRACE_SCOPE("fp_exchange", ctx->worker_id(), 0);
          if (options_.overlap) {
            ECG_RETURN_IF_ERROR(
                fp_ex->Start(ctx, plan, epoch, 0, h_owned[0]));
            fp_pending = true;
          } else {
            ECG_RETURN_IF_ERROR(
                fp_ex->Exchange(ctx, plan, epoch, 0, h_owned[0], &h_halo[0]));
          }
        }

        Matrix agg;  // SAGE aggregation target; outlives the split phases
        const bool split_fp = fp_pending;
        if (fp_pending) {
          // Interior aggregation reads only owned rows, so it runs under
          // the in-flight exchange and earns comm-hiding credit.
          double credit = 0.0;
          {
            Phase phase(ctx, &board, epoch, "fp_compute");
            ECG_TRACE_SCOPE("fp_compute", ctx->worker_id(), l);
            cpu.Reset();
            if (sage) {
              agg.Reset(plan.num_owned(), dims[l - 1]);
              plan.adj_interior.SpMMRows(h_owned[l - 1], plan.interior_rows,
                                         &agg);
            } else {
              p_cache[l].Reset(plan.num_owned(), dims[l - 1]);
              plan.adj_interior.SpMMRows(h_owned[l - 1], plan.interior_rows,
                                         &p_cache[l]);
              // The transform is row-decomposable too: interior rows of Z
              // go through W while the wire is busy, boundary rows after
              // Finish. (SAGE stacks [H | agg] first, so its transform
              // waits for the halo.)
              z_cache[l].Reset(plan.num_owned(), dims[l]);
              tensor::GemmRows(p_cache[l], *wl, plan.interior_rows,
                               &z_cache[l]);
            }
            credit = ctx->ChargeCompute(cpu.ElapsedSeconds());
          }
          {
            Phase phase(ctx, &board, epoch, "fp_exchange");
            ECG_TRACE_SCOPE("fp_finish", ctx->worker_id(), l - 1);
            ECG_RETURN_IF_ERROR(fp_ex->Finish(ctx, plan, epoch,
                                              static_cast<uint16_t>(l - 1),
                                              &h_halo[l - 1]));
            // Streaming (bit_alloc) decodes bank extra credit: boundary
            // rows of early-arriving peers decoded while wider peers were
            // still in flight. Zero on the non-streaming paths.
            credit += fp_ex->TakeFinishCredit();
            double comm_s = 0.0;
            const double hidden =
                ctx->EndCommPhaseOverlapped("fp_comm", credit, &comm_s);
            if (obs::StatsEnabled()) {
              obs::RecordStat("overlap.hidden_seconds", hidden, epoch, l - 1);
              if (comm_s > 0.0) {
                obs::RecordStat("overlap.frac", hidden / comm_s, epoch,
                                l - 1);
              }
            }
          }
          fp_pending = false;
        }
        {
          Phase phase(ctx, &board, epoch, "fp_compute");
          ECG_TRACE_SCOPE("fp_compute", ctx->worker_id(), l);
          cpu.Reset();
          BuildCat(h_owned[l - 1], h_halo[l - 1], &cat);
          if (sage) {
            // Z = [H | mean_N(H)] W + b; the stacked input is cached for dW.
            if (split_fp) {
              plan.adj_boundary.SpMMRows(cat, plan.boundary_rows, &agg);
            } else {
              plan.adj.SpMM(cat, &agg);
            }
            p_cache[l] = tensor::ConcatCols(h_owned[l - 1], agg);
            tensor::Gemm(p_cache[l], *wl, &z_cache[l]);
          } else if (split_fp) {
            plan.adj_boundary.SpMMRows(cat, plan.boundary_rows, &p_cache[l]);
            // With int8_gemm on, the boundary-row transform re-quantizes
            // the aggregated rows at 8 bits and runs fused in the packed
            // domain (no float materialization of the quantized operand);
            // unsupported shapes fall through to the float kernel.
            if (!(options_.int8_gemm &&
                  compress::Int8GemmRows(p_cache[l], *wl, plan.boundary_rows,
                                         &z_cache[l]))) {
              tensor::GemmRows(p_cache[l], *wl, plan.boundary_rows,
                               &z_cache[l]);
            }
          } else {
            plan.adj.SpMM(cat, &p_cache[l]);
            tensor::Gemm(p_cache[l], *wl, &z_cache[l]);
          }
          tensor::AddRowBias(&z_cache[l], *bl);
          h_owned[l] = z_cache[l];
          if (l < L) tensor::ReluInPlace(&h_owned[l]);
          ctx->ChargeCompute(cpu.ElapsedSeconds());
        }

        if (l < L) {
          Phase phase(ctx, &board, epoch, "fp_exchange");
          ECG_TRACE_SCOPE("fp_exchange", ctx->worker_id(), l);
          if (options_.overlap) {
            ECG_RETURN_IF_ERROR(fp_ex->Start(ctx, plan, epoch,
                                             static_cast<uint16_t>(l),
                                             h_owned[l]));
            fp_pending = true;
          } else {
            ECG_RETURN_IF_ERROR(
                fp_ex->Exchange(ctx, plan, epoch, static_cast<uint16_t>(l),
                                h_owned[l], &h_halo[l]));
          }
        }
      }

      // Loss + local metrics on the final logits.
      uint64_t correct[3], totals[3];
      double local_loss;
      {
        Phase phase(ctx, &board, epoch, "loss");
        ECG_TRACE_SCOPE("loss", ctx->worker_id(), L);
        cpu.Reset();
        local_loss = tensor::SoftmaxCrossEntropy(
            h_owned[L], labels_local, rows_of[0], global_train,
            &grads_logits);
        for (int s = 0; s < 3; ++s) {
          totals[s] = rows_of[s].size();
          correct[s] = static_cast<uint64_t>(
              tensor::Accuracy(h_owned[L], labels_local, rows_of[s]) *
                  static_cast<double>(rows_of[s].size()) +
              0.5);
        }
        ctx->ChargeCompute(cpu.ElapsedSeconds());
      }
      board.AddLocal(ctx->worker_id(), local_loss, correct, totals);

      // Backward propagation (Algorithm 2).
      std::vector<Matrix> dw(L), db(L);
      Matrix g = std::move(grads_logits);  // G^L (loss grad already merged)
      for (int l = L; l >= 1; --l) {
        // With overlap on and an exchange ahead (l > 1), dW/db move after
        // Start so they hide wire time too; they read only already-local
        // matrices, so the reorder cannot change any value.
        const bool overlap_bp = options_.overlap && l > 1;
        if (!overlap_bp) {
          Phase phase(ctx, &board, epoch, "bp_compute");
          ECG_TRACE_SCOPE("bp_compute", ctx->worker_id(), l);
          cpu.Reset();
          tensor::GemmTransposeA(p_cache[l], g, &dw[l - 1]);
          db[l - 1] = tensor::ColumnSums(g);
          ctx->ChargeCompute(cpu.ElapsedSeconds());
        }

        if (l > 1) {
          // Books the overlapped comm charge and the overlap.* stats once
          // the exchange of layer l is finished.
          auto finish_bp = [&](double credit) -> Status {
            Phase phase(ctx, &board, epoch, "bp_exchange");
            ECG_TRACE_SCOPE("bp_finish", ctx->worker_id(), l);
            ECG_RETURN_IF_ERROR(bp_ex->Finish(ctx, plan, epoch,
                                              static_cast<uint16_t>(l),
                                              &g_halo[l]));
            double comm_s = 0.0;
            const double hidden =
                ctx->EndCommPhaseOverlapped("bp_comm", credit, &comm_s);
            if (obs::StatsEnabled()) {
              obs::RecordStat("overlap.hidden_seconds", hidden, epoch, l);
              if (comm_s > 0.0) {
                obs::RecordStat("overlap.frac", hidden / comm_s, epoch, l);
              }
            }
            return Status::OK();
          };

          Matrix g_prev;
          if (sage) {
            // dL/d[H|P] = G W^T splits into a direct self term and an
            // aggregated term; only the aggregated rows cross workers.
            Matrix t_self, t_agg;
            {
              Phase phase(ctx, &board, epoch, "bp_compute");
              ECG_TRACE_SCOPE("bp_compute", ctx->worker_id(), l);
              cpu.Reset();
              Matrix t_full;
              tensor::GemmTransposeB(g, w[l - 1], &t_full);
              t_self = tensor::SliceCols(t_full, 0, dims[l - 1]);
              t_agg =
                  tensor::SliceCols(t_full, dims[l - 1], 2 * dims[l - 1]);
              ctx->ChargeCompute(cpu.ElapsedSeconds());
            }

            g_halo[l].Reset(plan.num_halo(), dims[l - 1]);
            if (!overlap_bp) {
              {
                Phase phase(ctx, &board, epoch, "bp_exchange");
                ECG_TRACE_SCOPE("bp_exchange", ctx->worker_id(), l);
                ECG_RETURN_IF_ERROR(bp_ex->Exchange(ctx, plan, epoch,
                                                    static_cast<uint16_t>(l),
                                                    t_agg, &g_halo[l]));
              }
              {
                Phase phase(ctx, &board, epoch, "bp_compute");
                ECG_TRACE_SCOPE("bp_compute", ctx->worker_id(), l);
                cpu.Reset();
                BuildCat(t_agg, g_halo[l], &cat);
                plan.bp_adj().SpMM(cat, &g_prev);
                tensor::AddInPlace(&g_prev, t_self);
                ctx->ChargeCompute(cpu.ElapsedSeconds());
              }
            } else {
              double credit = 0.0;
              {
                Phase phase(ctx, &board, epoch, "bp_exchange");
                ECG_TRACE_SCOPE("bp_exchange", ctx->worker_id(), l);
                ECG_RETURN_IF_ERROR(bp_ex->Start(ctx, plan, epoch,
                                                 static_cast<uint16_t>(l),
                                                 t_agg));
              }
              {
                Phase phase(ctx, &board, epoch, "bp_compute");
                ECG_TRACE_SCOPE("bp_compute", ctx->worker_id(), l);
                cpu.Reset();
                tensor::GemmTransposeA(p_cache[l], g, &dw[l - 1]);
                db[l - 1] = tensor::ColumnSums(g);
                g_prev.Reset(plan.num_owned(), dims[l - 1]);
                plan.bp_adj_interior().SpMMRows(t_agg, plan.interior_rows,
                                                &g_prev);
                credit = ctx->ChargeCompute(cpu.ElapsedSeconds());
              }
              ECG_RETURN_IF_ERROR(finish_bp(credit));
              {
                Phase phase(ctx, &board, epoch, "bp_compute");
                ECG_TRACE_SCOPE("bp_compute", ctx->worker_id(), l);
                cpu.Reset();
                BuildCat(t_agg, g_halo[l], &cat);
                plan.bp_adj_boundary().SpMMRows(cat, plan.boundary_rows,
                                                &g_prev);
                tensor::AddInPlace(&g_prev, t_self);
                ctx->ChargeCompute(cpu.ElapsedSeconds());
              }
            }
          } else {
            g_halo[l].Reset(plan.num_halo(), dims[l]);
            if (!overlap_bp) {
              {
                Phase phase(ctx, &board, epoch, "bp_exchange");
                ECG_TRACE_SCOPE("bp_exchange", ctx->worker_id(), l);
                ECG_RETURN_IF_ERROR(bp_ex->Exchange(ctx, plan, epoch,
                                                    static_cast<uint16_t>(l),
                                                    g, &g_halo[l]));
              }
              {
                Phase phase(ctx, &board, epoch, "bp_compute");
                ECG_TRACE_SCOPE("bp_compute", ctx->worker_id(), l);
                cpu.Reset();
                BuildCat(g, g_halo[l], &cat);
                Matrix t;
                plan.adj.SpMM(cat, &t);
                tensor::GemmTransposeB(t, w[l - 1], &g_prev);
                ctx->ChargeCompute(cpu.ElapsedSeconds());
              }
            } else {
              double credit = 0.0;
              Matrix t;
              {
                Phase phase(ctx, &board, epoch, "bp_exchange");
                ECG_TRACE_SCOPE("bp_exchange", ctx->worker_id(), l);
                ECG_RETURN_IF_ERROR(bp_ex->Start(ctx, plan, epoch,
                                                 static_cast<uint16_t>(l),
                                                 g));
              }
              {
                Phase phase(ctx, &board, epoch, "bp_compute");
                ECG_TRACE_SCOPE("bp_compute", ctx->worker_id(), l);
                cpu.Reset();
                tensor::GemmTransposeA(p_cache[l], g, &dw[l - 1]);
                db[l - 1] = tensor::ColumnSums(g);
                t.Reset(plan.num_owned(), dims[l]);
                plan.adj_interior.SpMMRows(g, plan.interior_rows, &t);
                // Interior rows of G^(l-1) = rows of t · W^T: complete
                // before Finish, so the projection earns credit too.
                g_prev.Reset(plan.num_owned(), dims[l - 1]);
                tensor::GemmTransposeBRows(t, w[l - 1], plan.interior_rows,
                                           &g_prev);
                credit = ctx->ChargeCompute(cpu.ElapsedSeconds());
              }
              ECG_RETURN_IF_ERROR(finish_bp(credit));
              {
                Phase phase(ctx, &board, epoch, "bp_compute");
                ECG_TRACE_SCOPE("bp_compute", ctx->worker_id(), l);
                cpu.Reset();
                BuildCat(g, g_halo[l], &cat);
                plan.adj_boundary.SpMMRows(cat, plan.boundary_rows, &t);
                tensor::GemmTransposeBRows(t, w[l - 1], plan.boundary_rows,
                                           &g_prev);
                ctx->ChargeCompute(cpu.ElapsedSeconds());
              }
            }
          }
          {
            Phase phase(ctx, &board, epoch, "bp_compute");
            ECG_TRACE_SCOPE("bp_compute", ctx->worker_id(), l - 1);
            cpu.Reset();
            const Matrix mask = tensor::ReluGrad(z_cache[l - 1]);
            tensor::HadamardInPlace(&g_prev, mask);
            g = std::move(g_prev);
            ctx->ChargeCompute(cpu.ElapsedSeconds());
          }
        }
      }

      {
        Phase phase(ctx, &board, epoch, "param_sync");
        ECG_TRACE_SCOPE("param_push", ctx->worker_id(), -1);
        const auto push = ps->Push(ctx->worker_id(), std::move(dw),
                                   std::move(db));
        ctx->ChargeCommSeconds(push.Seconds(ctx->net()));
        board.param_bytes.fetch_add(push.bytes, std::memory_order_relaxed);
        if (obs::StatsEnabled()) {
          obs::RecordStat("ps.push_bytes",
                          static_cast<double>(push.bytes), epoch);
        }
      }

      // Superstep boundary: everyone's push is in, Adam has been applied
      // by the last pusher, clocks align to the slowest worker.
      {
        Phase phase(ctx, &board, epoch, "barrier");
        ctx->BarrierSync();
      }

      // Straggler watch: every worker deposits its compute-clock delta
      // for the epoch, worker 0 folds them into the EWMAs and may arm a
      // migration starting at epoch+1. The two extra barriers publish the
      // verdict; they exist only when the rebalancer is on, so the
      // default path's barrier pattern (and its clocks) is untouched.
      if (elastic_on && controller.rebalance_enabled()) {
        controller.rebalancer().Deposit(
            ctx->worker_id(), ctx->compute_seconds() - compute_mark);
        compute_mark = ctx->compute_seconds();
        ctx->BarrierSync();
        if (ctx->worker_id() == 0) {
          const int32_t straggler = controller.rebalancer().EndEpoch(epoch);
          if (straggler >= 0 && workers >= 2 && epoch + 1 < round_stop) {
            rebal_straggler.store(straggler, std::memory_order_relaxed);
            rebal_break_at.store(epoch + 1, std::memory_order_relaxed);
            round_exit.store(2, std::memory_order_relaxed);
          }
        }
        ctx->BarrierSync();
      }

      // Epoch checkpoint: the barrier above guarantees every push of the
      // epoch is applied, so the parameter servers hold exactly the
      // "start of epoch+1" state the exchangers snapshot alongside. A
      // round boundary (scheduled event or armed rebalance) always
      // checkpoints — the transition migrates state out of this snapshot.
      const bool boundary_next =
          elastic_on &&
          (rebal_break_at.load(std::memory_order_relaxed) == epoch + 1 ||
           (epoch + 1 == round_stop && round_stop < options_.epochs));
      if (ckpt != nullptr &&
          ((checkpoint_every > 0 && (epoch + 1) % checkpoint_every == 0 &&
            epoch + 1 < options_.epochs) ||
           boundary_next)) {
        Phase phase(ctx, &board, epoch, "checkpoint");
        take_checkpoint(epoch + 1);
      }

      if (ctx->worker_id() == 0) {
        board.FinalizeEpoch(epoch, sim_base + ctx->total_seconds(),
                            comm_base + cluster->stats().TotalBytes(),
                            global_train, options_.patience);
        if (options_.log_every > 0 && epoch % options_.log_every == 0) {
          const EpochMetrics& m = board.epochs.back();
          ECG_LOG(Info) << graph_.name << " epoch " << epoch << " loss "
                        << m.loss << " val " << m.val_acc << " test "
                        << m.test_acc << " sim_s " << m.sim_seconds;
        }
      }
      ctx->BarrierSync();
      if (board.stop.load(std::memory_order_relaxed)) break;
      ++epoch;
      if (elastic_on &&
          rebal_break_at.load(std::memory_order_relaxed) == epoch) {
        break;  // migrate rows, then resume at this epoch under a new plan
      }
    }
    return Status::OK();
  };

  // ---- Membership rounds ----------------------------------------------
  // Each iteration trains epochs [epoch_base, round_stop) on a fixed
  // membership. Without elastic there is exactly one iteration.
  while (true) {
    workers = part.num_parts;
    Timer preprocess_timer;
    plans.clear();
    ECG_RETURN_IF_ERROR(
        BuildWorkerPlans(graph_, part, &plans, options_.model.kind));
    ps = std::make_unique<ParameterServerGroup>(
        GcnLayerShapes(options_.model, dims[0], graph_.num_classes()),
        options_.num_servers, workers, options_.model.learning_rate,
        options_.model.seed);
    if (have_ps_blob) {
      ByteReader r(ps_blob);
      ECG_RETURN_IF_ERROR(ps->LoadFrom(&r));
    }
    if (checkpoint_every > 0) {
      ckpt = std::make_unique<CheckpointStore>(workers,
                                               options_.checkpoint_dir);
    }
    cluster = std::make_unique<SimulatedCluster>(
        workers, options_.network, options_.machine,
        elastic_on ? controller.worker_scale()
                   : options_.worker_compute_scale);
    cluster->hub().set_fault_injector(injector);
    round_stop = options_.epochs;
    if (elastic_on) {
      round_stop =
          std::min(options_.epochs, controller.NextEventEpoch(epoch_base));
    }
    crash_pending.store(false, std::memory_order_relaxed);
    crash_victim.store(-1, std::memory_order_relaxed);
    rebal_break_at.store(0, std::memory_order_relaxed);
    rebal_straggler.store(-1, std::memory_order_relaxed);
    round_exit.store(0, std::memory_order_relaxed);
    if (first_round) preprocess_cpu = preprocess_timer.ElapsedSeconds();

    ECG_RETURN_IF_ERROR(cluster->Run(worker_fn));
    sim_base += cluster->MakespanSeconds();
    comm_base += cluster->stats().TotalBytes();

    if (!elastic_on) break;
    if (board.stop.load(std::memory_order_relaxed)) break;

    const int exit_kind = round_exit.load(std::memory_order_relaxed);
    uint32_t resume_epoch = 0;
    elastic::Transition t;
    if (exit_kind == 1) {
      // Crash under shrink/replace policy: rewind the board to the latest
      // checkpoint (the round's initial checkpoint guarantees one exists
      // at or after epoch_base), then plan the membership change. The
      // rolled-back epochs' simulated time stays on the clock — rework is
      // part of the recovery cost.
      resume_epoch = ckpt->next_epoch();
      board.RollbackTo(resume_epoch);
      injector->counters().restores.fetch_add(1, std::memory_order_relaxed);
      if (obs::StatsEnabled()) {
        obs::RecordStat("ckpt.restore", 1.0, resume_epoch);
      }
      ECG_ASSIGN_OR_RETURN(
          t, controller.ApplyCrash(
                 graph_, part, resume_epoch,
                 crash_victim.load(std::memory_order_relaxed)));
    } else if (exit_kind == 2) {
      resume_epoch = rebal_break_at.load(std::memory_order_relaxed);
      ECG_ASSIGN_OR_RETURN(
          t, controller.ApplyRebalance(
                 graph_, part, resume_epoch,
                 rebal_straggler.load(std::memory_order_relaxed)));
    } else {
      if (round_stop >= options_.epochs) break;  // trained to completion
      resume_epoch = round_stop;
      ECG_ASSIGN_OR_RETURN(t,
                           controller.ApplyScheduled(graph_, part, round_stop));
    }

    // Lift the compensation state out of the checkpoint under the OLD
    // membership and re-key it by global vertex id: reconstruct each old
    // worker's exchangers, load its checkpoint section, export. The new
    // round's workers import their slices after the re-partition.
    bag.Clear();
    for (uint32_t w = 0; w < workers; ++w) {
      auto fp = MakeFpExchanger(options_.fp_mode, options_.exchange,
                                static_cast<uint16_t>(L), plans[w]);
      auto bp = MakeBpExchanger(options_.bp_mode, options_.exchange,
                                static_cast<uint16_t>(L), plans[w]);
      const std::vector<uint8_t> blob = ckpt->worker_blob(w);
      ByteReader r(blob);
      ECG_RETURN_IF_ERROR(fp->LoadState(&r));
      ECG_RETURN_IF_ERROR(bp->LoadState(&r));
      fp->ExportElasticState(plans[w], &bag);
      bp->ExportElasticState(plans[w], &bag);
    }
    bag.RemapWorkers(t.old_to_new);
    have_bag = true;
    ps_blob = ckpt->global();
    have_ps_blob = true;

    // Modelled transition cost: the configured fixed pause, plus shipping
    // each moved row's feature/trend/residual state over the wire once,
    // plus (for crashes) the restart downtime the injector charges.
    size_t row_floats = dims[0];
    for (int l = 0; l < L; ++l) row_floats += 2 * dims[l];   // ReqEC trend
    for (int l = 2; l <= L; ++l) row_floats += dims[l];      // ResEC residual
    const double migrate_seconds = options_.network.TransferSeconds(
        t.moved_rows * row_floats * sizeof(float),
        t.moved_rows > 0 ? workers : 0);
    double downtime = eopts.downtime_seconds + migrate_seconds;
    if (exit_kind == 1 && injector != nullptr) {
      downtime += injector->restart_seconds();
    }
    controller.Commit(t, resume_epoch, downtime, sim_base);
    sim_base += downtime;
    part = std::move(t.partition);
    epoch_base = resume_epoch;
    first_round = false;
  }

  return board.ToResult(preprocess_cpu);
}

Result<TrainResult> TrainDistributed(const graph::Graph& g,
                                     uint32_t num_workers,
                                     const TrainOptions& options) {
  ECG_ASSIGN_OR_RETURN(graph::Partition p,
                       graph::HashPartition(g, num_workers));
  DistributedTrainer trainer(g, p, options);
  return trainer.Train();
}

}  // namespace ecg::core
