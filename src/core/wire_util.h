#ifndef ECGRAPH_CORE_WIRE_UTIL_H_
#define ECGRAPH_CORE_WIRE_UTIL_H_

#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace ecg::core {

/// Serializes a dense float matrix (shape + raw rows).
inline void EncodeMatrix(const tensor::Matrix& m, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(m.rows()));
  w->PutU32(static_cast<uint32_t>(m.cols()));
  w->PutU64(m.size());
  w->PutF32Array(m.data(), m.size());
}

inline Status DecodeMatrix(ByteReader* r, tensor::Matrix* out) {
  uint32_t rows = 0, cols = 0;
  uint64_t count = 0;
  ECG_RETURN_IF_ERROR(r->GetU32(&rows));
  ECG_RETURN_IF_ERROR(r->GetU32(&cols));
  ECG_RETURN_IF_ERROR(r->GetU64(&count));
  if (count != static_cast<uint64_t>(rows) * cols) {
    return Status::InvalidArgument(
        "matrix wire size mismatch: header says " + std::to_string(rows) +
        "x" + std::to_string(cols) + " (" +
        std::to_string(static_cast<uint64_t>(rows) * cols) +
        " elements) but carries " + std::to_string(count));
  }
  if (count * sizeof(float) > r->remaining()) {
    return Status::OutOfRange(
        "matrix payload exceeds buffer: needs " +
        std::to_string(count * sizeof(float)) + " bytes, " +
        std::to_string(r->remaining()) + " remain");
  }
  out->Reset(rows, cols);
  return r->GetF32Array(out->data(), count);
}

/// dst.Row(indices[i]) = src.Row(i) (assignment, not accumulation).
inline Status AssignRows(const tensor::Matrix& src,
                         const std::vector<uint32_t>& indices,
                         tensor::Matrix* dst) {
  if (src.rows() != indices.size() || src.cols() != dst->cols()) {
    return Status::InvalidArgument("AssignRows shape mismatch");
  }
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= dst->rows()) {
      return Status::OutOfRange("AssignRows index out of range");
    }
    std::memcpy(dst->Row(indices[i]), src.Row(i),
                src.cols() * sizeof(float));
  }
  return Status::OK();
}

}  // namespace ecg::core

#endif  // ECGRAPH_CORE_WIRE_UTIL_H_
