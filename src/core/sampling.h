#ifndef ECGRAPH_CORE_SAMPLING_H_
#define ECGRAPH_CORE_SAMPLING_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace ecg::core {

/// Per-layer neighbour fan-outs, outermost layer first, matching the
/// paper's "(20,10,5)" notation for a 3-layer model: fanouts[0] applies to
/// the layer nearest the input. 0 means "no sampling" for that layer.
using Fanouts = std::vector<uint32_t>;

/// A sampled symmetric edge set for one layer of one epoch: every vertex
/// keeps at most `fanout` of its incident edges (plus all edges kept by
/// the other endpoint, so the sampled adjacency stays symmetric and BP is
/// the exact adjoint of FP). Sampling is deterministic in (seed, epoch,
/// layer) and identical on every worker — this models EC-Graph-S's offline
/// distributed sampler, which needs no cross-worker coordination at train
/// time.
struct SampledLayerGraph {
  /// CSR-ish neighbour lists over the full vertex id space, sampled.
  std::vector<uint64_t> offsets;
  std::vector<uint32_t> adj;
  /// Realized sampled degree per vertex (offsets deltas), used for the
  /// GCN normalization of the sampled adjacency
  /// 1/sqrt((s_v+1)(s_u+1)).
  uint32_t SampledDegree(uint32_t v) const {
    return static_cast<uint32_t>(offsets[v + 1] - offsets[v]);
  }
  float NormWeight(uint32_t u, uint32_t v) const {
    const double du = SampledDegree(u) + 1.0;
    const double dv = SampledDegree(v) + 1.0;
    return static_cast<float>(1.0 / std::sqrt(du * dv));
  }
};

/// Samples a layer graph. fanout == 0 returns the full neighbour lists.
Result<SampledLayerGraph> SampleLayerGraph(const graph::Graph& g,
                                           uint32_t fanout, uint64_t seed);

}  // namespace ecg::core

#endif  // ECGRAPH_CORE_SAMPLING_H_
