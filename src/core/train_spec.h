#ifndef ECGRAPH_CORE_TRAIN_SPEC_H_
#define ECGRAPH_CORE_TRAIN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/sampling_trainer.h"
#include "core/trainer.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace ecg::core {

enum class PartitionerKind : uint8_t { kHash = 0, kMetis, kStreaming };

/// Runs the selected partitioner.
Result<graph::Partition> MakePartition(const graph::Graph& g,
                                       uint32_t workers,
                                       PartitionerKind kind);

/// The `ecgraph train` configuration surface, parsed by config::Spec from
/// trailing `key=value` arguments (one clause per argument, so values may
/// contain ',' — e.g. elastic=leave@epoch=3:worker=1,join@epoch=5).
///
/// Flat keys (defaults in parentheses): workers(6), epochs(100), layers(2),
/// hidden(16), lr(0.01), model=gcn|sage, fp=exact|cp|reqec|delayed(reqec),
/// bp=exact|cp|resec(resec), fp_bits(2), bp_bits(2), adapt=on|off(off),
/// partitioner=hash|metis|streaming(hash), patience(0), overlap=on|off(on),
/// int8_gemm=on|off(off), log_every(10), checkpoint_every(0),
/// checkpoint_dir=DIR, elastic=SPEC, worker_scale=A:B:...
///
/// `sampling=SPEC` switches to the SamplingTrainer (EC-Graph-S /
/// DistDGL-like modes). The nested spec joins clauses with ':':
///   fanout=AxBx...   per-layer fan-outs ('x'-separated, default 10/layer)
///   online=on|off    per-iteration sampling RPCs (default off)
///   seed=N           sampler seed (default 77)
/// Shared keys (model, epochs, bits, overlap, ...) apply to both trainers;
/// fp/bp left at their defaults map to cp under sampling (the compensated
/// modes need the stable halo layout of full-batch training).
struct TrainSpec {
  TrainOptions options;
  SamplingTrainOptions sampling;
  bool use_sampling = false;
  uint32_t workers = 6;
  PartitionerKind partitioner = PartitionerKind::kHash;
  /// Raw `sampling=` value; parsed into `sampling` when non-empty.
  std::string sampling_spec_text;
};

/// Parses trailing `key=value` arguments (each argument one clause).
Result<TrainSpec> ParseTrainSpec(const std::vector<std::string>& args);

/// Auto-generated reference for the train keys (and the nested sampling
/// spec), rendered from the config::Spec bindings.
std::string TrainSpecHelp();

}  // namespace ecg::core

#endif  // ECGRAPH_CORE_TRAIN_SPEC_H_
