#include "core/halo.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>

namespace ecg::core {
namespace {

// Extracts the listed rows of `src` into a rows x cols CSR slice. Rows not
// listed come out empty; listed rows keep their exact (sorted, merged)
// nonzero order, so SpMMRows over the slice matches SpMM over `src`
// bitwise on those rows.
Result<tensor::CsrMatrix> SliceRows(const tensor::CsrMatrix& src,
                                    const std::vector<uint32_t>& row_ids,
                                    size_t cols) {
  std::vector<std::tuple<uint32_t, uint32_t, float>> triplets;
  for (uint32_t r : row_ids) {
    for (uint64_t i = src.row_ptr()[r]; i < src.row_ptr()[r + 1]; ++i) {
      triplets.emplace_back(r, src.col_idx()[i], src.values()[i]);
    }
  }
  return tensor::CsrMatrix::FromTriplets(src.rows(), cols, triplets);
}

// Classifies each local row of `adj` as interior (all columns < num_owned)
// or boundary, then builds the row-partitioned slices.
Status SplitInteriorBoundary(WorkerPlan* plan) {
  plan->interior_rows.clear();
  plan->boundary_rows.clear();
  const auto& adj = plan->adj;
  const uint32_t num_owned = static_cast<uint32_t>(plan->num_owned());
  for (uint32_t r = 0; r < num_owned; ++r) {
    bool interior = true;
    for (uint64_t i = adj.row_ptr()[r]; i < adj.row_ptr()[r + 1]; ++i) {
      if (adj.col_idx()[i] >= num_owned) {
        interior = false;
        break;
      }
    }
    (interior ? plan->interior_rows : plan->boundary_rows).push_back(r);
  }
  ECG_ASSIGN_OR_RETURN(plan->adj_interior,
                       SliceRows(adj, plan->interior_rows, num_owned));
  ECG_ASSIGN_OR_RETURN(plan->adj_boundary,
                       SliceRows(adj, plan->boundary_rows, plan->cat_rows()));
  if (plan->adj_bp.nnz() > 0) {
    // adj_bp shares adj's sparsity, so the same classification applies.
    ECG_ASSIGN_OR_RETURN(
        plan->adj_bp_interior,
        SliceRows(plan->adj_bp, plan->interior_rows, num_owned));
    ECG_ASSIGN_OR_RETURN(
        plan->adj_bp_boundary,
        SliceRows(plan->adj_bp, plan->boundary_rows, plan->cat_rows()));
  }
  return Status::OK();
}

}  // namespace

Status BuildWorkerPlans(const graph::Graph& g,
                        const graph::Partition& partition,
                        std::vector<WorkerPlan>* plans, GnnKind kind) {
  AdjacencyView view;
  view.num_vertices = g.num_vertices();
  view.neighbors = [&g](uint32_t v) { return g.Neighbors(v); };
  if (kind == GnnKind::kSage) {
    view.norm_weight = [&g](uint32_t v, uint32_t u) {
      return g.MeanWeight(v, u);
    };
    view.norm_weight_bp = [&g](uint32_t v, uint32_t u) {
      return g.MeanWeight(u, v);  // transpose values
    };
  } else {
    view.norm_weight = [&g](uint32_t u, uint32_t v) {
      return g.NormWeight(u, v);
    };
  }
  return BuildWorkerPlansFromView(view, partition, plans);
}

Status BuildWorkerPlansFromView(const AdjacencyView& g,
                                const graph::Partition& partition,
                                std::vector<WorkerPlan>* plans) {
  if (partition.owner.size() != g.num_vertices) {
    return Status::InvalidArgument("partition does not match graph");
  }
  const uint32_t parts = partition.num_parts;
  plans->assign(parts, WorkerPlan{});

  for (uint32_t w = 0; w < parts; ++w) {
    WorkerPlan& plan = (*plans)[w];
    plan.worker_id = w;
    plan.owned = partition.members[w];  // already sorted ascending

    std::unordered_map<uint32_t, uint32_t> local_row;
    local_row.reserve(plan.owned.size() * 2);
    for (uint32_t r = 0; r < plan.owned.size(); ++r) {
      local_row[plan.owned[r]] = r;
    }

    // Halo = remote neighbours of owned vertices, deduped and sorted.
    for (uint32_t v : plan.owned) {
      for (uint32_t u : g.neighbors(v)) {
        if (partition.owner[u] != w) plan.halo.push_back(u);
      }
    }
    std::sort(plan.halo.begin(), plan.halo.end());
    plan.halo.erase(std::unique(plan.halo.begin(), plan.halo.end()),
                    plan.halo.end());
    plan.halo_owner.resize(plan.halo.size());
    std::unordered_map<uint32_t, uint32_t> halo_row;
    halo_row.reserve(plan.halo.size() * 2);
    for (uint32_t i = 0; i < plan.halo.size(); ++i) {
      plan.halo_owner[i] = partition.owner[plan.halo[i]];
      halo_row[plan.halo[i]] = i;
    }

    // recv_halo_rows[p]: halo rows owned by p, ascending global id (halo is
    // sorted so the natural order is already ascending).
    plan.recv_halo_rows.assign(parts, {});
    for (uint32_t i = 0; i < plan.halo.size(); ++i) {
      plan.recv_halo_rows[plan.halo_owner[i]].push_back(i);
    }

    // Âsub rows over [owned | halo] columns with GCN normalization,
    // including the self loop of (A + I).
    std::vector<std::tuple<uint32_t, uint32_t, float>> triplets;
    for (uint32_t r = 0; r < plan.owned.size(); ++r) {
      const uint32_t v = plan.owned[r];
      triplets.emplace_back(r, r, g.norm_weight(v, v));
      for (uint32_t u : g.neighbors(v)) {
        uint32_t col;
        if (partition.owner[u] == w) {
          col = local_row[u];
        } else {
          col = static_cast<uint32_t>(plan.owned.size()) + halo_row[u];
        }
        triplets.emplace_back(r, col, g.norm_weight(v, u));
      }
    }
    ECG_ASSIGN_OR_RETURN(
        plan.adj, tensor::CsrMatrix::FromTriplets(
                      plan.owned.size(), plan.cat_rows(), triplets));
    if (g.norm_weight_bp) {
      // Same sparsity, transposed values: entry (v, u) = Ā[u, v].
      std::vector<std::tuple<uint32_t, uint32_t, float>> bp_triplets;
      bp_triplets.reserve(triplets.size());
      for (uint32_t r = 0; r < plan.owned.size(); ++r) {
        const uint32_t v = plan.owned[r];
        bp_triplets.emplace_back(r, r, g.norm_weight_bp(v, v));
        for (uint32_t u : g.neighbors(v)) {
          uint32_t col;
          if (partition.owner[u] == w) {
            col = local_row[u];
          } else {
            col = static_cast<uint32_t>(plan.owned.size()) + halo_row[u];
          }
          bp_triplets.emplace_back(r, col, g.norm_weight_bp(v, u));
        }
      }
      ECG_ASSIGN_OR_RETURN(
          plan.adj_bp, tensor::CsrMatrix::FromTriplets(
                           plan.owned.size(), plan.cat_rows(), bp_triplets));
    }
    ECG_RETURN_IF_ERROR(SplitInteriorBoundary(&plan));
    plan.send_rows.assign(parts, {});
  }

  // send_rows[w][p] mirrors plans[p].recv_halo_rows[w]: the same vertices,
  // same (ascending global id) order, expressed as local rows of w.
  for (uint32_t p = 0; p < parts; ++p) {
    const WorkerPlan& receiver = (*plans)[p];
    for (uint32_t w = 0; w < parts; ++w) {
      if (w == p) continue;
      WorkerPlan& sender = (*plans)[w];
      auto& rows = sender.send_rows[p];
      for (uint32_t halo_row_idx : receiver.recv_halo_rows[w]) {
        const uint32_t global_id = receiver.halo[halo_row_idx];
        // Owned lists are sorted: binary search for the local row.
        const auto it = std::lower_bound(sender.owned.begin(),
                                         sender.owned.end(), global_id);
        rows.push_back(
            static_cast<uint32_t>(it - sender.owned.begin()));
      }
    }
  }
  return Status::OK();
}

}  // namespace ecg::core
