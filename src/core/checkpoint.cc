#include "core/checkpoint.h"

#include <cstdio>
#include <fstream>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/logging.h"

namespace ecg::core {
namespace {

constexpr uint32_t kCheckpointMagic = 0x4B474345u;  // "ECGK"
constexpr uint8_t kCheckpointVersion = 1;

/// Reads `path` into *file and validates magic, version, body length, and
/// CRC32C. On success *r is a reader positioned at the start of the body
/// (next_epoch onward), viewing *file.
Status ReadCheckpointBody(const std::string& path, std::vector<uint8_t>* file,
                          ByteReader* r) {
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return Status::IoError("cannot open checkpoint file " + path);
    const std::streamsize size = in.tellg();
    in.seekg(0);
    file->resize(static_cast<size_t>(size));
    in.read(reinterpret_cast<char*>(file->data()), size);
    if (!in) return Status::IoError("short read from checkpoint " + path);
  }
  *r = ByteReader(*file);
  uint32_t magic = 0, crc = 0;
  uint8_t version = 0;
  uint64_t body_size = 0;
  ECG_RETURN_IF_ERROR(r->GetU32(&magic));
  ECG_RETURN_IF_ERROR(r->GetU8(&version));
  ECG_RETURN_IF_ERROR(r->GetU32(&crc));
  ECG_RETURN_IF_ERROR(r->GetU64(&body_size));
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument(path + " is not a checkpoint file");
  }
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument(
        "checkpoint version mismatch: got " + std::to_string(version) +
        " want " + std::to_string(kCheckpointVersion));
  }
  if (body_size != r->remaining()) {
    return Status::InvalidArgument(
        "checkpoint body size mismatch: header says " +
        std::to_string(body_size) + " bytes, " +
        std::to_string(r->remaining()) + " present");
  }
  const uint8_t* body = file->data() + (file->size() - body_size);
  const uint32_t actual = Crc32c(body, body_size);
  if (actual != crc) {
    return Status::InvalidArgument("checkpoint CRC mismatch in " + path);
  }
  return Status::OK();
}

}  // namespace

CheckpointStore::CheckpointStore(uint32_t num_workers, std::string dir)
    : num_workers_(num_workers), dir_(std::move(dir)) {
  ECG_CHECK(num_workers_ >= 1) << "checkpoint store needs >= 1 worker";
}

void CheckpointStore::Begin(uint32_t next_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  staging_.next_epoch = next_epoch;
  staging_.global.clear();
  staging_.workers.assign(num_workers_, {});
}

void CheckpointStore::PutGlobal(std::vector<uint8_t> blob) {
  std::lock_guard<std::mutex> lock(mu_);
  staging_.global = std::move(blob);
}

void CheckpointStore::PutWorker(uint32_t worker, std::vector<uint8_t> blob) {
  std::lock_guard<std::mutex> lock(mu_);
  ECG_CHECK(worker < num_workers_)
      << "checkpoint section from unknown worker " << worker;
  ECG_CHECK(staging_.workers.size() == num_workers_)
      << "PutWorker before Begin";
  staging_.workers[worker] = std::move(blob);
}

Status CheckpointStore::Commit() {
  std::lock_guard<std::mutex> lock(mu_);
  ECG_CHECK(staging_.workers.size() == num_workers_)
      << "Commit before Begin";
  latest_ = std::move(staging_);
  staging_ = Snapshot{};
  has_latest_ = true;
  if (dir_.empty()) return Status::OK();
  return WriteFileLocked();
}

bool CheckpointStore::has_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_latest_;
}

uint32_t CheckpointStore::next_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  ECG_CHECK(has_latest_) << "next_epoch with no committed checkpoint";
  return latest_.next_epoch;
}

std::vector<uint8_t> CheckpointStore::global() const {
  std::lock_guard<std::mutex> lock(mu_);
  ECG_CHECK(has_latest_) << "global with no committed checkpoint";
  return latest_.global;
}

std::vector<uint8_t> CheckpointStore::worker_blob(uint32_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  ECG_CHECK(has_latest_) << "worker_blob with no committed checkpoint";
  ECG_CHECK(worker < num_workers_) << "worker_blob index out of range";
  return latest_.workers[worker];
}

std::string CheckpointStore::LatestPath() const {
  if (dir_.empty()) return "";
  return dir_ + "/checkpoint_latest.bin";
}

Status CheckpointStore::WriteFileLocked() const {
  std::vector<uint8_t> body;
  ByteWriter w(&body);
  w.PutU32(latest_.next_epoch);
  w.PutU32(num_workers_);
  w.PutBytes(latest_.global);
  for (const auto& blob : latest_.workers) w.PutBytes(blob);

  std::vector<uint8_t> file;
  ByteWriter fw(&file);
  fw.PutU32(kCheckpointMagic);
  fw.PutU8(kCheckpointVersion);
  fw.PutU32(Crc32c(body.data(), body.size()));
  fw.PutU64(body.size());
  file.insert(file.end(), body.begin(), body.end());

  const std::string path = LatestPath();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open checkpoint temp file " + tmp);
    }
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
    if (!out) {
      return Status::IoError("short write to checkpoint temp file " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status CheckpointStore::LoadFromFile(const std::string& path) {
  std::vector<uint8_t> file;
  ByteReader r(file);
  ECG_RETURN_IF_ERROR(ReadCheckpointBody(path, &file, &r));

  Snapshot snap;
  uint32_t workers = 0;
  ECG_RETURN_IF_ERROR(r.GetU32(&snap.next_epoch));
  ECG_RETURN_IF_ERROR(r.GetU32(&workers));
  if (workers != num_workers_) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(workers) + " workers, store has " +
        std::to_string(num_workers_));
  }
  ECG_RETURN_IF_ERROR(r.GetBytes(&snap.global));
  snap.workers.resize(num_workers_);
  for (uint32_t i = 0; i < num_workers_; ++i) {
    ECG_RETURN_IF_ERROR(r.GetBytes(&snap.workers[i]));
  }

  std::lock_guard<std::mutex> lock(mu_);
  latest_ = std::move(snap);
  has_latest_ = true;
  return Status::OK();
}

Result<CheckpointGlobalSection> LoadCheckpointGlobal(const std::string& path) {
  std::vector<uint8_t> file;
  ByteReader r(file);
  ECG_RETURN_IF_ERROR(ReadCheckpointBody(path, &file, &r));
  CheckpointGlobalSection out;
  ECG_RETURN_IF_ERROR(r.GetU32(&out.next_epoch));
  ECG_RETURN_IF_ERROR(r.GetU32(&out.num_workers));
  ECG_RETURN_IF_ERROR(r.GetBytes(&out.global));
  return out;
}

}  // namespace ecg::core
