#ifndef ECGRAPH_CORE_CHECKPOINT_H_
#define ECGRAPH_CORE_CHECKPOINT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ecg::core {

/// Epoch checkpoint for crash recovery inside one SimulatedCluster::Run.
///
/// A checkpoint is assembled cooperatively between two BSP barriers at the
/// end of an epoch: worker 0 opens a staging snapshot (Begin) and deposits
/// the global section (parameter-server weights + Adam moments), every
/// worker deposits its own section (FP/BP exchanger compensation state),
/// and worker 0 seals it (Commit). Commit atomically replaces the
/// in-memory "latest" snapshot — restore always sees either the previous
/// complete checkpoint or the new one, never a half-written mix — and,
/// when a directory was given, mirrors it to disk via write-to-temp +
/// rename so a crash mid-write cannot corrupt the on-disk copy.
///
/// The store itself is transport-agnostic bytes; the trainer owns the
/// meaning of the sections.
class CheckpointStore {
 public:
  /// `dir` empty = in-memory only (the common case for tests and the
  /// simulated cluster, whose workers share one address space).
  explicit CheckpointStore(uint32_t num_workers, std::string dir = "");

  uint32_t num_workers() const { return num_workers_; }

  /// Worker 0: opens a staging snapshot for a checkpoint that resumes at
  /// `next_epoch`. Clears any previous staging state.
  void Begin(uint32_t next_epoch);

  /// Worker 0: deposits the global section (parameter servers).
  void PutGlobal(std::vector<uint8_t> blob);

  /// Any worker: deposits its per-worker section (exchanger state).
  void PutWorker(uint32_t worker, std::vector<uint8_t> blob);

  /// Worker 0, after all deposits: publishes staging as the latest
  /// restorable snapshot. The in-memory publish cannot fail; the returned
  /// status reports the optional disk mirror (a failed mirror leaves the
  /// in-memory checkpoint valid).
  Status Commit();

  bool has_checkpoint() const;
  /// Epoch the latest checkpoint resumes at.
  uint32_t next_epoch() const;
  /// Read-only views of the latest snapshot's sections. The references
  /// stay valid until the next Commit; callers read them between barriers
  /// while no checkpoint is in flight.
  std::vector<uint8_t> global() const;
  std::vector<uint8_t> worker_blob(uint32_t worker) const;

  /// Path of the on-disk mirror ("" when in-memory only).
  std::string LatestPath() const;

  /// Loads a snapshot previously written by Commit's disk mirror into the
  /// latest slot (cold-start restore). Validates magic, version, worker
  /// count, and the whole-file CRC32C.
  Status LoadFromFile(const std::string& path);

 private:
  struct Snapshot {
    uint32_t next_epoch = 0;
    std::vector<uint8_t> global;
    std::vector<std::vector<uint8_t>> workers;
  };

  Status WriteFileLocked() const;

  const uint32_t num_workers_;
  const std::string dir_;

  mutable std::mutex mu_;
  Snapshot staging_;
  Snapshot latest_;
  bool has_latest_ = false;
};

/// The worker-count-independent part of a checkpoint file: the epoch it
/// resumes at and the global (parameter-server) section. The serve tier
/// loads trained weights through this without knowing how many workers
/// produced the checkpoint.
struct CheckpointGlobalSection {
  uint32_t next_epoch = 0;
  uint32_t num_workers = 0;
  std::vector<uint8_t> global;
};

/// Parses a checkpoint file written by CheckpointStore (validating magic,
/// version, and CRC32C) and returns just the global section.
Result<CheckpointGlobalSection> LoadCheckpointGlobal(const std::string& path);

}  // namespace ecg::core

#endif  // ECGRAPH_CORE_CHECKPOINT_H_
