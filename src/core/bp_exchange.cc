#include <cmath>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/trace.h"
#include "compress/bit_alloc.h"
#include "core/exchange.h"
#include "core/wire_util.h"
#include "tensor/ops.h"

namespace ecg::core {
namespace {

using compress::QuantizedMatrix;
using compress::QuantizerOptions;
using dist::MessageHub;
using tensor::Matrix;

/// Per-peer payload buffers for the parallel encode/decode loops; indexed
/// by peer id, only active-peer slots are ever touched.
using PeerBuffers = std::vector<std::vector<uint8_t>>;

/// Books one BP degradation event on the receive side: the gradient halo
/// rows from `peer` never arrived, so they stay zero this epoch (g_halo is
/// reset every epoch) — the gradient contribution is simply skipped.
void CountBpSkipped(uint32_t epoch, uint16_t layer, uint32_t peer) {
  obs::RecordStat("fault.degraded_skip", 1.0, epoch, layer,
                  static_cast<int32_t>(peer));
}

void SendToActivePeers(dist::WorkerContext* ctx, const WorkerPlan& plan,
                       uint64_t tag, PeerBuffers* bufs) {
  for (uint32_t p = 0; p < ctx->num_workers(); ++p) {
    if (ActivePeer(plan, p)) ctx->Send(p, tag, std::move((*bufs)[p]));
  }
}

/// Send-side compression telemetry, keyed (epoch, layer, peer); raw is the
/// float32 weight of the gradient rows (the Non-cp baseline).
void RecordBpSendStats(uint32_t epoch, uint16_t layer, uint32_t peer,
                       size_t rows, size_t cols, size_t wire_bytes,
                       int bits) {
  const double raw = static_cast<double>(rows * cols * sizeof(float));
  obs::RecordStat("bp.raw_bytes", raw, epoch, layer,
                  static_cast<int32_t>(peer));
  obs::RecordStat("bp.wire_bytes", static_cast<double>(wire_bytes), epoch,
                  layer, static_cast<int32_t>(peer));
  if (wire_bytes > 0) {
    obs::RecordStat("bp.ratio", raw / static_cast<double>(wire_bytes),
                    epoch, layer, static_cast<int32_t>(peer));
  }
  obs::RecordStat("bp.bits", static_cast<double>(bits), epoch, layer,
                  static_cast<int32_t>(peer));
}

/// Non-cp backward: raw float32 gradient rows.
class ExactBpExchanger : public BpExchanger {
 public:
  explicit ExactBpExchanger(const ExchangeConfig& config)
      : allow_loss_(config.fault_fallback) {}

  Status Start(dist::WorkerContext* ctx, const WorkerPlan& plan,
               uint32_t epoch, uint16_t layer,
               const Matrix& g_owned) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagBpData);
    PeerBuffers out(ctx->num_workers());
    ECG_RETURN_IF_ERROR(ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("bp_encode", ctx->worker_id(), layer);
          const Matrix rows = tensor::GatherRows(g_owned, plan.send_rows[p]);
          ByteWriter w(&out[p]);
          EncodeMatrix(rows, &w);
          if (obs::StatsEnabled()) {
            RecordBpSendStats(epoch, layer, p, rows.rows(), rows.cols(),
                              out[p].size(), /*bits=*/32);
          }
          return Status::OK();
        }));
    SendToActivePeers(ctx, plan, tag, &out);
    return Status::OK();
  }

  Status Finish(dist::WorkerContext* ctx, const WorkerPlan& plan,
                uint32_t epoch, uint16_t layer, Matrix* g_halo) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagBpData);
    ECG_ASSIGN_OR_RETURN(PeerRecvResult in, TryRecvFromActivePeers(
                             ctx, plan, tag, allow_loss_));
    return ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("bp_decode", ctx->worker_id(), layer);
          if (in.lost[p]) {
            CountBpSkipped(epoch, layer, p);
            return Status::OK();
          }
          ByteReader r(in.bufs[p]);
          Matrix rows;
          ECG_RETURN_IF_ERROR(DecodeMatrix(&r, &rows));
          return AssignRows(rows, plan.recv_halo_rows[p], g_halo);
        });
  }

 private:
  const bool allow_loss_;
};

/// Cp-bp-B: quantize gradients with getMaxMin bounds (Algorithm 6 lines
/// 4-5) but no compensation.
class CompressedBpExchanger : public BpExchanger {
 public:
  explicit CompressedBpExchanger(const ExchangeConfig& config)
      : config_(config) {}

  Status Start(dist::WorkerContext* ctx, const WorkerPlan& plan,
               uint32_t epoch, uint16_t layer,
               const Matrix& g_owned) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagBpData);
    QuantizerOptions qopts{config_.bp_bits, config_.value_mode};
    // Fused: quantize each peer's gradient rows straight out of g_owned
    // and decode straight into the halo matrix, all peers in parallel.
    PeerBuffers out(ctx->num_workers());
    ECG_RETURN_IF_ERROR(ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("bp_encode", ctx->worker_id(), layer);
          ECG_ASSIGN_OR_RETURN(
              QuantizedMatrix q,
              compress::QuantizeRows(g_owned, plan.send_rows[p], qopts));
          ByteWriter w(&out[p]);
          q.AppendTo(&w);
          if (obs::StatsEnabled()) {
            RecordBpSendStats(epoch, layer, p, q.rows, q.cols,
                              out[p].size(), q.bits);
            ECG_ASSIGN_OR_RETURN(const double sat,
                                 compress::BucketSaturationRate(q));
            obs::RecordStat("bp.saturation", sat, epoch, layer,
                            static_cast<int32_t>(p));
          }
          return Status::OK();
        }));
    SendToActivePeers(ctx, plan, tag, &out);
    return Status::OK();
  }

  Status Finish(dist::WorkerContext* ctx, const WorkerPlan& plan,
                uint32_t epoch, uint16_t layer, Matrix* g_halo) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagBpData);
    ECG_ASSIGN_OR_RETURN(PeerRecvResult in, TryRecvFromActivePeers(
                             ctx, plan, tag, config_.fault_fallback));
    return ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("bp_decode", ctx->worker_id(), layer);
          if (in.lost[p]) {
            CountBpSkipped(epoch, layer, p);
            return Status::OK();
          }
          ByteReader r(in.bufs[p]);
          QuantizedMatrix q;
          ECG_RETURN_IF_ERROR(QuantizedMatrix::ParseFrom(&r, &q));
          return compress::DequantizeInto(q, plan.recv_halo_rows[p], g_halo);
        });
  }

 private:
  const ExchangeConfig config_;
};

/// The paper's ResEC-BP (Algorithms 5-6, Eqs. 11-12): the responder keeps
/// the per-vertex quantization residual δ of the previous epoch and folds
/// it into the next epoch's message before compressing:
///   G_cpt^t = G^t + δ^{t-1};  M^t = C(G_cpt^t);  δ^t = G_cpt^t − M^t.
class ResEcBpExchanger : public BpExchanger {
 public:
  ResEcBpExchanger(const ExchangeConfig& config, uint16_t num_layers,
                   const WorkerPlan& plan)
      : config_(config) {
    // BP exchanges layers 2..L inclusive; index directly by layer id.
    delta_.resize(static_cast<size_t>(num_layers) + 1);
    bp_bits_.resize(delta_.size());
    feed_.resize(delta_.size());
    for (size_t l = 0; l < delta_.size(); ++l) {
      delta_[l].resize(plan.send_rows.size());
      bp_bits_[l].assign(plan.send_rows.size(), config.bp_bits);
      feed_[l].resize(plan.send_rows.size());
    }
  }

  Status Start(dist::WorkerContext* ctx, const WorkerPlan& plan,
               uint32_t epoch, uint16_t layer,
               const Matrix& g_owned) override {
    ECG_CHECK(layer < delta_.size()) << "ResEC layer out of range";
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagBpData);
    // Sender-side bit allocation: ResEC owns both the gradient and the
    // residual, so unlike FP no handshake is needed — the quantized wire
    // format is self-describing and the receiver decodes whatever width
    // each message carries. Solve once per epoch (on the first exchanged
    // BP layer) from the previous epoch's feed.
    if (config_.bit_alloc && epoch > 0 &&
        epoch % config_.trend_period == 0 &&
        static_cast<int64_t>(epoch) != last_solve_epoch_) {
      SolveBits(plan, epoch);
      last_solve_epoch_ = epoch;
    }
    dist::FaultInjector* injector = ctx->fault_injector();
    // Fused error-feedback-then-compress per peer (each peer's residual
    // state is disjoint, so the whole encode fans out in parallel).
    PeerBuffers out(ctx->num_workers());
    ECG_RETURN_IF_ERROR(ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("bp_encode", ctx->worker_id(), layer);
          QuantizerOptions qopts{config_.bit_alloc ? bp_bits_[layer][p]
                                                  : config_.bp_bits,
                                 config_.value_mode};
          Matrix g_cpt = tensor::GatherRows(g_owned, plan.send_rows[p]);
          Matrix& delta = delta_[layer][p];
          if (delta.rows() != g_cpt.rows() || delta.cols() != g_cpt.cols()) {
            delta.Reset(g_cpt.rows(), g_cpt.cols());  // δ^{-1} = 0
          }
          tensor::AddInPlace(&g_cpt, delta);  // G + δ^{t-1}
          ECG_ASSIGN_OR_RETURN(QuantizedMatrix q,
                               compress::Quantize(g_cpt, qopts));
          ECG_ASSIGN_OR_RETURN(Matrix decoded, compress::Dequantize(q));
          if (config_.fault_fallback && injector != nullptr &&
              injector->PermanentlyLost(ctx->worker_id(), p, tag)) {
            // The receiver will exhaust its retries and get nothing, i.e.
            // the effective transmitted message is 0 — so the residual is
            // the entire compensated gradient: δ^t = G_cpt (Eqs. 11-12
            // fold the whole loss into the next epoch's message).
            delta = std::move(g_cpt);
            injector->counters().degraded_resec.fetch_add(
                1, std::memory_order_relaxed);
            obs::RecordStat("fault.degraded_resec", 1.0, epoch, layer,
                            static_cast<int32_t>(p));
          } else {
            // δ^t = (G + δ^{t-1}) − C(G + δ^{t-1})  (Eq. 11).
            delta = std::move(g_cpt);
            tensor::SubInPlace(&delta, decoded);
          }
          if (config_.bit_alloc) {
            // Solver feed: this group's element count, the quantizer range
            // it needed, and the residual pressure left after compression
            // — a group whose residual keeps growing bids for more bits.
            const double elements =
                static_cast<double>(q.rows) * static_cast<double>(q.cols);
            const double range = static_cast<double>(q.bucket_width) *
                                 std::exp2(q.bits);
            GroupFeed& f = feed_[layer][p];
            f.elements = elements;
            f.sensitivity =
                elements * range * range + delta.SquaredNorm();
            f.valid = elements > 0.0 && range > 0.0;
          }
          ByteWriter w(&out[p]);
          q.AppendTo(&w);
          if (obs::StatsEnabled()) {
            RecordBpSendStats(epoch, layer, p, q.rows, q.cols,
                              out[p].size(), q.bits);
            // ||δ^t||₂: the error-feedback state the next epoch will fold
            // back in (Theorem 1's bounded-residual premise).
            obs::RecordStat("resec.residual_l2",
                            std::sqrt(delta.SquaredNorm()), epoch, layer,
                            static_cast<int32_t>(p));
            ECG_ASSIGN_OR_RETURN(const double sat,
                                 compress::BucketSaturationRate(q));
            obs::RecordStat("bp.saturation", sat, epoch, layer,
                            static_cast<int32_t>(p));
          }
          return Status::OK();
        }));
    SendToActivePeers(ctx, plan, tag, &out);
    return Status::OK();
  }

  Status Finish(dist::WorkerContext* ctx, const WorkerPlan& plan,
                uint32_t epoch, uint16_t layer, Matrix* g_halo) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagBpData);
    ECG_ASSIGN_OR_RETURN(PeerRecvResult in, TryRecvFromActivePeers(
                             ctx, plan, tag, config_.fault_fallback));
    return ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("bp_decode", ctx->worker_id(), layer);
          if (in.lost[p]) {
            // The sender detected the same permanent loss (same seeded
            // schedule) and kept the full G_cpt in its residual; skipping
            // here is what makes the compensation bookkeeping balance.
            CountBpSkipped(epoch, layer, p);
            return Status::OK();
          }
          ByteReader r(in.bufs[p]);
          QuantizedMatrix q;
          ECG_RETURN_IF_ERROR(QuantizedMatrix::ParseFrom(&r, &q));
          return compress::DequantizeInto(q, plan.recv_halo_rows[p], g_halo);
        });
  }

  /// Residual magnitude toward a peer (Theorem-1 validation hook).
  double DeltaSquaredNorm(uint16_t layer, uint32_t peer) const {
    return delta_[layer][peer].SquaredNorm();
  }

  /// Sender width for (layer, peer) under bit_alloc (bench/test hook).
  int BitsTowards(uint16_t layer, uint32_t peer) const override {
    return bp_bits_[layer][peer];
  }

  /// Checkpoint format: every per-(layer, peer) residual matrix in index
  /// order — the error-feedback state Theorem 1's bound lives on — then
  /// the per-layer sender width vectors of the bit_alloc path.
  void SaveState(ByteWriter* w) const override {
    for (const auto& per_layer : delta_) {
      for (const Matrix& delta : per_layer) EncodeMatrix(delta, w);
    }
    for (const auto& per_layer : bp_bits_) {
      std::vector<uint32_t> bits(per_layer.begin(), per_layer.end());
      w->PutU32Vector(bits);
    }
  }

  Status LoadState(ByteReader* r) override {
    for (auto& per_layer : delta_) {
      for (Matrix& delta : per_layer) {
        ECG_RETURN_IF_ERROR(DecodeMatrix(r, &delta));
      }
    }
    for (auto& per_layer : bp_bits_) {
      std::vector<uint32_t> bits;
      ECG_RETURN_IF_ERROR(r->GetU32Vector(&bits));
      if (bits.size() != per_layer.size()) {
        return Status::InvalidArgument(
            "ResEC checkpoint bit widths: expected " +
            std::to_string(per_layer.size()) + " peers, got " +
            std::to_string(bits.size()));
      }
      per_layer.assign(bits.begin(), bits.end());
    }
    return Status::OK();
  }

  /// Re-keys the residuals by (layer, global vertex, receiver). Unlike the
  /// ReqEC trend rows there is no canonical copy to collapse to: a boundary
  /// vertex legitimately accumulates an independent residual per peer it
  /// ships gradients to, so the receiver worker stays in the key (and gets
  /// remapped across the transition).
  void ExportElasticState(const WorkerPlan& plan,
                          elastic::ElasticStateBag* bag) const override {
    for (size_t l = 0; l < delta_.size(); ++l) {
      for (uint32_t p = 0;
           p < delta_[l].size() && p < plan.send_rows.size(); ++p) {
        const Matrix& delta = delta_[l][p];
        const auto& rows = plan.send_rows[p];
        if (delta.rows() != rows.size() || delta.cols() == 0) continue;
        for (size_t i = 0; i < rows.size(); ++i) {
          const uint32_t gv = plan.owned[rows[i]];
          bag->bp_residual[std::make_tuple(static_cast<uint16_t>(l), gv,
                                           p)] =
              std::vector<float>(delta.Row(i), delta.Row(i) + delta.cols());
        }
      }
    }
    // Sender widths ride per (layer, sender, receiver) so the bit_alloc
    // assignment survives a repartition that keeps both link ends alive.
    for (size_t l = 0; l < bp_bits_.size(); ++l) {
      for (uint32_t p = 0;
           p < bp_bits_[l].size() && p < plan.send_rows.size(); ++p) {
        if (!ActivePeer(plan, p)) continue;
        bag->bp_group_bits[std::make_tuple(static_cast<uint16_t>(l),
                                           plan.worker_id, p)] =
            bp_bits_[l][p];
      }
    }
  }

  /// Rebuilds each (layer, peer) residual matrix from the bag: rows found
  /// keep their residual, rows without an entry (vertices that became
  /// boundary through the repartition) start at δ = 0. A pair with no
  /// entries at all stays empty and lazily resets to zeros on first use —
  /// exactly the cold-start path.
  Status ImportElasticState(const WorkerPlan& plan,
                            const elastic::ElasticStateBag& bag) override {
    for (size_t l = 0; l < delta_.size(); ++l) {
      for (uint32_t p = 0;
           p < delta_[l].size() && p < plan.send_rows.size(); ++p) {
        const auto& rows = plan.send_rows[p];
        Matrix& delta = delta_[l][p];
        if (rows.empty()) {
          delta.Reset(0, 0);
          continue;
        }
        std::vector<const std::vector<float>*> found(rows.size(), nullptr);
        size_t cols = 0;
        size_t hits = 0;
        for (size_t i = 0; i < rows.size(); ++i) {
          auto it = bag.bp_residual.find(std::make_tuple(
              static_cast<uint16_t>(l), plan.owned[rows[i]], p));
          if (it == bag.bp_residual.end()) continue;
          if (cols == 0) cols = it->second.size();
          if (cols == 0 || it->second.size() != cols) continue;
          found[i] = &it->second;
          ++hits;
        }
        if (hits == 0) {
          delta.Reset(0, 0);
          continue;
        }
        delta.Reset(rows.size(), cols);
        for (size_t i = 0; i < rows.size(); ++i) {
          if (found[i] != nullptr) {
            std::copy(found[i]->begin(), found[i]->end(), delta.Row(i));
          }
        }
      }
    }
    for (size_t l = 0; l < bp_bits_.size(); ++l) {
      for (uint32_t p = 0; p < bp_bits_[l].size(); ++p) {
        auto it = bag.bp_group_bits.find(std::make_tuple(
            static_cast<uint16_t>(l), plan.worker_id, p));
        if (it != bag.bp_group_bits.end()) bp_bits_[l][p] = it->second;
      }
    }
    return Status::OK();
  }

 private:
  /// Last observed (elements, sensitivity) of one (layer, peer) group —
  /// see the bit_alloc block in Start().
  struct GroupFeed {
    double elements = 0.0;
    double sensitivity = 0.0;
    bool valid = false;
  };

  /// Greedy re-allocation of the BP traffic budget across every
  /// (layer, peer) group with a live feed (DESIGN.md §16).
  void SolveBits(const WorkerPlan& plan, uint32_t epoch) {
    std::vector<compress::BitAllocGroup> groups;
    std::vector<std::pair<size_t, uint32_t>> keys;
    for (size_t l = 0; l < feed_.size(); ++l) {
      for (uint32_t p = 0; p < feed_[l].size(); ++p) {
        if (!ActivePeer(plan, p) || !feed_[l][p].valid) continue;
        groups.push_back({feed_[l][p].elements, feed_[l][p].sensitivity});
        keys.emplace_back(l, p);
      }
    }
    if (groups.empty()) return;
    compress::BitAllocConfig bc;
    bc.budget_factor = config_.bit_budget;
    bc.reference_bits = config_.bp_bits;
    bc.max_bits = kBitTunerMaxBits;
    const std::vector<int> widths = compress::SolveBitAllocation(groups, bc);
    for (size_t i = 0; i < keys.size(); ++i) {
      bp_bits_[keys[i].first][keys[i].second] = widths[i];
      if (obs::StatsEnabled()) {
        obs::RecordStat("bitalloc.bp_bits", static_cast<double>(widths[i]),
                        epoch, static_cast<int32_t>(keys[i].first),
                        static_cast<int32_t>(keys[i].second));
      }
    }
  }

  const ExchangeConfig config_;
  std::vector<std::vector<Matrix>> delta_;      // [layer][peer]
  std::vector<std::vector<int>> bp_bits_;       // [layer][peer]
  std::vector<std::vector<GroupFeed>> feed_;    // [layer][peer]
  int64_t last_solve_epoch_ = -1;
};

}  // namespace

std::unique_ptr<BpExchanger> MakeBpExchanger(BpMode mode,
                                             const ExchangeConfig& config,
                                             uint16_t num_layers,
                                             const WorkerPlan& plan) {
  switch (mode) {
    case BpMode::kExact:
      return std::make_unique<ExactBpExchanger>(config);
    case BpMode::kCompressed:
      return std::make_unique<CompressedBpExchanger>(config);
    case BpMode::kResEc:
      return std::make_unique<ResEcBpExchanger>(config, num_layers, plan);
  }
  return nullptr;
}

const char* BpModeName(BpMode mode) {
  switch (mode) {
    case BpMode::kExact:
      return "Non-cp";
    case BpMode::kCompressed:
      return "Cp-bp";
    case BpMode::kResEc:
      return "ResEC-BP";
  }
  return "?";
}

}  // namespace ecg::core
