#include "core/sampling_trainer.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "compress/int8_gemm.h"
#include "core/exchange.h"
#include "core/halo.h"
#include "core/metrics_board.h"
#include "dist/cluster.h"
#include "tensor/nn.h"
#include "tensor/ops.h"

namespace ecg::core {
namespace {

using dist::ParameterServerGroup;
using dist::SimulatedCluster;
using dist::WorkerContext;
using internal::BuildCat;
using internal::MetricsBoard;
using tensor::Matrix;

/// Sim-clock phase accounting for one scope (see metrics_board.h).
using Phase = internal::PhaseScope<WorkerContext>;

/// Per-epoch sampled structure, built once (by worker 0, between barriers)
/// and read by everyone: one plan set per layer.
struct EpochPlans {
  /// per_layer[l-1][w] = worker w's plan for layer l's sampled adjacency.
  std::vector<std::vector<WorkerPlan>> per_layer;
  double sample_cpu_seconds = 0.0;
};

AdjacencyView ViewOf(const SampledLayerGraph& sg, uint32_t num_vertices) {
  AdjacencyView view;
  view.num_vertices = num_vertices;
  view.neighbors = [&sg](uint32_t v) {
    return std::span<const uint32_t>(
        sg.adj.data() + sg.offsets[v],
        static_cast<size_t>(sg.offsets[v + 1] - sg.offsets[v]));
  };
  view.norm_weight = [&sg](uint32_t u, uint32_t v) {
    return sg.NormWeight(u, v);
  };
  return view;
}

}  // namespace

SamplingTrainer::SamplingTrainer(const graph::Graph& g,
                                 const graph::Partition& partition,
                                 SamplingTrainOptions options)
    : graph_(g), partition_(partition), options_(std::move(options)) {}

Result<TrainResult> SamplingTrainer::Train() {
  const int L = options_.model.num_layers;
  if (L < 1) return Status::InvalidArgument("GCN needs at least one layer");
  if (graph_.train_set().empty()) {
    return Status::FailedPrecondition("graph has no training split");
  }
  if (options_.fp_mode != FpMode::kExact &&
      options_.fp_mode != FpMode::kCompressed) {
    return Status::InvalidArgument(
        "sampling mode supports Exact/Compressed FP messages only");
  }
  if (options_.bp_mode == BpMode::kResEc) {
    return Status::InvalidArgument(
        "ResEC-BP needs a stable halo layout; use full-batch training");
  }
  if (options_.model.kind != GnnKind::kGcn) {
    return Status::NotImplemented(
        "sampling mode currently trains GCN only (SAGE is full-batch)");
  }
  Fanouts fanouts = options_.fanouts;
  if (fanouts.empty()) fanouts.assign(L, 10);
  if (fanouts.size() != static_cast<size_t>(L)) {
    return Status::InvalidArgument("need one fan-out per layer");
  }
  const uint32_t workers = partition_.num_parts;

  Timer preprocess_timer;
  // The full-graph plan supplies the superset halo for the one-time
  // feature cache (every sampled halo is a subset of it).
  std::vector<WorkerPlan> full_plans;
  ECG_RETURN_IF_ERROR(BuildWorkerPlans(graph_, partition_, &full_plans));

  std::vector<size_t> dims(L + 1);
  dims[0] = graph_.feature_dim();
  for (int l = 1; l <= L; ++l) {
    dims[l] = (l == L) ? static_cast<size_t>(graph_.num_classes())
                       : options_.model.hidden_dim;
  }
  ParameterServerGroup ps(
      GcnLayerShapes(options_.model, dims[0], graph_.num_classes()),
      options_.num_servers, workers, options_.model.learning_rate,
      options_.model.seed);

  std::vector<uint8_t> split_of(graph_.num_vertices(), 0);
  for (uint32_t v : graph_.train_set()) split_of[v] = 1;
  for (uint32_t v : graph_.val_set()) split_of[v] = 2;
  for (uint32_t v : graph_.test_set()) split_of[v] = 3;
  const size_t global_train = graph_.train_set().size();

  MetricsBoard board;
  EpochPlans shared;
  const double preprocess_cpu = preprocess_timer.ElapsedSeconds();

  SimulatedCluster cluster(workers, options_.network, options_.machine);

  auto worker_fn = [&](WorkerContext* ctx) -> Status {
    ThreadPool::SetSerialMode(true);
    const uint32_t me = ctx->worker_id();
    const WorkerPlan& full_plan = full_plans[me];
    const uint16_t num_layers = static_cast<uint16_t>(L);

    ThreadCpuTimer cpu;
    Matrix x_local = tensor::GatherRows(graph_.features(), full_plan.owned);
    std::vector<int32_t> labels_local(full_plan.num_owned());
    std::vector<uint32_t> rows_of[3];
    for (uint32_t r = 0; r < full_plan.num_owned(); ++r) {
      const uint32_t v = full_plan.owned[r];
      labels_local[r] = graph_.labels()[v];
      if (split_of[v] >= 1) rows_of[split_of[v] - 1].push_back(r);
    }
    // Full-halo row lookup for the cached feature table.
    std::unordered_map<uint32_t, uint32_t> full_halo_row;
    full_halo_row.reserve(full_plan.num_halo() * 2);
    for (uint32_t i = 0; i < full_plan.num_halo(); ++i) {
      full_halo_row[full_plan.halo[i]] = i;
    }

    auto fp_ex = MakeFpExchanger(options_.fp_mode, options_.exchange,
                                 num_layers, full_plan);
    auto bp_ex = MakeBpExchanger(options_.bp_mode, options_.exchange,
                                 num_layers, full_plan);
    auto exact_fp =
        MakeFpExchanger(FpMode::kExact, options_.exchange, num_layers,
                        full_plan);
    ctx->ChargeCompute(cpu.ElapsedSeconds());

    // One-time feature-halo cache over the full (unsampled) halo.
    Matrix x_halo_cache(full_plan.num_halo(), dims[0]);
    {
      ECG_TRACE_SCOPE("feature_cache", me, 0);
      ECG_RETURN_IF_ERROR(exact_fp->Exchange(ctx, full_plan,
                                             /*epoch=*/0xFFFFFFFFu,
                                             /*layer=*/0, x_local,
                                             &x_halo_cache));
    }
    ctx->BarrierSync();
    if (me == 0) {
      board.SetEpochBaseline(ctx->total_seconds(),
                             cluster.stats().TotalBytes());
    }
    ctx->BarrierSync();

    std::vector<Matrix> h_owned(L + 1), p_cache(L + 1), z_cache(L + 1),
        w(L), bias(L);
    h_owned[0] = std::move(x_local);
    Matrix cat, grads_logits;

    for (uint32_t epoch = 0; epoch < options_.epochs; ++epoch) {
      // --- Per-epoch sampling (worker 0 builds the shared plans; the
      // measured cost is divided by the worker count — each machine of the
      // modelled cluster samples its own share in parallel). -------------
      {
        Phase phase(ctx, &board, epoch, "sample");
        if (me == 0) {
          ECG_TRACE_SCOPE("sample", me, -1);
          ThreadCpuTimer sample_cpu;
          shared.per_layer.assign(L, {});
          for (int l = 1; l <= L; ++l) {
            ECG_ASSIGN_OR_RETURN(
                SampledLayerGraph sg,
                SampleLayerGraph(graph_, fanouts[l - 1],
                                 options_.sample_seed * 0x9e3779b9ULL +
                                     epoch * 131u + l));
            ECG_RETURN_IF_ERROR(BuildWorkerPlansFromView(
                ViewOf(sg, graph_.num_vertices()), partition_,
                &shared.per_layer[l - 1]));
          }
          shared.sample_cpu_seconds = sample_cpu.ElapsedSeconds();
        }
        ctx->BarrierSync();
        ctx->ChargeCompute(shared.sample_cpu_seconds / workers);

        if (options_.online_sampling) {
          // DistDGL-like online sampling: fetching sampled neighbour lists
          // from remote graph stores costs one RPC per peer per layer plus
          // the frontier ids / adjacency payloads.
          for (int l = 1; l <= L; ++l) {
            const WorkerPlan& plan = shared.per_layer[l - 1][me];
            uint64_t bytes = 0, msgs = 0;
            for (uint32_t p = 0; p < workers; ++p) {
              if (p == me || plan.recv_halo_rows[p].empty()) continue;
              bytes += plan.recv_halo_rows[p].size() * 8ull;
              msgs += 2;  // request + response
            }
            ctx->ChargeCommSeconds(
                ctx->net().TransferSeconds(bytes, msgs));
          }
        }
      }

      // --- Forward on the sampled structure -----------------------------
      for (int l = 1; l <= L; ++l) {
        const WorkerPlan& plan = shared.per_layer[l - 1][me];
        {
          Phase phase(ctx, &board, epoch, "param_sync");
          ECG_TRACE_SCOPE("param_pull", me, l - 1);
          const auto pull = ps.Pull(l - 1, &w[l - 1], &bias[l - 1]);
          ctx->ChargeCommSeconds(pull.Seconds(ctx->net()));
          board.param_bytes.fetch_add(pull.bytes, std::memory_order_relaxed);
          if (obs::StatsEnabled()) {
            obs::RecordStat("ps.pull_bytes",
                            static_cast<double>(pull.bytes), epoch, l - 1);
          }
        }

        Matrix halo(plan.num_halo(), dims[l - 1]);
        if (l == 1) {
          Phase phase(ctx, &board, epoch, "fp_compute");
          ECG_TRACE_SCOPE("halo_from_cache", me, 0);
          cpu.Reset();
          // Sampled feature halo comes from the one-time cache.
          for (uint32_t i = 0; i < plan.num_halo(); ++i) {
            const auto it = full_halo_row.find(plan.halo[i]);
            if (it == full_halo_row.end()) {
              return Status::Internal("sampled halo outside full halo");
            }
            std::memcpy(halo.Row(i), x_halo_cache.Row(it->second),
                        dims[0] * sizeof(float));
          }
          ctx->ChargeCompute(cpu.ElapsedSeconds());
        } else if (options_.overlap) {
          // Split-phase: send H^(l-1) first, aggregate the interior rows
          // (fully-owned neighborhoods) while the messages fly, then wait
          // only for the boundary rows' halo.
          {
            Phase phase(ctx, &board, epoch, "fp_exchange");
            ECG_TRACE_SCOPE("fp_exchange", me, l - 1);
            ECG_RETURN_IF_ERROR(fp_ex->Start(ctx, plan, epoch,
                                             static_cast<uint16_t>(l - 1),
                                             h_owned[l - 1]));
          }
          double credit = 0.0;
          {
            Phase phase(ctx, &board, epoch, "fp_compute");
            ECG_TRACE_SCOPE("fp_compute", me, l);
            cpu.Reset();
            p_cache[l].Reset(plan.num_owned(), dims[l - 1]);
            plan.adj_interior.SpMMRows(h_owned[l - 1], plan.interior_rows,
                                       &p_cache[l]);
            // Interior rows of Z = P·W complete before Finish too.
            z_cache[l].Reset(plan.num_owned(), dims[l]);
            tensor::GemmRows(p_cache[l], w[l - 1], plan.interior_rows,
                             &z_cache[l]);
            credit = ctx->ChargeCompute(cpu.ElapsedSeconds());
          }
          {
            Phase phase(ctx, &board, epoch, "fp_exchange");
            ECG_TRACE_SCOPE("fp_finish", me, l - 1);
            ECG_RETURN_IF_ERROR(fp_ex->Finish(ctx, plan, epoch,
                                              static_cast<uint16_t>(l - 1),
                                              &halo));
            double comm_s = 0.0;
            const double hidden =
                ctx->EndCommPhaseOverlapped("fp_comm", credit, &comm_s);
            if (obs::StatsEnabled()) {
              obs::RecordStat("overlap.hidden_seconds", hidden, epoch, l - 1);
              if (comm_s > 0.0) {
                obs::RecordStat("overlap.frac", hidden / comm_s, epoch,
                                l - 1);
              }
            }
          }
        } else {
          Phase phase(ctx, &board, epoch, "fp_exchange");
          ECG_TRACE_SCOPE("fp_exchange", me, l - 1);
          ECG_RETURN_IF_ERROR(fp_ex->Exchange(ctx, plan, epoch,
                                              static_cast<uint16_t>(l - 1),
                                              h_owned[l - 1], &halo));
        }
        const bool split_fp = l > 1 && options_.overlap;
        {
          Phase phase(ctx, &board, epoch, "fp_compute");
          ECG_TRACE_SCOPE("fp_compute", me, l);
          cpu.Reset();
          BuildCat(h_owned[l - 1], halo, &cat);
          if (split_fp) {
            plan.adj_boundary.SpMMRows(cat, plan.boundary_rows, &p_cache[l]);
            // Int8 packed-domain boundary transform; falls back to float
            // GemmRows when off or unsupported (see trainer.cc).
            if (!(options_.int8_gemm &&
                  compress::Int8GemmRows(p_cache[l], w[l - 1],
                                         plan.boundary_rows, &z_cache[l]))) {
              tensor::GemmRows(p_cache[l], w[l - 1], plan.boundary_rows,
                               &z_cache[l]);
            }
          } else {
            plan.adj.SpMM(cat, &p_cache[l]);
            tensor::Gemm(p_cache[l], w[l - 1], &z_cache[l]);
          }
          tensor::AddRowBias(&z_cache[l], bias[l - 1]);
          h_owned[l] = z_cache[l];
          if (l < L) tensor::ReluInPlace(&h_owned[l]);
          ctx->ChargeCompute(cpu.ElapsedSeconds());
        }
      }

      uint64_t correct[3], totals[3];
      double local_loss;
      {
        Phase phase(ctx, &board, epoch, "loss");
        ECG_TRACE_SCOPE("loss", me, L);
        cpu.Reset();
        local_loss = tensor::SoftmaxCrossEntropy(
            h_owned[L], labels_local, rows_of[0], global_train,
            &grads_logits);
        for (int s = 0; s < 3; ++s) {
          totals[s] = rows_of[s].size();
          correct[s] = static_cast<uint64_t>(
              tensor::Accuracy(h_owned[L], labels_local, rows_of[s]) *
                  static_cast<double>(rows_of[s].size()) +
              0.5);
        }
        ctx->ChargeCompute(cpu.ElapsedSeconds());
      }
      board.AddLocal(ctx->worker_id(), local_loss, correct, totals);

      // --- Backward on the same sampled structure ------------------------
      std::vector<Matrix> dw(L), db(L);
      Matrix g = std::move(grads_logits);
      for (int l = L; l >= 1; --l) {
        const WorkerPlan& plan = shared.per_layer[l - 1][me];
        const bool overlap_bp = options_.overlap && l > 1;
        if (!overlap_bp) {
          Phase phase(ctx, &board, epoch, "bp_compute");
          ECG_TRACE_SCOPE("bp_compute", me, l);
          cpu.Reset();
          tensor::GemmTransposeA(p_cache[l], g, &dw[l - 1]);
          db[l - 1] = tensor::ColumnSums(g);
          ctx->ChargeCompute(cpu.ElapsedSeconds());
        }
        if (l > 1) {
          Matrix g_halo(plan.num_halo(), dims[l]);
          Matrix t, g_prev;
          if (overlap_bp) {
            // Split-phase mirror of FP: dW/db and the interior rows of the
            // gradient aggregation hide the wire time of the G exchange.
            {
              Phase phase(ctx, &board, epoch, "bp_exchange");
              ECG_TRACE_SCOPE("bp_exchange", me, l);
              ECG_RETURN_IF_ERROR(bp_ex->Start(ctx, plan, epoch,
                                               static_cast<uint16_t>(l), g));
            }
            double credit = 0.0;
            {
              Phase phase(ctx, &board, epoch, "bp_compute");
              ECG_TRACE_SCOPE("bp_compute", me, l);
              cpu.Reset();
              tensor::GemmTransposeA(p_cache[l], g, &dw[l - 1]);
              db[l - 1] = tensor::ColumnSums(g);
              t.Reset(plan.num_owned(), dims[l]);
              plan.adj_interior.SpMMRows(g, plan.interior_rows, &t);
              g_prev.Reset(plan.num_owned(), dims[l - 1]);
              tensor::GemmTransposeBRows(t, w[l - 1], plan.interior_rows,
                                         &g_prev);
              credit = ctx->ChargeCompute(cpu.ElapsedSeconds());
            }
            {
              Phase phase(ctx, &board, epoch, "bp_exchange");
              ECG_TRACE_SCOPE("bp_finish", me, l);
              ECG_RETURN_IF_ERROR(bp_ex->Finish(ctx, plan, epoch,
                                                static_cast<uint16_t>(l),
                                                &g_halo));
              double comm_s = 0.0;
              const double hidden =
                  ctx->EndCommPhaseOverlapped("bp_comm", credit, &comm_s);
              if (obs::StatsEnabled()) {
                obs::RecordStat("overlap.hidden_seconds", hidden, epoch, l);
                if (comm_s > 0.0) {
                  obs::RecordStat("overlap.frac", hidden / comm_s, epoch, l);
                }
              }
            }
          } else {
            Phase phase(ctx, &board, epoch, "bp_exchange");
            ECG_TRACE_SCOPE("bp_exchange", me, l);
            ECG_RETURN_IF_ERROR(bp_ex->Exchange(ctx, plan, epoch,
                                                static_cast<uint16_t>(l), g,
                                                &g_halo));
          }
          Phase phase(ctx, &board, epoch, "bp_compute");
          ECG_TRACE_SCOPE("bp_compute", me, l);
          cpu.Reset();
          BuildCat(g, g_halo, &cat);
          if (overlap_bp) {
            plan.adj_boundary.SpMMRows(cat, plan.boundary_rows, &t);
            tensor::GemmTransposeBRows(t, w[l - 1], plan.boundary_rows,
                                       &g_prev);
          } else {
            plan.adj.SpMM(cat, &t);
            tensor::GemmTransposeB(t, w[l - 1], &g_prev);
          }
          const Matrix mask = tensor::ReluGrad(z_cache[l - 1]);
          tensor::HadamardInPlace(&g_prev, mask);
          g = std::move(g_prev);
          ctx->ChargeCompute(cpu.ElapsedSeconds());
        }
      }

      {
        Phase phase(ctx, &board, epoch, "param_sync");
        ECG_TRACE_SCOPE("param_push", me, -1);
        const auto push = ps.Push(me, std::move(dw), std::move(db));
        ctx->ChargeCommSeconds(push.Seconds(ctx->net()));
        board.param_bytes.fetch_add(push.bytes, std::memory_order_relaxed);
        if (obs::StatsEnabled()) {
          obs::RecordStat("ps.push_bytes",
                          static_cast<double>(push.bytes), epoch);
        }
      }
      {
        Phase phase(ctx, &board, epoch, "barrier");
        ctx->BarrierSync();
      }

      if (me == 0) {
        board.FinalizeEpoch(epoch, ctx->total_seconds(),
                            cluster.stats().TotalBytes(), global_train,
                            options_.patience);
        if (options_.log_every > 0 && epoch % options_.log_every == 0) {
          const EpochMetrics& m = board.epochs.back();
          ECG_LOG(Info) << graph_.name << " [sampled] epoch " << epoch
                        << " loss " << m.loss << " val " << m.val_acc
                        << " sim_s " << m.sim_seconds;
        }
      }
      ctx->BarrierSync();
      if (board.stop.load(std::memory_order_relaxed)) break;
    }
    return Status::OK();
  };

  ECG_RETURN_IF_ERROR(cluster.Run(worker_fn));
  return board.ToResult(preprocess_cpu);
}

Result<TrainResult> TrainSampled(const graph::Graph& g, uint32_t num_workers,
                                 const SamplingTrainOptions& options) {
  ECG_ASSIGN_OR_RETURN(graph::Partition p,
                       graph::HashPartition(g, num_workers));
  SamplingTrainer trainer(g, p, options);
  return trainer.Train();
}

}  // namespace ecg::core
