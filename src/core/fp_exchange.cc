#include <cmath>
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bitpack.h"
#include "common/bytes.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/timer.h"
#include "common/trace.h"
#include "compress/bit_alloc.h"
#include "core/exchange.h"
#include "core/wire_util.h"
#include "tensor/ops.h"

namespace ecg::core {
namespace {

using compress::QuantizedMatrix;
using compress::QuantizerOptions;
using dist::MessageHub;
using tensor::Matrix;

/// Per-peer payload buffers for the parallel encode/decode loops; indexed
/// by peer id, only active-peer slots are ever touched.
using PeerBuffers = std::vector<std::vector<uint8_t>>;

/// Books one FP degradation event: the halo rows from `peer` could not be
/// delivered, so the requester kept its stale cached rows (stale=true) or
/// reconstructed the pdt prediction (stale=false).
void CountFpDegraded(dist::WorkerContext* ctx, uint32_t epoch,
                     uint16_t layer, uint32_t peer, bool stale) {
  dist::FaultInjector* injector = ctx->fault_injector();
  if (injector != nullptr) {
    auto& counter = stale ? injector->counters().degraded_stale
                          : injector->counters().degraded_pdt;
    counter.fetch_add(1, std::memory_order_relaxed);
  }
  obs::RecordStat(stale ? "fault.degraded_stale" : "fault.degraded_pdt",
                  1.0, epoch, layer, static_cast<int32_t>(peer));
}

/// Hands the per-peer buffers built by a parallel encode loop to the hub.
void SendToActivePeers(dist::WorkerContext* ctx, const WorkerPlan& plan,
                       uint64_t tag, PeerBuffers* bufs) {
  for (uint32_t p = 0; p < ctx->num_workers(); ++p) {
    if (ActivePeer(plan, p)) ctx->Send(p, tag, std::move((*bufs)[p]));
  }
}

/// Send-side compression telemetry, keyed (epoch, layer, peer). `raw` is
/// what the message would weigh as float32 rows — the Non-cp baseline —
/// so fp.ratio reads directly as the paper's compression factor.
void RecordFpSendStats(uint32_t epoch, uint16_t layer, uint32_t peer,
                       size_t rows, size_t cols, size_t wire_bytes,
                       int bits) {
  const double raw = static_cast<double>(rows * cols * sizeof(float));
  obs::RecordStat("fp.raw_bytes", raw, epoch, layer,
                  static_cast<int32_t>(peer));
  obs::RecordStat("fp.wire_bytes", static_cast<double>(wire_bytes), epoch,
                  layer, static_cast<int32_t>(peer));
  if (wire_bytes > 0) {
    obs::RecordStat("fp.ratio", raw / static_cast<double>(wire_bytes),
                    epoch, layer, static_cast<int32_t>(peer));
  }
  obs::RecordStat("fp.bits", static_cast<double>(bits), epoch, layer,
                  static_cast<int32_t>(peer));
}

/// ReqEC selector census: how many units (vertices or elements, depending
/// on the granularity) picked each candidate. Values 0/1/2 match the
/// Selection enum (cps/pdt/avg).
void RecordSelectorStats(const std::vector<uint32_t>& slt, uint32_t epoch,
                         uint16_t layer, uint32_t peer) {
  if (!obs::StatsEnabled()) return;
  size_t counts[3] = {0, 0, 0};
  for (uint32_t s : slt) {
    if (s < 3) ++counts[s];
  }
  static constexpr const char* kNames[3] = {"reqec.sel_cps",
                                            "reqec.sel_pdt",
                                            "reqec.sel_avg"};
  for (int i = 0; i < 3; ++i) {
    obs::RecordStat(kNames[i], static_cast<double>(counts[i]), epoch, layer,
                    static_cast<int32_t>(peer));
  }
}

/// Non-cp: ship raw float32 rows every epoch.
class ExactFpExchanger : public FpExchanger {
 public:
  explicit ExactFpExchanger(const ExchangeConfig& config)
      : allow_loss_(config.fault_fallback) {}

  Status Start(dist::WorkerContext* ctx, const WorkerPlan& plan,
               uint32_t epoch, uint16_t layer,
               const Matrix& h_owned) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagFpData);
    PeerBuffers out(ctx->num_workers());
    ECG_RETURN_IF_ERROR(ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("fp_encode", ctx->worker_id(), layer);
          const Matrix rows = tensor::GatherRows(h_owned, plan.send_rows[p]);
          ByteWriter w(&out[p]);
          EncodeMatrix(rows, &w);
          if (obs::StatsEnabled()) {
            RecordFpSendStats(epoch, layer, p, rows.rows(), rows.cols(),
                              out[p].size(), /*bits=*/32);
          }
          return Status::OK();
        }));
    SendToActivePeers(ctx, plan, tag, &out);
    return Status::OK();
  }

  Status Finish(dist::WorkerContext* ctx, const WorkerPlan& plan,
                uint32_t epoch, uint16_t layer, Matrix* h_halo) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagFpData);
    ECG_ASSIGN_OR_RETURN(PeerRecvResult in, TryRecvFromActivePeers(
                             ctx, plan, tag, allow_loss_));
    return ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("fp_decode", ctx->worker_id(), layer);
          if (in.lost[p]) {
            // Lost halo update: keep the stale cached rows (h_halo
            // persists across epochs) — bounded staleness, not a crash.
            CountFpDegraded(ctx, epoch, layer, p, /*stale=*/true);
            return Status::OK();
          }
          ByteReader r(in.bufs[p]);
          Matrix rows;
          ECG_RETURN_IF_ERROR(DecodeMatrix(&r, &rows));
          return AssignRows(rows, plan.recv_halo_rows[p], h_halo);
        });
  }

 private:
  const bool allow_loss_;
};

/// Cp-fp-B: bucket quantization, no compensation.
class CompressedFpExchanger : public FpExchanger {
 public:
  explicit CompressedFpExchanger(const ExchangeConfig& config)
      : config_(config) {}

  Status Start(dist::WorkerContext* ctx, const WorkerPlan& plan,
               uint32_t epoch, uint16_t layer,
               const Matrix& h_owned) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagFpData);
    QuantizerOptions qopts{config_.fp_bits, config_.value_mode};
    // Fused send path: quantize each peer's row subset straight out of
    // h_owned (no GatherRows copy), all peers in parallel.
    PeerBuffers out(ctx->num_workers());
    ECG_RETURN_IF_ERROR(ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("fp_encode", ctx->worker_id(), layer);
          ECG_ASSIGN_OR_RETURN(
              QuantizedMatrix q,
              compress::QuantizeRows(h_owned, plan.send_rows[p], qopts));
          ByteWriter w(&out[p]);
          q.AppendTo(&w);
          if (obs::StatsEnabled()) {
            RecordFpSendStats(epoch, layer, p, q.rows, q.cols,
                              out[p].size(), q.bits);
            ECG_ASSIGN_OR_RETURN(const double sat,
                                 compress::BucketSaturationRate(q));
            obs::RecordStat("fp.saturation", sat, epoch, layer,
                            static_cast<int32_t>(p));
          }
          return Status::OK();
        }));
    SendToActivePeers(ctx, plan, tag, &out);
    return Status::OK();
  }

  Status Finish(dist::WorkerContext* ctx, const WorkerPlan& plan,
                uint32_t epoch, uint16_t layer, Matrix* h_halo) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagFpData);
    // Fused receive path: decode straight into the halo rows.
    ECG_ASSIGN_OR_RETURN(PeerRecvResult in, TryRecvFromActivePeers(
                             ctx, plan, tag, config_.fault_fallback));
    return ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("fp_decode", ctx->worker_id(), layer);
          if (in.lost[p]) {
            CountFpDegraded(ctx, epoch, layer, p, /*stale=*/true);
            return Status::OK();
          }
          ByteReader r(in.bufs[p]);
          QuantizedMatrix q;
          ECG_RETURN_IF_ERROR(QuantizedMatrix::ParseFrom(&r, &q));
          return compress::DequantizeInto(q, plan.recv_halo_rows[p], h_halo);
        });
  }

  int BitsTowards(uint32_t) const override { return config_.fp_bits; }

 private:
  const ExchangeConfig config_;
};

/// DistGNN's delayed remote partial aggregation: per epoch only the rows
/// with index ≡ epoch (mod r) are refreshed (shipped exactly); the
/// requester keeps stale values for the rest. Epoch 0 ships everything so
/// the caches start populated.
class DelayedFpExchanger : public FpExchanger {
 public:
  explicit DelayedFpExchanger(const ExchangeConfig& config)
      : r_(std::max<uint32_t>(1, config.delay_rounds)),
        allow_loss_(config.fault_fallback) {}

  Status Start(dist::WorkerContext* ctx, const WorkerPlan& plan,
               uint32_t epoch, uint16_t layer,
               const Matrix& h_owned) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagFpData);
    PeerBuffers out(ctx->num_workers());
    ECG_RETURN_IF_ERROR(ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          const auto& send_rows = plan.send_rows[p];
          std::vector<uint32_t> positions;  // positions within send list
          for (uint32_t i = 0; i < send_rows.size(); ++i) {
            if (epoch == 0 || i % r_ == epoch % r_) positions.push_back(i);
          }
          std::vector<uint32_t> local_rows;
          local_rows.reserve(positions.size());
          for (uint32_t i : positions) local_rows.push_back(send_rows[i]);
          const Matrix rows = tensor::GatherRows(h_owned, local_rows);
          ByteWriter w(&out[p]);
          w.PutU32Vector(positions);
          EncodeMatrix(rows, &w);
          if (obs::StatsEnabled()) {
            // Raw = the full send set, so fp.ratio shows the delayed
            // refresh's savings over shipping everything.
            RecordFpSendStats(epoch, layer, p, send_rows.size(),
                              h_owned.cols(), out[p].size(), /*bits=*/32);
          }
          return Status::OK();
        }));
    SendToActivePeers(ctx, plan, tag, &out);
    return Status::OK();
  }

  Status Finish(dist::WorkerContext* ctx, const WorkerPlan& plan,
                uint32_t epoch, uint16_t layer, Matrix* h_halo) override {
    const uint64_t tag = MessageHub::MakeTag(epoch, layer, kTagFpData);
    ECG_ASSIGN_OR_RETURN(PeerRecvResult in, TryRecvFromActivePeers(
                             ctx, plan, tag, allow_loss_));
    return ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          if (in.lost[p]) {
            // Lost refresh: the whole halo slice stays one round staler —
            // the same degradation DistGNN's schedule already embraces.
            CountFpDegraded(ctx, epoch, layer, p, /*stale=*/true);
            return Status::OK();
          }
          ByteReader r(in.bufs[p]);
          std::vector<uint32_t> positions;
          ECG_RETURN_IF_ERROR(r.GetU32Vector(&positions));
          Matrix rows;
          ECG_RETURN_IF_ERROR(DecodeMatrix(&r, &rows));
          const auto& halo_rows = plan.recv_halo_rows[p];
          std::vector<uint32_t> targets;
          targets.reserve(positions.size());
          for (uint32_t i : positions) {
            if (i >= halo_rows.size()) {
              return Status::OutOfRange(
                  "delayed refresh position out of range");
            }
            targets.push_back(halo_rows[i]);
          }
          return AssignRows(rows, targets, h_halo);
        });
  }

 private:
  const uint32_t r_;
  const bool allow_loss_;
};

/// The paper's ReqEC-FP (Algorithms 3 and 4): trend snapshots every T_tr
/// epochs, three candidate approximations per vertex in between, 2-bit
/// selector array on the wire, and the adaptive Bit-Tuner.
class ReqEcFpExchanger : public FpExchanger {
 public:
  ReqEcFpExchanger(const ExchangeConfig& config, uint16_t num_layers,
                   const WorkerPlan& plan)
      : config_(config), num_layers_(num_layers) {
    ECG_CHECK(config.tuner_hi > config.tuner_lo)
        << "Bit-Tuner thresholds inverted (hi=" << config.tuner_hi
        << " <= lo=" << config.tuner_lo << ")";
    const uint32_t workers =
        static_cast<uint32_t>(plan.send_rows.size());
    responder_.resize(num_layers);
    requester_.resize(num_layers);
    feed_.resize(num_layers);
    for (uint16_t l = 0; l < num_layers; ++l) {
      responder_[l].resize(workers);
      requester_[l].resize(workers);
      feed_[l].resize(workers);
    }
    // One width per (layer, peer): the global Bit-Tuner keeps every
    // layer's entry in lock-step (wire-identical to the historical single
    // per-peer width), the bit_alloc solver diverges them.
    bits_towards_.assign(num_layers,
                         std::vector<int>(workers, config.fp_bits));
    proportion_from_.assign(workers, 0.0f);
  }

  Status Start(dist::WorkerContext* ctx, const WorkerPlan& plan,
               uint32_t epoch, uint16_t layer,
               const Matrix& h_owned) override {
    ECG_CHECK(layer < num_layers_) << "ReqEC layer out of range";
    const uint64_t req_tag = MessageHub::MakeTag(epoch, layer, kTagFpRequest);
    const uint64_t data_tag = MessageHub::MakeTag(epoch, layer, kTagFpData);
    const bool trend_epoch = (epoch + 1) % config_.trend_period == 0;
    // Eq. 7's (t mod T_tr + 1): epochs since the last trend snapshot.
    const uint32_t step = epoch % config_.trend_period + 1;

    // 1) Requests carry the bits the requester wants the responder to use
    //    (Algorithm 3 line 1 passes B with the RPC).
    for (uint32_t p = 0; p < ctx->num_workers(); ++p) {
      if (!ActivePeer(plan, p)) continue;
      std::vector<uint8_t> buf;
      ByteWriter w(&buf);
      w.PutU8(static_cast<uint8_t>(bits_towards_[layer][p]));
      ctx->Send(p, req_tag, std::move(buf));
    }

    // 2) Respond (Algorithm 4). Requests are drained first, then every
    //    peer's response — candidate construction, selector, quantize —
    //    is built in parallel (the per-peer responder state is disjoint).
    //    A lost request degrades to the configured default bit width (the
    //    response carries its bits inline, so the requester still decodes).
    ECG_ASSIGN_OR_RETURN(PeerRecvResult reqs, TryRecvFromActivePeers(
                             ctx, plan, req_tag, config_.fault_fallback));
    PeerBuffers out(ctx->num_workers());
    dist::FaultInjector* injector = ctx->fault_injector();
    ECG_RETURN_IF_ERROR(ForEachActivePeerParallel(
        plan, ctx->num_workers(), [&](uint32_t p) -> Status {
          ECG_TRACE_SCOPE_DETAIL("fp_encode", ctx->worker_id(), layer);
          int peer_bits = config_.fp_bits;
          if (!reqs.lost[p]) {
            ByteReader rr(reqs.bufs[p]);
            uint8_t b = 0;
            ECG_RETURN_IF_ERROR(rr.GetU8(&b));
            peer_bits = b;
          }
          // Both ends evaluate the fault schedule, so the responder knows
          // — without any extra message — when its response can never be
          // delivered. On a trend epoch it must then keep the old baseline:
          // the requester will keep predicting from the old one too.
          const bool deliverable =
              injector == nullptr ||
              !injector->PermanentlyLost(ctx->worker_id(), p, data_tag);
          ECG_RETURN_IF_ERROR(BuildResponse(plan, p, epoch, layer,
                                            trend_epoch, step, peer_bits,
                                            deliverable, h_owned, &out[p]));
          if (obs::StatsEnabled()) {
            RecordFpSendStats(epoch, layer, p, plan.send_rows[p].size(),
                              h_owned.cols(), out[p].size(),
                              trend_epoch ? 32 : peer_bits);
          }
          return Status::OK();
        }));
    SendToActivePeers(ctx, plan, data_tag, &out);
    return Status::OK();
  }

  Status Finish(dist::WorkerContext* ctx, const WorkerPlan& plan,
                uint32_t epoch, uint16_t layer, Matrix* h_halo) override {
    ECG_CHECK(layer < num_layers_) << "ReqEC layer out of range";
    const uint64_t data_tag = MessageHub::MakeTag(epoch, layer, kTagFpData);
    const bool trend_epoch = (epoch + 1) % config_.trend_period == 0;
    const uint32_t step = epoch % config_.trend_period + 1;

    // 3) Parse responses (Algorithm 3) — per-peer requester state and halo
    //    row ranges are disjoint, so peers decode in parallel too. A lost
    //    response degrades to the pdt candidate (Eq. 8: H_last + step·M_cr,
    //    reconstructible from requester state with zero wire bytes).
    //    Under bit_alloc the peers carry *different* widths, so the decode
    //    streams in arrival order instead: each peer's marginal (boundary)
    //    rows decode the moment its message lands, charging the decode as
    //    compute that hides under the wait for the still-in-flight wide
    //    peers. Both paths write identical halo values (per-peer row
    //    ranges are disjoint).
    if (config_.bit_alloc) {
      ECG_RETURN_IF_ERROR(StreamingFinish(ctx, plan, epoch, layer,
                                          trend_epoch, step, h_halo));
    } else {
      ECG_ASSIGN_OR_RETURN(PeerRecvResult in, TryRecvFromActivePeers(
                               ctx, plan, data_tag, config_.fault_fallback));
      ECG_RETURN_IF_ERROR(ForEachActivePeerParallel(
          plan, ctx->num_workers(), [&](uint32_t p) -> Status {
            ECG_TRACE_SCOPE_DETAIL("fp_decode", ctx->worker_id(), layer);
            if (in.lost[p]) {
              return DegradeLostResponse(ctx, plan, p, epoch, layer, step,
                                         h_halo);
            }
            return ParseResponse(plan, p, layer, trend_epoch, step,
                                 in.bufs[p], h_halo);
          }));
    }

    // 4) Bit-Tuner, once per epoch after the last exchanged FP layer
    //    (Algorithm 3 lines 13-18). All layers move in lock-step, so the
    //    wire behavior matches the historical single per-peer width.
    //    Growth saturates at kBitTunerMaxBits — the widest id the packed
    //    codecs encode — and shrink at 1.
    if (config_.adaptive_bits && !config_.bit_alloc &&
        layer + 1 == num_layers_) {
      for (uint32_t p = 0; p < ctx->num_workers(); ++p) {
        if (!ActivePeer(plan, p)) continue;
        const double prop = proportion_from_[p];
        int b = bits_towards_[0][p];
        if (prop > config_.tuner_hi) {
          b = std::min(b * 2, kBitTunerMaxBits);
        } else if (prop < config_.tuner_lo && b > 1) {
          b /= 2;
        }
        for (uint16_t l = 0; l < num_layers_; ++l) bits_towards_[l][p] = b;
        if (obs::StatsEnabled()) {
          obs::RecordStat("reqec.tuner_bits", static_cast<double>(b), epoch,
                          /*layer=*/-1, static_cast<int32_t>(p));
          obs::RecordStat("reqec.predicted_frac", prop, epoch,
                          /*layer=*/-1, static_cast<int32_t>(p));
        }
      }
    }

    // 5) Bit-allocation solve, every trend_period epochs right before the
    //    trend snapshot resets the candidates: re-divide the traffic
    //    budget across every (layer, peer) group from the feed the parsed
    //    responses left behind. The new widths ride out with the next
    //    epoch's requests.
    if (config_.bit_alloc && layer + 1 == num_layers_ &&
        (epoch + 1) % config_.trend_period == 0) {
      SolveBits(plan, epoch);
    }
    return Status::OK();
  }

  int BitsTowards(uint32_t peer) const override {
    return bits_towards_[0][peer];
  }

  /// Width this requester asks `peer` for on `layer` (bench/test hook).
  int BitsTowards(uint16_t layer, uint32_t peer) const override {
    return bits_towards_[layer][peer];
  }

  double TakeFinishCredit() override {
    const double credit = finish_credit_;
    finish_credit_ = 0.0;
    return credit;
  }

  /// Checkpoint format: per (layer, peer) the responder and requester
  /// trend snapshots, then the per-layer width vectors and last predicted
  /// proportions. Everything the paper's compensation depends on.
  void SaveState(ByteWriter* w) const override {
    for (uint16_t l = 0; l < num_layers_; ++l) {
      for (size_t p = 0; p < responder_[l].size(); ++p) {
        const ResponderState& rs = responder_[l][p];
        w->PutU8(rs.have_trend ? 1 : 0);
        EncodeMatrix(rs.h_last, w);
        EncodeMatrix(rs.m_cr, w);
        const RequesterState& qs = requester_[l][p];
        w->PutU8(qs.have_trend ? 1 : 0);
        EncodeMatrix(qs.h_last, w);
        EncodeMatrix(qs.m_cr, w);
      }
    }
    for (uint16_t l = 0; l < num_layers_; ++l) {
      std::vector<uint32_t> bits(bits_towards_[l].begin(),
                                 bits_towards_[l].end());
      w->PutU32Vector(bits);
    }
    w->PutF32Vector(proportion_from_);
  }

  Status LoadState(ByteReader* r) override {
    for (uint16_t l = 0; l < num_layers_; ++l) {
      for (size_t p = 0; p < responder_[l].size(); ++p) {
        ResponderState& rs = responder_[l][p];
        uint8_t have = 0;
        ECG_RETURN_IF_ERROR(r->GetU8(&have));
        rs.have_trend = have != 0;
        ECG_RETURN_IF_ERROR(DecodeMatrix(r, &rs.h_last));
        ECG_RETURN_IF_ERROR(DecodeMatrix(r, &rs.m_cr));
        RequesterState& qs = requester_[l][p];
        ECG_RETURN_IF_ERROR(r->GetU8(&have));
        qs.have_trend = have != 0;
        ECG_RETURN_IF_ERROR(DecodeMatrix(r, &qs.h_last));
        ECG_RETURN_IF_ERROR(DecodeMatrix(r, &qs.m_cr));
      }
    }
    for (uint16_t l = 0; l < num_layers_; ++l) {
      std::vector<uint32_t> bits;
      ECG_RETURN_IF_ERROR(r->GetU32Vector(&bits));
      if (bits.size() != bits_towards_[l].size()) {
        return Status::InvalidArgument(
            "ReqEC checkpoint bit widths: expected " +
            std::to_string(bits_towards_[l].size()) + " peers, got " +
            std::to_string(bits.size()));
      }
      bits_towards_[l].assign(bits.begin(), bits.end());
    }
    ECG_RETURN_IF_ERROR(r->GetF32Vector(&proportion_from_));
    return Status::OK();
  }

  /// Re-keys the trend state by global vertex id. The responder side is the
  /// canonical copy: the responder owns the vertex, and in the fault-free
  /// protocol both ends hold bitwise-identical baselines, so one entry per
  /// (layer, vertex) serves the responder and every future requester. (If
  /// degraded deliveries had diverged a pair's baselines, the transition
  /// collapses both ends back to this canonical copy — still consistent,
  /// since both ends re-import the same entry.)
  void ExportElasticState(const WorkerPlan& plan,
                          elastic::ElasticStateBag* bag) const override {
    for (uint16_t l = 0; l < num_layers_; ++l) {
      for (size_t p = 0; p < responder_[l].size(); ++p) {
        const ResponderState& rs = responder_[l][p];
        if (!rs.have_trend) continue;
        const auto& rows = plan.send_rows[p];
        if (rs.h_last.rows() != rows.size() ||
            rs.m_cr.rows() != rows.size()) {
          continue;
        }
        for (size_t i = 0; i < rows.size(); ++i) {
          const uint32_t gv = plan.owned[rows[i]];
          elastic::TrendRow& tr =
              (*bag).fp_trend[std::make_pair(l, gv)];
          tr.h.assign(rs.h_last.Row(i), rs.h_last.Row(i) + rs.h_last.cols());
          tr.m.assign(rs.m_cr.Row(i), rs.m_cr.Row(i) + rs.m_cr.cols());
        }
      }
    }
    for (uint32_t p = 0; p < proportion_from_.size(); ++p) {
      if (!ActivePeer(plan, p)) continue;
      bag->request_bits[std::make_pair(plan.worker_id, p)] =
          bits_towards_[0][p];
      bag->proportion[std::make_pair(plan.worker_id, p)] =
          proportion_from_[p];
      // Per-layer solver widths ride in their own map so a repartition
      // keeps the bit_alloc assignment alive (the layer-0 entry above
      // stays for the global-tuner path and older consumers).
      for (uint16_t l = 0; l < num_layers_; ++l) {
        bag->fp_group_bits[std::make_tuple(l, plan.worker_id, p)] =
            bits_towards_[l][p];
      }
    }
  }

  /// Pulls this plan's rows back out of the bag. A (layer, pair) side gets
  /// its trend baseline iff EVERY vertex of the pair's send set is in the
  /// bag with a consistent width — both ends compute this from the same
  /// canonical vertex list, so responder and requester always agree on
  /// have_trend (a partial set means some vertex became boundary only
  /// through the repartition; the pair cold-starts and the protocol's
  /// self-describing responses handle the rest).
  Status ImportElasticState(const WorkerPlan& plan,
                            const elastic::ElasticStateBag& bag) override {
    for (uint16_t l = 0; l < num_layers_; ++l) {
      for (uint32_t p = 0;
           p < responder_[l].size() && p < plan.send_rows.size(); ++p) {
        if (!ActivePeer(plan, p)) continue;
        ResponderState& rs = responder_[l][p];
        std::vector<uint32_t> gvs;
        gvs.reserve(plan.send_rows[p].size());
        for (uint32_t r : plan.send_rows[p]) gvs.push_back(plan.owned[r]);
        rs.have_trend = GatherTrend(bag, l, gvs, &rs.h_last, &rs.m_cr);

        RequesterState& qs = requester_[l][p];
        gvs.clear();
        for (uint32_t r : plan.recv_halo_rows[p]) gvs.push_back(plan.halo[r]);
        qs.have_trend = GatherTrend(bag, l, gvs, &qs.h_last, &qs.m_cr);
      }
    }
    for (uint32_t p = 0; p < proportion_from_.size(); ++p) {
      auto itb = bag.request_bits.find(std::make_pair(plan.worker_id, p));
      if (itb != bag.request_bits.end()) {
        for (uint16_t l = 0; l < num_layers_; ++l) {
          bits_towards_[l][p] = itb->second;
        }
      }
      for (uint16_t l = 0; l < num_layers_; ++l) {
        auto itl = bag.fp_group_bits.find(
            std::make_tuple(l, plan.worker_id, p));
        if (itl != bag.fp_group_bits.end()) bits_towards_[l][p] = itl->second;
      }
      auto itp = bag.proportion.find(std::make_pair(plan.worker_id, p));
      if (itp != bag.proportion.end()) proportion_from_[p] = itp->second;
    }
    return Status::OK();
  }

 private:
  /// Message kinds inside an FP data payload.
  enum ResponseKind : uint8_t {
    kTrend = 0,            // exact H + M_cr (last epoch of a trend group)
    kSelected = 1,         // per-vertex SltArr + compressed subset
    kColdStart = 2,        // compressed everything (no trend baseline yet)
    kSelectedElement = 3,  // per-element SltArr + compressed subset
  };
  /// Selector ids, matching the paper's 00=compressed, 01=predicted,
  /// 10=average encoding.
  enum Selection : uint32_t { kCps = 0, kPdt = 1, kAvg = 2 };

  struct ResponderState {
    Matrix h_last;  // what the requester holds as its trend baseline
    Matrix m_cr;
    bool have_trend = false;
  };
  struct RequesterState {
    Matrix h_last;
    Matrix m_cr;
    bool have_trend = false;
  };

  /// Assembles the (h_last, m_cr) matrices for `gvs` from the bag's
  /// canonical trend rows. All-or-nothing: returns false (and clears the
  /// matrices) unless every vertex is present with one consistent width.
  static bool GatherTrend(const elastic::ElasticStateBag& bag,
                          uint16_t layer, const std::vector<uint32_t>& gvs,
                          Matrix* h, Matrix* m) {
    std::vector<const elastic::TrendRow*> rows;
    rows.reserve(gvs.size());
    size_t cols = 0;
    for (uint32_t gv : gvs) {
      auto it = bag.fp_trend.find(std::make_pair(layer, gv));
      if (it == bag.fp_trend.end()) {
        rows.clear();
        break;
      }
      const elastic::TrendRow& tr = it->second;
      if (cols == 0) cols = tr.h.size();
      if (cols == 0 || tr.h.size() != cols || tr.m.size() != cols) {
        rows.clear();
        break;
      }
      rows.push_back(&tr);
    }
    if (gvs.empty() || rows.size() != gvs.size()) {
      h->Reset(0, 0);
      m->Reset(0, 0);
      return false;
    }
    h->Reset(gvs.size(), cols);
    m->Reset(gvs.size(), cols);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::copy(rows[i]->h.begin(), rows[i]->h.end(), h->Row(i));
      std::copy(rows[i]->m.begin(), rows[i]->m.end(), m->Row(i));
    }
    return true;
  }

  Status BuildResponse(const WorkerPlan& plan, uint32_t peer, uint32_t epoch,
                       uint16_t layer, bool trend_epoch, uint32_t step,
                       int peer_bits, bool deliverable, const Matrix& h_owned,
                       std::vector<uint8_t>* buf) {
    ResponderState& st = responder_[layer][peer];
    ByteWriter w(buf);

    if (trend_epoch) {
      const Matrix h_send = tensor::GatherRows(h_owned, plan.send_rows[peer]);
      Matrix m_cr(h_send.rows(), h_send.cols());
      if (st.have_trend) {
        // M_cr = (H_now - H_last) / T_tr (Algorithm 4 line 4).
        m_cr = h_send;
        tensor::SubInPlace(&m_cr, st.h_last);
        tensor::ScaleInPlace(&m_cr,
                             1.0f / static_cast<float>(config_.trend_period));
      }
      if (deliverable) {
        st.h_last = h_send;
        st.m_cr = m_cr;
        st.have_trend = true;
      }
      w.PutU8(kTrend);
      EncodeMatrix(h_send, &w);
      EncodeMatrix(m_cr, &w);
      return Status::OK();
    }

    // Quantize the send set straight out of h_owned — the gathered truth
    // matrix is only materialized below, on the paths that compare
    // candidates against it.
    QuantizerOptions qopts{peer_bits, config_.value_mode};
    ECG_ASSIGN_OR_RETURN(
        QuantizedMatrix q_full,
        compress::QuantizeRows(h_owned, plan.send_rows[peer], qopts));
    if (obs::StatsEnabled()) {
      ECG_ASSIGN_OR_RETURN(const double sat,
                           compress::BucketSaturationRate(q_full));
      obs::RecordStat("fp.saturation", sat, epoch, layer,
                      static_cast<int32_t>(peer));
    }

    if (!st.have_trend) {
      // First trend group: no prediction baseline exists on either end.
      w.PutU8(kColdStart);
      q_full.AppendTo(&w);
      return Status::OK();
    }

    const Matrix h_send = tensor::GatherRows(h_owned, plan.send_rows[peer]);
    // Reconstruct the three candidates exactly as the requester would.
    ECG_ASSIGN_OR_RETURN(Matrix h_cps, compress::Dequantize(q_full));
    Matrix h_pdt = st.h_last;
    tensor::Axpy(static_cast<float>(step), st.m_cr, &h_pdt);
    Matrix h_avg = h_pdt;
    tensor::AddInPlace(&h_avg, h_cps);
    tensor::ScaleInPlace(&h_avg, 0.5f);

    if (config_.selector == SelectorGranularity::kElement) {
      return BuildElementResponse(h_send, h_cps, h_pdt, h_avg, q_full,
                                  peer_bits, epoch, layer, peer, &w);
    }

    // Selector: per-vertex L1 distances (Eq. 10), or a single matrix-wide
    // decision under the coarse granularity ablation.
    const std::vector<float> s_cps = tensor::RowL1Distance(h_cps, h_send);
    const std::vector<float> s_pdt = tensor::RowL1Distance(h_pdt, h_send);
    const std::vector<float> s_avg = tensor::RowL1Distance(h_avg, h_send);
    const size_t n = h_send.rows();
    std::vector<uint32_t> slt(n, kCps);
    if (config_.selector == SelectorGranularity::kVertex) {
      for (size_t i = 0; i < n; ++i) {
        uint32_t best = kCps;
        float best_s = s_cps[i];
        if (s_pdt[i] < best_s) {
          best = kPdt;
          best_s = s_pdt[i];
        }
        if (s_avg[i] < best_s) best = kAvg;
        slt[i] = best;
      }
    } else {
      double t_cps = 0, t_pdt = 0, t_avg = 0;
      for (size_t i = 0; i < n; ++i) {
        t_cps += s_cps[i];
        t_pdt += s_pdt[i];
        t_avg += s_avg[i];
      }
      uint32_t best = kCps;
      if (t_pdt < t_cps && t_pdt <= t_avg) best = kPdt;
      if (t_avg < t_cps && t_avg < t_pdt) best = kAvg;
      std::fill(slt.begin(), slt.end(), best);
    }

    // Predicted rows are never shipped (Algorithm 4 line 14).
    std::vector<uint32_t> shipped;
    size_t predicted = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (slt[i] == kPdt) {
        ++predicted;
      } else {
        shipped.push_back(i);
      }
    }
    ECG_ASSIGN_OR_RETURN(QuantizedMatrix q_sub,
                         compress::GatherQuantizedRows(q_full, shipped));
    const float proportion =
        n == 0 ? 0.0f : static_cast<float>(predicted) / n;
    RecordSelectorStats(slt, epoch, layer, peer);

    w.PutU8(kSelected);
    w.PutU8(static_cast<uint8_t>(peer_bits));
    std::vector<uint32_t> packed_slt;
    ECG_RETURN_IF_ERROR(PackBits(slt, /*bits=*/2, &packed_slt));
    w.PutU64(n);
    w.PutU32Vector(packed_slt);
    q_sub.AppendTo(&w);
    w.PutF32(proportion);
    return Status::OK();
  }

  /// Element-wise schema: 2-bit selector per COORDINATE; only non-predicted
  /// coordinates ship their bucket ids (sharing q_full's bucket table).
  Status BuildElementResponse(const Matrix& h_send, const Matrix& h_cps,
                              const Matrix& h_pdt, const Matrix& h_avg,
                              const QuantizedMatrix& q_full, int peer_bits,
                              uint32_t epoch, uint16_t layer, uint32_t peer,
                              ByteWriter* w) {
    const size_t count = h_send.size();
    std::vector<uint32_t> full_ids;
    ECG_RETURN_IF_ERROR(
        UnpackBits(q_full.packed_ids, count, q_full.bits, &full_ids));

    std::vector<uint32_t> slt(count, kCps);
    std::vector<uint32_t> shipped_ids;
    size_t predicted = 0;
    for (size_t i = 0; i < count; ++i) {
      const float truth = h_send.data()[i];
      const float e_cps = std::fabs(h_cps.data()[i] - truth);
      const float e_pdt = std::fabs(h_pdt.data()[i] - truth);
      const float e_avg = std::fabs(h_avg.data()[i] - truth);
      uint32_t pick = kCps;
      float best = e_cps;
      if (e_pdt < best) {
        pick = kPdt;
        best = e_pdt;
      }
      if (e_avg < best) pick = kAvg;
      slt[i] = pick;
      if (pick == kPdt) {
        ++predicted;
      } else {
        shipped_ids.push_back(full_ids[i]);
      }
    }
    const float proportion =
        count == 0 ? 0.0f : static_cast<float>(predicted) / count;
    RecordSelectorStats(slt, epoch, layer, peer);

    QuantizedMatrix q_sub;
    q_sub.rows = 1;
    q_sub.cols = static_cast<uint32_t>(shipped_ids.size());
    q_sub.bits = q_full.bits;
    q_sub.implicit_midpoints = q_full.implicit_midpoints;
    q_sub.min_value = q_full.min_value;
    q_sub.bucket_width = q_full.bucket_width;
    q_sub.bucket_values = q_full.bucket_values;
    ECG_RETURN_IF_ERROR(
        PackBits(shipped_ids, q_full.bits, &q_sub.packed_ids));

    w->PutU8(kSelectedElement);
    w->PutU8(static_cast<uint8_t>(peer_bits));
    std::vector<uint32_t> packed_slt;
    ECG_RETURN_IF_ERROR(PackBits(slt, /*bits=*/2, &packed_slt));
    w->PutU64(count);
    w->PutU32Vector(packed_slt);
    q_sub.AppendTo(w);
    w->PutF32(proportion);
    return Status::OK();
  }

  Status ParseElementResponse(const WorkerPlan& plan, uint32_t peer,
                              uint16_t layer, const RequesterState& st,
                              uint32_t step, ByteReader* r, Matrix* h_halo) {
    const auto& halo_rows = plan.recv_halo_rows[peer];
    uint8_t bits = 0;
    uint64_t count = 0;
    std::vector<uint32_t> packed_slt;
    ECG_RETURN_IF_ERROR(r->GetU8(&bits));
    ECG_RETURN_IF_ERROR(r->GetU64(&count));
    ECG_RETURN_IF_ERROR(r->GetU32Vector(&packed_slt));
    QuantizedMatrix q_sub;
    ECG_RETURN_IF_ERROR(QuantizedMatrix::ParseFrom(r, &q_sub));
    float proportion = 0.0f;
    ECG_RETURN_IF_ERROR(r->GetF32(&proportion));
    proportion_from_[peer] = proportion;
    RecordFeed(layer, peer, static_cast<double>(q_sub.cols), q_sub);

    const size_t dim = st.h_last.cols();
    if (count != halo_rows.size() * dim) {
      return Status::InvalidArgument("element selector size mismatch");
    }
    std::vector<uint32_t> slt;
    ECG_RETURN_IF_ERROR(UnpackBits(packed_slt, count, /*bits=*/2, &slt));
    ECG_ASSIGN_OR_RETURN(Matrix d_sub, compress::Dequantize(q_sub));

    size_t cursor = 0;
    for (size_t i = 0; i < halo_rows.size(); ++i) {
      float* out = h_halo->Row(halo_rows[i]);
      const float* last = st.h_last.Row(i);
      const float* rate = st.m_cr.Row(i);
      for (size_t c = 0; c < dim; ++c) {
        const float pdt = last[c] + rate[c] * static_cast<float>(step);
        const uint32_t pick = slt[i * dim + c];
        if (pick == kPdt) {
          out[c] = pdt;
          continue;
        }
        if (cursor >= d_sub.size()) {
          return Status::OutOfRange("element subset underflow");
        }
        const float cps = d_sub.data()[cursor++];
        out[c] = pick == kCps ? cps : 0.5f * (pdt + cps);
      }
    }
    if (cursor != d_sub.size()) {
      return Status::Internal("element subset not fully consumed");
    }
    return Status::OK();
  }

  /// Zero-byte fallback for a permanently lost response: reconstruct the
  /// pdt candidate from the requester-side trend baseline (Eq. 8). Before
  /// the first trend snapshot there is no baseline, so the stale cached
  /// rows stand in.
  Status DegradeLostResponse(dist::WorkerContext* ctx, const WorkerPlan& plan,
                             uint32_t peer, uint32_t epoch, uint16_t layer,
                             uint32_t step, Matrix* h_halo) {
    RequesterState& st = requester_[layer][peer];
    const auto& halo_rows = plan.recv_halo_rows[peer];
    if (!st.have_trend) {
      CountFpDegraded(ctx, epoch, layer, peer, /*stale=*/true);
      return Status::OK();
    }
    if (st.h_last.rows() != halo_rows.size()) {
      return Status::Internal(
          "pdt fallback baseline has " + std::to_string(st.h_last.rows()) +
          " rows for " + std::to_string(halo_rows.size()) + " halo rows");
    }
    const size_t dim = st.h_last.cols();
    for (size_t i = 0; i < halo_rows.size(); ++i) {
      float* out = h_halo->Row(halo_rows[i]);
      const float* last = st.h_last.Row(i);
      const float* rate = st.m_cr.Row(i);
      for (size_t c = 0; c < dim; ++c) {
        out[c] = last[c] + rate[c] * static_cast<float>(step);
      }
    }
    CountFpDegraded(ctx, epoch, layer, peer, /*stale=*/false);
    return Status::OK();
  }

  Status ParseResponse(const WorkerPlan& plan, uint32_t peer, uint16_t layer,
                       bool trend_epoch, uint32_t step,
                       const std::vector<uint8_t>& buf, Matrix* h_halo) {
    RequesterState& st = requester_[layer][peer];
    const auto& halo_rows = plan.recv_halo_rows[peer];
    ByteReader r(buf);
    uint8_t kind = 0;
    ECG_RETURN_IF_ERROR(r.GetU8(&kind));

    if (kind == kTrend) {
      Matrix h_exact, m_cr;
      ECG_RETURN_IF_ERROR(DecodeMatrix(&r, &h_exact));
      ECG_RETURN_IF_ERROR(DecodeMatrix(&r, &m_cr));
      ECG_RETURN_IF_ERROR(AssignRows(h_exact, halo_rows, h_halo));
      st.h_last = std::move(h_exact);
      st.m_cr = std::move(m_cr);
      st.have_trend = true;
      return Status::OK();
    }
    if (kind == kColdStart) {
      QuantizedMatrix q;
      ECG_RETURN_IF_ERROR(QuantizedMatrix::ParseFrom(&r, &q));
      RecordFeed(layer, peer,
                 static_cast<double>(q.rows) * static_cast<double>(q.cols),
                 q);
      return compress::DequantizeInto(q, halo_rows, h_halo);
    }
    if (kind != kSelected && kind != kSelectedElement) {
      return Status::InvalidArgument("unknown FP response kind " +
                                     std::to_string(kind));
    }
    if (!st.have_trend) {
      return Status::Internal("selected response before trend baseline");
    }
    if (kind == kSelectedElement) {
      return ParseElementResponse(plan, peer, layer, st, step, &r, h_halo);
    }

    uint8_t bits = 0;
    uint64_t n = 0;
    std::vector<uint32_t> packed_slt;
    ECG_RETURN_IF_ERROR(r.GetU8(&bits));
    ECG_RETURN_IF_ERROR(r.GetU64(&n));
    ECG_RETURN_IF_ERROR(r.GetU32Vector(&packed_slt));
    QuantizedMatrix q_sub;
    ECG_RETURN_IF_ERROR(QuantizedMatrix::ParseFrom(&r, &q_sub));
    float proportion = 0.0f;
    ECG_RETURN_IF_ERROR(r.GetF32(&proportion));
    proportion_from_[peer] = proportion;
    RecordFeed(layer, peer,
               static_cast<double>(q_sub.rows) * st.h_last.cols(), q_sub);

    if (n != halo_rows.size()) {
      return Status::InvalidArgument("selector size mismatch");
    }
    std::vector<uint32_t> slt;
    ECG_RETURN_IF_ERROR(UnpackBits(packed_slt, n, /*bits=*/2, &slt));
    ECG_ASSIGN_OR_RETURN(Matrix d_sub, compress::Dequantize(q_sub));

    const size_t dim = st.h_last.cols();
    size_t cursor = 0;
    for (size_t i = 0; i < n; ++i) {
      float* out = h_halo->Row(halo_rows[i]);
      const float* last = st.h_last.Row(i);
      const float* rate = st.m_cr.Row(i);
      switch (slt[i]) {
        case kPdt:
          for (size_t c = 0; c < dim; ++c) {
            out[c] = last[c] + rate[c] * static_cast<float>(step);
          }
          break;
        case kCps: {
          if (cursor >= d_sub.rows()) {
            return Status::OutOfRange("compressed subset underflow");
          }
          std::memcpy(out, d_sub.Row(cursor), dim * sizeof(float));
          ++cursor;
          break;
        }
        case kAvg: {
          if (cursor >= d_sub.rows()) {
            return Status::OutOfRange("compressed subset underflow");
          }
          const float* cps = d_sub.Row(cursor);
          for (size_t c = 0; c < dim; ++c) {
            const float pdt = last[c] + rate[c] * static_cast<float>(step);
            out[c] = 0.5f * (pdt + cps[c]);
          }
          ++cursor;
          break;
        }
        default:
          return Status::InvalidArgument("corrupt selector value");
      }
    }
    if (cursor != d_sub.rows()) {
      return Status::Internal("compressed subset not fully consumed");
    }
    return Status::OK();
  }

  /// Per-(layer, peer) observation the requester leaves behind for the
  /// bit-allocation solver: how many elements the group actually shipped
  /// last epoch and the quantizer range it saw. Overwritten every parsed
  /// response (per-peer slots are disjoint across the parallel decode).
  struct GroupFeed {
    double elements = 0.0;
    double sensitivity = 0.0;
    bool valid = false;
  };

  void RecordFeed(uint16_t layer, uint32_t peer, double shipped_elements,
                  const QuantizedMatrix& q) {
    if (q.bits <= 0) return;
    const double range =
        static_cast<double>(q.bucket_width) * std::exp2(q.bits);
    GroupFeed& f = feed_[layer][peer];
    f.elements = shipped_elements;
    f.sensitivity = shipped_elements * range * range;
    f.valid = shipped_elements > 0.0 && range > 0.0;
  }

  /// Arrival-order Finish for the bit_alloc path: decode each peer's halo
  /// slice the moment its message lands. The decode CPU of every arrival
  /// but the last is banked as finish credit — it genuinely ran while the
  /// remaining (wider/slower) peers were still on the wire, so the
  /// overlapped schedule may hide that much wire time on top of its
  /// interior-compute credit.
  Status StreamingFinish(dist::WorkerContext* ctx, const WorkerPlan& plan,
                         uint32_t epoch, uint16_t layer, bool trend_epoch,
                         uint32_t step, Matrix* h_halo) {
    const uint64_t data_tag = MessageHub::MakeTag(epoch, layer, kTagFpData);
    std::vector<uint32_t> pending;
    for (uint32_t p = 0; p < ctx->num_workers(); ++p) {
      if (ActivePeer(plan, p)) pending.push_back(p);
    }
    double max_penalty = 0.0;
    ThreadCpuTimer decode_cpu;
    while (!pending.empty()) {
      uint32_t from = 0;
      std::vector<uint8_t> buf;
      double penalty = 0.0;
      Status s = ctx->TryRecvAny(pending, data_tag, &from, &buf, &penalty);
      const bool lost = s.code() == StatusCode::kResourceExhausted;
      if (!s.ok() && (!lost || !config_.fault_fallback)) {
        ctx->ChargePhasePenalty(max_penalty);
        return s;
      }
      max_penalty = std::max(max_penalty, penalty);
      pending.erase(std::find(pending.begin(), pending.end(), from));
      ECG_TRACE_SCOPE_DETAIL("fp_decode", ctx->worker_id(), layer);
      decode_cpu.Reset();
      Status d = lost ? DegradeLostResponse(ctx, plan, from, epoch, layer,
                                            step, h_halo)
                      : ParseResponse(plan, from, layer, trend_epoch, step,
                                      buf, h_halo);
      if (!d.ok()) {
        ctx->ChargePhasePenalty(max_penalty);
        return d;
      }
      const double charged = ctx->ChargeCompute(decode_cpu.ElapsedSeconds());
      if (!pending.empty()) finish_credit_ += charged;
    }
    ctx->ChargePhasePenalty(max_penalty);
    return Status::OK();
  }

  /// Greedy re-allocation of the FP traffic budget across every
  /// (layer, peer) group with a live feed (DESIGN.md §16).
  void SolveBits(const WorkerPlan& plan, uint32_t epoch) {
    std::vector<compress::BitAllocGroup> groups;
    std::vector<std::pair<uint16_t, uint32_t>> keys;
    for (uint16_t l = 0; l < num_layers_; ++l) {
      for (uint32_t p = 0; p < feed_[l].size(); ++p) {
        if (!ActivePeer(plan, p) || !feed_[l][p].valid) continue;
        groups.push_back(
            {feed_[l][p].elements, feed_[l][p].sensitivity});
        keys.emplace_back(l, p);
      }
    }
    if (groups.empty()) return;
    compress::BitAllocConfig bc;
    bc.budget_factor = config_.bit_budget;
    bc.reference_bits = config_.fp_bits;
    bc.max_bits = kBitTunerMaxBits;
    const std::vector<int> widths = compress::SolveBitAllocation(groups, bc);
    for (size_t i = 0; i < keys.size(); ++i) {
      bits_towards_[keys[i].first][keys[i].second] = widths[i];
      if (obs::StatsEnabled()) {
        obs::RecordStat("bitalloc.fp_bits", static_cast<double>(widths[i]),
                        epoch, keys[i].first,
                        static_cast<int32_t>(keys[i].second));
      }
    }
  }

  const ExchangeConfig config_;
  const uint16_t num_layers_;
  std::vector<std::vector<ResponderState>> responder_;  // [layer][peer]
  std::vector<std::vector<RequesterState>> requester_;  // [layer][peer]
  std::vector<std::vector<int>> bits_towards_;          // [layer][peer]
  std::vector<std::vector<GroupFeed>> feed_;            // [layer][peer]
  std::vector<float> proportion_from_;                  // [peer]
  double finish_credit_ = 0.0;
};

}  // namespace

std::unique_ptr<FpExchanger> MakeFpExchanger(FpMode mode,
                                             const ExchangeConfig& config,
                                             uint16_t num_layers,
                                             const WorkerPlan& plan) {
  switch (mode) {
    case FpMode::kExact:
      return std::make_unique<ExactFpExchanger>(config);
    case FpMode::kCompressed:
      return std::make_unique<CompressedFpExchanger>(config);
    case FpMode::kDelayed:
      return std::make_unique<DelayedFpExchanger>(config);
    case FpMode::kReqEc:
      return std::make_unique<ReqEcFpExchanger>(config, num_layers, plan);
  }
  return nullptr;
}

const char* FpModeName(FpMode mode) {
  switch (mode) {
    case FpMode::kExact:
      return "Non-cp";
    case FpMode::kCompressed:
      return "Cp-fp";
    case FpMode::kReqEc:
      return "ReqEC-FP";
    case FpMode::kDelayed:
      return "Delayed(DistGNN)";
  }
  return "?";
}

}  // namespace ecg::core
