#include "core/train_spec.h"

#include <utility>

#include "common/bitpack.h"
#include "common/spec.h"
#include "dist/elastic.h"
#include "graph/partition.h"

namespace ecg::core {
namespace {

/// Registers the nested `sampling=SPEC` surface (clauses joined by ':').
void BindSamplingSpec(config::Spec& spec, SamplingTrainOptions* opts) {
  spec.U32List("fanout", &opts->fanouts, 'x')
      .Help("per-layer fan-outs, innermost first");
  spec.Bool("online", &opts->online_sampling)
      .Help("per-iteration sampling RPCs (DistDGL-like)");
  spec.U64("seed", &opts->sample_seed).Help("per-epoch sampler seed");
}

/// Registers every flat train key against `*ts`. The bound fields live in
/// ts->options; sampling-shared fields are copied over after the parse.
void BindTrainSpec(config::Spec& spec, TrainSpec* ts) {
  TrainOptions* opt = &ts->options;
  spec.U32("workers", &ts->workers).Min(1).Help("cluster size");
  spec.U32("epochs", &opt->epochs).Min(1).Help("training epochs");
  spec.I32("layers", &opt->model.num_layers).Min(1).Help("GNN layers");
  spec.U32("hidden", &opt->model.hidden_dim).Min(1).Help("hidden width");
  spec.F32("lr", &opt->model.learning_rate)
      .MinExclusive(0)
      .Help("Adam learning rate");
  spec.Enum<GnnKind>("model", &opt->model.kind,
                     {{"gcn", GnnKind::kGcn}, {"sage", GnnKind::kSage}})
      .Help("architecture");
  spec.Enum<FpMode>("fp", &opt->fp_mode,
                    {{"exact", FpMode::kExact},
                     {"cp", FpMode::kCompressed},
                     {"reqec", FpMode::kReqEc},
                     {"delayed", FpMode::kDelayed}})
      .Help("forward-pass message policy");
  spec.Enum<BpMode>("bp", &opt->bp_mode,
                    {{"exact", BpMode::kExact},
                     {"cp", BpMode::kCompressed},
                     {"resec", BpMode::kResEc}})
      .Help("backward-pass message policy");
  // The bucket codecs pack {1,2,4,8,16}-bit ids (kBitTunerMaxBits is the
  // ceiling every adaptive path saturates at); reject unsupported widths
  // here instead of deep inside the first quantized exchange.
  auto supported_width = [&spec](const char* key, const int32_t* bits) {
    return [&spec, key, bits]() -> Status {
      if (IsSupportedBitWidth(*bits)) return Status::OK();
      return spec.Error(std::string(key) +
                        " must be one of 1|2|4|8|16, got " +
                        std::to_string(*bits));
    };
  };
  spec.I32("fp_bits", &opt->exchange.fp_bits)
      .Min(1)
      .Max(kBitTunerMaxBits)
      .Check(supported_width("fp_bits", &opt->exchange.fp_bits))
      .Help("FP quantization bits (1|2|4|8|16)");
  spec.I32("bp_bits", &opt->exchange.bp_bits)
      .Min(1)
      .Max(kBitTunerMaxBits)
      .Check(supported_width("bp_bits", &opt->exchange.bp_bits))
      .Help("BP quantization bits (1|2|4|8|16)");
  spec.Bool("adapt", &opt->exchange.adaptive_bits)
      .Help("Bit-Tuner adaptive bit width");
  // The tuner thresholds form a dead band; hi <= lo would make the width
  // oscillate every epoch, so both keys re-validate the relation.
  auto tuner_band = [&spec, opt]() -> Status {
    if (opt->exchange.tuner_hi > opt->exchange.tuner_lo) {
      return Status::OK();
    }
    return spec.Error("tuner_hi must be > tuner_lo (got hi=" +
                      std::to_string(opt->exchange.tuner_hi) + " lo=" +
                      std::to_string(opt->exchange.tuner_lo) + ")");
  };
  spec.F64("tuner_hi", &opt->exchange.tuner_hi)
      .MinExclusive(0)
      .Max(1)
      .Check(tuner_band)
      .Help("Bit-Tuner grow threshold (predicted fraction)");
  spec.F64("tuner_lo", &opt->exchange.tuner_lo)
      .Min(0)
      .Max(1)
      .Check(tuner_band)
      .Help("Bit-Tuner shrink threshold; must stay below tuner_hi");
  spec.Bool("bit_alloc", &opt->exchange.bit_alloc)
      .Help("per-(layer,peer) bit-allocation solver (replaces the global "
            "Bit-Tuner; see DESIGN.md §16)");
  spec.F64("bit_budget", &opt->exchange.bit_budget)
      .MinExclusive(0)
      .Help("bit_alloc traffic budget, fraction of the fp_bits/bp_bits "
            "baseline bytes");
  spec.Enum<PartitionerKind>("partitioner", &ts->partitioner,
                             {{"hash", PartitionerKind::kHash},
                              {"metis", PartitionerKind::kMetis},
                              {"streaming", PartitionerKind::kStreaming}})
      .Help("graph partitioner");
  spec.U32("patience", &opt->patience)
      .Help("early-stop patience, epochs (0 = off)");
  spec.Bool("overlap", &opt->overlap)
      .Help("split-phase halo exchange overlapped with interior compute");
  spec.Bool("int8_gemm", &opt->int8_gemm)
      .Help("boundary-row transform in the int8 packed domain");
  spec.U32("log_every", &opt->log_every)
      .Help("progress line cadence, epochs (0 = silent)");
  spec.U32("checkpoint_every", &opt->checkpoint_every)
      .Help("epoch checkpoint cadence (0 = auto iff a crash is scheduled)");
  spec.String("checkpoint_dir", &opt->checkpoint_dir)
      .Help("mirror latest checkpoint to DIR/checkpoint_latest.bin");
  spec.String("elastic", &opt->elastic)
      .Check([opt]() {
        // Validate eagerly so a bad membership schedule fails at the CLI
        // instead of deep inside Train().
        return elastic::ElasticOptions::Parse(opt->elastic).status();
      })
      .Help("membership schedule + rebalancer (see elastic keys below)");
  spec.F64List("worker_scale", &opt->worker_compute_scale, ':')
      .Check([opt, &spec]() -> Status {
        for (double v : opt->worker_compute_scale) {
          if (v <= 0.0) {
            return spec.Error("worker_scale entries must be > 0");
          }
        }
        return Status::OK();
      })
      .Help("per-worker compute slowdown multipliers (straggler demo)");
  spec.String("sampling", &ts->sampling_spec_text)
      .Help("switch to the sampling trainer; ':'-joined sub-keys "
            "fanout=AxB... | online=on|off | seed=N");
}

}  // namespace

Result<graph::Partition> MakePartition(const graph::Graph& g,
                                       uint32_t workers,
                                       PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kHash:
      return graph::HashPartition(g, workers);
    case PartitionerKind::kMetis:
      return graph::MetisLikePartition(g, workers);
    case PartitionerKind::kStreaming:
      return graph::StreamingPartition(g, workers);
  }
  return Status::InvalidArgument("unknown partitioner");
}

Result<TrainSpec> ParseTrainSpec(const std::vector<std::string>& args) {
  TrainSpec ts;
  // CLI-surface defaults (the library structs default to the exact modes;
  // the command line keeps the paper's compensated pipeline as baseline).
  ts.options.fp_mode = FpMode::kReqEc;
  ts.options.bp_mode = BpMode::kResEc;
  ts.options.log_every = 10;

  config::Spec spec("train");
  BindTrainSpec(spec, &ts);
  ECG_RETURN_IF_ERROR(spec.ParseClauses(args));

  bool fp_explicit = false, bp_explicit = false;
  for (const std::string& a : args) {
    if (a.rfind("fp=", 0) == 0) fp_explicit = true;
    if (a.rfind("bp=", 0) == 0) bp_explicit = true;
  }

  if (!ts.sampling_spec_text.empty()) {
    ts.use_sampling = true;
    config::Spec sub("sampling");
    BindSamplingSpec(sub, &ts.sampling);
    ECG_RETURN_IF_ERROR(
        sub.ParseClauses(config::Spec::Split(ts.sampling_spec_text, ":")));
  }
  if (ts.use_sampling) {
    // Shared keys apply to both trainers; the compensated defaults map to
    // plain compression (sampling re-keys the halo layout every epoch).
    ts.sampling.model = ts.options.model;
    ts.sampling.fp_mode = fp_explicit ? ts.options.fp_mode
                                      : FpMode::kCompressed;
    ts.sampling.bp_mode = bp_explicit ? ts.options.bp_mode
                                      : BpMode::kCompressed;
    ts.sampling.exchange = ts.options.exchange;
    ts.sampling.overlap = ts.options.overlap;
    ts.sampling.int8_gemm = ts.options.int8_gemm;
    ts.sampling.num_servers = ts.options.num_servers;
    ts.sampling.epochs = ts.options.epochs;
    ts.sampling.network = ts.options.network;
    ts.sampling.machine = ts.options.machine;
    ts.sampling.patience = ts.options.patience;
    ts.sampling.log_every = ts.options.log_every;
  }
  return ts;
}

std::string TrainSpecHelp() {
  TrainSpec ts;
  // Mirror the CLI-surface defaults applied in ParseTrainSpec so the
  // rendered "(default ...)" annotations match what an empty parse yields.
  ts.options.fp_mode = FpMode::kReqEc;
  ts.options.bp_mode = BpMode::kResEc;
  ts.options.log_every = 10;
  config::Spec spec("train");
  BindTrainSpec(spec, &ts);
  std::string text = "train keys:\n" + spec.HelpText();

  SamplingTrainOptions sampling;
  config::Spec sub("sampling");
  BindSamplingSpec(sub, &sampling);
  text += "sampling= sub-keys (':'-joined):\n" + sub.HelpText();

  text += "elastic= sub-keys (','-joined):\n" + elastic::ElasticSpecHelp();
  return text;
}

}  // namespace ecg::core
