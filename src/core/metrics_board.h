#ifndef ECGRAPH_CORE_METRICS_BOARD_H_
#define ECGRAPH_CORE_METRICS_BOARD_H_

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "core/metrics.h"
#include "tensor/matrix.h"

namespace ecg::core::internal {

/// Cross-worker blackboard shared by the trainers: per-epoch metric
/// reduction plus the shared early-stop decision. All access is
/// mutex-guarded; the BSP barriers order the phases (every worker Adds its
/// locals before worker 0 finalizes the epoch).
struct MetricsBoard {
  std::mutex mu;
  double loss_sum = 0.0;
  uint64_t correct[3] = {0, 0, 0};  // train, val, test
  uint64_t totals[3] = {0, 0, 0};
  std::atomic<uint64_t> param_bytes{0};

  std::vector<EpochMetrics> epochs;
  double last_clock = 0.0;
  uint64_t last_comm_bytes = 0;
  uint64_t last_param_bytes = 0;

  double best_val = -1.0;
  double test_at_best_val = 0.0;
  uint32_t best_epoch = 0;
  uint32_t epochs_since_best = 0;
  std::atomic<bool> stop{false};

  void AddLocal(double loss, const uint64_t c[3], const uint64_t t[3]) {
    std::lock_guard<std::mutex> lock(mu);
    loss_sum += loss;
    for (int i = 0; i < 3; ++i) {
      correct[i] += c[i];
      totals[i] += t[i];
    }
  }

  /// Worker 0 calls this after the epoch barrier: folds the accumulators
  /// into an EpochMetrics, resets them, tracks the best-val epoch and
  /// arms the early-stop flag. `clock` is the caller's aligned simulated
  /// time, `comm`/`pbytes` are the cluster's cumulative byte counters.
  void FinalizeEpoch(uint32_t epoch, double clock, uint64_t comm,
                     size_t global_train, uint32_t patience) {
    std::lock_guard<std::mutex> lock(mu);
    EpochMetrics m;
    m.loss = loss_sum / static_cast<double>(global_train);
    for (int s = 0; s < 3; ++s) {
      const double acc =
          totals[s] ? static_cast<double>(correct[s]) / totals[s] : 0.0;
      if (s == 0) m.train_acc = acc;
      if (s == 1) m.val_acc = acc;
      if (s == 2) m.test_acc = acc;
    }
    m.sim_seconds = clock - last_clock;
    last_clock = clock;
    m.comm_bytes = comm - last_comm_bytes;
    last_comm_bytes = comm;
    const uint64_t pbytes = param_bytes.load(std::memory_order_relaxed);
    m.param_bytes = pbytes - last_param_bytes;
    last_param_bytes = pbytes;
    epochs.push_back(m);
    loss_sum = 0.0;
    for (int i = 0; i < 3; ++i) correct[i] = totals[i] = 0;

    if (m.val_acc > best_val) {
      best_val = m.val_acc;
      test_at_best_val = m.test_acc;
      best_epoch = epoch;
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
    }
    if (patience > 0 && epochs_since_best >= patience) {
      stop.store(true, std::memory_order_relaxed);
    }
  }

  /// Moves the accumulated curve into a TrainResult summary.
  TrainResult ToResult(double preprocess_seconds) {
    TrainResult result;
    result.epochs = std::move(epochs);
    result.best_val_acc = best_val < 0.0 ? 0.0 : best_val;
    result.test_acc_at_best_val = test_at_best_val;
    result.best_epoch = best_epoch;
    result.preprocess_seconds = preprocess_seconds;
    for (const auto& e : result.epochs) {
      result.total_sim_seconds += e.sim_seconds;
      result.total_comm_bytes += e.comm_bytes;
    }
    if (!result.epochs.empty()) {
      result.avg_epoch_seconds = result.total_sim_seconds /
                                 static_cast<double>(result.epochs.size());
    }
    return result;
  }
};

/// [owned ; halo] stacked into one matrix whose row indexing matches the
/// columns of a WorkerPlan's sub-adjacency.
inline void BuildCat(const tensor::Matrix& owned, const tensor::Matrix& halo,
                     tensor::Matrix* cat) {
  ECG_CHECK(owned.cols() == halo.cols() || halo.rows() == 0)
      << "cat width mismatch";
  cat->Reset(owned.rows() + halo.rows(), owned.cols());
  std::memcpy(cat->data(), owned.data(), owned.size() * sizeof(float));
  if (halo.rows() > 0) {
    std::memcpy(cat->Row(owned.rows()), halo.data(),
                halo.size() * sizeof(float));
  }
}

}  // namespace ecg::core::internal

#endif  // ECGRAPH_CORE_METRICS_BOARD_H_
