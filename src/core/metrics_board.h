#ifndef ECGRAPH_CORE_METRICS_BOARD_H_
#define ECGRAPH_CORE_METRICS_BOARD_H_

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "core/epoch_metrics.h"
#include "tensor/matrix.h"

namespace ecg::core::internal {

/// Cross-worker blackboard shared by the trainers: per-epoch metric
/// reduction plus the shared early-stop decision. All access is
/// mutex-guarded; the BSP barriers order the phases (every worker Adds its
/// locals before worker 0 finalizes the epoch).
struct MetricsBoard {
  std::mutex mu;
  /// Per-worker loss contributions, reduced in worker-id order by
  /// FinalizeEpoch. An arrival-order `sum +=` would make the reported loss
  /// depend on thread scheduling in the last ULP; worker-id order keeps the
  /// whole training curve bit-reproducible (same policy as the parameter
  /// server's gradient reduction).
  std::vector<double> loss_of;
  uint64_t correct[3] = {0, 0, 0};  // train, val, test
  uint64_t totals[3] = {0, 0, 0};
  std::atomic<uint64_t> param_bytes{0};

  std::vector<EpochMetrics> epochs;
  /// Baselines the per-epoch deltas subtract from; written only through
  /// SetEpochBaseline / FinalizeEpoch so every access holds `mu`.
  double last_clock = 0.0;
  uint64_t last_comm_bytes = 0;
  uint64_t last_param_bytes = 0;
  /// Pre-epoch-0 baselines (SetEpochBaseline), kept so RollbackTo can
  /// rebuild the last_* values from the retained epochs' deltas.
  double base_clock = 0.0;
  uint64_t base_comm_bytes = 0;
  /// Per-phase simulated seconds of the epoch in flight (cleared by
  /// FinalizeEpoch into EpochMetrics::phase_seconds).
  std::map<std::string, double> phase_acc;

  double best_val = -1.0;
  double test_at_best_val = 0.0;
  uint32_t best_epoch = 0;
  uint32_t epochs_since_best = 0;
  std::atomic<bool> stop{false};

  void AddLocal(uint32_t worker, double loss, const uint64_t c[3],
                const uint64_t t[3]) {
    std::lock_guard<std::mutex> lock(mu);
    if (loss_of.size() <= worker) loss_of.resize(worker + 1, 0.0);
    loss_of[worker] += loss;
    for (int i = 0; i < 3; ++i) {
      correct[i] += c[i];
      totals[i] += t[i];
    }
  }

  /// Sets the epoch-delta baselines before the first epoch (worker 0,
  /// between the post-preprocessing barriers). Goes through `mu` like
  /// every other field access — the surrounding barriers do order this
  /// write against the readers in FinalizeEpoch, but taking the lock keeps
  /// the invariant checkable without reasoning about barrier placement.
  void SetEpochBaseline(double clock, uint64_t comm_bytes) {
    std::lock_guard<std::mutex> lock(mu);
    last_clock = clock;
    last_comm_bytes = comm_bytes;
    base_clock = clock;
    base_comm_bytes = comm_bytes;
  }

  /// Crash recovery (worker 0, between the restore barriers): forgets every
  /// finalized epoch past the first `keep_epochs` and clears the epoch in
  /// flight. The simulated clock cannot rewind, so the delta baselines are
  /// recomputed from the kept epochs' sums — everything between the
  /// checkpoint and the restore (the wasted epochs plus the restart
  /// downtime) then lands in the first re-run epoch's sim_seconds, keeping
  /// the reported makespan honest about what the crash cost.
  void RollbackTo(uint32_t keep_epochs) {
    std::lock_guard<std::mutex> lock(mu);
    if (epochs.size() > keep_epochs) epochs.resize(keep_epochs);
    loss_of.assign(loss_of.size(), 0.0);
    for (int i = 0; i < 3; ++i) correct[i] = totals[i] = 0;
    phase_acc.clear();
    last_clock = base_clock;
    last_comm_bytes = base_comm_bytes;
    last_param_bytes = 0;
    best_val = -1.0;
    test_at_best_val = 0.0;
    best_epoch = 0;
    epochs_since_best = 0;
    for (size_t e = 0; e < epochs.size(); ++e) {
      const EpochMetrics& m = epochs[e];
      last_clock += m.sim_seconds;
      last_comm_bytes += m.comm_bytes;
      last_param_bytes += m.param_bytes;
      if (m.val_acc > best_val) {
        best_val = m.val_acc;
        test_at_best_val = m.test_acc;
        best_epoch = static_cast<uint32_t>(e);
        epochs_since_best = 0;
      } else {
        ++epochs_since_best;
      }
    }
    stop.store(false, std::memory_order_relaxed);
  }

  /// Adds one worker's simulated seconds of a named phase for the epoch in
  /// flight; also mirrored into the obs stats registry (as
  /// "phase.<name>") when stats collection is enabled.
  void AddPhase(uint32_t epoch, const char* phase, double sim_seconds) {
    if (obs::StatsEnabled()) {
      obs::RecordStat(std::string("phase.") + phase, sim_seconds, epoch);
    }
    std::lock_guard<std::mutex> lock(mu);
    phase_acc[phase] += sim_seconds;
  }

  /// Worker 0 calls this after the epoch barrier: folds the accumulators
  /// into an EpochMetrics, resets them, tracks the best-val epoch and
  /// arms the early-stop flag. `clock` is the caller's aligned simulated
  /// time, `comm`/`pbytes` are the cluster's cumulative byte counters.
  void FinalizeEpoch(uint32_t epoch, double clock, uint64_t comm,
                     size_t global_train, uint32_t patience) {
    std::lock_guard<std::mutex> lock(mu);
    EpochMetrics m;
    double loss_sum = 0.0;  // worker-id order: deterministic float reduction
    for (double part : loss_of) loss_sum += part;
    m.loss = loss_sum / static_cast<double>(global_train);
    for (int s = 0; s < 3; ++s) {
      const double acc =
          totals[s] ? static_cast<double>(correct[s]) / totals[s] : 0.0;
      if (s == 0) m.train_acc = acc;
      if (s == 1) m.val_acc = acc;
      if (s == 2) m.test_acc = acc;
    }
    m.sim_seconds = clock - last_clock;
    last_clock = clock;
    m.comm_bytes = comm - last_comm_bytes;
    last_comm_bytes = comm;
    const uint64_t pbytes = param_bytes.load(std::memory_order_relaxed);
    m.param_bytes = pbytes - last_param_bytes;
    last_param_bytes = pbytes;
    m.phase_seconds.assign(phase_acc.begin(), phase_acc.end());
    phase_acc.clear();
    epochs.push_back(m);
    loss_of.assign(loss_of.size(), 0.0);
    for (int i = 0; i < 3; ++i) correct[i] = totals[i] = 0;

    if (m.val_acc > best_val) {
      best_val = m.val_acc;
      test_at_best_val = m.test_acc;
      best_epoch = epoch;
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
    }
    if (patience > 0 && epochs_since_best >= patience) {
      stop.store(true, std::memory_order_relaxed);
    }

    // Telemetry: fold the epoch summary into the stats registry and flush
    // this epoch's rows to the JSONL stream (every worker's exchange stats
    // for `epoch` are in — the caller sits between the BSP barriers).
    if (obs::StatsEnabled()) {
      obs::RecordStat("epoch.loss", m.loss, epoch);
      obs::RecordStat("epoch.val_acc", m.val_acc, epoch);
      obs::RecordStat("epoch.sim_seconds", m.sim_seconds, epoch);
      obs::RecordStat("epoch.comm_bytes",
                      static_cast<double>(m.comm_bytes), epoch);
      obs::RecordStat("epoch.param_bytes",
                      static_cast<double>(m.param_bytes), epoch);
      obs::StatsRegistry::Global().FlushEpoch(epoch);
    }
  }

  /// Moves the accumulated curve into a TrainResult summary.
  TrainResult ToResult(double preprocess_seconds) {
    TrainResult result;
    result.epochs = std::move(epochs);
    result.best_val_acc = best_val < 0.0 ? 0.0 : best_val;
    result.test_acc_at_best_val = test_at_best_val;
    result.best_epoch = best_epoch;
    result.preprocess_seconds = preprocess_seconds;
    for (const auto& e : result.epochs) {
      result.total_sim_seconds += e.sim_seconds;
      result.total_comm_bytes += e.comm_bytes;
    }
    if (!result.epochs.empty()) {
      result.avg_epoch_seconds = result.total_sim_seconds /
                                 static_cast<double>(result.epochs.size());
    }
    return result;
  }
};

/// Books the simulated seconds a scope advances the worker's clock by
/// (compute charges + modelled comm + stalls) as one named phase of the
/// epoch in flight. Complements ECG_TRACE_SCOPE, which records the *real*
/// seconds of the same scope: together they populate the sim phase
/// breakdown (EpochMetrics::phase_seconds, "phase.*" stats) and the
/// real-clock trace track. Templated on the context type only to keep this
/// header free of a dist/ dependency; Ctx is always WorkerContext.
template <typename Ctx>
class PhaseScope {
 public:
  PhaseScope(Ctx* ctx, MetricsBoard* board, uint32_t epoch, const char* name)
      : ctx_(ctx), board_(board), epoch_(epoch), name_(name),
        start_(ctx->total_seconds()) {}
  ~PhaseScope() {
    board_->AddPhase(epoch_, name_, ctx_->total_seconds() - start_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Ctx* ctx_;
  MetricsBoard* board_;
  uint32_t epoch_;
  const char* name_;
  double start_;
};

/// [owned ; halo] stacked into one matrix whose row indexing matches the
/// columns of a WorkerPlan's sub-adjacency.
inline void BuildCat(const tensor::Matrix& owned, const tensor::Matrix& halo,
                     tensor::Matrix* cat) {
  ECG_CHECK(owned.cols() == halo.cols() || halo.rows() == 0)
      << "cat width mismatch";
  cat->Reset(owned.rows() + halo.rows(), owned.cols());
  std::memcpy(cat->data(), owned.data(), owned.size() * sizeof(float));
  if (halo.rows() > 0) {
    std::memcpy(cat->Row(owned.rows()), halo.data(),
                halo.size() * sizeof(float));
  }
}

}  // namespace ecg::core::internal

#endif  // ECGRAPH_CORE_METRICS_BOARD_H_
