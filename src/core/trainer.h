#ifndef ECGRAPH_CORE_TRAINER_H_
#define ECGRAPH_CORE_TRAINER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/exchange.h"
#include "core/gcn.h"
#include "core/epoch_metrics.h"
#include "dist/network_model.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace ecg::core {

/// Everything needed to run one distributed full-batch training job.
struct TrainOptions {
  GcnConfig model;
  FpMode fp_mode = FpMode::kExact;
  BpMode bp_mode = BpMode::kExact;
  ExchangeConfig exchange;
  uint32_t num_servers = 1;
  uint32_t epochs = 100;
  dist::NetworkModel network;
  /// CPU model of each worker machine (see dist::MachineModel).
  dist::MachineModel machine;
  /// Cache first-hop remote features (Section III-A basic optimization):
  /// the H^0 halo is shipped exactly once during preprocessing instead of
  /// re-fetched every epoch.
  bool cache_features = true;
  /// Overlap halo exchanges with interior compute (split-phase schedule):
  /// each exchange is Started as soon as its layer's activations are ready,
  /// the aggregation of the rows whose neighborhoods are fully owned runs
  /// while the messages are in flight, and the exchange is Finished just
  /// before the boundary rows need the halo. The comm clock then charges
  /// max(0, comm − overlapped compute). Results are bitwise identical to
  /// the sequential schedule; `false` restores it exactly.
  bool overlap = true;
  /// Run the boundary-row transform Z = P·W of the overlapped schedule in
  /// the int8 packed domain (quantize the boundary rows of P at 8 bits,
  /// then the fused compress::DequantGemmRows) instead of float GemmRows.
  /// Off by default: the result deviates from the float path by the
  /// weight-quantization error (see int8_gemm.h), so it trades a bounded
  /// accuracy perturbation for GEMM throughput. Shapes the fused kernel
  /// cannot take fall back to the float path automatically.
  bool int8_gemm = false;
  /// Early stopping: stop when val accuracy hasn't improved for `patience`
  /// epochs (0 disables). All workers stop together.
  uint32_t patience = 0;
  /// Print a progress line every N epochs (0 = silent).
  uint32_t log_every = 0;
  /// Take an epoch checkpoint (model + optimizer + compensation state)
  /// every N epochs. 0 = automatic: checkpoint every epoch when the active
  /// fault schedule contains a crash, otherwise never. An injected worker
  /// crash restores the whole job from the latest checkpoint.
  uint32_t checkpoint_every = 0;
  /// Mirror the latest checkpoint to this directory (atomic rename);
  /// empty = in-memory only.
  std::string checkpoint_dir;
  /// Elastic membership spec (ecg::elastic::ElasticOptions grammar):
  /// scheduled join/leave events, the crash response policy, and the
  /// straggler rebalancer knobs. Empty = fixed membership, bit-identical
  /// to the non-elastic trainer.
  std::string elastic;
  /// Per-worker compute slowdown multipliers (2.0 = that worker's compute
  /// takes twice as long on the simulated clock). Missing entries are 1.0;
  /// empty = homogeneous cluster. Used by the chaos bench to model a
  /// persistent straggler machine.
  std::vector<double> worker_compute_scale;
};

/// Distributed full-batch GCN training on a simulated CPU cluster: the
/// EC-Graph system of Section III with pluggable FP/BP message policies
/// (Section IV). One worker per partition part; parameters live on a
/// range-partitioned server group; workers exchange H/G halo rows per
/// layer per epoch through the configured exchangers.
class DistributedTrainer {
 public:
  /// The graph and partition must outlive the trainer.
  DistributedTrainer(const graph::Graph& g, const graph::Partition& partition,
                     TrainOptions options);

  /// Runs the job; returns the metric curves and simulated times.
  Result<TrainResult> Train();

 private:
  const graph::Graph& graph_;
  const graph::Partition& partition_;
  TrainOptions options_;
};

/// Convenience wrapper: hash-partitions the graph over `num_workers`
/// workers and trains.
Result<TrainResult> TrainDistributed(const graph::Graph& g,
                                     uint32_t num_workers,
                                     const TrainOptions& options);

}  // namespace ecg::core

#endif  // ECGRAPH_CORE_TRAINER_H_
