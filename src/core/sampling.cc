#include "core/sampling.h"

#include <algorithm>

#include "common/random.h"

namespace ecg::core {

Result<SampledLayerGraph> SampleLayerGraph(const graph::Graph& g,
                                           uint32_t fanout, uint64_t seed) {
  const uint32_t n = g.num_vertices();
  SampledLayerGraph out;

  if (fanout == 0) {
    // No sampling: copy the full structure.
    out.offsets.assign(n + 1, 0);
    for (uint32_t v = 0; v < n; ++v) {
      out.offsets[v + 1] = out.offsets[v] + g.Degree(v);
    }
    out.adj.reserve(g.num_edges());
    for (uint32_t v = 0; v < n; ++v) {
      const auto nb = g.Neighbors(v);
      out.adj.insert(out.adj.end(), nb.begin(), nb.end());
    }
    return out;
  }

  // Every vertex nominates up to `fanout` incident edges; an edge survives
  // if either endpoint nominated it (symmetrization). Nomination uses a
  // per-vertex reservoir over the sorted neighbour list, deterministic in
  // (seed, v).
  std::vector<std::vector<uint32_t>> kept(n);
  Rng rng(seed);
  std::vector<uint32_t> scratch;
  for (uint32_t v = 0; v < n; ++v) {
    const auto nb = g.Neighbors(v);
    if (nb.size() <= fanout) {
      for (uint32_t u : nb) {
        if (u > v) kept[v].push_back(u);
        else kept[u].push_back(v);
      }
      continue;
    }
    // Partial Fisher-Yates over a scratch copy: first `fanout` slots.
    scratch.assign(nb.begin(), nb.end());
    for (uint32_t i = 0; i < fanout; ++i) {
      const uint64_t j = i + rng.NextBelow(scratch.size() - i);
      std::swap(scratch[i], scratch[j]);
      const uint32_t u = scratch[i];
      if (u > v) kept[v].push_back(u);
      else kept[u].push_back(v);
    }
  }

  // Dedupe per source (both endpoints may nominate the same edge) and
  // emit both directions.
  std::vector<uint32_t> degree(n, 0);
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(kept[v].begin(), kept[v].end());
    kept[v].erase(std::unique(kept[v].begin(), kept[v].end()),
                  kept[v].end());
    for (uint32_t u : kept[v]) {
      ++degree[v];
      ++degree[u];
    }
  }
  out.offsets.assign(n + 1, 0);
  for (uint32_t v = 0; v < n; ++v) {
    out.offsets[v + 1] = out.offsets[v] + degree[v];
  }
  out.adj.resize(out.offsets[n]);
  std::vector<uint64_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t u : kept[v]) {
      out.adj[cursor[v]++] = u;
      out.adj[cursor[u]++] = v;
    }
  }
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(out.adj.begin() + out.offsets[v],
              out.adj.begin() + out.offsets[v + 1]);
  }
  return out;
}

}  // namespace ecg::core
