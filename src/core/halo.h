#ifndef ECGRAPH_CORE_HALO_H_
#define ECGRAPH_CORE_HALO_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/gcn.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "tensor/csr.h"

namespace ecg::core {

/// Everything one worker needs to run partitioned GCN supersteps:
///
///  * which vertices it owns (global ids + global->local row map);
///  * its halo — remote 1-hop neighbours of owned vertices, in a fixed
///    sorted order (halo row i of the H_cat matrix = halo_vertices[i]);
///  * per-peer send/recv lists: send_rows[p] are *local row indices* of
///    owned vertices that peer p's halo contains (what this worker must
///    ship to p each exchange), and recv_halo_rows[p] are the *halo row
///    indices* that peer p's message fills in;
///  * the worker's slice of the normalized adjacency
///    Â = D^{-1/2}(A+I)D^{-1/2}: rows = owned vertices (local order),
///    columns = [owned local rows | halo rows] — multiplying it with
///    H_cat = [H_owned ; H_halo] yields the aggregation of Eq. 2.
///
/// This is the 1-hop NAC (Neighbor Access Controller) of the paper, built
/// once at partition time.
struct WorkerPlan {
  uint32_t worker_id = 0;

  /// Owned vertex ids, ascending. Local row r holds global id owned[r].
  std::vector<uint32_t> owned;
  /// Halo vertex ids, ascending. H_cat row owned.size()+i = halo[i].
  std::vector<uint32_t> halo;
  /// owner[halo[i]] for quick lookup.
  std::vector<uint32_t> halo_owner;

  /// send_rows[p]: local rows this worker ships to peer p (empty for
  /// p == worker_id). Sorted by the *global id* of the vertex, which makes
  /// them positionally consistent with peer p's recv_halo_rows[this].
  std::vector<std::vector<uint32_t>> send_rows;
  /// recv_halo_rows[p]: halo rows filled by peer p's message, in the same
  /// global-id order as p's send_rows[this worker].
  std::vector<std::vector<uint32_t>> recv_halo_rows;

  /// Âsub: owned.size() x (owned.size() + halo.size()).
  tensor::CsrMatrix adj;
  /// Backward-flow aggregation slice over the same [owned | halo] column
  /// layout. Empty (nnz == 0) when the aggregation matrix is symmetric
  /// (GCN) — use `adj` then. Populated for asymmetric aggregators
  /// (GraphSAGE mean): entry (v, u) = Ā[u, v], i.e. the transpose values
  /// on the same sparsity.
  tensor::CsrMatrix adj_bp;

  /// Interior/boundary row split for overlapped execution (the AdaQP
  /// central/marginal vertex distinction): a local row is *interior* when
  /// every adjacency column it touches is owned, so its aggregation needs
  /// no halo data and can run while the exchange is still in flight.
  /// Boundary rows touch at least one halo column. interior_rows and
  /// boundary_rows together enumerate every local row exactly once,
  /// ascending.
  std::vector<uint32_t> interior_rows;
  std::vector<uint32_t> boundary_rows;

  /// Row-partitioned slices of `adj`: adj_interior is
  /// owned.size() x owned.size() holding only interior rows' nonzeros
  /// (interior rows reference owned columns only, so it multiplies
  /// H_owned directly); adj_boundary is owned.size() x cat_rows() holding
  /// only boundary rows' nonzeros. Per-row nonzero order matches `adj`
  /// exactly, so SpMMRows over the two slices reproduces SpMM bitwise.
  tensor::CsrMatrix adj_interior;
  tensor::CsrMatrix adj_boundary;
  /// Same split for adj_bp (populated iff adj_bp is; same sparsity as adj
  /// so the interior/boundary classification is shared).
  tensor::CsrMatrix adj_bp_interior;
  tensor::CsrMatrix adj_bp_boundary;

  /// The aggregation slice BP should use.
  const tensor::CsrMatrix& bp_adj() const {
    return adj_bp.nnz() > 0 ? adj_bp : adj;
  }
  const tensor::CsrMatrix& bp_adj_interior() const {
    return adj_bp.nnz() > 0 ? adj_bp_interior : adj_interior;
  }
  const tensor::CsrMatrix& bp_adj_boundary() const {
    return adj_bp.nnz() > 0 ? adj_bp_boundary : adj_boundary;
  }

  size_t num_owned() const { return owned.size(); }
  size_t num_halo() const { return halo.size(); }
  size_t cat_rows() const { return owned.size() + halo.size(); }

  /// Total remote 1-hop neighbour entries = ḡ_rmt · |owned| (Table I).
  uint64_t total_send_rows() const {
    uint64_t total = 0;
    for (const auto& s : send_rows) total += s.size();
    return total;
  }
};

/// Builds the plan of every worker for a partition. plans->size() will be
/// partition.num_parts. `kind` picks the aggregation weights: GCN's
/// symmetric normalization or SAGE's row-mean (which also populates
/// adj_bp with the transposed weights).
Status BuildWorkerPlans(const graph::Graph& g,
                        const graph::Partition& partition,
                        std::vector<WorkerPlan>* plans,
                        GnnKind kind = GnnKind::kGcn);

/// Generic adjacency accessor so plans can also be built over per-epoch
/// *sampled* adjacencies (EC-Graph-S) without materializing a Graph.
struct AdjacencyView {
  uint32_t num_vertices = 0;
  std::function<std::span<const uint32_t>(uint32_t)> neighbors;
  std::function<float(uint32_t, uint32_t)> norm_weight;
  /// Weight of edge (v, u) in the BACKWARD aggregation (= forward weight
  /// of (u, v)). Leave unset for symmetric aggregators; when set,
  /// WorkerPlan::adj_bp is populated.
  std::function<float(uint32_t, uint32_t)> norm_weight_bp;
};

/// View-based variant of BuildWorkerPlans (same invariants).
Status BuildWorkerPlansFromView(const AdjacencyView& view,
                                const graph::Partition& partition,
                                std::vector<WorkerPlan>* plans);

}  // namespace ecg::core

#endif  // ECGRAPH_CORE_HALO_H_
