#ifndef ECGRAPH_CORE_SAMPLING_TRAINER_H_
#define ECGRAPH_CORE_SAMPLING_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/epoch_metrics.h"
#include "core/sampling.h"
#include "core/trainer.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace ecg::core {

/// Sampling-mode distributed GCN training: the EC-Graph-S rows of
/// Tables IV/V and the DistDGL-like baseline.
///
/// Each epoch re-samples a symmetric sub-adjacency per layer (Fanouts),
/// rebuilds the halo exchange plan for it, and runs the same FP/BP
/// supersteps as the full-batch trainer on the sampled structure. Because
/// the sampled adjacency is symmetric with sampled-degree normalization,
/// BP is the exact adjoint of the sampled FP (gradients are unbiased for
/// the sampled objective).
///
/// Differences encoded by `online_sampling`:
///  * false (EC-Graph-S): offline distributed sampler — every worker
///    derives the epoch's sample deterministically from the shared seed,
///    costing only local compute (pipelined in the paper);
///  * true (DistDGL-like): online per-iteration sampling — each layer
///    additionally pays sampling RPCs (frontier ids to each neighbour
///    holder and neighbour lists back), charged through the NetworkModel.
///
/// Message policies are FpMode::{kExact,kCompressed} / BpMode::{kExact,
/// kCompressed}: per-vertex compensation state (ReqEC trends, ResEC
/// residuals) is keyed to a *stable* halo layout, which re-sampling
/// changes every epoch — the paper's EC algorithms are likewise evaluated
/// in full-batch mode (see DESIGN.md §6).
struct SamplingTrainOptions {
  GcnConfig model;
  /// Fan-outs, one per layer; empty = default 10 per layer.
  Fanouts fanouts;
  FpMode fp_mode = FpMode::kCompressed;
  BpMode bp_mode = BpMode::kCompressed;
  ExchangeConfig exchange;
  bool online_sampling = false;
  /// Overlap halo exchanges with interior aggregation (split-phase
  /// schedule, see TrainOptions::overlap). Per-epoch sampled plans carry
  /// their own interior/boundary split, so the same pipelining applies.
  bool overlap = true;
  /// Int8 packed-domain boundary-row transform (see TrainOptions::int8_gemm).
  bool int8_gemm = false;
  uint32_t num_servers = 1;
  uint32_t epochs = 100;
  dist::NetworkModel network;
  dist::MachineModel machine;
  uint32_t patience = 0;
  uint32_t log_every = 0;
  /// Seed for the per-epoch samplers.
  uint64_t sample_seed = 77;
};

class SamplingTrainer {
 public:
  SamplingTrainer(const graph::Graph& g, const graph::Partition& partition,
                  SamplingTrainOptions options);

  Result<TrainResult> Train();

 private:
  const graph::Graph& graph_;
  const graph::Partition& partition_;
  SamplingTrainOptions options_;
};

/// Convenience wrapper with hash partitioning.
Result<TrainResult> TrainSampled(const graph::Graph& g, uint32_t num_workers,
                                 const SamplingTrainOptions& options);

}  // namespace ecg::core

#endif  // ECGRAPH_CORE_SAMPLING_TRAINER_H_
