#ifndef ECGRAPH_CORE_EPOCH_METRICS_H_
#define ECGRAPH_CORE_EPOCH_METRICS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace ecg::core {

/// One epoch of a training run, as the benches report it.
struct EpochMetrics {
  double loss = 0.0;
  double train_acc = 0.0;
  double val_acc = 0.0;
  double test_acc = 0.0;
  /// Simulated wall time of the epoch: max over workers of
  /// (thread-CPU compute + modelled communication), lock-step aligned.
  double sim_seconds = 0.0;
  /// Worker-to-worker bytes shipped this epoch (exact, serialized sizes).
  uint64_t comm_bytes = 0;
  /// Worker<->parameter-server bytes this epoch.
  uint64_t param_bytes = 0;
  /// Optional per-phase breakdown of the epoch's simulated seconds,
  /// name-sorted, *summed across workers* (divide by the worker count for
  /// a per-machine view). Populated by the trainers via
  /// MetricsBoard::AddPhase; empty when phase accounting is off.
  std::vector<std::pair<std::string, double>> phase_seconds;

  /// Seconds of one named phase (0 when absent).
  double PhaseSeconds(const std::string& phase) const {
    for (const auto& [name, seconds] : phase_seconds) {
      if (name == phase) return seconds;
    }
    return 0.0;
  }
};

/// Full curve plus summary of a run.
struct TrainResult {
  std::vector<EpochMetrics> epochs;
  double best_val_acc = 0.0;
  /// Test accuracy at the best-validation epoch (the paper's Table V
  /// metric).
  double test_acc_at_best_val = 0.0;
  uint32_t best_epoch = 0;
  double total_sim_seconds = 0.0;
  double avg_epoch_seconds = 0.0;
  uint64_t total_comm_bytes = 0;
  /// Measured preprocessing: partitioning + plan building + feature-halo
  /// caching (Fig. 9's preprocessing bar).
  double preprocess_seconds = 0.0;

  /// First epoch whose val accuracy is within `tol` of the best; the
  /// "epochs to converge" of Figs. 8-9. For any non-empty curve with a
  /// consistent best_val_acc (== max over the curve) the loop below always
  /// returns — the best epoch itself matches — so the fallback only covers
  /// the empty curve.
  uint32_t ConvergenceEpoch(double tol = 0.005) const {
    for (uint32_t e = 0; e < epochs.size(); ++e) {
      if (epochs[e].val_acc >= best_val_acc - tol) return e;
    }
    return 0;
  }

  /// Simulated time to convergence (sum of epoch times through the
  /// convergence epoch).
  double ConvergenceSeconds(double tol = 0.005) const {
    const uint32_t ce = ConvergenceEpoch(tol);
    double total = 0.0;
    for (uint32_t e = 0; e <= ce && e < epochs.size(); ++e) {
      total += epochs[e].sim_seconds;
    }
    return total;
  }

  /// First epoch whose val accuracy reaches `target` (UINT32_MAX if the
  /// run never gets there). Using one target for every variant — e.g.
  /// 99.5% of the uncompressed baseline's best — makes time-to-convergence
  /// comparable across runs that plateau at different accuracies.
  uint32_t EpochsToReachVal(double target) const {
    for (uint32_t e = 0; e < epochs.size(); ++e) {
      if (epochs[e].val_acc >= target) return e;
    }
    return UINT32_MAX;
  }

  /// Simulated seconds until `target` val accuracy (inf if unreached).
  double SecondsToReachVal(double target) const {
    const uint32_t ce = EpochsToReachVal(target);
    if (ce == UINT32_MAX) return std::numeric_limits<double>::infinity();
    double total = 0.0;
    for (uint32_t e = 0; e <= ce; ++e) total += epochs[e].sim_seconds;
    return total;
  }
};

}  // namespace ecg::core

#endif  // ECGRAPH_CORE_EPOCH_METRICS_H_
