#ifndef ECGRAPH_CORE_GCN_H_
#define ECGRAPH_CORE_GCN_H_

#include <cstdint>
#include <vector>

#include "dist/param_server.h"

namespace ecg::core {

/// Which GNN variant the trainers run. Both exchange exactly the same
/// kinds of messages (neighbour embeddings in FP, embedding gradients in
/// BP), which is the paper's condition for a model to run on EC-Graph.
enum class GnnKind {
  /// Kipf-Welling GCN (Eqs. 2-3): Z = Â H W + b with the symmetric
  /// normalization Â = D^{-1/2}(A+I)D^{-1/2}.
  kGcn,
  /// GraphSAGE with the mean aggregator: Z = [H | mean_N(H)] W + b,
  /// where W stacks W_self on top of W_neigh ((2*in) x out). The mean
  /// aggregation matrix is row-normalized and therefore asymmetric, so BP
  /// flows through its transpose (WorkerPlan::adj_bp).
  kSage,
};

const char* GnnKindName(GnnKind kind);

/// Shape and optimizer knobs of the GNN being trained: L layers, each an
/// aggregation + linear + ReLU (softmax+CE after the last).
struct GcnConfig {
  GnnKind kind = GnnKind::kGcn;
  int num_layers = 2;
  uint32_t hidden_dim = 16;
  float learning_rate = 0.01f;
  /// Seed for Xavier initialization on the parameter servers.
  uint64_t seed = 42;
};

/// Per-layer parameter shapes given input features and classes:
/// d0 -> hidden -> ... -> hidden -> classes. SAGE doubles the input dim
/// of every layer (stacked self/neighbour weights).
inline std::vector<dist::ParameterServerGroup::LayerShape> GcnLayerShapes(
    const GcnConfig& config, size_t feature_dim, size_t num_classes) {
  std::vector<dist::ParameterServerGroup::LayerShape> shapes;
  const size_t in_factor = config.kind == GnnKind::kSage ? 2 : 1;
  size_t in = feature_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const size_t out =
        (l + 1 == config.num_layers) ? num_classes : config.hidden_dim;
    shapes.push_back({in * in_factor, out});
    in = out;
  }
  return shapes;
}

inline const char* GnnKindName(GnnKind kind) {
  return kind == GnnKind::kSage ? "GraphSAGE" : "GCN";
}

}  // namespace ecg::core

#endif  // ECGRAPH_CORE_GCN_H_
