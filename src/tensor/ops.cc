#include "tensor/ops.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace ecg::tensor {
namespace {

// Minimum per-thread row count before a kernel bothers going parallel.
constexpr size_t kRowGrain = 16;

// Minimum flat elements per chunk of the element-wise kernels. These are
// memory-bound single-op loops, so chunks must be large for the fork/join
// to pay off; ReqEC candidate construction hands them multi-MB matrices.
constexpr size_t kElemGrain = 1 << 15;

void CheckSameShape(const Matrix& a, const Matrix& b, const char* op) {
  ECG_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << op << " shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
      << b.rows() << "x" << b.cols();
}

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* c) {
  ECG_CHECK(a.cols() == b.rows()) << "Gemm inner dim mismatch: " << a.cols()
                                  << " vs " << b.rows();
  c->Reset(a.rows(), b.cols());
  const size_t n = b.cols();
  const size_t k_dim = a.cols();
  ThreadPool::Global().ParallelFor(
      a.rows(), kRowGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const float* arow = a.Row(i);
          float* crow = c->Row(i);
          // ikj order: stream through rows of B, unit-stride writes to C.
          for (size_t k = 0; k < k_dim; ++k) {
            const float av = arow[k];
            if (av == 0.0f) continue;
            const float* brow = b.Row(k);
            for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
}

void GemmRows(const Matrix& a, const Matrix& b,
              const std::vector<uint32_t>& row_ids, Matrix* c) {
  ECG_CHECK(a.cols() == b.rows()) << "GemmRows inner dim mismatch: "
                                  << a.cols() << " vs " << b.rows();
  ECG_CHECK(c->rows() == a.rows() && c->cols() == b.cols())
      << "GemmRows output must be pre-sized to " << a.rows() << "x"
      << b.cols();
  const size_t n = b.cols();
  const size_t k_dim = a.cols();
  ThreadPool::Global().ParallelFor(
      row_ids.size(), kRowGrain, [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          const size_t i = row_ids[r];
          const float* arow = a.Row(i);
          float* crow = c->Row(i);
          // Same ikj loop as Gemm: a row partition of calls is bitwise
          // identical to the full product.
          for (size_t k = 0; k < k_dim; ++k) {
            const float av = arow[k];
            if (av == 0.0f) continue;
            const float* brow = b.Row(k);
            for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* c) {
  ECG_CHECK(a.rows() == b.rows()) << "GemmTransposeA dim mismatch";
  // C (a.cols x b.cols) = sum over rows r of outer(a.Row(r), b.Row(r)).
  // Parallelize over output rows (= columns of A) to avoid write conflicts.
  c->Reset(a.cols(), b.cols());
  const size_t n = b.cols();
  ThreadPool::Global().ParallelFor(
      a.cols(), kRowGrain, [&](size_t begin, size_t end) {
        for (size_t r = 0; r < a.rows(); ++r) {
          const float* arow = a.Row(r);
          const float* brow = b.Row(r);
          for (size_t i = begin; i < end; ++i) {
            const float av = arow[i];
            if (av == 0.0f) continue;
            float* crow = c->Row(i);
            for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* c) {
  ECG_CHECK(a.cols() == b.cols()) << "GemmTransposeB dim mismatch";
  c->Reset(a.rows(), b.rows());
  const size_t k_dim = a.cols();
  ThreadPool::Global().ParallelFor(
      a.rows(), kRowGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const float* arow = a.Row(i);
          float* crow = c->Row(i);
          for (size_t j = 0; j < b.rows(); ++j) {
            const float* brow = b.Row(j);
            float acc = 0.0f;
            for (size_t k = 0; k < k_dim; ++k) acc += arow[k] * brow[k];
            crow[j] = acc;
          }
        }
      });
}

void GemmTransposeBRows(const Matrix& a, const Matrix& b,
                        const std::vector<uint32_t>& row_ids, Matrix* c) {
  ECG_CHECK(a.cols() == b.cols()) << "GemmTransposeBRows dim mismatch";
  ECG_CHECK(c->rows() == a.rows() && c->cols() == b.rows())
      << "GemmTransposeBRows output must be pre-sized to " << a.rows() << "x"
      << b.rows();
  const size_t k_dim = a.cols();
  ThreadPool::Global().ParallelFor(
      row_ids.size(), kRowGrain, [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          const size_t i = row_ids[r];
          const float* arow = a.Row(i);
          float* crow = c->Row(i);
          for (size_t j = 0; j < b.rows(); ++j) {
            const float* brow = b.Row(j);
            float acc = 0.0f;
            for (size_t k = 0; k < k_dim; ++k) acc += arow[k] * brow[k];
            crow[j] = acc;
          }
        }
      });
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.Row(r);
    for (size_t c = 0; c < a.cols(); ++c) out.At(c, r) = arow[c];
  }
  return out;
}

void AddInPlace(Matrix* a, const Matrix& b) {
  CheckSameShape(*a, b, "AddInPlace");
  float* ad = a->data();
  const float* bd = b.data();
  ThreadPool::Global().ParallelFor(
      a->size(), kElemGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ad[i] += bd[i];
      });
}

void SubInPlace(Matrix* a, const Matrix& b) {
  CheckSameShape(*a, b, "SubInPlace");
  float* ad = a->data();
  const float* bd = b.data();
  ThreadPool::Global().ParallelFor(
      a->size(), kElemGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ad[i] -= bd[i];
      });
}

void ScaleInPlace(Matrix* a, float s) {
  float* ad = a->data();
  ThreadPool::Global().ParallelFor(
      a->size(), kElemGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ad[i] *= s;
      });
}

void Axpy(float s, const Matrix& b, Matrix* a) {
  CheckSameShape(*a, b, "Axpy");
  float* ad = a->data();
  const float* bd = b.data();
  ThreadPool::Global().ParallelFor(
      a->size(), kElemGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ad[i] += s * bd[i];
      });
}

void HadamardInPlace(Matrix* a, const Matrix& b) {
  CheckSameShape(*a, b, "HadamardInPlace");
  float* ad = a->data();
  const float* bd = b.data();
  ThreadPool::Global().ParallelFor(
      a->size(), kElemGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ad[i] *= bd[i];
      });
}

void AddRowBias(Matrix* a, const Matrix& bias) {
  ECG_CHECK(bias.rows() == 1 && bias.cols() == a->cols())
      << "AddRowBias shape mismatch";
  const float* brow = bias.Row(0);
  for (size_t r = 0; r < a->rows(); ++r) {
    float* arow = a->Row(r);
    for (size_t c = 0; c < a->cols(); ++c) arow[c] += brow[c];
  }
}

Matrix ColumnSums(const Matrix& a) {
  Matrix out(1, a.cols());
  float* orow = out.Row(0);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* arow = a.Row(r);
    for (size_t c = 0; c < a.cols(); ++c) orow[c] += arow[c];
  }
  return out;
}

Matrix GatherRows(const Matrix& src, const std::vector<uint32_t>& indices) {
  Matrix out(indices.size(), src.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    ECG_CHECK(indices[i] < src.rows()) << "GatherRows index out of range";
    std::memcpy(out.Row(i), src.Row(indices[i]), src.cols() * sizeof(float));
  }
  return out;
}

void ScatterAddRows(const Matrix& src, const std::vector<uint32_t>& indices,
                    Matrix* dst) {
  ECG_CHECK(src.rows() == indices.size() && src.cols() == dst->cols())
      << "ScatterAddRows shape mismatch";
  for (size_t i = 0; i < indices.size(); ++i) {
    ECG_CHECK(indices[i] < dst->rows()) << "ScatterAddRows index out of range";
    float* drow = dst->Row(indices[i]);
    const float* srow = src.Row(i);
    for (size_t c = 0; c < src.cols(); ++c) drow[c] += srow[c];
  }
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  ECG_CHECK(a.rows() == b.rows()) << "ConcatCols row mismatch";
  Matrix out(a.rows(), a.cols() + b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    std::memcpy(out.Row(r), a.Row(r), a.cols() * sizeof(float));
    std::memcpy(out.Row(r) + a.cols(), b.Row(r), b.cols() * sizeof(float));
  }
  return out;
}

Matrix SliceCols(const Matrix& src, size_t begin, size_t end) {
  ECG_CHECK(begin <= end && end <= src.cols()) << "SliceCols out of range";
  Matrix out(src.rows(), end - begin);
  for (size_t r = 0; r < src.rows(); ++r) {
    std::memcpy(out.Row(r), src.Row(r) + begin,
                (end - begin) * sizeof(float));
  }
  return out;
}

std::vector<float> RowL1Distance(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b, "RowL1Distance");
  std::vector<float> out(a.rows(), 0.0f);
  // Each row's reduction stays on one thread, so results are identical to
  // the sequential loop regardless of chunking.
  ThreadPool::Global().ParallelFor(
      a.rows(), kRowGrain, [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          const float* arow = a.Row(r);
          const float* brow = b.Row(r);
          float acc = 0.0f;
          for (size_t c = 0; c < a.cols(); ++c) {
            acc += std::fabs(arow[c] - brow[c]);
          }
          out[r] = acc;
        }
      });
  return out;
}

}  // namespace ecg::tensor
