#include "tensor/csr.h"

#include <algorithm>
#include <string>
#include <tuple>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace ecg::tensor {

Result<CsrMatrix> CsrMatrix::FromTriplets(
    size_t rows, size_t cols,
    const std::vector<std::tuple<uint32_t, uint32_t, float>>& triplets) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  for (const auto& [r, c, v] : triplets) {
    if (r >= rows || c >= cols) {
      return Status::OutOfRange("triplet (" + std::to_string(r) + "," +
                                std::to_string(c) + ") outside " +
                                std::to_string(rows) + "x" +
                                std::to_string(cols));
    }
    ++m.row_ptr_[r + 1];
  }
  for (size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  m.col_idx_.resize(triplets.size());
  m.values_.resize(triplets.size());
  std::vector<uint64_t> cursor(m.row_ptr_.begin(), m.row_ptr_.end() - 1);
  for (const auto& [r, c, v] : triplets) {
    const uint64_t pos = cursor[r]++;
    m.col_idx_[pos] = c;
    m.values_[pos] = v;
  }
  // Sort each row by column and merge duplicates in place.
  uint64_t write = 0;
  std::vector<uint64_t> new_row_ptr(rows + 1, 0);
  for (size_t r = 0; r < rows; ++r) {
    const uint64_t begin = m.row_ptr_[r];
    const uint64_t end = m.row_ptr_[r + 1];
    std::vector<std::pair<uint32_t, float>> row_entries;
    row_entries.reserve(end - begin);
    for (uint64_t i = begin; i < end; ++i) {
      row_entries.emplace_back(m.col_idx_[i], m.values_[i]);
    }
    std::sort(row_entries.begin(), row_entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t i = 0; i < row_entries.size(); ++i) {
      if (write > new_row_ptr[r] &&
          m.col_idx_[write - 1] == row_entries[i].first) {
        m.values_[write - 1] += row_entries[i].second;
      } else {
        m.col_idx_[write] = row_entries[i].first;
        m.values_[write] = row_entries[i].second;
        ++write;
      }
    }
    new_row_ptr[r + 1] = write;
  }
  m.col_idx_.resize(write);
  m.values_.resize(write);
  m.row_ptr_ = std::move(new_row_ptr);
  return m;
}

void CsrMatrix::SpMM(const Matrix& x, Matrix* y) const {
  ECG_CHECK(x.rows() == cols_) << "SpMM dim mismatch: csr cols " << cols_
                               << " vs dense rows " << x.rows();
  y->Reset(rows_, x.cols());
  const size_t n = x.cols();
  ThreadPool::Global().ParallelFor(rows_, 64, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      float* yrow = y->Row(r);
      for (uint64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
        const float v = values_[i];
        const float* xrow = x.Row(col_idx_[i]);
        for (size_t j = 0; j < n; ++j) yrow[j] += v * xrow[j];
      }
    }
  });
}

void CsrMatrix::SpMMRows(const Matrix& x, const std::vector<uint32_t>& row_ids,
                         Matrix* y) const {
  ECG_CHECK(x.rows() == cols_) << "SpMMRows dim mismatch: csr cols " << cols_
                               << " vs dense rows " << x.rows();
  ECG_CHECK(y->rows() == rows_ && y->cols() == x.cols())
      << "SpMMRows output must be pre-sized to " << rows_ << "x" << x.cols();
  const size_t n = x.cols();
  ThreadPool::Global().ParallelFor(
      row_ids.size(), 64, [&](size_t begin, size_t end) {
        for (size_t k = begin; k < end; ++k) {
          const uint32_t r = row_ids[k];
          float* yrow = y->Row(r);
          for (uint64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
            const float v = values_[i];
            const float* xrow = x.Row(col_idx_[i]);
            for (size_t j = 0; j < n; ++j) yrow[j] += v * xrow[j];
          }
        }
      });
}

CsrMatrix CsrMatrix::Transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  for (uint32_t c : col_idx_) ++t.row_ptr_[c + 1];
  for (size_t r = 0; r < cols_; ++r) t.row_ptr_[r + 1] += t.row_ptr_[r];
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  std::vector<uint64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (size_t r = 0; r < rows_; ++r) {
    for (uint64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const uint64_t pos = cursor[col_idx_[i]]++;
      t.col_idx_[pos] = static_cast<uint32_t>(r);
      t.values_[pos] = values_[i];
    }
  }
  return t;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (uint64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      out.At(r, col_idx_[i]) += values_[i];
    }
  }
  return out;
}

}  // namespace ecg::tensor
