#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace ecg::tensor {

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  ECG_CHECK(data_.size() == rows * cols) << "got " << data_.size()
                                         << " elements for " << rows << "x"
                                         << cols;
}

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

double Matrix::L1Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += std::fabs(static_cast<double>(v));
  return acc;
}

std::string Matrix::DebugString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  if (!data_.empty()) {
    const auto [mn, mx] = std::minmax_element(data_.begin(), data_.end());
    os << " [" << *mn << ", " << *mx << "]";
  }
  return os.str();
}

bool AllClose(const Matrix& a, const Matrix& b, float atol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > atol) return false;
  }
  return true;
}

}  // namespace ecg::tensor
