#ifndef ECGRAPH_TENSOR_CSR_H_
#define ECGRAPH_TENSOR_CSR_H_

#include <cstdint>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace ecg::tensor {

/// A compressed-sparse-row float matrix used for the normalized adjacency
/// Â = D^{-1/2}(A+I)D^{-1/2} and its partitioned sub-blocks. Only the
/// operations the GCN needs are provided: SpMM against a dense right-hand
/// side and structural transpose.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from coordinate triplets (row, col, value). Duplicate (row,col)
  /// entries are summed. Triplets need not be sorted.
  static Result<CsrMatrix> FromTriplets(
      size_t rows, size_t cols,
      const std::vector<std::tuple<uint32_t, uint32_t, float>>& triplets);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return col_idx_.size(); }

  const std::vector<uint64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// y = this * x (rows x x.cols()); threaded over rows.
  void SpMM(const Matrix& x, Matrix* y) const;

  /// Computes only the listed rows of y = this * x, accumulating into the
  /// already-sized y (the caller Resets once; other rows are untouched).
  /// The inner loop matches SpMM exactly so a row computed here is bitwise
  /// identical to the same row from a full SpMM.
  void SpMMRows(const Matrix& x, const std::vector<uint32_t>& row_ids,
                Matrix* y) const;

  /// Returns the transpose (cols x rows) with the same nnz.
  CsrMatrix Transposed() const;

  /// Dense copy, for small-matrix tests only.
  Matrix ToDense() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint64_t> row_ptr_;
  std::vector<uint32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace ecg::tensor

#endif  // ECGRAPH_TENSOR_CSR_H_
