#ifndef ECGRAPH_TENSOR_MATRIX_H_
#define ECGRAPH_TENSOR_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ecg::tensor {

/// A dense row-major float32 matrix. This is the single tensor type of the
/// library: vertex feature tables, embedding tables H^l, weight matrices W^l
/// and gradient tables G^l are all Matrix instances. Row-major layout keeps
/// one vertex's embedding contiguous, which is what the wire codecs, the
/// quantizer and the gather/scatter kernels operate on.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Creates a matrix adopting the given row-major data (size rows*cols).
  Matrix(size_t rows, size_t cols, std::vector<float> data);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Pointer to the start of row r (contiguous cols() floats).
  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Sets every element to v.
  void Fill(float v) { data_.assign(data_.size(), v); }

  /// Reshapes to rows x cols, discarding contents (zero-filled).
  void Reset(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  /// Frobenius norm squared (sum of squared elements).
  double SquaredNorm() const;

  /// Sum of absolute values of all elements.
  double L1Norm() const;

  /// Short debug summary "rows x cols [min, max]".
  std::string DebugString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// True if a and b have identical shape and all elements differ by at most
/// atol (absolute tolerance). Used heavily in tests.
bool AllClose(const Matrix& a, const Matrix& b, float atol = 1e-5f);

}  // namespace ecg::tensor

#endif  // ECGRAPH_TENSOR_MATRIX_H_
