#include "tensor/nn.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ecg::tensor {

void ReluInPlace(Matrix* z) {
  float* d = z->data();
  for (size_t i = 0; i < z->size(); ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
}

Matrix ReluGrad(const Matrix& z) {
  Matrix out(z.rows(), z.cols());
  const float* zd = z.data();
  float* od = out.data();
  for (size_t i = 0; i < z.size(); ++i) od[i] = zd[i] > 0.0f ? 1.0f : 0.0f;
  return out;
}

void SoftmaxRows(Matrix* z) {
  for (size_t r = 0; r < z->rows(); ++r) {
    float* row = z->Row(r);
    float mx = row[0];
    for (size_t c = 1; c < z->cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (size_t c = 0; c < z->cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (size_t c = 0; c < z->cols(); ++c) row[c] *= inv;
  }
}

double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int32_t>& labels,
                           const std::vector<uint32_t>& rows,
                           size_t normalizer, Matrix* grad) {
  ECG_CHECK(normalizer > 0) << "SoftmaxCrossEntropy needs a normalizer";
  grad->Reset(logits.rows(), logits.cols());
  const float inv_n = 1.0f / static_cast<float>(normalizer);
  double loss = 0.0;
  for (uint32_t r : rows) {
    ECG_CHECK(r < logits.rows()) << "loss row out of range";
    const int32_t label = labels[r];
    ECG_CHECK(label >= 0 && static_cast<size_t>(label) < logits.cols())
        << "label out of range";
    const float* lrow = logits.Row(r);
    float* grow = grad->Row(r);
    float mx = lrow[0];
    for (size_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, lrow[c]);
    double sum = 0.0;
    for (size_t c = 0; c < logits.cols(); ++c) {
      grow[c] = std::exp(lrow[c] - mx);
      sum += grow[c];
    }
    const float inv_sum = static_cast<float>(1.0 / sum);
    for (size_t c = 0; c < logits.cols(); ++c) grow[c] *= inv_sum * inv_n;
    // grad = (softmax - onehot) / n ; loss = -log softmax[label].
    loss += -std::log(std::max(
        1e-30, static_cast<double>(grow[label]) / inv_n));
    grow[label] -= inv_n;
  }
  return loss;
}

double Accuracy(const Matrix& logits, const std::vector<int32_t>& labels,
                const std::vector<uint32_t>& rows) {
  if (rows.empty()) return 0.0;
  size_t correct = 0;
  for (uint32_t r : rows) {
    const float* lrow = logits.Row(r);
    size_t argmax = 0;
    for (size_t c = 1; c < logits.cols(); ++c) {
      if (lrow[c] > lrow[argmax]) argmax = c;
    }
    if (static_cast<int32_t>(argmax) == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

void XavierInit(Matrix* w, Rng* rng) {
  const double s =
      std::sqrt(6.0 / static_cast<double>(w->rows() + w->cols()));
  float* d = w->data();
  for (size_t i = 0; i < w->size(); ++i) {
    d[i] = static_cast<float>(rng->NextUniform(-s, s));
  }
}

void AdamState::Step(const Matrix& grad, float lr, Matrix* param) {
  ECG_CHECK(grad.rows() == param->rows() && grad.cols() == param->cols())
      << "Adam shape mismatch";
  if (m_.rows() != grad.rows() || m_.cols() != grad.cols()) {
    m_.Reset(grad.rows(), grad.cols());
    v_.Reset(grad.rows(), grad.cols());
    t_ = 0;
  }
  ++t_;
  const float b1t = 1.0f - std::pow(beta1, static_cast<float>(t_));
  const float b2t = 1.0f - std::pow(beta2, static_cast<float>(t_));
  float* md = m_.data();
  float* vd = v_.data();
  float* pd = param->data();
  const float* gd = grad.data();
  for (size_t i = 0; i < grad.size(); ++i) {
    md[i] = beta1 * md[i] + (1.0f - beta1) * gd[i];
    vd[i] = beta2 * vd[i] + (1.0f - beta2) * gd[i] * gd[i];
    const float mhat = md[i] / b1t;
    const float vhat = vd[i] / b2t;
    pd[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void SaveMatrix(const Matrix& m, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(m.rows()));
  w->PutU32(static_cast<uint32_t>(m.cols()));
  w->PutU64(m.size());
  w->PutF32Array(m.data(), m.size());
}

Status LoadMatrix(ByteReader* r, Matrix* out) {
  uint32_t rows = 0, cols = 0;
  uint64_t count = 0;
  ECG_RETURN_IF_ERROR(r->GetU32(&rows));
  ECG_RETURN_IF_ERROR(r->GetU32(&cols));
  ECG_RETURN_IF_ERROR(r->GetU64(&count));
  if (count != static_cast<uint64_t>(rows) * cols) {
    return Status::InvalidArgument(
        "matrix checkpoint size mismatch: header says " +
        std::to_string(rows) + "x" + std::to_string(cols) +
        " but carries " + std::to_string(count) + " elements");
  }
  if (count * sizeof(float) > r->remaining()) {
    return Status::OutOfRange(
        "matrix checkpoint exceeds buffer: needs " +
        std::to_string(count * sizeof(float)) + " bytes, " +
        std::to_string(r->remaining()) + " remain");
  }
  out->Reset(rows, cols);
  return r->GetF32Array(out->data(), count);
}

void AdamState::SaveTo(ByteWriter* w) const {
  SaveMatrix(m_, w);
  SaveMatrix(v_, w);
  w->PutU64(static_cast<uint64_t>(t_));
}

Status AdamState::LoadFrom(ByteReader* r) {
  ECG_RETURN_IF_ERROR(LoadMatrix(r, &m_));
  ECG_RETURN_IF_ERROR(LoadMatrix(r, &v_));
  uint64_t t = 0;
  ECG_RETURN_IF_ERROR(r->GetU64(&t));
  t_ = static_cast<int64_t>(t);
  return Status::OK();
}

}  // namespace ecg::tensor
