#ifndef ECGRAPH_TENSOR_OPS_H_
#define ECGRAPH_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace ecg::tensor {

/// Dense kernels shared by the GCN forward/backward passes. All kernels are
/// deterministic (fixed reduction order) so that distributed and
/// single-machine runs can be compared bit-for-bit when compression is off.

/// C = A * B. Threaded over rows of A via the global thread pool.
void Gemm(const Matrix& a, const Matrix& b, Matrix* c);

/// Rows `row_ids` of C = A * B; the other rows of C are untouched. C must
/// be pre-sized (a.rows() x b.cols()) and the target rows zeroed (Reset).
/// Per-row arithmetic matches Gemm exactly, so computing a partition of
/// the rows in any number of calls is bitwise identical to one Gemm —
/// overlapped schedules transform interior rows under an in-flight
/// exchange and boundary rows after it.
void GemmRows(const Matrix& a, const Matrix& b,
              const std::vector<uint32_t>& row_ids, Matrix* c);

/// C = A^T * B, where A is rows x cols and C is cols x b.cols().
void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* c);

/// C = A * B^T.
void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* c);

/// Rows `row_ids` of C = A * B^T; same contract as GemmRows (pre-sized C,
/// row partition across calls ≡ one GemmTransposeB bit-for-bit).
void GemmTransposeBRows(const Matrix& a, const Matrix& b,
                        const std::vector<uint32_t>& row_ids, Matrix* c);

/// Returns A^T as a new matrix.
Matrix Transpose(const Matrix& a);

/// a += b (same shape).
void AddInPlace(Matrix* a, const Matrix& b);

/// a -= b (same shape).
void SubInPlace(Matrix* a, const Matrix& b);

/// a *= s.
void ScaleInPlace(Matrix* a, float s);

/// a += s * b.
void Axpy(float s, const Matrix& b, Matrix* a);

/// a = a ⊙ b (Hadamard / element-wise product, same shape).
void HadamardInPlace(Matrix* a, const Matrix& b);

/// Adds `bias` (1 x cols) to every row of a.
void AddRowBias(Matrix* a, const Matrix& bias);

/// Column-wise sum of a, returned as a 1 x cols matrix (bias gradient).
Matrix ColumnSums(const Matrix& a);

/// Copies rows `indices` of src into a new matrix (len(indices) x cols).
Matrix GatherRows(const Matrix& src, const std::vector<uint32_t>& indices);

/// dst.Row(indices[i]) += src.Row(i) for all i.
void ScatterAddRows(const Matrix& src, const std::vector<uint32_t>& indices,
                    Matrix* dst);

/// [a | b]: column-wise concatenation of two matrices with equal row
/// counts (GraphSAGE's [H | mean_N(H)] input stacking).
Matrix ConcatCols(const Matrix& a, const Matrix& b);

/// Copies columns [begin, end) of src into a new matrix.
Matrix SliceCols(const Matrix& src, size_t begin, size_t end);

/// Per-row L1 distance between same-shaped a and b:
/// out[r] = sum_c |a(r,c) - b(r,c)|. This is the Selector's Eq. 10.
std::vector<float> RowL1Distance(const Matrix& a, const Matrix& b);

}  // namespace ecg::tensor

#endif  // ECGRAPH_TENSOR_OPS_H_
