#ifndef ECGRAPH_TENSOR_NN_H_
#define ECGRAPH_TENSOR_NN_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace ecg::tensor {

/// Neural-network kernels for the GCN layers: activation, loss, parameter
/// initialization and the Adam update used by the parameter servers.

/// z = max(z, 0) element-wise (the paper's σ).
void ReluInPlace(Matrix* z);

/// Returns σ'(z): 1 where z > 0, else 0 (same shape as z).
Matrix ReluGrad(const Matrix& z);

/// Row-wise softmax, numerically stabilized (subtract row max).
void SoftmaxRows(Matrix* z);

/// Cross-entropy loss over the rows listed in `rows` (training vertices),
/// given logits and integer labels. Returns the SUM of per-row losses (the
/// distributed trainer reduces sums across workers and divides by the
/// global count). On return, *grad holds dLoss/dlogits for every row (zero
/// for rows not in `rows`) scaled by 1/normalizer; this is ∇_{H^L} L of the
/// softmax+CE pair folded together (softmax - onehot). `normalizer` is the
/// global number of training rows; pass rows.size() for single-machine use.
double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int32_t>& labels,
                           const std::vector<uint32_t>& rows,
                           size_t normalizer, Matrix* grad);

/// Fraction of rows in `rows` whose argmax(logits) equals the label.
double Accuracy(const Matrix& logits, const std::vector<int32_t>& labels,
                const std::vector<uint32_t>& rows);

/// Glorot/Xavier uniform init: U(-s, s) with s = sqrt(6/(fan_in+fan_out)).
void XavierInit(Matrix* w, Rng* rng);

/// Serializes a matrix as (u32 rows, u32 cols, u64 count, raw f32s) — the
/// same layout the halo wire codec uses, reused by epoch checkpoints.
void SaveMatrix(const Matrix& m, ByteWriter* w);
Status LoadMatrix(ByteReader* r, Matrix* out);

/// State and step of the Adam optimizer for one parameter tensor.
class AdamState {
 public:
  AdamState() = default;
  AdamState(size_t rows, size_t cols) : m_(rows, cols), v_(rows, cols) {}

  /// Applies one Adam step: param -= lr * mhat / (sqrt(vhat) + eps).
  void Step(const Matrix& grad, float lr, Matrix* param);

  /// Serializes (m, v, t) so a restored run continues the exact moment
  /// schedule (bias correction depends on t).
  void SaveTo(ByteWriter* w) const;
  Status LoadFrom(ByteReader* r);

  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;

 private:
  Matrix m_;
  Matrix v_;
  int64_t t_ = 0;
};

}  // namespace ecg::tensor

#endif  // ECGRAPH_TENSOR_NN_H_
