#include "graph/graph_io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/bytes.h"

namespace ecg::graph {
namespace {

constexpr uint32_t kMagic = 0x45434731;  // "ECG1"
constexpr uint32_t kVersion = 1;

Status ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  if (!in.read(reinterpret_cast<char*>(out->data()), size)) {
    return Status::IoError("short read on " + path);
  }
  return Status::OK();
}

}  // namespace

Status SaveGraph(const Graph& g, const std::string& path) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  w.PutU32(g.num_vertices());
  w.PutU32(static_cast<uint32_t>(g.num_classes()));
  w.PutU32(static_cast<uint32_t>(g.feature_dim()));

  // Undirected edge list (each edge once, u < v).
  std::vector<uint32_t> edges;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (uint32_t u : g.Neighbors(v)) {
      if (u > v) {
        edges.push_back(v);
        edges.push_back(u);
      }
    }
  }
  w.PutU32Vector(edges);
  w.PutF32Array(g.features().data(), g.features().size());
  std::vector<uint32_t> labels(g.labels().begin(), g.labels().end());
  w.PutU32Vector(labels);
  w.PutU32Vector(g.train_set());
  w.PutU32Vector(g.val_set());
  w.PutU32Vector(g.test_set());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot create " + path);
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  if (!out) return Status::IoError("short write on " + path);
  return Status::OK();
}

Result<Graph> LoadGraph(const std::string& path) {
  std::vector<uint8_t> buf;
  ECG_RETURN_IF_ERROR(ReadFile(path, &buf));
  ByteReader r(buf);

  uint32_t magic = 0, version = 0, n = 0, classes = 0, dim = 0;
  ECG_RETURN_IF_ERROR(r.GetU32(&magic));
  ECG_RETURN_IF_ERROR(r.GetU32(&version));
  if (magic != kMagic) {
    return Status::InvalidArgument(path + " is not an EC-Graph file");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported graph file version " +
                                   std::to_string(version));
  }
  ECG_RETURN_IF_ERROR(r.GetU32(&n));
  ECG_RETURN_IF_ERROR(r.GetU32(&classes));
  ECG_RETURN_IF_ERROR(r.GetU32(&dim));

  std::vector<uint32_t> flat_edges;
  ECG_RETURN_IF_ERROR(r.GetU32Vector(&flat_edges));
  if (flat_edges.size() % 2 != 0) {
    return Status::InvalidArgument("odd edge array length");
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(flat_edges.size() / 2);
  for (size_t i = 0; i + 1 < flat_edges.size(); i += 2) {
    edges.emplace_back(flat_edges[i], flat_edges[i + 1]);
  }

  const size_t feat_count = static_cast<size_t>(n) * dim;
  if (feat_count * sizeof(float) > r.remaining()) {
    return Status::InvalidArgument("truncated feature block");
  }
  tensor::Matrix features(n, dim);
  ECG_RETURN_IF_ERROR(r.GetF32Array(features.data(), feat_count));

  std::vector<uint32_t> labels_u32, train, val, test;
  ECG_RETURN_IF_ERROR(r.GetU32Vector(&labels_u32));
  ECG_RETURN_IF_ERROR(r.GetU32Vector(&train));
  ECG_RETURN_IF_ERROR(r.GetU32Vector(&val));
  ECG_RETURN_IF_ERROR(r.GetU32Vector(&test));
  if (labels_u32.size() != n) {
    return Status::InvalidArgument("label count mismatch");
  }
  std::vector<int32_t> labels(labels_u32.begin(), labels_u32.end());

  ECG_ASSIGN_OR_RETURN(
      Graph g, Graph::Build(n, edges, std::move(features), std::move(labels),
                            static_cast<int32_t>(classes)));
  g.SetSplits(std::move(train), std::move(val), std::move(test));
  return g;
}

Result<Graph> LoadEdgeList(const std::string& path, uint32_t feature_dim) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  uint32_t max_id = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    uint64_t u = 0, v = 0;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument("bad edge at line " +
                                     std::to_string(line_no));
    }
    if (u > 0xFFFFFFFEull || v > 0xFFFFFFFEull) {
      return Status::OutOfRange("vertex id too large at line " +
                                std::to_string(line_no));
    }
    edges.emplace_back(static_cast<uint32_t>(u), static_cast<uint32_t>(v));
    max_id = std::max(max_id,
                      static_cast<uint32_t>(std::max(u, v)));
  }
  const uint32_t n = edges.empty() ? 0 : max_id + 1;
  tensor::Matrix features(n, feature_dim);
  std::vector<int32_t> labels(n, 0);
  return Graph::Build(n, edges, std::move(features), std::move(labels),
                      /*num_classes=*/1);
}

}  // namespace ecg::graph
