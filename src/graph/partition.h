#ifndef ECGRAPH_GRAPH_PARTITION_H_
#define ECGRAPH_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace ecg::graph {

/// The one default balance bound shared by every partitioner that takes a
/// `max_imbalance` knob (MetisLike, Streaming, DeltaRepartition): maximum
/// allowed part size as a multiple of the ideal n/k. The value follows the
/// METIS convention of a 5% slack — tight enough that the BSP makespan
/// (a max over workers) stays close to the balanced optimum, loose enough
/// that the partitioners keep real freedom to cut fewer edges. User-supplied
/// values below 1.0 are impossible to satisfy (some part must hold at least
/// the ideal share) and are rejected with InvalidArgument rather than
/// silently producing a degenerate assignment.
inline constexpr double kDefaultMaxImbalance = 1.05;

/// A vertex partition of a graph into `num_parts` worker-owned sets
/// (edge-cut partitioning, as in the paper's GE partition module).
struct Partition {
  uint32_t num_parts = 0;
  /// owner[v] = part id of vertex v.
  std::vector<uint32_t> owner;
  /// members[p] = sorted vertex ids owned by part p.
  std::vector<std::vector<uint32_t>> members;

  /// Number of undirected edges whose endpoints live in different parts;
  /// this directly drives ḡ_rmt and the communication volume.
  uint64_t EdgeCut(const Graph& g) const;

  /// max part size / ideal part size (1.0 = perfectly balanced).
  double BalanceFactor() const;
};

/// The paper's default equal-vertex Hash strategy: owner(v) = v mod parts.
Result<Partition> HashPartition(const Graph& g, uint32_t num_parts);

/// A METIS-stand-in minimizing edge-cut under a balance constraint:
/// greedy BFS region growing from high-degree seeds followed by
/// Kernighan–Lin style boundary refinement. Not multilevel, but reproduces
/// the qualitative Hash-vs-METIS gap of the paper's Fig. 11 (substitution
/// documented in DESIGN.md §2).
struct MetisLikeOptions {
  /// Refinement sweeps over boundary vertices.
  int refinement_passes = 4;
  /// Maximum allowed part size as a multiple of the ideal size.
  double max_imbalance = kDefaultMaxImbalance;
  uint64_t seed = 13;
};
Result<Partition> MetisLikePartition(const Graph& g, uint32_t num_parts,
                                     const MetisLikeOptions& options = {});

/// A single-pass streaming partitioner (Fennel-style), the future-work
/// direction Section III-A cites for big graphs where METIS is too slow:
/// vertices arrive in a (seeded) random order and are greedily assigned to
/// argmax_p |N(v) ∩ P_p| − alpha·gamma/2·|P_p|^{gamma-1}, trading edge cut
/// against balance in O(|E|) time and O(|V|) memory.
struct StreamingOptions {
  /// Balance exponent gamma (> 1); Fennel's default 1.5.
  double gamma = 1.5;
  /// Hard cap on part size as a multiple of the ideal n/k (the Fennel
  /// score only softly discourages imbalance, so a cap is still needed).
  double max_imbalance = kDefaultMaxImbalance;
  uint64_t seed = 29;
  /// Optional per-part relative capacities (size num_parts). Empty means
  /// equal capacity everywhere — the classic Fennel objective, bit-identical
  /// to the pre-capacity behavior. Non-empty rescales each part's ideal
  /// size to n·cap_p/Σcap, letting callers hand heterogeneous workers
  /// proportionally less work (the elastic bench uses 1/compute_scale as
  /// the oracle capacity for a persistent straggler).
  std::vector<double> part_capacity;
};
Result<Partition> StreamingPartition(const Graph& g, uint32_t num_parts,
                                     const StreamingOptions& options = {});

/// Incremental repartition for an elastic membership change: vertices owned
/// by surviving workers stay put (their part id mapped through `old_to_new`),
/// and only the vertices of departed workers — plus, on a join, a shed of
/// boundary-light overage towards the fresh empty part(s) — are re-streamed
/// Fennel-style into the seeded assignment. Moves O(n/k) vertices instead of
/// reshuffling everything, so compensation/Adam state for the untouched rows
/// survives verbatim.
struct DeltaRepartitionOptions {
  double gamma = 1.5;
  double max_imbalance = kDefaultMaxImbalance;
  uint64_t seed = 29;
};
/// `old_to_new[p]` maps an old part id to its new id, or -1 if part p's
/// worker departed (its vertices get re-streamed). `new_num_parts` may be
/// smaller (leave/crash-shrink), equal (replace), or larger (join) than
/// base.num_parts.
Result<Partition> DeltaRepartition(const Graph& g, const Partition& base,
                                   const std::vector<int32_t>& old_to_new,
                                   uint32_t new_num_parts,
                                   const DeltaRepartitionOptions& options = {});

/// Rebuilds `members` from `owner` (sorted ascending per part). Exposed for
/// callers that edit `owner` in place, e.g. the straggler rebalancer.
void RebuildMembers(Partition* p);

}  // namespace ecg::graph

#endif  // ECGRAPH_GRAPH_PARTITION_H_
