#ifndef ECGRAPH_GRAPH_PARTITION_H_
#define ECGRAPH_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace ecg::graph {

/// A vertex partition of a graph into `num_parts` worker-owned sets
/// (edge-cut partitioning, as in the paper's GE partition module).
struct Partition {
  uint32_t num_parts = 0;
  /// owner[v] = part id of vertex v.
  std::vector<uint32_t> owner;
  /// members[p] = sorted vertex ids owned by part p.
  std::vector<std::vector<uint32_t>> members;

  /// Number of undirected edges whose endpoints live in different parts;
  /// this directly drives ḡ_rmt and the communication volume.
  uint64_t EdgeCut(const Graph& g) const;

  /// max part size / ideal part size (1.0 = perfectly balanced).
  double BalanceFactor() const;
};

/// The paper's default equal-vertex Hash strategy: owner(v) = v mod parts.
Result<Partition> HashPartition(const Graph& g, uint32_t num_parts);

/// A METIS-stand-in minimizing edge-cut under a balance constraint:
/// greedy BFS region growing from high-degree seeds followed by
/// Kernighan–Lin style boundary refinement. Not multilevel, but reproduces
/// the qualitative Hash-vs-METIS gap of the paper's Fig. 11 (substitution
/// documented in DESIGN.md §2).
struct MetisLikeOptions {
  /// Refinement sweeps over boundary vertices.
  int refinement_passes = 4;
  /// Maximum allowed part size as a multiple of the ideal size.
  double max_imbalance = 1.05;
  uint64_t seed = 13;
};
Result<Partition> MetisLikePartition(const Graph& g, uint32_t num_parts,
                                     const MetisLikeOptions& options = {});

/// A single-pass streaming partitioner (Fennel-style), the future-work
/// direction Section III-A cites for big graphs where METIS is too slow:
/// vertices arrive in a (seeded) random order and are greedily assigned to
/// argmax_p |N(v) ∩ P_p| − alpha·gamma/2·|P_p|^{gamma-1}, trading edge cut
/// against balance in O(|E|) time and O(|V|) memory.
struct StreamingOptions {
  /// Balance exponent gamma (> 1); Fennel's default 1.5.
  double gamma = 1.5;
  /// Hard cap on part size as a multiple of the ideal n/k (the Fennel
  /// score only softly discourages imbalance, so a cap is still needed).
  double max_imbalance = 1.1;
  uint64_t seed = 29;
};
Result<Partition> StreamingPartition(const Graph& g, uint32_t num_parts,
                                     const StreamingOptions& options = {});

}  // namespace ecg::graph

#endif  // ECGRAPH_GRAPH_PARTITION_H_
