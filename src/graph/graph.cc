#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace ecg::graph {

Result<Graph> Graph::Build(
    uint32_t num_vertices,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    tensor::Matrix features, std::vector<int32_t> labels,
    int32_t num_classes) {
  if (features.rows() != num_vertices) {
    return Status::InvalidArgument("features rows " +
                                   std::to_string(features.rows()) +
                                   " != num_vertices");
  }
  if (labels.size() != num_vertices) {
    return Status::InvalidArgument("labels size != num_vertices");
  }
  for (int32_t l : labels) {
    if (l < 0 || l >= num_classes) {
      return Status::OutOfRange("label " + std::to_string(l) +
                                " outside [0, num_classes)");
    }
  }

  Graph g;
  g.num_vertices_ = num_vertices;
  g.num_classes_ = num_classes;
  g.features_ = std::move(features);
  g.labels_ = std::move(labels);

  // Count both directions, drop self loops; dedupe after sorting.
  std::vector<uint64_t> counts(num_vertices + 1, 0);
  for (const auto& [u, v] : edges) {
    if (u >= num_vertices || v >= num_vertices) {
      return Status::OutOfRange("edge endpoint out of range");
    }
    if (u == v) continue;
    ++counts[u + 1];
    ++counts[v + 1];
  }
  for (uint32_t i = 0; i < num_vertices; ++i) counts[i + 1] += counts[i];
  std::vector<uint32_t> adj(counts[num_vertices]);
  std::vector<uint64_t> cursor(counts.begin(), counts.end() - 1);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    adj[cursor[u]++] = v;
    adj[cursor[v]++] = u;
  }

  g.offsets_.assign(num_vertices + 1, 0);
  uint64_t write = 0;
  for (uint32_t u = 0; u < num_vertices; ++u) {
    const uint64_t begin = counts[u];
    const uint64_t end = counts[u + 1];
    std::sort(adj.begin() + begin, adj.begin() + end);
    for (uint64_t i = begin; i < end; ++i) {
      if (write > g.offsets_[u] && g.adj_.size() > 0 &&
          g.adj_.back() == adj[i]) {
        continue;  // duplicate edge
      }
      g.adj_.push_back(adj[i]);
      ++write;
    }
    g.offsets_[u + 1] = write;
  }
  return g;
}

}  // namespace ecg::graph
