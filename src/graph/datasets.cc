#include "graph/datasets.h"

namespace ecg::graph {
namespace {

/// All replicas. Split sizes follow the paper's published splits (full-scale
/// sets) or the same train/val/test proportions (scaled sets). Feature noise
/// and homophily are calibrated so converged full-batch GCN accuracy lands
/// near the paper's Table V (see EXPERIMENTS.md for measured values).
std::vector<DatasetSpec> BuildRegistry() {
  std::vector<DatasetSpec> specs;

  {
    DatasetSpec s;
    s.dataset_name = "tiny";
    s.sbm = {/*num_vertices=*/256, /*num_classes=*/4, /*avg_degree=*/6.0,
             /*feature_dim=*/16, /*homophily=*/0.9, /*degree_skew=*/0.3,
             /*feature_noise=*/1.0, /*label_noise=*/0.0, /*seed=*/101};
    s.train_size = 128;
    s.val_size = 32;
    s.test_size = 64;
    s.default_layers = 2;
    s.default_hidden = 16;
    specs.push_back(s);
  }
  {
    DatasetSpec s;
    s.dataset_name = "cora-sim";
    s.sbm = {2708, 7, 3.90, 1433, 0.90, 0.3, 7.5, 0.09, 1001};
    s.train_size = 1408;
    s.val_size = 300;
    s.test_size = 1000;
    s.default_layers = 2;
    s.default_hidden = 16;
    specs.push_back(s);
  }
  {
    DatasetSpec s;
    s.dataset_name = "pubmed-sim";
    s.sbm = {19717, 3, 4.50, 500, 0.88, 0.3, 4.0, 0.195, 1002};
    s.train_size = 12816;
    s.val_size = 1971;
    s.test_size = 4930;
    s.default_layers = 2;
    s.default_hidden = 16;
    specs.push_back(s);
  }
  {
    // Reddit: the high-average-degree regime (paper deg 492; scaled 48).
    DatasetSpec s;
    s.dataset_name = "reddit-sim";
    s.sbm = {16000, 41, 48.0, 602, 0.78, 0.8, 5.0, 0.070, 1003};
    s.train_size = 10571;  // 66.07% as in the paper's Reddit split
    s.val_size = 1627;     // 10.17%
    s.test_size = 3800;    // 23.75%
    s.default_layers = 2;
    s.default_hidden = 16;
    specs.push_back(s);
  }
  {
    DatasetSpec s;
    s.dataset_name = "products-sim";
    s.sbm = {32000, 47, 24.0, 100, 0.80, 0.7, 3.0, 0.130, 1004};
    s.train_size = 2569;   // 8.03% as in OGBN-Products
    s.val_size = 514;      // 1.61%
    s.test_size = 28917;   // 90.37%
    s.default_layers = 3;
    // The paper uses hidden 256 for the two OGB-scale sets; the container
    // scale-down (DESIGN.md #5) reduces it to 64 to keep the bench suite
    // within a single-core time budget.
    s.default_hidden = 64;
    specs.push_back(s);
  }
  {
    // Papers: most classes, hardest task (paper accuracy only 44.6%).
    DatasetSpec s;
    s.dataset_name = "papers-sim";
    s.sbm = {32000, 172, 16.0, 128, 0.55, 0.6, 5.0, 0.12, 1005};
    s.train_size = 348;  // 1.087% as in OGBN-Papers100M
    s.val_size = 36;     // 0.113%
    s.test_size = 62;    // 0.193%
    s.default_layers = 3;
    s.default_hidden = 64;  // paper: 256; container scale-down
    specs.push_back(s);
  }
  return specs;
}

const std::vector<DatasetSpec>& Registry() {
  static const std::vector<DatasetSpec>* specs =
      new std::vector<DatasetSpec>(BuildRegistry());
  return *specs;
}

}  // namespace

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  for (const auto& s : Registry()) names.push_back(s.dataset_name);
  return names;
}

Result<DatasetSpec> GetDatasetSpec(const std::string& dataset_name) {
  for (const auto& s : Registry()) {
    if (s.dataset_name == dataset_name) return s;
  }
  return Status::NotFound("no dataset replica named '" + dataset_name + "'");
}

Result<Graph> LoadDataset(const std::string& dataset_name) {
  ECG_ASSIGN_OR_RETURN(DatasetSpec spec, GetDatasetSpec(dataset_name));
  ECG_ASSIGN_OR_RETURN(Graph g, GenerateSbm(spec.sbm));
  g.name = spec.dataset_name;
  ECG_RETURN_IF_ERROR(AssignSplits(&g, spec.train_size, spec.val_size,
                                   spec.test_size, spec.sbm.seed ^ 0xecull));
  return g;
}

}  // namespace ecg::graph
