#ifndef ECGRAPH_GRAPH_GRAPH_IO_H_
#define ECGRAPH_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace ecg::graph {

/// Binary on-disk format for attributed graphs (the NFS-loaded subgraph
/// inputs of Section III-A). Layout: magic/version header, vertex count,
/// class count, CSR adjacency, float features, labels, splits. All fields
/// little-endian; the loader validates sizes and fails with a Status
/// rather than crashing on truncated/corrupt files.
///
/// The text loader accepts the common edge-list interchange format
/// ("u v" per line, '#' comments) so external graphs can be imported and
/// then attributed programmatically.

/// Serializes `g` (including features, labels and splits) to `path`.
Status SaveGraph(const Graph& g, const std::string& path);

/// Loads a graph written by SaveGraph.
Result<Graph> LoadGraph(const std::string& path);

/// Parses a whitespace-separated edge list ("u v" per line; lines starting
/// with '#' or '%' are skipped). Vertices are the 0..max_id range; the
/// graph gets `feature_dim` zero features and single-class labels, which
/// callers typically overwrite.
Result<Graph> LoadEdgeList(const std::string& path, uint32_t feature_dim);

}  // namespace ecg::graph

#endif  // ECGRAPH_GRAPH_GRAPH_IO_H_
