#ifndef ECGRAPH_GRAPH_GENERATOR_H_
#define ECGRAPH_GRAPH_GENERATOR_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"

namespace ecg::graph {

/// Parameters of the synthetic dataset generator: a degree-corrected
/// stochastic block model with class-centroid features. This is the
/// substitute for the Planetoid/OGB downloads (see DESIGN.md §2): it lets
/// us match the published |V|, average degree, feature dimensionality and
/// class count of each paper dataset while keeping the graph homophilous
/// enough that full-batch GCN genuinely converges to high test accuracy.
struct SbmConfig {
  uint32_t num_vertices = 1000;
  int32_t num_classes = 4;
  /// Target average (undirected) degree.
  double avg_degree = 5.0;
  uint32_t feature_dim = 32;
  /// Probability that a generated edge connects two same-class vertices.
  double homophily = 0.8;
  /// Pareto shape of the per-vertex attachment weights; 0 disables skew
  /// (uniform degrees). Reddit-like graphs use a strong skew.
  double degree_skew = 0.8;
  /// Standard deviation of per-feature Gaussian noise added to the class
  /// centroid (signal has unit scale); larger = harder task.
  double feature_noise = 1.0;
  /// Fraction of vertices whose *recorded* label is replaced by a uniform
  /// random class (annotation noise). Edges and features still follow the
  /// true community, so this models the intrinsic label ambiguity that
  /// caps real-dataset accuracy (e.g. Cora tops out near 87%).
  double label_noise = 0.0;
  uint64_t seed = 7;
};

/// Generates an SBM graph per `config`. Deterministic given config.seed.
Result<Graph> GenerateSbm(const SbmConfig& config);

/// Assigns train/val/test splits of the given sizes by a seeded shuffle of
/// the vertex ids. Sizes must sum to <= num_vertices.
Status AssignSplits(Graph* g, uint32_t train, uint32_t val, uint32_t test,
                    uint64_t seed);

}  // namespace ecg::graph

#endif  // ECGRAPH_GRAPH_GENERATOR_H_
