#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ecg::graph {
namespace {

/// Builds a sampler over per-vertex attachment weights w_i using the alias
/// method (O(1) draws); weights follow a Pareto-ish skew so that high-skew
/// configs produce Reddit-like heavy-tailed degree distributions.
class AliasSampler {
 public:
  AliasSampler(const std::vector<double>& weights, Rng* rng) : rng_(rng) {
    const size_t n = weights.size();
    prob_.resize(n);
    alias_.resize(n, 0);
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    std::vector<double> scaled(n);
    for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;
    std::vector<uint32_t> small, large;
    for (size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const uint32_t s = small.back();
      small.pop_back();
      const uint32_t l = large.back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] -= 1.0 - scaled[s];
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    for (uint32_t i : large) prob_[i] = 1.0;
    for (uint32_t i : small) prob_[i] = 1.0;
  }

  uint32_t Sample() {
    const uint32_t i =
        static_cast<uint32_t>(rng_->NextBelow(prob_.size()));
    return rng_->NextDouble() < prob_[i] ? i : alias_[i];
  }

 private:
  Rng* rng_;
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace

Result<Graph> GenerateSbm(const SbmConfig& config) {
  if (config.num_vertices == 0 || config.num_classes <= 0) {
    return Status::InvalidArgument("SBM needs vertices and classes");
  }
  if (config.homophily < 0.0 || config.homophily > 1.0) {
    return Status::InvalidArgument("homophily must be in [0,1]");
  }
  Rng rng(config.seed);
  const uint32_t n = config.num_vertices;

  // Labels: round-robin then shuffled, so classes are balanced.
  std::vector<int32_t> labels(n);
  for (uint32_t v = 0; v < n; ++v) labels[v] = v % config.num_classes;
  for (uint32_t v = n - 1; v > 0; --v) {
    std::swap(labels[v], labels[rng.NextBelow(v + 1)]);
  }
  std::vector<std::vector<uint32_t>> by_class(config.num_classes);
  for (uint32_t v = 0; v < n; ++v) by_class[labels[v]].push_back(v);

  // Attachment weights: w = u^{-skew} (Pareto-like) or uniform.
  std::vector<double> weights(n, 1.0);
  if (config.degree_skew > 0.0) {
    for (uint32_t v = 0; v < n; ++v) {
      const double u = rng.NextDouble() + 1e-9;
      weights[v] = std::pow(u, -config.degree_skew);
    }
  }
  // Per-class samplers (weights restricted to members of the class) plus a
  // global sampler for cross-class edges.
  AliasSampler global(weights, &rng);
  std::vector<AliasSampler> per_class_samplers;
  per_class_samplers.reserve(config.num_classes);
  for (int32_t c = 0; c < config.num_classes; ++c) {
    std::vector<double> w(by_class[c].size());
    for (size_t i = 0; i < w.size(); ++i) w[i] = weights[by_class[c][i]];
    per_class_samplers.emplace_back(w, &rng);
  }

  // Sample until `target_edges` UNIQUE undirected edges exist (duplicates
  // under heavy degree skew would otherwise collapse in Graph::Build and
  // undershoot the requested average degree). Bounded retries keep
  // pathological configs (degree close to n) from spinning.
  const uint64_t target_edges =
      static_cast<uint64_t>(config.avg_degree * n / 2.0);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(target_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(target_edges * 2);
  const uint64_t max_attempts = target_edges * 30 + 1000;
  for (uint64_t attempt = 0;
       attempt < max_attempts && edges.size() < target_edges; ++attempt) {
    const uint32_t u = global.Sample();
    uint32_t v;
    if (rng.NextDouble() < config.homophily) {
      const int32_t c = labels[u];
      v = by_class[c][per_class_samplers[c].Sample()];
    } else {
      v = global.Sample();
    }
    if (u == v) continue;
    const uint64_t key = (static_cast<uint64_t>(std::min(u, v)) << 32) |
                         std::max(u, v);
    if (!seen.insert(key).second) continue;
    edges.emplace_back(u, v);
  }

  // Features: class centroid (unit-scale Gaussian per dimension) + noise.
  tensor::Matrix centroids(config.num_classes, config.feature_dim);
  for (size_t i = 0; i < centroids.size(); ++i) {
    centroids.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  tensor::Matrix features(n, config.feature_dim);
  for (uint32_t v = 0; v < n; ++v) {
    const float* crow = centroids.Row(labels[v]);
    float* frow = features.Row(v);
    for (uint32_t d = 0; d < config.feature_dim; ++d) {
      frow[d] = crow[d] + static_cast<float>(config.feature_noise *
                                             rng.NextGaussian());
    }
  }

  // Annotation noise: recorded labels diverge from the community that
  // generated edges and features (applied last so structure is unaffected).
  if (config.label_noise > 0.0) {
    for (uint32_t v = 0; v < n; ++v) {
      if (rng.NextDouble() < config.label_noise) {
        labels[v] = static_cast<int32_t>(rng.NextBelow(config.num_classes));
      }
    }
  }

  ECG_ASSIGN_OR_RETURN(
      Graph g, Graph::Build(n, edges, std::move(features), std::move(labels),
                            config.num_classes));
  return g;
}

Status AssignSplits(Graph* g, uint32_t train, uint32_t val, uint32_t test,
                    uint64_t seed) {
  const uint64_t total = static_cast<uint64_t>(train) + val + test;
  if (total > g->num_vertices()) {
    return Status::InvalidArgument("split sizes exceed vertex count");
  }
  std::vector<uint32_t> perm(g->num_vertices());
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(seed);
  for (uint32_t i = g->num_vertices() - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextBelow(i + 1)]);
  }
  std::vector<uint32_t> tr(perm.begin(), perm.begin() + train);
  std::vector<uint32_t> va(perm.begin() + train, perm.begin() + train + val);
  std::vector<uint32_t> te(perm.begin() + train + val,
                           perm.begin() + train + val + test);
  g->SetSplits(std::move(tr), std::move(va), std::move(te));
  return Status::OK();
}

}  // namespace ecg::graph
