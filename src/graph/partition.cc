#include "graph/partition.h"

#include <cmath>
#include <algorithm>
#include <deque>
#include <numeric>

#include "common/random.h"

namespace ecg::graph {
namespace {

void FillMembers(Partition* p) {
  p->members.assign(p->num_parts, {});
  for (uint32_t v = 0; v < p->owner.size(); ++v) {
    p->members[p->owner[v]].push_back(v);
  }
}

Status ValidateArgs(const Graph& g, uint32_t num_parts) {
  if (num_parts == 0) return Status::InvalidArgument("num_parts must be > 0");
  if (g.num_vertices() < num_parts) {
    return Status::InvalidArgument("more parts than vertices");
  }
  return Status::OK();
}

}  // namespace

uint64_t Partition::EdgeCut(const Graph& g) const {
  uint64_t cut = 0;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (uint32_t u : g.Neighbors(v)) {
      if (u > v && owner[u] != owner[v]) ++cut;
    }
  }
  return cut;
}

double Partition::BalanceFactor() const {
  size_t max_size = 0;
  size_t total = 0;
  for (const auto& m : members) {
    max_size = std::max(max_size, m.size());
    total += m.size();
  }
  const double ideal = static_cast<double>(total) / num_parts;
  return ideal == 0.0 ? 1.0 : static_cast<double>(max_size) / ideal;
}

Result<Partition> HashPartition(const Graph& g, uint32_t num_parts) {
  ECG_RETURN_IF_ERROR(ValidateArgs(g, num_parts));
  Partition p;
  p.num_parts = num_parts;
  p.owner.resize(g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) p.owner[v] = v % num_parts;
  FillMembers(&p);
  return p;
}

Result<Partition> MetisLikePartition(const Graph& g, uint32_t num_parts,
                                     const MetisLikeOptions& options) {
  ECG_RETURN_IF_ERROR(ValidateArgs(g, num_parts));
  const uint32_t n = g.num_vertices();
  const uint32_t target =
      static_cast<uint32_t>((n + num_parts - 1) / num_parts);
  const uint32_t max_size = std::max<uint32_t>(
      target, static_cast<uint32_t>(target * options.max_imbalance));
  // Also balance the per-part DEGREE sum: on a distributed GNN the
  // per-worker compute is edge-dominated (SpMM), so a low-cut but
  // edge-skewed partition makes the slowest worker slower than Hash
  // (the makespan is a max, not an average).
  const double target_weight =
      static_cast<double>(g.num_edges()) / num_parts;
  const double max_weight = target_weight * options.max_imbalance;

  Partition p;
  p.num_parts = num_parts;
  p.owner.assign(n, num_parts);  // num_parts = unassigned sentinel

  // Seed order: vertices by decreasing degree, with a seeded shuffle among
  // ties so different seeds explore different growths.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(options.seed);
  for (uint32_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBelow(i + 1)]);
  }
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return g.Degree(a) > g.Degree(b);
  });

  // Phase 1: Fennel-style streaming assignment as the initial solution —
  // on replicas with moderate community structure it finds far better
  // cuts than BFS region growing.
  StreamingOptions stream_opt;
  stream_opt.seed = options.seed;
  stream_opt.max_imbalance = options.max_imbalance;
  ECG_ASSIGN_OR_RETURN(Partition init, StreamingPartition(g, num_parts,
                                                          stream_opt));
  p.owner = std::move(init.owner);
  std::vector<uint32_t> part_size(num_parts, 0);
  std::vector<double> part_weight(num_parts, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    ++part_size[p.owner[v]];
    part_weight[p.owner[v]] += g.Degree(v);
  }

  // Phase 1b: degree-weight rebalance — drain overweight parts into the
  // lightest parts (visiting `order` keeps it seeded-deterministic).
  for (uint32_t v : order) {
    const uint32_t from = p.owner[v];
    if (part_weight[from] <= max_weight && part_size[from] <= max_size) {
      continue;
    }
    uint32_t best = from;
    double best_weight = part_weight[from];
    for (uint32_t cand = 0; cand < num_parts; ++cand) {
      if (cand == from || part_size[cand] + 1 > max_size) continue;
      if (part_weight[cand] + g.Degree(v) > max_weight) continue;
      if (part_weight[cand] < best_weight) {
        best_weight = part_weight[cand];
        best = cand;
      }
    }
    if (best != from) {
      p.owner[v] = best;
      --part_size[from];
      ++part_size[best];
      part_weight[from] -= g.Degree(v);
      part_weight[best] += g.Degree(v);
    }
  }

  // Phase 2: KL-style boundary refinement. Move a vertex to the neighbour
  // part with the largest positive edge-cut gain, respecting balance.
  std::vector<uint32_t> neigh_count(num_parts, 0);
  for (int pass = 0; pass < options.refinement_passes; ++pass) {
    uint64_t moves = 0;
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t from = p.owner[v];
      if (part_size[from] <= 1) continue;
      bool boundary = false;
      std::vector<uint32_t> touched;
      for (uint32_t u : g.Neighbors(v)) {
        const uint32_t pu = p.owner[u];
        if (neigh_count[pu] == 0) touched.push_back(pu);
        ++neigh_count[pu];
        if (pu != from) boundary = true;
      }
      if (boundary) {
        uint32_t best_part = from;
        uint32_t best_count = neigh_count[from];
        for (uint32_t cand : touched) {
          if (cand == from) continue;
          if (part_size[cand] + 1 > max_size) continue;
          if (part_weight[cand] + g.Degree(v) > max_weight) continue;
          if (neigh_count[cand] > best_count) {
            best_count = neigh_count[cand];
            best_part = cand;
          }
        }
        if (best_part != from) {
          p.owner[v] = best_part;
          --part_size[from];
          ++part_size[best_part];
          part_weight[from] -= g.Degree(v);
          part_weight[best_part] += g.Degree(v);
          ++moves;
        }
      }
      for (uint32_t t : touched) neigh_count[t] = 0;
    }
    if (moves == 0) break;
  }

  FillMembers(&p);
  return p;
}

Result<Partition> StreamingPartition(const Graph& g, uint32_t num_parts,
                                     const StreamingOptions& options) {
  ECG_RETURN_IF_ERROR(ValidateArgs(g, num_parts));
  if (options.gamma <= 1.0) {
    return Status::InvalidArgument("streaming gamma must exceed 1");
  }
  const uint32_t n = g.num_vertices();
  Partition p;
  p.num_parts = num_parts;
  p.owner.assign(n, num_parts);

  // Fennel objective: alpha = m * k^{gamma-1} / n^gamma (edges m counted
  // undirected).
  const double m = static_cast<double>(g.num_edges()) / 2.0;
  const double alpha = m * std::pow(static_cast<double>(num_parts),
                                    options.gamma - 1.0) /
                       std::pow(static_cast<double>(n), options.gamma);

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(options.seed);
  for (uint32_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBelow(i + 1)]);
  }

  std::vector<uint32_t> part_size(num_parts, 0);
  std::vector<uint32_t> neigh_count(num_parts, 0);
  const uint32_t hard_cap = static_cast<uint32_t>(
      options.max_imbalance * n / num_parts) + 1;
  for (uint32_t v : order) {
    std::vector<uint32_t> touched;
    for (uint32_t u : g.Neighbors(v)) {
      const uint32_t pu = p.owner[u];
      if (pu == num_parts) continue;  // not yet streamed
      if (neigh_count[pu] == 0) touched.push_back(pu);
      ++neigh_count[pu];
    }
    uint32_t best = num_parts;
    double best_score = -1e300;
    for (uint32_t cand = 0; cand < num_parts; ++cand) {
      if (part_size[cand] >= hard_cap) continue;
      const double score =
          static_cast<double>(neigh_count[cand]) -
          alpha * options.gamma / 2.0 *
              std::pow(static_cast<double>(part_size[cand]),
                       options.gamma - 1.0);
      if (score > best_score) {
        best_score = score;
        best = cand;
      }
    }
    if (best == num_parts) {
      // All parts at the hard cap (cannot happen with cap > n/k, but be
      // safe): fall back to the smallest part.
      best = static_cast<uint32_t>(
          std::min_element(part_size.begin(), part_size.end()) -
          part_size.begin());
    }
    p.owner[v] = best;
    ++part_size[best];
    for (uint32_t t : touched) neigh_count[t] = 0;
  }

  FillMembers(&p);
  return p;
}

}  // namespace ecg::graph
