#include "graph/partition.h"

#include <cmath>
#include <algorithm>
#include <deque>
#include <numeric>

#include "common/random.h"

namespace ecg::graph {
namespace {

void FillMembers(Partition* p) {
  p->members.assign(p->num_parts, {});
  for (uint32_t v = 0; v < p->owner.size(); ++v) {
    p->members[p->owner[v]].push_back(v);
  }
}

Status ValidateArgs(const Graph& g, uint32_t num_parts) {
  if (num_parts == 0) return Status::InvalidArgument("num_parts must be > 0");
  if (g.num_vertices() < num_parts) {
    return Status::InvalidArgument("more parts than vertices");
  }
  return Status::OK();
}

Status ValidateImbalance(double max_imbalance) {
  if (!(max_imbalance >= 1.0)) {
    return Status::InvalidArgument(
        "max_imbalance must be >= 1.0 (some part must hold at least the "
        "ideal n/k share); got " + std::to_string(max_imbalance));
  }
  return Status::OK();
}

}  // namespace

void RebuildMembers(Partition* p) { FillMembers(p); }

uint64_t Partition::EdgeCut(const Graph& g) const {
  uint64_t cut = 0;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (uint32_t u : g.Neighbors(v)) {
      if (u > v && owner[u] != owner[v]) ++cut;
    }
  }
  return cut;
}

double Partition::BalanceFactor() const {
  size_t max_size = 0;
  size_t total = 0;
  for (const auto& m : members) {
    max_size = std::max(max_size, m.size());
    total += m.size();
  }
  const double ideal = static_cast<double>(total) / num_parts;
  return ideal == 0.0 ? 1.0 : static_cast<double>(max_size) / ideal;
}

Result<Partition> HashPartition(const Graph& g, uint32_t num_parts) {
  ECG_RETURN_IF_ERROR(ValidateArgs(g, num_parts));
  Partition p;
  p.num_parts = num_parts;
  p.owner.resize(g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) p.owner[v] = v % num_parts;
  FillMembers(&p);
  return p;
}

Result<Partition> MetisLikePartition(const Graph& g, uint32_t num_parts,
                                     const MetisLikeOptions& options) {
  ECG_RETURN_IF_ERROR(ValidateArgs(g, num_parts));
  ECG_RETURN_IF_ERROR(ValidateImbalance(options.max_imbalance));
  const uint32_t n = g.num_vertices();
  const uint32_t target =
      static_cast<uint32_t>((n + num_parts - 1) / num_parts);
  const uint32_t max_size = std::max<uint32_t>(
      target, static_cast<uint32_t>(target * options.max_imbalance));
  // Also balance the per-part DEGREE sum: on a distributed GNN the
  // per-worker compute is edge-dominated (SpMM), so a low-cut but
  // edge-skewed partition makes the slowest worker slower than Hash
  // (the makespan is a max, not an average).
  const double target_weight =
      static_cast<double>(g.num_edges()) / num_parts;
  const double max_weight = target_weight * options.max_imbalance;

  Partition p;
  p.num_parts = num_parts;
  p.owner.assign(n, num_parts);  // num_parts = unassigned sentinel

  // Seed order: vertices by decreasing degree, with a seeded shuffle among
  // ties so different seeds explore different growths.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(options.seed);
  for (uint32_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBelow(i + 1)]);
  }
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return g.Degree(a) > g.Degree(b);
  });

  // Phase 1: Fennel-style streaming assignment as the initial solution —
  // on replicas with moderate community structure it finds far better
  // cuts than BFS region growing.
  StreamingOptions stream_opt;
  stream_opt.seed = options.seed;
  stream_opt.max_imbalance = options.max_imbalance;
  ECG_ASSIGN_OR_RETURN(Partition init, StreamingPartition(g, num_parts,
                                                          stream_opt));
  p.owner = std::move(init.owner);
  std::vector<uint32_t> part_size(num_parts, 0);
  std::vector<double> part_weight(num_parts, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    ++part_size[p.owner[v]];
    part_weight[p.owner[v]] += g.Degree(v);
  }

  // Phase 1b: degree-weight rebalance — drain overweight parts into the
  // lightest parts (visiting `order` keeps it seeded-deterministic).
  for (uint32_t v : order) {
    const uint32_t from = p.owner[v];
    if (part_weight[from] <= max_weight && part_size[from] <= max_size) {
      continue;
    }
    uint32_t best = from;
    double best_weight = part_weight[from];
    for (uint32_t cand = 0; cand < num_parts; ++cand) {
      if (cand == from || part_size[cand] + 1 > max_size) continue;
      if (part_weight[cand] + g.Degree(v) > max_weight) continue;
      if (part_weight[cand] < best_weight) {
        best_weight = part_weight[cand];
        best = cand;
      }
    }
    if (best != from) {
      p.owner[v] = best;
      --part_size[from];
      ++part_size[best];
      part_weight[from] -= g.Degree(v);
      part_weight[best] += g.Degree(v);
    }
  }

  // Phase 2: KL-style boundary refinement. Move a vertex to the neighbour
  // part with the largest positive edge-cut gain, respecting balance.
  std::vector<uint32_t> neigh_count(num_parts, 0);
  for (int pass = 0; pass < options.refinement_passes; ++pass) {
    uint64_t moves = 0;
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t from = p.owner[v];
      if (part_size[from] <= 1) continue;
      bool boundary = false;
      std::vector<uint32_t> touched;
      for (uint32_t u : g.Neighbors(v)) {
        const uint32_t pu = p.owner[u];
        if (neigh_count[pu] == 0) touched.push_back(pu);
        ++neigh_count[pu];
        if (pu != from) boundary = true;
      }
      if (boundary) {
        uint32_t best_part = from;
        uint32_t best_count = neigh_count[from];
        for (uint32_t cand : touched) {
          if (cand == from) continue;
          if (part_size[cand] + 1 > max_size) continue;
          if (part_weight[cand] + g.Degree(v) > max_weight) continue;
          if (neigh_count[cand] > best_count) {
            best_count = neigh_count[cand];
            best_part = cand;
          }
        }
        if (best_part != from) {
          p.owner[v] = best_part;
          --part_size[from];
          ++part_size[best_part];
          part_weight[from] -= g.Degree(v);
          part_weight[best_part] += g.Degree(v);
          ++moves;
        }
      }
      for (uint32_t t : touched) neigh_count[t] = 0;
    }
    if (moves == 0) break;
  }

  FillMembers(&p);
  return p;
}

Result<Partition> StreamingPartition(const Graph& g, uint32_t num_parts,
                                     const StreamingOptions& options) {
  ECG_RETURN_IF_ERROR(ValidateArgs(g, num_parts));
  ECG_RETURN_IF_ERROR(ValidateImbalance(options.max_imbalance));
  if (options.gamma <= 1.0) {
    return Status::InvalidArgument("streaming gamma must exceed 1");
  }
  if (!options.part_capacity.empty()) {
    if (options.part_capacity.size() != num_parts) {
      return Status::InvalidArgument("part_capacity size != num_parts");
    }
    for (double c : options.part_capacity) {
      if (!(c > 0.0)) {
        return Status::InvalidArgument("part_capacity entries must be > 0");
      }
    }
  }
  const uint32_t n = g.num_vertices();
  Partition p;
  p.num_parts = num_parts;
  p.owner.assign(n, num_parts);

  // Fennel objective: alpha = m * k^{gamma-1} / n^gamma (edges m counted
  // undirected).
  const double m = static_cast<double>(g.num_edges()) / 2.0;
  const double alpha = m * std::pow(static_cast<double>(num_parts),
                                    options.gamma - 1.0) /
                       std::pow(static_cast<double>(n), options.gamma);

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(options.seed);
  for (uint32_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBelow(i + 1)]);
  }

  std::vector<uint32_t> part_size(num_parts, 0);
  std::vector<uint32_t> neigh_count(num_parts, 0);
  // Per-part hard caps and score normalization. With equal (empty)
  // capacities the weighted path is skipped entirely so the classic
  // objective stays bit-identical; with capacities, part p's ideal size is
  // rescaled to n·cap_p/Σcap and its size is normalized by its relative
  // share before entering the balance penalty.
  const bool weighted = !options.part_capacity.empty();
  const uint32_t hard_cap = static_cast<uint32_t>(
      options.max_imbalance * n / num_parts) + 1;
  std::vector<uint32_t> cap_of;
  std::vector<double> share_of;
  if (weighted) {
    double cap_sum = 0.0;
    for (double c : options.part_capacity) cap_sum += c;
    cap_of.resize(num_parts);
    share_of.resize(num_parts);
    for (uint32_t q = 0; q < num_parts; ++q) {
      const double ideal = n * options.part_capacity[q] / cap_sum;
      cap_of[q] = static_cast<uint32_t>(options.max_imbalance * ideal) + 1;
      share_of[q] = options.part_capacity[q] * num_parts / cap_sum;
    }
  }
  for (uint32_t v : order) {
    std::vector<uint32_t> touched;
    for (uint32_t u : g.Neighbors(v)) {
      const uint32_t pu = p.owner[u];
      if (pu == num_parts) continue;  // not yet streamed
      if (neigh_count[pu] == 0) touched.push_back(pu);
      ++neigh_count[pu];
    }
    uint32_t best = num_parts;
    double best_score = -1e300;
    for (uint32_t cand = 0; cand < num_parts; ++cand) {
      if (part_size[cand] >= (weighted ? cap_of[cand] : hard_cap)) continue;
      const double effective_size =
          weighted ? part_size[cand] / share_of[cand]
                   : static_cast<double>(part_size[cand]);
      const double score =
          static_cast<double>(neigh_count[cand]) -
          alpha * options.gamma / 2.0 *
              std::pow(effective_size, options.gamma - 1.0);
      if (score > best_score) {
        best_score = score;
        best = cand;
      }
    }
    if (best == num_parts) {
      // All parts at the hard cap (cannot happen with cap > n/k, but be
      // safe): fall back to the smallest part.
      best = static_cast<uint32_t>(
          std::min_element(part_size.begin(), part_size.end()) -
          part_size.begin());
    }
    p.owner[v] = best;
    ++part_size[best];
    for (uint32_t t : touched) neigh_count[t] = 0;
  }

  FillMembers(&p);
  return p;
}

Result<Partition> DeltaRepartition(const Graph& g, const Partition& base,
                                   const std::vector<int32_t>& old_to_new,
                                   uint32_t new_num_parts,
                                   const DeltaRepartitionOptions& options) {
  ECG_RETURN_IF_ERROR(ValidateArgs(g, new_num_parts));
  ECG_RETURN_IF_ERROR(ValidateImbalance(options.max_imbalance));
  if (options.gamma <= 1.0) {
    return Status::InvalidArgument("delta-repartition gamma must exceed 1");
  }
  const uint32_t n = g.num_vertices();
  if (base.owner.size() != n) {
    return Status::InvalidArgument("base partition does not cover the graph");
  }
  if (old_to_new.size() != base.num_parts) {
    return Status::InvalidArgument("old_to_new size != base.num_parts");
  }
  std::vector<bool> target_taken(new_num_parts, false);
  for (int32_t t : old_to_new) {
    if (t < 0) continue;  // departed worker: vertices get re-streamed
    if (static_cast<uint32_t>(t) >= new_num_parts) {
      return Status::InvalidArgument("old_to_new target out of range");
    }
    if (target_taken[t]) {
      return Status::InvalidArgument("old_to_new maps two parts to one");
    }
    target_taken[t] = true;
  }

  Partition p;
  p.num_parts = new_num_parts;
  p.owner.assign(n, new_num_parts);  // new_num_parts = unassigned sentinel
  std::vector<uint32_t> part_size(new_num_parts, 0);

  // Survivors keep their vertices (part id mapped through old_to_new);
  // departed workers' vertices go to the re-stream pool.
  std::vector<uint32_t> pool;
  for (uint32_t v = 0; v < n; ++v) {
    const int32_t np = old_to_new[base.owner[v]];
    if (np >= 0) {
      p.owner[v] = static_cast<uint32_t>(np);
      ++part_size[np];
    } else {
      pool.push_back(v);
    }
  }

  // Join: fresh parts exist (targets nobody maps to). Shed each mapped
  // part's overage above the new ideal into the pool, preferring vertices
  // with the fewest same-part neighbours — they are the cheapest to move
  // (boundary-light), so the kept cores of the surviving parts stay intact.
  bool any_fresh = false;
  for (uint32_t q = 0; q < new_num_parts; ++q) {
    if (!target_taken[q]) any_fresh = true;
  }
  if (any_fresh) {
    const uint32_t ideal =
        static_cast<uint32_t>((n + new_num_parts - 1) / new_num_parts);
    for (uint32_t q = 0; q < new_num_parts; ++q) {
      if (!target_taken[q] || part_size[q] <= ideal) continue;
      std::vector<std::pair<uint32_t, uint32_t>> cost;  // (internal deg, v)
      for (uint32_t v = 0; v < n; ++v) {
        if (p.owner[v] != q) continue;
        uint32_t internal = 0;
        for (uint32_t u : g.Neighbors(v)) {
          if (p.owner[u] == q) ++internal;
        }
        cost.emplace_back(internal, v);
      }
      std::sort(cost.begin(), cost.end());
      const uint32_t shed = part_size[q] - ideal;
      for (uint32_t i = 0; i < shed; ++i) {
        const uint32_t v = cost[i].second;
        p.owner[v] = new_num_parts;
        --part_size[q];
        pool.push_back(v);
      }
    }
  }

  // Re-stream only the pool, Fennel-style, against the seeded sizes. The
  // alpha is computed from the full graph so the balance pressure matches a
  // from-scratch streaming pass at the new k.
  const double m = static_cast<double>(g.num_edges()) / 2.0;
  const double alpha = m * std::pow(static_cast<double>(new_num_parts),
                                    options.gamma - 1.0) /
                       std::pow(static_cast<double>(n), options.gamma);
  Rng rng(options.seed);
  for (uint32_t i = static_cast<uint32_t>(pool.size()); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.NextBelow(i)]);
  }
  const uint32_t hard_cap = static_cast<uint32_t>(
      options.max_imbalance * n / new_num_parts) + 1;
  std::vector<uint32_t> neigh_count(new_num_parts, 0);
  for (uint32_t v : pool) {
    std::vector<uint32_t> touched;
    for (uint32_t u : g.Neighbors(v)) {
      const uint32_t pu = p.owner[u];
      if (pu == new_num_parts) continue;
      if (neigh_count[pu] == 0) touched.push_back(pu);
      ++neigh_count[pu];
    }
    uint32_t best = new_num_parts;
    double best_score = -1e300;
    for (uint32_t cand = 0; cand < new_num_parts; ++cand) {
      if (part_size[cand] >= hard_cap) continue;
      const double score =
          static_cast<double>(neigh_count[cand]) -
          alpha * options.gamma / 2.0 *
              std::pow(static_cast<double>(part_size[cand]),
                       options.gamma - 1.0);
      if (score > best_score) {
        best_score = score;
        best = cand;
      }
    }
    if (best == new_num_parts) {
      best = static_cast<uint32_t>(
          std::min_element(part_size.begin(), part_size.end()) -
          part_size.begin());
    }
    p.owner[v] = best;
    ++part_size[best];
    for (uint32_t t : touched) neigh_count[t] = 0;
  }

  FillMembers(&p);
  return p;
}

}  // namespace ecg::graph
