#ifndef ECGRAPH_GRAPH_GRAPH_H_
#define ECGRAPH_GRAPH_GRAPH_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"

namespace ecg::graph {

/// An attributed undirected graph for vertex classification: CSR adjacency
/// (both directions stored), per-vertex feature rows, integer labels and
/// train/val/test splits. This is the G = <V, E, X_V> of the paper; edge
/// features X_E are not used by GCN and are omitted.
class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list (u, v) pairs; duplicates and self
  /// loops are removed. `features` must have num_vertices rows and `labels`
  /// num_vertices entries in [0, num_classes).
  static Result<Graph> Build(uint32_t num_vertices,
                             const std::vector<std::pair<uint32_t, uint32_t>>& edges,
                             tensor::Matrix features,
                             std::vector<int32_t> labels, int32_t num_classes);

  uint32_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return adj_.size(); }  // directed count (2|E|)
  int32_t num_classes() const { return num_classes_; }
  size_t feature_dim() const { return features_.cols(); }
  double average_degree() const {
    return num_vertices_ == 0
               ? 0.0
               : static_cast<double>(adj_.size()) / num_vertices_;
  }

  /// Neighbours of v (sorted, no self loop, no duplicates).
  std::span<const uint32_t> Neighbors(uint32_t v) const {
    return {adj_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }
  uint32_t Degree(uint32_t v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  const tensor::Matrix& features() const { return features_; }
  const std::vector<int32_t>& labels() const { return labels_; }

  const std::vector<uint32_t>& train_set() const { return train_set_; }
  const std::vector<uint32_t>& val_set() const { return val_set_; }
  const std::vector<uint32_t>& test_set() const { return test_set_; }

  /// Installs train/val/test splits (disjoint vertex id lists).
  void SetSplits(std::vector<uint32_t> train, std::vector<uint32_t> val,
                 std::vector<uint32_t> test) {
    train_set_ = std::move(train);
    val_set_ = std::move(val);
    test_set_ = std::move(test);
  }

  /// GCN symmetric-normalization weight of edge (u, v):
  /// 1 / sqrt((deg(u)+1)(deg(v)+1)); with u == v this is the self-loop
  /// weight of Â = D^{-1/2}(A+I)D^{-1/2}.
  float NormWeight(uint32_t u, uint32_t v) const {
    const double du = Degree(u) + 1.0;
    const double dv = Degree(v) + 1.0;
    return static_cast<float>(1.0 / std::sqrt(du * dv));
  }

  /// GraphSAGE mean-aggregator weight of edge (v, u): 1/deg(v) for
  /// neighbours, 0 on the diagonal (the self path goes through W_self).
  float MeanWeight(uint32_t v, uint32_t u) const {
    if (v == u || Degree(v) == 0) return 0.0f;
    return 1.0f / static_cast<float>(Degree(v));
  }

  std::string name;

 private:
  uint32_t num_vertices_ = 0;
  int32_t num_classes_ = 0;
  std::vector<uint64_t> offsets_;  // size num_vertices_ + 1
  std::vector<uint32_t> adj_;      // concatenated sorted neighbour lists
  tensor::Matrix features_;
  std::vector<int32_t> labels_;
  std::vector<uint32_t> train_set_;
  std::vector<uint32_t> val_set_;
  std::vector<uint32_t> test_set_;
};

}  // namespace ecg::graph

#endif  // ECGRAPH_GRAPH_GRAPH_H_
