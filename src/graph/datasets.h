#ifndef ECGRAPH_GRAPH_DATASETS_H_
#define ECGRAPH_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/generator.h"
#include "graph/graph.h"

namespace ecg::graph {

/// A named synthetic replica of one of the paper's Table III datasets:
/// the SBM parameters plus split sizes. Replicas keep the published
/// |V|, average degree, feature dimension and class count for Cora and
/// Pubmed and scale the three OGB-size graphs down (factors in DESIGN.md §5)
/// while preserving their roles: Reddit = high-degree/communication-heavy,
/// Products = mid-size, Papers = largest graph with the most classes and
/// the hardest task (paper accuracy 44.6%).
struct DatasetSpec {
  std::string dataset_name;
  SbmConfig sbm;
  uint32_t train_size = 0;
  uint32_t val_size = 0;
  uint32_t test_size = 0;
  /// Default GCN shape from Section V-A: layers and hidden width.
  int default_layers = 2;
  uint32_t default_hidden = 16;
};

/// Names of all registered dataset replicas, in Table III order.
std::vector<std::string> DatasetNames();

/// Looks up a replica spec by name ("cora-sim", "pubmed-sim", "reddit-sim",
/// "products-sim", "papers-sim", or "tiny" for tests/examples).
Result<DatasetSpec> GetDatasetSpec(const std::string& dataset_name);

/// Generates the graph for a spec and installs its splits. Deterministic.
Result<Graph> LoadDataset(const std::string& dataset_name);

}  // namespace ecg::graph

#endif  // ECGRAPH_GRAPH_DATASETS_H_
