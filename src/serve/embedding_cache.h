#ifndef ECGRAPH_SERVE_EMBEDDING_CACHE_H_
#define ECGRAPH_SERVE_EMBEDDING_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace ecg::serve {

/// Sharded, epoch-versioned LRU cache of computed embedding rows, keyed by
/// (layer, vertex). The read path of the serve tier: a row computed for one
/// query is reused by every later query whose fan-out touches the same
/// vertex, across batches, until the parameter server publishes new
/// weights.
///
/// Versioning: every entry is stamped with the weights version it was
/// computed under. `Invalidate(v)` just bumps the current version — O(1),
/// called from the parameter-server publish callback — and stale entries
/// are evicted lazily when a lookup touches them (counted as `stale`).
/// A row is therefore never served across a weights publish, and training
/// can run concurrently with serving.
///
/// Sharding: key-hashed shards, each with its own mutex + LRU list, so
/// concurrent readers on different shards do not contend. Capacity is
/// enforced per shard in bytes.
class EmbeddingCache {
 public:
  /// `capacity_bytes` is the total budget, split evenly over `shards`
  /// (each at least one row). shards must be >= 1.
  EmbeddingCache(uint32_t shards, size_t capacity_bytes);

  EmbeddingCache(const EmbeddingCache&) = delete;
  EmbeddingCache& operator=(const EmbeddingCache&) = delete;

  /// Copies the cached row for (layer, vertex) into out[0..dim) and
  /// returns true iff present with the given version. A version mismatch
  /// evicts the entry and misses.
  bool Get(uint32_t layer, uint32_t vertex, uint64_t version, float* out,
           size_t dim);

  /// Inserts/overwrites the row for (layer, vertex) at `version`,
  /// evicting least-recently-used entries past the shard budget.
  void Put(uint32_t layer, uint32_t vertex, uint64_t version,
           const float* row, size_t dim);

  /// Publishes a new weights version; all older entries become stale.
  void Invalidate(uint64_t new_version) {
    version_.store(new_version, std::memory_order_release);
  }
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;  // capacity evictions
    uint64_t stale = 0;      // version-mismatch evictions
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };
  Stats GetStats() const;

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t version = 0;
    std::vector<float> row;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  static uint64_t Key(uint32_t layer, uint32_t vertex) {
    return (static_cast<uint64_t>(layer) << 32) | vertex;
  }
  Shard& ShardFor(uint64_t key);

  std::vector<Shard> shards_;
  size_t shard_capacity_;
  std::atomic<uint64_t> version_{0};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> stale_{0};
};

}  // namespace ecg::serve

#endif  // ECGRAPH_SERVE_EMBEDDING_CACHE_H_
