#include "serve/embedding_cache.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace ecg::serve {
namespace {

// splitmix64 finalizer: spreads (layer, vertex) keys over shards so that
// consecutive vertex ids of one layer don't all land in one shard.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

EmbeddingCache::EmbeddingCache(uint32_t shards, size_t capacity_bytes)
    : shards_(std::max<uint32_t>(shards, 1)) {
  ECG_CHECK(shards >= 1) << "embedding cache needs >= 1 shard";
  shard_capacity_ = std::max<size_t>(capacity_bytes / shards_.size(), 1);
}

EmbeddingCache::Shard& EmbeddingCache::ShardFor(uint64_t key) {
  return shards_[Mix(key) % shards_.size()];
}

bool EmbeddingCache::Get(uint32_t layer, uint32_t vertex, uint64_t version,
                         float* out, size_t dim) {
  const uint64_t key = Key(layer, vertex);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (it->second->version != version) {
    // Stale row from before the last weights publish: evict lazily.
    shard.bytes -= it->second->row.size() * sizeof(float);
    shard.lru.erase(it->second);
    shard.index.erase(it);
    stale_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const Entry& e = *it->second;
  ECG_CHECK(e.row.size() == dim) << "embedding cache dim mismatch";
  std::memcpy(out, e.row.data(), dim * sizeof(float));
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void EmbeddingCache::Put(uint32_t layer, uint32_t vertex, uint64_t version,
                         const float* row, size_t dim) {
  const uint64_t key = Key(layer, vertex);
  const size_t bytes = dim * sizeof(float);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->row.size() * sizeof(float);
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{key, version, std::vector<float>(row, row + dim)});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.row.size() * sizeof(float);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

EmbeddingCache::Stats EmbeddingCache::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += shard.lru.size();
    s.bytes += shard.bytes;
  }
  return s;
}

}  // namespace ecg::serve
