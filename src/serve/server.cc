#include "serve/server.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/spec.h"
#include "common/trace.h"
#include "core/checkpoint.h"
#include "tensor/nn.h"

namespace ecg::serve {
namespace {

config::Spec& BindServeSpec(config::Spec& spec, ServeOptions* o) {
  spec.U32("fanout", &o->fanout)
      .Help("inference neighbour fan-out per layer (0 = full, exact)");
  spec.U64("seed", &o->sample_seed)
      .Help("seed for inference-time neighbour sampling");
  spec.U32("cache_mb", &o->cache_mb)
      .Min(1)
      .Help("embedding cache budget in MiB");
  spec.U32("shards", &o->cache_shards)
      .Min(1)
      .Help("embedding cache shard count");
  spec.U32("queue", &o->queue_depth)
      .Min(1)
      .Help("admission queue depth; beyond it queries are shed");
  spec.U32("batch", &o->max_batch)
      .Min(1)
      .Help("max queries coalesced into one batched inference");
  spec.F64("gflops", &o->gflops)
      .MinExclusive(0)
      .Help("modelled serving compute rate (GFLOP/s)");
  spec.F64("overhead_us", &o->batch_overhead_us)
      .Min(0)
      .Help("fixed per-batch overhead in microseconds");
  spec.F64("slo_ms", &o->slo_ms)
      .MinExclusive(0)
      .Help("p99 latency SLO in milliseconds (bench gate)");
  return spec;
}

}  // namespace

Result<ServeOptions> ParseServeOptions(const std::string& spec_text) {
  ServeOptions opts;
  config::Spec spec("serve");
  ECG_RETURN_IF_ERROR(BindServeSpec(spec, &opts).Parse(spec_text));
  return opts;
}

std::string ServeSpecHelp() {
  ServeOptions defaults;
  config::Spec spec("serve");
  return BindServeSpec(spec, &defaults).HelpText();
}

InferenceServer::InferenceServer(const graph::Graph* g, core::GcnConfig model,
                                 ServeOptions options)
    : g_(g), model_(model), options_(options) {
  ECG_CHECK(g_ != nullptr) << "inference server needs a graph";
}

Status InferenceServer::Init() {
  layers_.clear();
  for (int l = 0; l < model_.num_layers; ++l) {
    ECG_ASSIGN_OR_RETURN(
        core::SampledLayerGraph lg,
        core::SampleLayerGraph(*g_, options_.fanout,
                               options_.sample_seed + static_cast<uint64_t>(l)));
    layers_.push_back(std::move(lg));
  }
  cache_ = std::make_unique<EmbeddingCache>(
      options_.cache_shards,
      static_cast<size_t>(options_.cache_mb) * 1024 * 1024);
  initialized_ = true;
  return Status::OK();
}

Status InferenceServer::CheckShapes() const {
  const auto shapes =
      core::GcnLayerShapes(model_, g_->feature_dim(),
                           static_cast<size_t>(g_->num_classes()));
  if (weights_.size() != shapes.size()) {
    return Status::InvalidArgument(
        "serve: weights have " + std::to_string(weights_.size()) +
        " layers, model wants " + std::to_string(shapes.size()));
  }
  for (size_t l = 0; l < shapes.size(); ++l) {
    if (weights_[l].rows() != shapes[l].in_dim ||
        weights_[l].cols() != shapes[l].out_dim ||
        biases_[l].cols() != shapes[l].out_dim) {
      return Status::InvalidArgument(
          "serve: layer " + std::to_string(l) + " weight shape " +
          std::to_string(weights_[l].rows()) + "x" +
          std::to_string(weights_[l].cols()) + " does not match model " +
          std::to_string(shapes[l].in_dim) + "x" +
          std::to_string(shapes[l].out_dim));
    }
  }
  return Status::OK();
}

void InferenceServer::InstallVersion() {
  const uint64_t v = ++version_counter_;
  weights_version_.store(v, std::memory_order_release);
  if (cache_) cache_->Invalidate(v);
}

Status InferenceServer::LoadWeightsBlob(const std::vector<uint8_t>& blob) {
  ByteReader r(blob);
  uint32_t layers = 0;
  ECG_RETURN_IF_ERROR(r.GetU32(&layers));
  std::vector<tensor::Matrix> ws, bs;
  tensor::AdamState scratch;
  for (uint32_t l = 0; l < layers; ++l) {
    tensor::Matrix w, b;
    ECG_RETURN_IF_ERROR(tensor::LoadMatrix(&r, &w));
    ECG_RETURN_IF_ERROR(tensor::LoadMatrix(&r, &b));
    // The serve tier does not optimize: skip the Adam moments.
    ECG_RETURN_IF_ERROR(scratch.LoadFrom(&r));
    ECG_RETURN_IF_ERROR(scratch.LoadFrom(&r));
    ws.push_back(std::move(w));
    bs.push_back(std::move(b));
  }
  weights_ = std::move(ws);
  biases_ = std::move(bs);
  ECG_RETURN_IF_ERROR(CheckShapes());
  InstallVersion();
  return Status::OK();
}

Status InferenceServer::LoadFromCheckpoint(const std::string& path) {
  ECG_ASSIGN_OR_RETURN(core::CheckpointGlobalSection section,
                       core::LoadCheckpointGlobal(path));
  return LoadWeightsBlob(section.global);
}

Status InferenceServer::AttachParameterServer(
    dist::ParameterServerGroup* ps) {
  if (ps == nullptr) return Status::InvalidArgument("serve: null ps group");
  ps_ = ps;
  ps_->SetPublishCallback([this](uint64_t) {
    // Runs on the publishing worker thread: just mark dirty; the serving
    // thread re-pulls at the head of its next batch.
    weights_dirty_.store(true, std::memory_order_release);
  });
  weights_dirty_.store(true, std::memory_order_release);
  RefreshWeightsIfDirty();
  return CheckShapes();
}

void InferenceServer::RefreshWeightsIfDirty() {
  if (ps_ == nullptr) return;
  if (!weights_dirty_.exchange(false, std::memory_order_acq_rel)) return;
  const size_t layers = ps_->num_layers();
  weights_.resize(layers);
  biases_.resize(layers);
  for (size_t l = 0; l < layers; ++l) {
    ps_->Pull(l, &weights_[l], &biases_[l]);
  }
  InstallVersion();
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("ecg_serve_weight_refreshes_total",
                    "Weight re-pulls triggered by parameter-server "
                    "publishes.",
                    {})
        ->Inc();
  }
}

void InferenceServer::ComputeRow(size_t layer_idx, uint32_t v,
                                 const tensor::Matrix& inputs,
                                 const std::vector<uint32_t>& row_of,
                                 float* out, BatchStats* stats) const {
  const core::SampledLayerGraph& lg = layers_[layer_idx];
  const tensor::Matrix& W = weights_[layer_idx];
  const tensor::Matrix& b = biases_[layer_idx];
  const size_t d_in = inputs.cols();
  const size_t d_total = W.rows();
  const size_t d_out = W.cols();

  auto input_row = [&](uint32_t u) -> const float* {
    const size_t r = row_of.empty() ? u : row_of[u];
    return inputs.Row(r);
  };

  // Aggregate in fixed order: sampled neighbours in CSR order, then self.
  // This makes the row a pure function of (layer, vertex, weights).
  std::vector<float> agg(d_total, 0.0f);
  const uint32_t deg = lg.SampledDegree(v);
  if (model_.kind == core::GnnKind::kSage) {
    // [H | mean]: self block first, neighbour mean second.
    std::memcpy(agg.data(), input_row(v), d_in * sizeof(float));
    if (deg > 0) {
      const float w = 1.0f / static_cast<float>(deg);
      for (uint64_t e = lg.offsets[v]; e < lg.offsets[v + 1]; ++e) {
        const float* in = input_row(lg.adj[e]);
        float* mean = agg.data() + d_in;
        for (size_t j = 0; j < d_in; ++j) mean[j] += w * in[j];
      }
    }
  } else {
    for (uint64_t e = lg.offsets[v]; e < lg.offsets[v + 1]; ++e) {
      const uint32_t u = lg.adj[e];
      const float w = lg.NormWeight(v, u);
      const float* in = input_row(u);
      for (size_t j = 0; j < d_in; ++j) agg[j] += w * in[j];
    }
    const float w_self = lg.NormWeight(v, v);
    const float* self = input_row(v);
    for (size_t j = 0; j < d_in; ++j) agg[j] += w_self * self[j];
  }

  // Per-row GEMV: out = b + agg * W, accumulated over input dims in
  // ascending order (same order for batched and naive paths).
  std::memcpy(out, b.Row(0), d_out * sizeof(float));
  for (size_t j = 0; j < d_total; ++j) {
    const float a = agg[j];
    if (a == 0.0f) continue;
    const float* wrow = W.Row(j);
    for (size_t k = 0; k < d_out; ++k) out[k] += a * wrow[k];
  }
  if (layer_idx + 1 < static_cast<size_t>(model_.num_layers)) {
    for (size_t k = 0; k < d_out; ++k) out[k] = std::max(out[k], 0.0f);
  }
  if (stats != nullptr) {
    stats->rows_computed++;
    stats->flops += 2ull * (deg + 1) * d_in + 2ull * d_total * d_out;
  }
}

Status InferenceServer::Classify(const std::vector<uint32_t>& queries,
                                 tensor::Matrix* logits, BatchStats* stats) {
  if (!initialized_) {
    return Status::FailedPrecondition("serve: Init() not called");
  }
  if (!has_weights()) {
    return Status::FailedPrecondition("serve: no weights loaded");
  }
  for (uint32_t q : queries) {
    if (q >= g_->num_vertices()) {
      return Status::OutOfRange("serve: query vertex " + std::to_string(q) +
                                " out of range");
    }
  }
  ECG_TRACE_SCOPE("serve_classify", /*worker=*/0, -1);
  RefreshWeightsIfDirty();
  const uint64_t version = weights_version_.load(std::memory_order_acquire);
  const int L = model_.num_layers;

  BatchStats local;
  BatchStats* st = stats != nullptr ? stats : &local;
  st->batch_size += queries.size();

  // Top-down plan: per layer, the vertices whose rows this batch needs.
  // A cache hit resolves a row immediately and stops its expansion, so
  // hot neighbourhoods cost nothing downstream.
  struct LayerPlanData {
    std::vector<uint32_t> verts;   // sorted unique
    std::vector<char> have;       // resolved from cache
    tensor::Matrix rows;          // one row per vert
  };
  std::vector<LayerPlanData> plans(static_cast<size_t>(L) + 1);

  const auto shapes = core::GcnLayerShapes(
      model_, g_->feature_dim(), static_cast<size_t>(g_->num_classes()));

  plans[L].verts = queries;
  std::sort(plans[L].verts.begin(), plans[L].verts.end());
  plans[L].verts.erase(
      std::unique(plans[L].verts.begin(), plans[L].verts.end()),
      plans[L].verts.end());

  for (int l = L; l >= 1; --l) {
    LayerPlanData& plan = plans[l];
    const size_t d_out = shapes[l - 1].out_dim;
    plan.rows = tensor::Matrix(plan.verts.size(), d_out);
    plan.have.assign(plan.verts.size(), 0);
    std::vector<uint32_t> expand;
    for (size_t i = 0; i < plan.verts.size(); ++i) {
      const uint32_t v = plan.verts[i];
      if (cache_->Get(static_cast<uint32_t>(l), v, version, plan.rows.Row(i),
                      d_out)) {
        plan.have[i] = 1;
        st->rows_cached++;
      } else {
        expand.push_back(v);
      }
    }
    if (l == 1) continue;  // layer-1 inputs are raw features
    const core::SampledLayerGraph& lg = layers_[l - 1];
    std::vector<uint32_t>& below = plans[l - 1].verts;
    for (uint32_t v : expand) {
      below.push_back(v);
      for (uint64_t e = lg.offsets[v]; e < lg.offsets[v + 1]; ++e) {
        below.push_back(lg.adj[e]);
      }
    }
    std::sort(below.begin(), below.end());
    below.erase(std::unique(below.begin(), below.end()), below.end());
  }

  // Bottom-up compute of every unresolved row, reusing rows across the
  // whole batch (the coalescing win) and publishing them to the cache.
  std::vector<uint32_t> row_of;  // vertex -> row in the layer below
  for (int l = 1; l <= L; ++l) {
    LayerPlanData& plan = plans[l];
    const size_t d_out = shapes[l - 1].out_dim;
    const tensor::Matrix& inputs =
        (l == 1) ? g_->features() : plans[l - 1].rows;
    if (l > 1) {
      row_of.assign(g_->num_vertices(), 0);
      const std::vector<uint32_t>& below = plans[l - 1].verts;
      for (size_t i = 0; i < below.size(); ++i) row_of[below[i]] = i;
    } else {
      row_of.clear();
    }
    for (size_t i = 0; i < plan.verts.size(); ++i) {
      if (plan.have[i]) continue;
      const uint32_t v = plan.verts[i];
      ComputeRow(l - 1, v, inputs, row_of, plan.rows.Row(i), st);
      cache_->Put(static_cast<uint32_t>(l), v, version, plan.rows.Row(i),
                  d_out);
    }
  }

  // Gather per-query logits (duplicates re-emit the shared row).
  const size_t classes = shapes[L - 1].out_dim;
  *logits = tensor::Matrix(queries.size(), classes);
  const LayerPlanData& top = plans[L];
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto it = std::lower_bound(top.verts.begin(), top.verts.end(),
                                     queries[i]);
    const size_t r = static_cast<size_t>(it - top.verts.begin());
    std::memcpy(logits->Row(i), top.rows.Row(r), classes * sizeof(float));
  }
  return Status::OK();
}

Status InferenceServer::Enqueue(uint32_t vertex, double now_seconds) {
  if (vertex >= g_->num_vertices()) {
    return Status::OutOfRange("serve: query vertex " + std::to_string(vertex) +
                              " out of range");
  }
  if (queue_.size() >= options_.queue_depth) {
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("ecg_serve_shed_total",
                      "Queries rejected by admission control (queue full).",
                      {})
          ->Inc();
    }
    const double retry_ms =
        static_cast<double>(queue_.size()) * ewma_query_seconds_ * 1e3;
    return Status::ResourceExhausted(
        "serve: admission queue full (" + std::to_string(queue_.size()) +
        " queued); retry after ~" + std::to_string(retry_ms) + " ms");
  }
  queue_.push_back(Queued{vertex, now_seconds});
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge("ecg_serve_queue_depth", "Queries waiting for a batch.", {})
        ->Set(static_cast<double>(queue_.size()));
  }
  return Status::OK();
}

Result<std::vector<InferenceServer::Completed>> InferenceServer::ServeBatch(
    BatchStats* stats) {
  std::vector<Completed> done;
  if (queue_.empty()) return done;
  ECG_TRACE_SCOPE("serve_batch", /*worker=*/0, -1);

  const size_t take = std::min<size_t>(queue_.size(), options_.max_batch);
  std::vector<uint32_t> queries;
  queries.reserve(take);
  done.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    queries.push_back(queue_.front().vertex);
    done.push_back(Completed{queue_.front().vertex,
                             queue_.front().arrival_seconds, -1});
    queue_.pop_front();
  }

  BatchStats local;
  BatchStats* st = stats != nullptr ? stats : &local;
  tensor::Matrix logits;
  ECG_RETURN_IF_ERROR(Classify(queries, &logits, st));

  for (size_t i = 0; i < done.size(); ++i) {
    const float* row = logits.Row(i);
    int32_t best = 0;
    for (size_t k = 1; k < logits.cols(); ++k) {
      if (row[k] > row[best]) best = static_cast<int32_t>(k);
    }
    done[i].predicted = best;
  }

  const double service = ServiceSeconds(*st);
  const double per_query = service / static_cast<double>(done.size());
  // First completed batch replaces the construction-time seed outright —
  // blending it in at 10% would anchor the retry-after hint to an
  // arbitrary constant for dozens of batches. The floor keeps the shed
  // path's hint nonzero even when the modeled service time is zero.
  constexpr double kMinQuerySeconds = 1e-6;
  if (!ewma_seeded_) {
    ewma_query_seconds_ = std::max(per_query, kMinQuerySeconds);
    ewma_seeded_ = true;
  } else {
    ewma_query_seconds_ = std::max(
        0.9 * ewma_query_seconds_ + 0.1 * per_query, kMinQuerySeconds);
  }

  if (obs::MetricsEnabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("ecg_serve_queries_total", "Queries answered.", {})
        ->Inc(static_cast<double>(done.size()));
    reg.GetCounter("ecg_serve_batches_total", "Coalesced batches executed.",
                   {})
        ->Inc();
    reg.GetHistogram("ecg_serve_batch_size",
                     "Queries coalesced per executed batch.", {})
        ->Observe(static_cast<double>(done.size()));
    reg.GetGauge("ecg_serve_queue_depth", "Queries waiting for a batch.", {})
        ->Set(static_cast<double>(queue_.size()));
  }
  return done;
}

double InferenceServer::ServiceSeconds(const BatchStats& stats) const {
  return static_cast<double>(stats.flops) / (options_.gflops * 1e9) +
         options_.batch_overhead_us * 1e-6;
}

}  // namespace ecg::serve
