#ifndef ECGRAPH_SERVE_LOAD_GEN_H_
#define ECGRAPH_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/server.h"

namespace ecg::serve {

/// Open-loop workload shape for the serve tier: queries arrive on a
/// simulated clock regardless of how fast the server drains them (the
/// honest way to measure tail latency — closed-loop generators hide
/// queueing collapse).
struct WorkloadOptions {
  /// Mean offered load (queries/second).
  double qps = 2000.0;
  /// Simulated run length in seconds.
  double duration_seconds = 2.0;
  /// Interarrival heavy tail: with probability `tail_prob` an arrival gap
  /// is stretched by Pareto(alpha=`tail_alpha`) — bursts followed by
  /// lulls, like real request logs, instead of smooth Poisson.
  double tail_prob = 0.1;
  double tail_alpha = 1.5;
  /// Hot-vertex skew: queries pick a Zipf(s) rank over a shuffled hot set
  /// of `hot_set` vertices (capped at the graph size). s = 0 would be
  /// uniform; real serving traffic is strongly skewed.
  double zipf_s = 1.1;
  uint32_t hot_set = 1024;
  uint64_t seed = 42;
};

/// Parses "key=value,..." (e.g. "qps=5000,duration=1,zipf=1.2").
Result<WorkloadOptions> ParseWorkloadOptions(const std::string& spec);
std::string WorkloadSpecHelp();

/// Result of one open-loop run.
struct LoadResult {
  uint64_t offered = 0;   // arrivals generated
  uint64_t served = 0;    // answered
  uint64_t shed = 0;      // rejected by admission control
  uint64_t batches = 0;
  double mean_batch = 0.0;
  double duration_seconds = 0.0;  // simulated time to drain everything
  double achieved_qps = 0.0;      // served / duration
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double cache_hit_rate = 0.0;  // of embedding-row lookups
  uint64_t rows_computed = 0;
  uint64_t rows_cached = 0;
};

/// Drives `server` with the workload on a simulated clock: arrivals are
/// admitted in time order; whenever the (single) serving executor is idle
/// and the queue is non-empty it takes up to max_batch queries, and the
/// batch occupies the executor for InferenceServer::ServiceSeconds. Fully
/// deterministic in (workload seed, server options). Latencies are
/// arrival-to-batch-completion, observed into the
/// `ecg_serve_latency_seconds` histogram and summarized exactly (sorted
/// percentiles) in the result.
Result<LoadResult> RunOpenLoop(InferenceServer* server,
                               const WorkloadOptions& workload);

}  // namespace ecg::serve

#endif  // ECGRAPH_SERVE_LOAD_GEN_H_
