#ifndef ECGRAPH_SERVE_SERVER_H_
#define ECGRAPH_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/gcn.h"
#include "core/sampling.h"
#include "dist/param_server.h"
#include "graph/graph.h"
#include "serve/embedding_cache.h"
#include "tensor/matrix.h"

namespace ecg::serve {

/// Knobs of the serving tier, parsed from a `serve=SPEC` clause list via
/// ecg::config::Spec (see ParseServeOptions / ServeSpecHelp).
struct ServeOptions {
  /// Neighbour fan-out per layer for inference. 0 = full neighbourhoods,
  /// which reproduces the training-time normalization exactly.
  uint32_t fanout = 0;
  /// Seed for the per-layer inference sampling (fanout > 0 only).
  uint64_t sample_seed = 77;
  /// Embedding cache budget (MiB) and shard count.
  uint32_t cache_mb = 64;
  uint32_t cache_shards = 16;
  /// Admission control: queries queued beyond this are shed with
  /// kResourceExhausted and a retry-after hint.
  uint32_t queue_depth = 256;
  /// Upper bound on queries coalesced into one batched inference.
  uint32_t max_batch = 32;
  /// Modelled serving compute rate (GFLOP/s) for the simulated clock.
  double gflops = 8.0;
  /// Fixed per-batch overhead (microseconds): dispatch, planning, rpc.
  /// This is what makes coalescing pay off in the latency model.
  double batch_overhead_us = 50.0;
  /// p99 latency SLO (milliseconds) checked by bench_serve --gate.
  double slo_ms = 5.0;
};

/// Parses "key=value,..." (e.g. "batch=64,queue=512,cache_mb=128").
Result<ServeOptions> ParseServeOptions(const std::string& spec);

/// Auto-generated serve=SPEC key reference (from the Spec registration).
std::string ServeSpecHelp();

/// Online inference front-end: answers per-vertex classification queries
/// against trained GCN/SAGE weights.
///
/// Request path: queries are admitted into a bounded queue (`Enqueue`),
/// drained in arrival order up to `max_batch` per `ServeBatch`, and the
/// batch is answered by ONE coalesced multi-layer inference (`Classify`)
/// that shares neighbourhood work across the batch and across batches via
/// the epoch-versioned EmbeddingCache.
///
/// Determinism / bit-identity: every embedding row h_l(v) is computed by a
/// fixed-order reduction (CSR neighbour order, then self; per-row GEMV in
/// column-major accumulation order), so a row is a pure function of
/// (layer, vertex, weights version). Coalescing and caching therefore
/// cannot change any bit of the returned logits relative to naive
/// one-query-at-a-time inference.
///
/// Weights come from a checkpoint file (offline serving) or from a live
/// ParameterServerGroup (`AttachParameterServer`): the publish callback
/// marks the weights dirty and the next batch re-pulls them and bumps the
/// cache version, so no row computed under old weights is ever served
/// after a publish.
class InferenceServer {
 public:
  /// `g` must outlive the server. `model` must match the weights that will
  /// be loaded (layer count / dims are validated at load time).
  InferenceServer(const graph::Graph* g, core::GcnConfig model,
                  ServeOptions options);

  /// Builds the per-layer serving adjacency (one sampled layer graph per
  /// model layer; fanout=0 keeps the full lists) and sizes the cache.
  /// Call once before serving.
  Status Init();

  /// Installs weights from a parameter-server global blob (the
  /// ParameterServerGroup::SaveTo layout; Adam moments are skipped).
  Status LoadWeightsBlob(const std::vector<uint8_t>& blob);

  /// Loads the global section of a checkpoint file written by training.
  Status LoadFromCheckpoint(const std::string& path);

  /// Serves live from `ps` (must outlive the server): pulls the current
  /// weights now and re-pulls after every publish. Installs the group's
  /// publish callback slot.
  Status AttachParameterServer(dist::ParameterServerGroup* ps);

  struct BatchStats {
    size_t batch_size = 0;
    uint64_t rows_computed = 0;  // embedding rows evaluated
    uint64_t rows_cached = 0;    // rows answered by the cache
    uint64_t flops = 0;          // modelled work of the computed rows
  };

  /// Coalesced inference: logits row i answers queries[i]. Duplicates are
  /// fine (computed once, emitted twice). Requires loaded weights.
  Status Classify(const std::vector<uint32_t>& queries,
                  tensor::Matrix* logits, BatchStats* stats = nullptr);

  /// Admission control. `now_seconds` is the caller's clock (simulated or
  /// wall), recorded as the query's arrival time. Returns
  /// kResourceExhausted with a retry-after hint when the queue is full.
  Status Enqueue(uint32_t vertex, double now_seconds);
  size_t queue_size() const { return queue_.size(); }

  struct Completed {
    uint32_t vertex = 0;
    double arrival_seconds = 0;
    int32_t predicted = -1;
  };

  /// Dequeues up to max_batch queries and answers them with one coalesced
  /// Classify. Empty result when the queue is empty.
  Result<std::vector<Completed>> ServeBatch(BatchStats* stats = nullptr);

  /// Modelled service time of a batch on the serving clock:
  /// flops / gflops + fixed batch overhead.
  double ServiceSeconds(const BatchStats& stats) const;

  const ServeOptions& options() const { return options_; }
  const core::GcnConfig& model() const { return model_; }
  const graph::Graph& graph() const { return *g_; }
  const EmbeddingCache& cache() const { return *cache_; }
  uint64_t weights_version() const {
    return weights_version_.load(std::memory_order_acquire);
  }
  bool has_weights() const { return !weights_.empty(); }

 private:
  /// Validates blob-loaded shapes against the model config.
  Status CheckShapes() const;
  /// Re-pulls weights from the attached parameter server if a publish
  /// happened since the last batch; bumps the cache version.
  void RefreshWeightsIfDirty();
  void InstallVersion();

  /// Computes h_{layer_idx+1}(v) into out[0..d_out) from input rows held
  /// in `inputs`. `row_of` maps vertex id -> row of `inputs`; when empty,
  /// row index == vertex id (the feature matrix). Fixed-order, pure.
  void ComputeRow(size_t layer_idx, uint32_t v, const tensor::Matrix& inputs,
                  const std::vector<uint32_t>& row_of, float* out,
                  BatchStats* stats) const;

  const graph::Graph* const g_;
  const core::GcnConfig model_;
  const ServeOptions options_;

  std::vector<core::SampledLayerGraph> layers_;  // [i] feeds layer i+1
  std::vector<tensor::Matrix> weights_;
  std::vector<tensor::Matrix> biases_;
  std::unique_ptr<EmbeddingCache> cache_;

  dist::ParameterServerGroup* ps_ = nullptr;
  std::atomic<bool> weights_dirty_{false};
  std::atomic<uint64_t> weights_version_{0};
  uint64_t version_counter_ = 0;

  struct Queued {
    uint32_t vertex;
    double arrival_seconds;
  };
  std::deque<Queued> queue_;
  /// EWMA of per-query service seconds, for the retry-after hint. Seeded
  /// from the first completed batch (the 1e-3 default only covers sheds
  /// that happen before any query finishes) and floored so the hint never
  /// collapses to zero under a zero-cost service model.
  double ewma_query_seconds_ = 1e-3;
  bool ewma_seeded_ = false;

  bool initialized_ = false;
};

}  // namespace ecg::serve

#endif  // ECGRAPH_SERVE_SERVER_H_
