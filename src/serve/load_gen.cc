#include "serve/load_gen.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/spec.h"

namespace ecg::serve {
namespace {

config::Spec& BindWorkloadSpec(config::Spec& spec, WorkloadOptions* w) {
  spec.F64("qps", &w->qps).MinExclusive(0).Help("mean offered queries/second");
  spec.F64("duration", &w->duration_seconds)
      .MinExclusive(0)
      .Help("simulated run length in seconds");
  spec.F64("tail_prob", &w->tail_prob)
      .Min(0)
      .Max(1)
      .Help("probability an interarrival gap is Pareto-stretched");
  spec.F64("tail_alpha", &w->tail_alpha)
      .MinExclusive(1)
      .Help("Pareto shape of the heavy tail (smaller = heavier)");
  spec.F64("zipf", &w->zipf_s)
      .Min(0)
      .Help("Zipf exponent of the hot-vertex skew (0 = uniform)");
  spec.U32("hot", &w->hot_set)
      .Min(1)
      .Help("size of the hot vertex set queries are drawn from");
  spec.U64("seed", &w->seed).Help("workload seed");
  return spec;
}

struct Arrival {
  double time;
  uint32_t vertex;
};

/// Deterministic arrival schedule: heavy-tailed interarrivals (exponential
/// base, Pareto-stretched with probability tail_prob, normalized so the
/// mean offered rate stays `qps`) and Zipf-skewed vertices drawn from a
/// seeded random subset of the graph.
std::vector<Arrival> GenerateArrivals(const WorkloadOptions& w, uint32_t n) {
  Rng rng(w.seed);

  // Hot set: first `hot` entries of a partial Fisher-Yates shuffle.
  const uint32_t hot = std::min(w.hot_set, n);
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  for (uint32_t j = 0; j < hot; ++j) {
    const uint32_t k = j + static_cast<uint32_t>(rng.NextBelow(n - j));
    std::swap(ids[j], ids[k]);
  }

  // Zipf CDF over ranks 0..hot-1: weight 1/(r+1)^s.
  std::vector<double> cdf(hot);
  double total = 0.0;
  for (uint32_t r = 0; r < hot; ++r) {
    total += std::pow(static_cast<double>(r) + 1.0, -w.zipf_s);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;

  // Mean of the mixture gap multiplier: (1-p) + p * alpha/(alpha-1).
  // Dividing the base gap by it keeps the offered rate at qps.
  const double tail_mean = w.tail_alpha / (w.tail_alpha - 1.0);
  const double mix_mean = (1.0 - w.tail_prob) + w.tail_prob * tail_mean;
  const double base_gap = 1.0 / (w.qps * mix_mean);

  std::vector<Arrival> arrivals;
  double t = 0.0;
  while (true) {
    double gap = -std::log(1.0 - rng.NextDouble()) * base_gap;
    if (rng.NextDouble() < w.tail_prob) {
      gap *= std::pow(1.0 - rng.NextDouble(), -1.0 / w.tail_alpha);
    }
    t += gap;
    if (t >= w.duration_seconds) break;
    const double u = rng.NextDouble();
    const uint32_t rank = static_cast<uint32_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    arrivals.push_back(Arrival{t, ids[std::min(rank, hot - 1)]});
  }
  return arrivals;
}

}  // namespace

Result<WorkloadOptions> ParseWorkloadOptions(const std::string& spec_text) {
  WorkloadOptions w;
  config::Spec spec("workload");
  ECG_RETURN_IF_ERROR(BindWorkloadSpec(spec, &w).Parse(spec_text));
  return w;
}

std::string WorkloadSpecHelp() {
  WorkloadOptions defaults;
  config::Spec spec("workload");
  return BindWorkloadSpec(spec, &defaults).HelpText();
}

Result<LoadResult> RunOpenLoop(InferenceServer* server,
                               const WorkloadOptions& w) {
  if (server == nullptr || !server->has_weights()) {
    return Status::FailedPrecondition("load gen needs a loaded server");
  }
  const uint32_t n = server->graph().num_vertices();
  if (n == 0) return Status::InvalidArgument("load gen needs a graph");
  const std::vector<Arrival> arrivals = GenerateArrivals(w, n);

  LoadResult res;
  res.offered = arrivals.size();

  obs::Histogram* latency_hist =
      obs::MetricsEnabled()
          ? obs::MetricsRegistry::Global().GetHistogram(
                "ecg_serve_latency_seconds",
                "End-to-end (arrival to batch completion) serve latency on "
                "the simulated clock.",
                {})
          : nullptr;

  // Single serving executor on a simulated clock. The executor takes
  // whatever is queued the moment it goes idle (adaptive batching): under
  // light load batches are small and latency is dominated by service
  // time; under heavy load batches grow toward max_batch and coalescing
  // absorbs the queueing.
  std::vector<double> latencies;
  latencies.reserve(arrivals.size());
  std::deque<double> admitted;  // arrival times mirroring the server queue
  double free_at = 0.0;
  double clock_end = 0.0;
  size_t i = 0;
  uint64_t rows_computed = 0, rows_cached = 0;

  auto run_batch = [&]() -> Status {
    const double start = std::max(free_at, admitted.front());
    InferenceServer::BatchStats stats;
    ECG_ASSIGN_OR_RETURN(std::vector<InferenceServer::Completed> done,
                         server->ServeBatch(&stats));
    const double finish = start + server->ServiceSeconds(stats);
    for (const auto& c : done) {
      const double latency = finish - c.arrival_seconds;
      latencies.push_back(latency);
      if (latency_hist != nullptr) latency_hist->Observe(latency);
    }
    for (size_t k = 0; k < done.size(); ++k) admitted.pop_front();
    free_at = finish;
    clock_end = std::max(clock_end, finish);
    res.batches++;
    res.served += done.size();
    rows_computed += stats.rows_computed;
    rows_cached += stats.rows_cached;
    return Status::OK();
  };

  while (i < arrivals.size() || !admitted.empty()) {
    if (admitted.empty()) {
      // Executor idle with nothing queued: wait for the next arrival.
      const Arrival& a = arrivals[i++];
      clock_end = std::max(clock_end, a.time);
      const Status st = server->Enqueue(a.vertex, a.time);
      if (st.ok()) {
        admitted.push_back(a.time);
      } else {
        res.shed++;
      }
      continue;
    }
    // Next batch would start once the executor is free and the head of
    // the queue has arrived. Arrivals landing before that moment join the
    // queue first (and may be shed if it is full).
    const double start = std::max(free_at, admitted.front());
    if (i < arrivals.size() && arrivals[i].time <= start) {
      const Arrival& a = arrivals[i++];
      const Status st = server->Enqueue(a.vertex, a.time);
      if (st.ok()) {
        admitted.push_back(a.time);
      } else {
        res.shed++;
      }
      continue;
    }
    ECG_RETURN_IF_ERROR(run_batch());
  }

  res.duration_seconds = clock_end;
  res.achieved_qps =
      clock_end > 0 ? static_cast<double>(res.served) / clock_end : 0.0;
  res.mean_batch = res.batches > 0 ? static_cast<double>(res.served) /
                                         static_cast<double>(res.batches)
                                   : 0.0;
  res.rows_computed = rows_computed;
  res.rows_cached = rows_cached;
  const uint64_t lookups = rows_computed + rows_cached;
  res.cache_hit_rate =
      lookups > 0 ? static_cast<double>(rows_cached) / lookups : 0.0;

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double q) {
      const size_t idx = static_cast<size_t>(
          q * static_cast<double>(latencies.size() - 1) + 0.5);
      return latencies[std::min(idx, latencies.size() - 1)] * 1e3;
    };
    res.p50_ms = pct(0.50);
    res.p99_ms = pct(0.99);
    res.max_ms = latencies.back() * 1e3;
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge("ecg_serve_qps",
                  "Achieved queries/second of the last load run.", {})
        ->Set(res.achieved_qps);
  }
  return res;
}

}  // namespace ecg::serve
