#include "compress/bit_alloc.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace ecg::compress {
namespace {

/// Index into SupportedAllocWidths() of the narrowest width >= min_bits,
/// clamped into the table.
size_t FloorIndex(const std::vector<int>& widths, int min_bits) {
  for (size_t i = 0; i < widths.size(); ++i) {
    if (widths[i] >= min_bits) return i;
  }
  return widths.size() - 1;
}

}  // namespace

const std::vector<int>& SupportedAllocWidths() {
  static const std::vector<int> kWidths = {1, 2, 4, 8, 16};
  return kWidths;
}

double BitAllocError(const BitAllocGroup& group, int bits) {
  // Uniform bucket quantization halves the bucket width per extra bit, so
  // the MSE scales as 4^-b; sensitivity carries the group's range^2 and
  // element weight.
  return group.sensitivity * std::exp2(-2.0 * bits);
}

std::vector<int> SolveBitAllocation(const std::vector<BitAllocGroup>& groups,
                                    const BitAllocConfig& config) {
  const std::vector<int>& widths = SupportedAllocWidths();
  const size_t floor_idx = FloorIndex(widths, config.min_bits);
  // Widths above max_bits are unreachable; precompute the ceiling index.
  size_t ceil_idx = floor_idx;
  for (size_t i = floor_idx; i < widths.size(); ++i) {
    if (widths[i] <= config.max_bits) ceil_idx = i;
  }

  std::vector<size_t> level(groups.size(), floor_idx);
  std::vector<int> out(groups.size(), widths[floor_idx]);
  if (groups.empty()) return out;

  double total_elements = 0.0;
  for (const BitAllocGroup& g : groups) {
    total_elements += std::max(0.0, g.elements);
  }
  const double budget_bytes = config.budget_factor * total_elements *
                              static_cast<double>(config.reference_bits) /
                              8.0;
  double spent_bytes = 0.0;
  for (const BitAllocGroup& g : groups) {
    spent_bytes += std::max(0.0, g.elements) * widths[floor_idx] / 8.0;
  }

  // Max-heap of candidate single-step widenings, ordered by error
  // reduction per added byte. Stale entries (group already widened past
  // the entry's level) are re-scored lazily on pop.
  struct Step {
    double gain_per_byte;
    size_t group;
    size_t from_level;
    bool operator<(const Step& o) const {
      if (gain_per_byte != o.gain_per_byte) {
        return gain_per_byte < o.gain_per_byte;
      }
      return group > o.group;  // deterministic: lower index wins ties
    }
  };
  auto make_step = [&](size_t g, size_t lvl) -> Step {
    const double added_bytes =
        std::max(0.0, groups[g].elements) *
        static_cast<double>(widths[lvl + 1] - widths[lvl]) / 8.0;
    const double gain = BitAllocError(groups[g], widths[lvl]) -
                        BitAllocError(groups[g], widths[lvl + 1]);
    return Step{added_bytes > 0.0 ? gain / added_bytes : 0.0, g, lvl};
  };

  std::priority_queue<Step> heap;
  for (size_t g = 0; g < groups.size(); ++g) {
    // Zero-element groups never bid either: their upgrades would be free
    // in the byte model and the greedy loop would pointlessly walk them to
    // the ceiling.
    if (level[g] < ceil_idx && groups[g].sensitivity > 0.0 &&
        groups[g].elements > 0.0) {
      heap.push(make_step(g, level[g]));
    }
  }
  while (!heap.empty()) {
    const Step step = heap.top();
    heap.pop();
    if (step.from_level != level[step.group]) continue;  // stale
    const size_t next = step.from_level + 1;
    const double added_bytes =
        std::max(0.0, groups[step.group].elements) *
        static_cast<double>(widths[next] - widths[step.from_level]) / 8.0;
    if (spent_bytes + added_bytes > budget_bytes) continue;
    spent_bytes += added_bytes;
    level[step.group] = next;
    out[step.group] = widths[next];
    if (next < ceil_idx) heap.push(make_step(step.group, next));
  }
  return out;
}

}  // namespace ecg::compress
