#include "compress/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <string>

#include "common/bitpack.h"
#include "common/kernels.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace ecg::compress {

namespace {

/// Minimum packed words per parallel chunk of the fused kernels. One word
/// covers up to 32 elements, so this keeps chunks in the tens-of-thousands
/// of floats — large enough that ParallelFor overhead vanishes, small
/// enough that a 4096x128 message still splits across the pool.
constexpr size_t kWordGrain = 1024;

/// Minimum flat elements per chunk of the min/max reduction.
constexpr size_t kElemGrain = 1 << 15;

/// Minimum rows per chunk of the row-wise scatter/gather kernels.
constexpr size_t kRowGrain = 16;

/// Rebuilds the uniform-grid midpoint table from (min, width, bits).
std::vector<float> MidpointTable(float min_value, float width, int bits) {
  std::vector<float> table(1u << bits);
  for (uint32_t b = 0; b < table.size(); ++b) {
    table[b] = min_value + width * (static_cast<float>(b) + 0.5f);
  }
  return table;
}

/// Bucket id of value v given the precomputed reciprocal bucket width.
/// `top` is num_buckets - 1.
inline uint32_t BucketOf(float v, float mn, float inv_width, uint32_t top) {
  const float rel = (v - mn) * inv_width;
  if (rel <= 0.0f) return 0u;
  const uint32_t id = static_cast<uint32_t>(rel);
  return id < top ? id : top;
}

/// Streams the elements of a contiguous buffer.
struct FlatCursor {
  const float* p;
  float Next() { return *p++; }
};

/// Streams the elements of a gathered row view (logical row i is
/// src.Row(indices[i])) in row-major order starting at flat element
/// `begin`, without a div/mod per element. Must only be constructed with
/// begin < indices.size() * cols.
class RowCursor {
 public:
  RowCursor(const tensor::Matrix& src, const std::vector<uint32_t>& indices,
            size_t begin)
      : src_(src.data()),
        cols_(src.cols()),
        indices_(indices),
        row_(begin / src.cols()),
        col_(begin % src.cols()) {
    ptr_ = src_ + static_cast<size_t>(indices_[row_]) * cols_;
  }

  float Next() {
    const float v = ptr_[col_];
    if (++col_ == cols_) {
      col_ = 0;
      ++row_;
      ptr_ = row_ < indices_.size()
                 ? src_ + static_cast<size_t>(indices_[row_]) * cols_
                 : nullptr;
    }
    return v;
  }

 private:
  const float* src_;
  const size_t cols_;
  const std::vector<uint32_t>& indices_;
  size_t row_;
  size_t col_;
  const float* ptr_;
};

/// Per-chunk bucket statistics for BucketValueMode::kDataMean.
struct BucketHist {
  std::vector<double> sums;
  std::vector<uint64_t> counts;
};

/// The fused quantize inner loop: bucket-assigns the elements backing
/// packed words [word_begin, word_end) and ORs the ids straight into the
/// output words (each word is owned by exactly one chunk, so no races and
/// no intermediate id vector). Accumulates the kDataMean histogram when
/// `hist` is non-null. BITS is a template parameter so the per-word loop
/// is fully unrolled with compile-time shift amounts.
template <int BITS, typename Cursor>
void PackWords(Cursor cursor, size_t count, size_t word_begin,
               size_t word_end, float mn, float inv_width, uint32_t* packed,
               BucketHist* hist) {
  constexpr size_t kPerWord = 32 / static_cast<size_t>(BITS);
  constexpr uint32_t kTop = (1u << BITS) - 1;
  size_t i = word_begin * kPerWord;
  for (size_t w = word_begin; w < word_end; ++w) {
    const size_t n = std::min(kPerWord, count - i);
    uint32_t word = 0;
    if (hist == nullptr && n == kPerWord) {
      // Hot path: a full word with no histogram — unrolled, constant
      // shifts, no per-element bookkeeping.
      for (size_t j = 0; j < kPerWord; ++j) {
        word |= BucketOf(cursor.Next(), mn, inv_width, kTop)
                << (j * BITS);
      }
      i += kPerWord;
    } else {
      int shift = 0;
      for (size_t j = 0; j < n; ++j, ++i, shift += BITS) {
        const float v = cursor.Next();
        const uint32_t id = BucketOf(v, mn, inv_width, kTop);
        word |= id << shift;
        if (hist) {
          hist->sums[id] += static_cast<double>(v);
          ++hist->counts[id];
        }
      }
    }
    packed[w] = word;
  }
}

/// Runtime-to-compile-time bit-width dispatch for the pack kernel.
template <typename Cursor>
void PackWordsDispatch(int bits, Cursor cursor, size_t count,
                       size_t word_begin, size_t word_end, float mn,
                       float inv_width, uint32_t* packed, BucketHist* hist) {
  switch (bits) {
    case 1:
      PackWords<1>(cursor, count, word_begin, word_end, mn, inv_width,
                   packed, hist);
      break;
    case 2:
      PackWords<2>(cursor, count, word_begin, word_end, mn, inv_width,
                   packed, hist);
      break;
    case 4:
      PackWords<4>(cursor, count, word_begin, word_end, mn, inv_width,
                   packed, hist);
      break;
    case 8:
      PackWords<8>(cursor, count, word_begin, word_end, mn, inv_width,
                   packed, hist);
      break;
    case 16:
      PackWords<16>(cursor, count, word_begin, word_end, mn, inv_width,
                    packed, hist);
      break;
    default:
      ECG_CHECK(false) << "unreachable bit width " << bits;
  }
}

/// Parallel min/max over a contiguous buffer; the per-chunk scan is the
/// dispatched kern::minmax kernel. Merging per-chunk bounds is
/// commutative, so the result is exact regardless of chunking. NaNs lose
/// every comparison and are skipped unless they land first in a chunk —
/// same contract as the std::minmax_element scan this replaces; the
/// finite-ness check downstream is on the bounds, not every element.
void MinMaxFlat(const float* data, size_t count, float* mn_out, float* mx_out) {
  std::mutex mu;
  float g_mn = data[0], g_mx = data[0];
  const kern::Kernels& k = kern::Active();
  ThreadPool::Global().ParallelFor(
      count, kElemGrain, [&](size_t begin, size_t end) {
        float mn, mx;
        k.minmax(data + begin, end - begin, &mn, &mx);
        std::lock_guard<std::mutex> lock(mu);
        if (mn < g_mn) g_mn = mn;
        if (mx > g_mx) g_mx = mx;
      });
  *mn_out = g_mn;
  *mx_out = g_mx;
}

/// Parallel min/max over a gathered row view.
void MinMaxRows(const tensor::Matrix& m, const std::vector<uint32_t>& rows,
                float* mn_out, float* mx_out) {
  std::mutex mu;
  const size_t cols = m.cols();
  float g_mn = m.Row(rows[0])[0], g_mx = g_mn;
  ThreadPool::Global().ParallelFor(
      rows.size(), kRowGrain, [&](size_t begin, size_t end) {
        float mn = m.Row(rows[begin])[0], mx = mn;
        for (size_t r = begin; r < end; ++r) {
          const float* row = m.Row(rows[r]);
          for (size_t c = 0; c < cols; ++c) {
            const float v = row[c];
            if (v < mn) mn = v;
            if (v > mx) mx = v;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        if (mn < g_mn) g_mn = mn;
        if (mx > g_mx) g_mx = mx;
      });
  *mn_out = g_mn;
  *mx_out = g_mx;
}

/// Shared implementation of Quantize / QuantizeRows. `rows` selects a
/// gathered view of `m` when non-null; bucket assignment and wire bytes
/// are identical to quantizing the materialized GatherRows copy.
Result<QuantizedMatrix> QuantizeImpl(const tensor::Matrix& m,
                                     const std::vector<uint32_t>* rows,
                                     const QuantizerOptions& options) {
  if (!IsSupportedBitWidth(options.bits)) {
    return Status::InvalidArgument("unsupported quantizer bits " +
                                   std::to_string(options.bits));
  }
  if (rows != nullptr) {
    for (uint32_t r : *rows) {
      if (r >= m.rows()) {
        return Status::OutOfRange("quantize row " + std::to_string(r) +
                                  " out of range");
      }
    }
  }
  const size_t nrows = rows ? rows->size() : m.rows();
  const size_t cols = m.cols();
  const size_t count = nrows * cols;
  const uint32_t num_buckets = 1u << options.bits;

  float mn = 0.0f, mx = 0.0f;
  if (count > 0) {
    if (rows) {
      MinMaxRows(m, *rows, &mn, &mx);
    } else {
      MinMaxFlat(m.data(), count, &mn, &mx);
    }
    if (!std::isfinite(mn) || !std::isfinite(mx)) {
      return Status::InvalidArgument("quantizer input has non-finite values");
    }
  }
  const float range = mx - mn;
  const float width = range > 0.0f ? range / static_cast<float>(num_buckets)
                                   : 1.0f;
  const float inv_width = 1.0f / width;

  QuantizedMatrix q;
  q.rows = static_cast<uint32_t>(nrows);
  q.cols = static_cast<uint32_t>(cols);
  q.bits = options.bits;
  q.min_value = mn;
  q.bucket_width = width;
  q.packed_ids.assign(PackedWordCount(count, options.bits), 0u);

  const bool data_mean =
      options.value_mode == BucketValueMode::kDataMean && count > 0;

  // One fused pass: bucket ids computed and packed word-at-a-time. Chunks
  // are word-aligned so each output word has a single writer; the chunk
  // partition is fixed up front so the kDataMean histograms can be merged
  // in deterministic chunk order afterwards.
  const size_t num_words = q.packed_ids.size();
  const size_t max_chunks = ThreadPool::Global().num_threads() + 1;
  const size_t chunk_words =
      std::max(kWordGrain, (num_words + max_chunks - 1) / max_chunks);
  const size_t num_chunks = (num_words + chunk_words - 1) / chunk_words;
  const size_t per_word = 32 / static_cast<size_t>(options.bits);
  std::vector<BucketHist> hists(data_mean ? num_chunks : 0);
  ThreadPool::Global().ParallelFor(
      num_chunks, 1, [&](size_t chunk_begin, size_t chunk_end) {
        for (size_t c = chunk_begin; c < chunk_end; ++c) {
          const size_t wb = c * chunk_words;
          const size_t we = std::min(num_words, wb + chunk_words);
          BucketHist* hist = nullptr;
          if (data_mean) {
            hist = &hists[c];
            hist->sums.assign(num_buckets, 0.0);
            hist->counts.assign(num_buckets, 0);
          }
          if (rows) {
            PackWordsDispatch(options.bits, RowCursor(m, *rows, wb * per_word),
                              count, wb, we, mn, inv_width,
                              q.packed_ids.data(), hist);
          } else if (hist) {
            PackWordsDispatch(options.bits,
                              FlatCursor{m.data() + wb * per_word}, count, wb,
                              we, mn, inv_width, q.packed_ids.data(), hist);
          } else {
            // Contiguous input, no histogram: the dispatched flat kernel
            // (vectorizable block clamp + compile-time shifts; scalar and
            // SIMD variants are bit-identical by contract).
            kern::Active().pack_flat(options.bits, m.data(), count, wb, we,
                                     mn, inv_width, q.packed_ids.data());
          }
        }
      });

  q.bucket_values.resize(num_buckets);
  if (!data_mean) {
    q.implicit_midpoints = true;
    for (uint32_t b = 0; b < num_buckets; ++b) {
      q.bucket_values[b] = mn + width * (static_cast<float>(b) + 0.5f);
    }
  } else {
    // Data mean per bucket; empty buckets fall back to the midpoint.
    std::vector<double> sums(num_buckets, 0.0);
    std::vector<uint64_t> counts(num_buckets, 0);
    for (const BucketHist& hist : hists) {
      for (uint32_t b = 0; b < num_buckets; ++b) {
        sums[b] += hist.sums[b];
        counts[b] += hist.counts[b];
      }
    }
    for (uint32_t b = 0; b < num_buckets; ++b) {
      q.bucket_values[b] =
          counts[b] > 0
              ? static_cast<float>(sums[b] / static_cast<double>(counts[b]))
              : mn + width * (static_cast<float>(b) + 0.5f);
    }
  }
  return q;
}

/// Validates the fields every decode path depends on.
Status CheckDecodable(const QuantizedMatrix& q) {
  if (!IsSupportedBitWidth(q.bits) ||
      q.bucket_values.size() != (1u << q.bits)) {
    return Status::InvalidArgument("malformed quantized matrix");
  }
  const size_t count = static_cast<size_t>(q.rows) * q.cols;
  if (q.packed_ids.size() < PackedWordCount(count, q.bits)) {
    return Status::InvalidArgument("packed buffer too small for count");
  }
  return Status::OK();
}

/// ORs `nbits` bits of src starting at absolute bit src_bit into dst at
/// dst_bit. dst words must be zero-initialized.
void CopyBitRange(const uint32_t* src, size_t src_bit, uint32_t* dst,
                  size_t dst_bit, size_t nbits) {
  while (nbits > 0) {
    const size_t ss = src_bit & 31;
    const size_t ds = dst_bit & 31;
    const size_t take = std::min(nbits, 32 - std::max(ss, ds));
    const uint32_t mask =
        take >= 32 ? ~0u : ((1u << take) - 1);
    const uint32_t chunk = (src[src_bit >> 5] >> ss) & mask;
    dst[dst_bit >> 5] |= chunk << ds;
    src_bit += take;
    dst_bit += take;
    nbits -= take;
  }
}

}  // namespace

size_t QuantizedMatrix::WireBytes() const {
  // rows + cols + bits + table-mode flag + table (implicit: min & width;
  // explicit: length-prefixed floats) + length-prefixed packed IDs.
  const size_t table_bytes =
      implicit_midpoints ? 2 * sizeof(float)
                         : sizeof(uint64_t) +
                               bucket_values.size() * sizeof(float);
  return sizeof(rows) + sizeof(cols) + 1 + 1 + table_bytes +
         sizeof(uint64_t) + packed_ids.size() * sizeof(uint32_t);
}

void QuantizedMatrix::AppendTo(ecg::ByteWriter* w) const {
  w->PutU32(rows);
  w->PutU32(cols);
  w->PutU8(static_cast<uint8_t>(bits));
  w->PutU8(implicit_midpoints ? 1 : 0);
  if (implicit_midpoints) {
    w->PutF32(min_value);
    w->PutF32(bucket_width);
  } else {
    w->PutF32Vector(bucket_values);
  }
  w->PutU32Vector(packed_ids);
}

Status QuantizedMatrix::ParseFrom(ecg::ByteReader* r, QuantizedMatrix* out) {
  uint8_t bits8 = 0, implicit = 0;
  ECG_RETURN_IF_ERROR(r->GetU32(&out->rows));
  ECG_RETURN_IF_ERROR(r->GetU32(&out->cols));
  ECG_RETURN_IF_ERROR(r->GetU8(&bits8));
  ECG_RETURN_IF_ERROR(r->GetU8(&implicit));
  out->bits = bits8;
  out->implicit_midpoints = implicit != 0;
  if (!IsSupportedBitWidth(out->bits)) {
    return Status::InvalidArgument(
        "corrupt quantized matrix: unsupported bit width " +
        std::to_string(out->bits) + " (expected 1/2/4/8/16) for " +
        std::to_string(out->rows) + "x" + std::to_string(out->cols));
  }
  if (out->implicit_midpoints) {
    ECG_RETURN_IF_ERROR(r->GetF32(&out->min_value));
    ECG_RETURN_IF_ERROR(r->GetF32(&out->bucket_width));
    out->bucket_values =
        MidpointTable(out->min_value, out->bucket_width, out->bits);
  } else {
    ECG_RETURN_IF_ERROR(r->GetF32Vector(&out->bucket_values));
  }
  ECG_RETURN_IF_ERROR(r->GetU32Vector(&out->packed_ids));
  const size_t count = static_cast<size_t>(out->rows) * out->cols;
  if (out->bucket_values.size() != (1u << out->bits)) {
    return Status::InvalidArgument(
        "corrupt quantized matrix: bucket table has " +
        std::to_string(out->bucket_values.size()) + " entries, expected " +
        std::to_string(1u << out->bits) + " for bits=" +
        std::to_string(out->bits));
  }
  if (out->packed_ids.size() != PackedWordCount(count, out->bits)) {
    return Status::InvalidArgument(
        "corrupt quantized matrix: packed ids hold " +
        std::to_string(out->packed_ids.size()) + " words, expected " +
        std::to_string(PackedWordCount(count, out->bits)) + " for " +
        std::to_string(out->rows) + "x" + std::to_string(out->cols) +
        " at bits=" + std::to_string(out->bits));
  }
  return Status::OK();
}

Result<QuantizedMatrix> Quantize(const tensor::Matrix& m,
                                 const QuantizerOptions& options) {
  return QuantizeImpl(m, nullptr, options);
}

Result<QuantizedMatrix> QuantizeRows(const tensor::Matrix& m,
                                     const std::vector<uint32_t>& rows,
                                     const QuantizerOptions& options) {
  return QuantizeImpl(m, &rows, options);
}

Result<tensor::Matrix> Dequantize(const QuantizedMatrix& q) {
  ECG_RETURN_IF_ERROR(CheckDecodable(q));
  const size_t count = static_cast<size_t>(q.rows) * q.cols;
  tensor::Matrix out(q.rows, q.cols);
  // Fused unpack + table lookup, word-at-a-time: each chunk writes the
  // disjoint element range backing its packed words.
  const float* table = q.bucket_values.data();
  const uint32_t* packed = q.packed_ids.data();
  float* data = out.data();
  const kern::Kernels& k = kern::Active();
  ThreadPool::Global().ParallelFor(
      q.packed_ids.size(), kWordGrain, [&](size_t wb, size_t we) {
        k.unpack_flat(q.bits, packed, count, wb, we, table, data);
      });
  return out;
}

Status DequantizeInto(const QuantizedMatrix& q,
                      const std::vector<uint32_t>& rows,
                      tensor::Matrix* dst) {
  ECG_RETURN_IF_ERROR(CheckDecodable(q));
  if (rows.size() != q.rows || q.cols != dst->cols()) {
    return Status::InvalidArgument("DequantizeInto shape mismatch");
  }
  for (uint32_t r : rows) {
    if (r >= dst->rows()) {
      return Status::OutOfRange("DequantizeInto target row " +
                                std::to_string(r) + " out of range");
    }
  }
  const uint32_t mask = (1u << q.bits) - 1;
  const int bits = q.bits;
  const size_t cols = q.cols;
  const size_t row_bits = cols * static_cast<size_t>(bits);
  const float* table = q.bucket_values.data();
  const uint32_t* packed = q.packed_ids.data();
  // Decode straight into the target rows (the halo matrix), skipping the
  // intermediate dense matrix + AssignRows copy. Supported widths never
  // straddle a word, so each element is one shift+mask.
  ThreadPool::Global().ParallelFor(
      rows.size(), kRowGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          size_t w = (i * row_bits) >> 5;
          int shift = static_cast<int>((i * row_bits) & 31);
          float* out = dst->Row(rows[i]);
          for (size_t c = 0; c < cols; ++c) {
            out[c] = table[(packed[w] >> shift) & mask];
            shift += bits;
            if (shift == 32) {
              shift = 0;
              ++w;
            }
          }
        }
      });
  return Status::OK();
}

Result<double> MeasureAlpha(const tensor::Matrix& x,
                            const QuantizerOptions& options) {
  ECG_ASSIGN_OR_RETURN(QuantizedMatrix q, Quantize(x, options));
  ECG_ASSIGN_OR_RETURN(tensor::Matrix rec, Dequantize(q));
  double err = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(x.data()[i]) - rec.data()[i];
    err += d * d;
  }
  const double norm = x.SquaredNorm();
  if (norm == 0.0) return 0.0;
  return std::sqrt(err / norm);
}

Result<double> BucketSaturationRate(const QuantizedMatrix& q) {
  ECG_RETURN_IF_ERROR(CheckDecodable(q));
  const size_t count = static_cast<size_t>(q.rows) * q.cols;
  if (count == 0) return 0.0;
  std::vector<uint32_t> ids;
  ECG_RETURN_IF_ERROR(UnpackBits(q.packed_ids, count, q.bits, &ids));
  const uint32_t top = (q.bits >= 32 ? ~0u : (1u << q.bits) - 1u);
  size_t saturated = 0;
  for (uint32_t id : ids) {
    if (id == 0 || id == top) ++saturated;
  }
  return static_cast<double>(saturated) / static_cast<double>(count);
}

Result<QuantizedMatrix> GatherQuantizedRows(
    const QuantizedMatrix& q, const std::vector<uint32_t>& rows) {
  ECG_RETURN_IF_ERROR(CheckDecodable(q));
  for (uint32_t r : rows) {
    if (r >= q.rows) {
      return Status::OutOfRange("gather row " + std::to_string(r) +
                                " out of range");
    }
  }
  QuantizedMatrix out;
  out.rows = static_cast<uint32_t>(rows.size());
  out.cols = q.cols;
  out.bits = q.bits;
  out.implicit_midpoints = q.implicit_midpoints;
  out.min_value = q.min_value;
  out.bucket_width = q.bucket_width;
  out.bucket_values = q.bucket_values;
  const size_t row_bits = q.cols * static_cast<size_t>(q.bits);
  out.packed_ids.assign(
      PackedWordCount(rows.size() * static_cast<size_t>(q.cols), q.bits), 0u);
  if (row_bits % 32 == 0) {
    // Each row is a whole number of packed words: a straight parallel
    // word copy per row (the common case — e.g. any 128-wide embedding).
    const size_t row_words = row_bits / 32;
    ThreadPool::Global().ParallelFor(
        rows.size(), kRowGrain, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            std::memcpy(out.packed_ids.data() + i * row_words,
                        q.packed_ids.data() + rows[i] * row_words,
                        row_words * sizeof(uint32_t));
          }
        });
  } else {
    // Unaligned rows: slice the bit ranges serially — adjacent output rows
    // share boundary words, so parallel ORs would race.
    for (size_t i = 0; i < rows.size(); ++i) {
      CopyBitRange(q.packed_ids.data(), rows[i] * row_bits,
                   out.packed_ids.data(), i * row_bits, row_bits);
    }
  }
  return out;
}

}  // namespace ecg::compress
