#include "compress/quantize.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/bitpack.h"

namespace ecg::compress {

namespace {

/// Rebuilds the uniform-grid midpoint table from (min, width, bits).
std::vector<float> MidpointTable(float min_value, float width, int bits) {
  std::vector<float> table(1u << bits);
  for (uint32_t b = 0; b < table.size(); ++b) {
    table[b] = min_value + width * (static_cast<float>(b) + 0.5f);
  }
  return table;
}

}  // namespace

size_t QuantizedMatrix::WireBytes() const {
  // rows + cols + bits + table-mode flag + table (implicit: min & width;
  // explicit: length-prefixed floats) + length-prefixed packed IDs.
  const size_t table_bytes =
      implicit_midpoints ? 2 * sizeof(float)
                         : sizeof(uint64_t) +
                               bucket_values.size() * sizeof(float);
  return sizeof(rows) + sizeof(cols) + 1 + 1 + table_bytes +
         sizeof(uint64_t) + packed_ids.size() * sizeof(uint32_t);
}

void QuantizedMatrix::AppendTo(ecg::ByteWriter* w) const {
  w->PutU32(rows);
  w->PutU32(cols);
  w->PutU8(static_cast<uint8_t>(bits));
  w->PutU8(implicit_midpoints ? 1 : 0);
  if (implicit_midpoints) {
    w->PutF32(min_value);
    w->PutF32(bucket_width);
  } else {
    w->PutF32Vector(bucket_values);
  }
  w->PutU32Vector(packed_ids);
}

Status QuantizedMatrix::ParseFrom(ecg::ByteReader* r, QuantizedMatrix* out) {
  uint8_t bits8 = 0, implicit = 0;
  ECG_RETURN_IF_ERROR(r->GetU32(&out->rows));
  ECG_RETURN_IF_ERROR(r->GetU32(&out->cols));
  ECG_RETURN_IF_ERROR(r->GetU8(&bits8));
  ECG_RETURN_IF_ERROR(r->GetU8(&implicit));
  out->bits = bits8;
  out->implicit_midpoints = implicit != 0;
  if (!IsSupportedBitWidth(out->bits)) {
    return Status::InvalidArgument("corrupt quantized matrix: bits=" +
                                   std::to_string(out->bits));
  }
  if (out->implicit_midpoints) {
    ECG_RETURN_IF_ERROR(r->GetF32(&out->min_value));
    ECG_RETURN_IF_ERROR(r->GetF32(&out->bucket_width));
    out->bucket_values =
        MidpointTable(out->min_value, out->bucket_width, out->bits);
  } else {
    ECG_RETURN_IF_ERROR(r->GetF32Vector(&out->bucket_values));
  }
  ECG_RETURN_IF_ERROR(r->GetU32Vector(&out->packed_ids));
  const size_t count = static_cast<size_t>(out->rows) * out->cols;
  if (out->bucket_values.size() != (1u << out->bits) ||
      out->packed_ids.size() != PackedWordCount(count, out->bits)) {
    return Status::InvalidArgument("corrupt quantized matrix: sizes");
  }
  return Status::OK();
}

Result<QuantizedMatrix> Quantize(const tensor::Matrix& m,
                                 const QuantizerOptions& options) {
  if (!IsSupportedBitWidth(options.bits)) {
    return Status::InvalidArgument("unsupported quantizer bits " +
                                   std::to_string(options.bits));
  }
  const size_t count = m.size();
  const uint32_t num_buckets = 1u << options.bits;

  float mn = 0.0f, mx = 0.0f;
  if (count > 0) {
    const auto [pmn, pmx] = std::minmax_element(m.data(), m.data() + count);
    mn = *pmn;
    mx = *pmx;
    if (!std::isfinite(mn) || !std::isfinite(mx)) {
      return Status::InvalidArgument("quantizer input has non-finite values");
    }
  }
  const float range = mx - mn;
  const float width = range > 0.0f ? range / static_cast<float>(num_buckets)
                                   : 1.0f;

  std::vector<uint32_t> ids(count);
  const float* data = m.data();
  for (size_t i = 0; i < count; ++i) {
    const float rel = (data[i] - mn) / width;
    uint32_t id = rel <= 0.0f ? 0u : static_cast<uint32_t>(rel);
    ids[i] = std::min(id, num_buckets - 1);
  }

  QuantizedMatrix q;
  q.rows = static_cast<uint32_t>(m.rows());
  q.cols = static_cast<uint32_t>(m.cols());
  q.bits = options.bits;
  q.min_value = mn;
  q.bucket_width = width;
  q.bucket_values.resize(num_buckets);
  if (options.value_mode == BucketValueMode::kMidpoint || count == 0) {
    q.implicit_midpoints = true;
    for (uint32_t b = 0; b < num_buckets; ++b) {
      q.bucket_values[b] = mn + width * (static_cast<float>(b) + 0.5f);
    }
  } else {
    // Data mean per bucket; empty buckets fall back to the midpoint.
    std::vector<double> sums(num_buckets, 0.0);
    std::vector<uint64_t> counts(num_buckets, 0);
    for (size_t i = 0; i < count; ++i) {
      sums[ids[i]] += data[i];
      ++counts[ids[i]];
    }
    for (uint32_t b = 0; b < num_buckets; ++b) {
      q.bucket_values[b] =
          counts[b] > 0
              ? static_cast<float>(sums[b] / static_cast<double>(counts[b]))
              : mn + width * (static_cast<float>(b) + 0.5f);
    }
  }
  ECG_RETURN_IF_ERROR(PackBits(ids, options.bits, &q.packed_ids));
  return q;
}

Result<tensor::Matrix> Dequantize(const QuantizedMatrix& q) {
  if (!IsSupportedBitWidth(q.bits) ||
      q.bucket_values.size() != (1u << q.bits)) {
    return Status::InvalidArgument("malformed quantized matrix");
  }
  const size_t count = static_cast<size_t>(q.rows) * q.cols;
  std::vector<uint32_t> ids;
  ECG_RETURN_IF_ERROR(UnpackBits(q.packed_ids, count, q.bits, &ids));
  tensor::Matrix out(q.rows, q.cols);
  float* data = out.data();
  for (size_t i = 0; i < count; ++i) data[i] = q.bucket_values[ids[i]];
  return out;
}

Result<double> MeasureAlpha(const tensor::Matrix& x,
                            const QuantizerOptions& options) {
  ECG_ASSIGN_OR_RETURN(QuantizedMatrix q, Quantize(x, options));
  ECG_ASSIGN_OR_RETURN(tensor::Matrix rec, Dequantize(q));
  double err = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(x.data()[i]) - rec.data()[i];
    err += d * d;
  }
  const double norm = x.SquaredNorm();
  if (norm == 0.0) return 0.0;
  return std::sqrt(err / norm);
}

Result<QuantizedMatrix> GatherQuantizedRows(
    const QuantizedMatrix& q, const std::vector<uint32_t>& rows) {
  const size_t count = static_cast<size_t>(q.rows) * q.cols;
  std::vector<uint32_t> ids;
  ECG_RETURN_IF_ERROR(UnpackBits(q.packed_ids, count, q.bits, &ids));
  std::vector<uint32_t> sub_ids;
  sub_ids.reserve(rows.size() * q.cols);
  for (uint32_t r : rows) {
    if (r >= q.rows) {
      return Status::OutOfRange("gather row " + std::to_string(r) +
                                " out of range");
    }
    for (uint32_t c = 0; c < q.cols; ++c) {
      sub_ids.push_back(ids[static_cast<size_t>(r) * q.cols + c]);
    }
  }
  QuantizedMatrix out;
  out.rows = static_cast<uint32_t>(rows.size());
  out.cols = q.cols;
  out.bits = q.bits;
  out.implicit_midpoints = q.implicit_midpoints;
  out.min_value = q.min_value;
  out.bucket_width = q.bucket_width;
  out.bucket_values = q.bucket_values;
  ECG_RETURN_IF_ERROR(PackBits(sub_ids, q.bits, &out.packed_ids));
  return out;
}

}  // namespace ecg::compress
