#ifndef ECGRAPH_COMPRESS_INT8_GEMM_H_
#define ECGRAPH_COMPRESS_INT8_GEMM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "compress/quantize.h"
#include "tensor/matrix.h"

namespace ecg::compress {

/// Packed-domain GEMM for quantized activations: computes rows of
/// Dequant(Q) * W straight from the packed bucket ids, skipping the float
/// materialization of the quantized operand.
///
/// Math. With implicit midpoints, element k of a quantized row decodes to
///   v_k = width * id_k + c,  c = min + width / 2.
/// Centering a_k = id_k - 128 (id XOR 0x80, exact) gives
///   out_j = sum_k v_k * w_kj
///         = width * sum_k a_k * w_kj + (128 * width + c) * colsum_j.
/// The weight column is quantized symmetrically (w_kj ~ sw_j * wq_kj with
/// |wq| <= 127), so the dot product runs entirely in int8 with an exact
/// int32 accumulator:
///   out_j ~ width * sw_j * S_j + beta_j,
///   S_j = sum_k a_k * wq_kj (int32, exact),  beta_j = (128*width + c) * colsum_j.
/// colsum_j = sum_k w_kj is computed from the *unquantized* weights, so the
/// only approximation is the weight quantization — the activation side is
/// exact. At B=8 the end-to-end activation->output path therefore matches
/// the dequantize-then-float-GEMM reference to ~1e-2 relative error on
/// trained GCN weights (the kern ctest label bounds the effect on
/// convergence).
struct Int8Panel {
  size_t k = 0;         ///< Inner dimension (weight rows).
  size_t n = 0;         ///< Output dimension (weight cols).
  size_t k_padded = 0;  ///< k rounded up to 64 so SIMD loops have no tail.
  /// Quantized weights, transposed: column j of W is wq[j*k_padded ..],
  /// zero-padded to k_padded.
  std::vector<int8_t> wq;
  /// Per-column symmetric scale sw_j = max_k |w_kj| / 127 (0 for an
  /// all-zero column).
  std::vector<float> scale;
  /// Exact per-column sums of the unquantized weights.
  std::vector<float> colsum;
};

/// Quantizes `w` (k x n) into the transposed int8 panel layout the fused
/// kernel consumes. O(k*n); amortized against the O(rows*k*n) GEMM.
Int8Panel PackWeightPanel(const tensor::Matrix& w);

/// True when DequantGemmRows can consume this payload: implicit midpoints,
/// bits <= 8, and word-aligned rows ((cols * bits) % 32 == 0) so each row's
/// packed ids start on a word boundary.
bool Int8GemmSupported(const QuantizedMatrix& q);

/// Fused dequantize + GEMM: c->Row(rows[i]) += Dequant(q row i) * W for
/// every i, consuming the packed bucket ids directly. Same target-row
/// contract as tensor::GemmRows: c pre-sized with the target rows zeroed by
/// the caller, rows.size() == q.rows. Requires Int8GemmSupported(q),
/// q.cols == panel.k and c->cols() == panel.n. The int8 inner loop is
/// dispatched through the ecg::kern registry.
Status DequantGemmRows(const QuantizedMatrix& q, const Int8Panel& panel,
                       const std::vector<uint32_t>& rows, tensor::Matrix* c);

/// Convenience wrapper for the trainers' boundary-row transform: quantizes
/// rows `rows` of `a` at 8 bits (implicit midpoints), packs `w`, and runs
/// the fused kernel into the same rows of c (which must be pre-sized and
/// zeroed, as for GemmRows). Returns false with c untouched when the shape
/// is unsupported (e.g. cols not a multiple of 4) or quantization fails —
/// the caller falls back to the float path.
bool Int8GemmRows(const tensor::Matrix& a, const tensor::Matrix& w,
                  const std::vector<uint32_t>& rows, tensor::Matrix* c);

}  // namespace ecg::compress

#endif  // ECGRAPH_COMPRESS_INT8_GEMM_H_
