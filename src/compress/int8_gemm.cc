#include "compress/int8_gemm.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/kernels.h"
#include "common/thread_pool.h"

namespace ecg::compress {

namespace {

/// Minimum rows per parallel chunk of the fused kernel (matches the
/// quantizer's row-wise grain).
constexpr size_t kRowGrain = 16;

}  // namespace

Int8Panel PackWeightPanel(const tensor::Matrix& w) {
  Int8Panel p;
  p.k = w.rows();
  p.n = w.cols();
  p.k_padded = (p.k + 63) & ~static_cast<size_t>(63);
  p.wq.assign(p.n * p.k_padded, 0);
  p.scale.assign(p.n, 0.0f);
  p.colsum.assign(p.n, 0.0f);
  if (p.k == 0 || p.n == 0) return p;

  // Column max-abs and sums in one row-major pass (double accumulation so
  // colsum — the exact term of the decomposition — carries no float
  // cancellation of its own).
  std::vector<float> max_abs(p.n, 0.0f);
  std::vector<double> sums(p.n, 0.0);
  for (size_t kk = 0; kk < p.k; ++kk) {
    const float* row = w.Row(kk);
    for (size_t j = 0; j < p.n; ++j) {
      const float av = std::fabs(row[j]);
      if (av > max_abs[j]) max_abs[j] = av;
      sums[j] += static_cast<double>(row[j]);
    }
  }
  for (size_t j = 0; j < p.n; ++j) {
    p.scale[j] = max_abs[j] / 127.0f;
    p.colsum[j] = static_cast<float>(sums[j]);
  }

  // Second pass: round-to-nearest symmetric quantization into the
  // transposed, zero-padded panel.
  for (size_t kk = 0; kk < p.k; ++kk) {
    const float* row = w.Row(kk);
    for (size_t j = 0; j < p.n; ++j) {
      if (p.scale[j] == 0.0f) continue;
      const long q = std::lround(row[j] / p.scale[j]);
      p.wq[j * p.k_padded + kk] = static_cast<int8_t>(
          std::clamp<long>(q, -127, 127));
    }
  }
  return p;
}

bool Int8GemmSupported(const QuantizedMatrix& q) {
  return q.implicit_midpoints && q.bits >= 1 && q.bits <= 8 &&
         (static_cast<size_t>(q.cols) * q.bits) % 32 == 0;
}

Status DequantGemmRows(const QuantizedMatrix& q, const Int8Panel& panel,
                       const std::vector<uint32_t>& rows, tensor::Matrix* c) {
  if (!Int8GemmSupported(q)) {
    return Status::InvalidArgument(
        "DequantGemmRows needs implicit midpoints, bits <= 8 and "
        "word-aligned rows");
  }
  if (rows.size() != q.rows || q.cols != panel.k || c->cols() != panel.n) {
    return Status::InvalidArgument("DequantGemmRows shape mismatch");
  }
  for (uint32_t r : rows) {
    if (r >= c->rows()) {
      return Status::OutOfRange("DequantGemmRows target row " +
                                std::to_string(r) + " out of range");
    }
  }
  if (rows.empty()) return Status::OK();

  const size_t cols = q.cols;
  const size_t n = panel.n;
  const size_t row_words = cols * static_cast<size_t>(q.bits) / 32;
  const float width = q.bucket_width;
  const float c_mid = q.min_value + width * 0.5f;
  // beta_j folds the centering offset and the affine part of the dequant
  // into one per-column constant: (128*width + c) * colsum_j.
  std::vector<float> beta(n);
  std::vector<float> gamma(n);  // width * sw_j
  for (size_t j = 0; j < n; ++j) {
    beta[j] = (128.0f * width + c_mid) * panel.colsum[j];
    gamma[j] = width * panel.scale[j];
  }

  const kern::Kernels& k = kern::Active();
  const uint32_t* packed = q.packed_ids.data();
  const int8_t* wq = panel.wq.data();
  const size_t k_padded = panel.k_padded;
  ThreadPool::Global().ParallelFor(
      rows.size(), kRowGrain, [&](size_t begin, size_t end) {
        // Per-chunk scratch: centered int8 activations (zero-padded to
        // k_padded; the padded weight region is zero too, so the pad
        // contributes nothing) and the exact int32 accumulators.
        std::vector<int8_t> a(k_padded, 0);
        std::vector<int32_t> acc(n);
        for (size_t i = begin; i < end; ++i) {
          k.unpack_ids_s8(q.bits, packed + i * row_words, cols, a.data());
          std::fill(acc.begin(), acc.end(), 0);
          k.gemm_s8_row(a.data(), wq, k_padded, n, k_padded, acc.data());
          float* out = c->Row(rows[i]);
          for (size_t j = 0; j < n; ++j) {
            out[j] += gamma[j] * static_cast<float>(acc[j]) + beta[j];
          }
        }
      });
  return Status::OK();
}

bool Int8GemmRows(const tensor::Matrix& a, const tensor::Matrix& w,
                  const std::vector<uint32_t>& rows, tensor::Matrix* c) {
  if (rows.empty()) return true;
  if ((a.cols() * 8) % 32 != 0) return false;
  QuantizerOptions opt;
  opt.bits = 8;
  opt.value_mode = BucketValueMode::kMidpoint;
  Result<QuantizedMatrix> q = QuantizeRows(a, rows, opt);
  if (!q.ok()) return false;
  const Int8Panel panel = PackWeightPanel(w);
  return DequantGemmRows(*q, panel, rows, c).ok();
}

}  // namespace ecg::compress
