#ifndef ECGRAPH_COMPRESS_QUANTIZE_H_
#define ECGRAPH_COMPRESS_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace ecg::compress {

/// How the representative value of each bucket is chosen (Section IV-A).
enum class BucketValueMode {
  /// Average of the bucket's lower and upper bound (the paper's Fig. 3:
  /// bucket [0.6, 1.0] is represented by 0.8).
  kMidpoint,
  /// Mean of the actual values that fell into the bucket this message;
  /// tighter reconstruction at the same wire size (the bucket-value table
  /// is shipped either way). An ablation of the paper's design choice.
  kDataMean,
};

/// Knobs of the B-bit bucket quantizer C_bits(·).
struct QuantizerOptions {
  /// Number of bits per element; one of {1, 2, 4, 8, 16}.
  int bits = 2;
  BucketValueMode value_mode = BucketValueMode::kMidpoint;
};

/// A matrix compressed with the paper's bucket scheme: per-element bucket
/// IDs packed `bits` to the element, plus the table of 2^bits bucket
/// representative values. WireBytes() is its exact serialized size, i.e.
/// d·B bits per row plus the amortized 2^B·32-bit table of Section IV-A.
struct QuantizedMatrix {
  uint32_t rows = 0;
  uint32_t cols = 0;
  int bits = 0;
  /// True when bucket_values are exactly the midpoints of a uniform grid
  /// over [min_value, min_value + 2^bits * bucket_width]. Such tables are
  /// not shipped: the wire carries only (min, width) — 8 bytes instead of
  /// 2^B * 4, which matters at B=16 where an explicit table would exceed
  /// most payloads (the paper's 2^B*b table term, made implicit for the
  /// midpoint mode).
  bool implicit_midpoints = false;
  float min_value = 0.0f;
  float bucket_width = 1.0f;
  /// Representative value of each of the 2^bits buckets.
  std::vector<float> bucket_values;
  /// Bit-packed bucket IDs, row-major.
  std::vector<uint32_t> packed_ids;

  /// Exact number of bytes this message occupies on the wire.
  size_t WireBytes() const;

  /// Serializes into `w` (self-describing; ParseFrom inverts).
  void AppendTo(ecg::ByteWriter* w) const;
  static Status ParseFrom(ecg::ByteReader* r, QuantizedMatrix* out);
};

/// Compresses `m` with B-bit bucket quantization over the matrix's global
/// [min, max] range (the BP path's getMaxMin of Algorithm 6; for FP the
/// embeddings H are already in [0, inf) post-ReLU and the same global-range
/// scheme applies). Runs fused on the global ThreadPool: one min/max
/// reduction pass, then one pass that computes bucket IDs and packs them
/// straight into 32-bit words (no intermediate ID vector).
Result<QuantizedMatrix> Quantize(const tensor::Matrix& m,
                                 const QuantizerOptions& options);

/// Quantizes rows `rows[0], rows[1], ...` of `m` as if they had first been
/// copied out with GatherRows — same bucket assignment, same wire bytes —
/// but without materializing the gathered copy. This is what the exchangers
/// call on the send path: per peer they quantize a row subset of the owned
/// table, and the gather used to cost a full extra read+write of the
/// message before the quantizer even started.
Result<QuantizedMatrix> QuantizeRows(const tensor::Matrix& m,
                                     const std::vector<uint32_t>& rows,
                                     const QuantizerOptions& options);

/// Reconstructs the dense matrix from its quantized form. Fused parallel
/// unpack + bucket-table lookup (no intermediate ID vector).
Result<tensor::Matrix> Dequantize(const QuantizedMatrix& q);

/// Decodes row i of `q` directly into dst->Row(rows[i]) — the receive-path
/// dual of QuantizeRows. Replaces Dequantize + AssignRows on the halo
/// matrices, eliminating the intermediate dense matrix. `rows` must have
/// exactly q.rows entries; targets should be distinct (halo rows are), as
/// duplicate targets are written concurrently.
Status DequantizeInto(const QuantizedMatrix& q,
                      const std::vector<uint32_t>& rows,
                      tensor::Matrix* dst);

/// Measures the contraction factor alpha = ||x - C(x)|| / ||x|| of the
/// quantizer on matrix x (Eq. 13); used by the Theorem-1 validation bench.
Result<double> MeasureAlpha(const tensor::Matrix& x,
                            const QuantizerOptions& options);

/// Fraction of elements sitting in the two extreme buckets (id 0 or
/// 2^bits - 1) — the rows a wider [min, max] range or more bits would
/// reconstruct better. Telemetry for the obs stats registry; costs a full
/// unpack, so call only when stats collection is on.
Result<double> BucketSaturationRate(const QuantizedMatrix& q);

/// Extracts the given rows of a quantized matrix into a new quantized
/// matrix that reuses the same bucket table. This is ReqEC-FP's "filter out
/// the predicted embedding" (Algorithm 4 line 14): the selector evaluates
/// C(H) on the full send set, then only the non-predicted rows are shipped
/// — with the bucket table computed from the full set so both ends decode
/// identically. The row slices are copied directly out of the packed words
/// (whole-word memcpy when a row is word-aligned); the full ID table is
/// never unpacked.
Result<QuantizedMatrix> GatherQuantizedRows(
    const QuantizedMatrix& q, const std::vector<uint32_t>& rows);

}  // namespace ecg::compress

#endif  // ECGRAPH_COMPRESS_QUANTIZE_H_
