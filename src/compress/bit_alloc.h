#ifndef ECGRAPH_COMPRESS_BIT_ALLOC_H_
#define ECGRAPH_COMPRESS_BIT_ALLOC_H_

#include <cstdint>
#include <vector>

namespace ecg::compress {

/// One message group of the adaptive bit allocator — a (layer, peer) edge
/// cut as seen by one end of the exchange. The solver never learns what a
/// group *is*; the exchangers key their groups however their protocol
/// shards traffic.
struct BitAllocGroup {
  /// Elements this group ships per epoch (rows x cols after the selector
  /// filtered out predicted rows — the wire-byte model multiplies this by
  /// bits/8).
  double elements = 0.0;
  /// Error weight of the group: the modelled quantization MSE at width b
  /// is `sensitivity * 4^-b`. The exchangers derive it from the observed
  /// bucket range (range^2 * elements) plus any compensation pressure
  /// (ResEC residual L2, saturation rate), so a group whose values span a
  /// wide range — or whose residual keeps growing — bids for more bits.
  double sensitivity = 0.0;
};

/// Solver knobs. The budget is expressed relative to what the groups would
/// weigh at `reference_bits` everywhere (the configured global width):
///   budget_bytes = budget_factor * sum_g elements_g * reference_bits / 8.
struct BitAllocConfig {
  double budget_factor = 0.75;
  int reference_bits = 2;
  /// Widths are drawn from the quantizer-supported set {1,2,4,8,16}
  /// clamped to [min_bits, max_bits]; 16 is the codec ceiling (see
  /// core::kBitTunerMaxBits).
  int min_bits = 1;
  int max_bits = 16;
};

/// The discrete widths the bucket quantizer's packed codecs accept, in
/// ascending order ({1, 2, 4, 8, 16} — IsSupportedBitWidth's domain).
const std::vector<int>& SupportedAllocWidths();

/// Modelled quantization error of `group` at width `bits`:
/// sensitivity * 4^-bits (uniform-quantizer MSE halves per bit, squared).
double BitAllocError(const BitAllocGroup& group, int bits);

/// AdaQP-style greedy marginal-gain allocation: every group starts at the
/// narrowest supported width and the solver repeatedly widens the group
/// with the largest error reduction per added wire byte until the traffic
/// budget is spent. Deterministic (ties break on lower group index), runs
/// in O(G * W * log G), and always returns a width per group — an empty
/// or zero-element input yields min-width everywhere. Groups with zero
/// sensitivity never bid, so their bits stay at the floor and their bytes
/// go to groups that need them.
std::vector<int> SolveBitAllocation(const std::vector<BitAllocGroup>& groups,
                                    const BitAllocConfig& config);

}  // namespace ecg::compress

#endif  // ECGRAPH_COMPRESS_BIT_ALLOC_H_
