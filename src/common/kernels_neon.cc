// NEON variant (AArch64): AdvSIMD is baseline on aarch64, so no extra
// arch flags are needed — this TU exists so ECG_KERNELS=neon names a
// distinct table and future NEON intrinsic paths have a home.
#define ECG_KERN_NS kern_neon
#define ECG_KERN_VARIANT_NAME "neon"
#define ECG_KERN_GETTER GetKernels_neon
#define ECG_KERN_ALLOW_SIMD 1
#include "common/kernels_impl.inc"
