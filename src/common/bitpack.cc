#include "common/bitpack.h"

#include <string>

#include "common/kernels.h"

namespace ecg {

bool IsSupportedBitWidth(int bits) {
  return bits == 1 || bits == 2 || bits == 4 || bits == 8 || bits == 16;
}

size_t PackedWordCount(size_t count, int bits) {
  const size_t per_word = 32 / static_cast<size_t>(bits);
  return (count + per_word - 1) / per_word;
}

Status PackBits(const std::vector<uint32_t>& values, int bits,
                std::vector<uint32_t>* out) {
  if (!IsSupportedBitWidth(bits)) {
    return Status::InvalidArgument("unsupported bit width " +
                                   std::to_string(bits));
  }
  // Range-check up front so the packing kernel can assume clean inputs;
  // a separate pass over the values is branch-predictable and cheaper
  // than a conditional inside the pack loop.
  const uint32_t max_value = (1u << bits) - 1;
  for (uint32_t v : values) {
    if (v > max_value) {
      return Status::OutOfRange("value " + std::to_string(v) +
                                " does not fit in " + std::to_string(bits) +
                                " bits");
    }
  }
  out->assign(PackedWordCount(values.size(), bits), 0u);
  kern::Active().bitpack_pack(values.data(), values.size(), bits,
                              out->data());
  return Status::OK();
}

Status UnpackBits(const std::vector<uint32_t>& packed, size_t count, int bits,
                  std::vector<uint32_t>* out) {
  if (!IsSupportedBitWidth(bits)) {
    return Status::InvalidArgument("unsupported bit width " +
                                   std::to_string(bits));
  }
  if (packed.size() < PackedWordCount(count, bits)) {
    return Status::InvalidArgument("packed buffer too small for count");
  }
  out->resize(count);
  kern::Active().bitpack_unpack(packed.data(), count, bits, out->data());
  return Status::OK();
}

}  // namespace ecg
