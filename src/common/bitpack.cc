#include "common/bitpack.h"

#include <string>

namespace ecg {

bool IsSupportedBitWidth(int bits) {
  return bits == 1 || bits == 2 || bits == 4 || bits == 8 || bits == 16;
}

size_t PackedWordCount(size_t count, int bits) {
  const size_t per_word = 32 / static_cast<size_t>(bits);
  return (count + per_word - 1) / per_word;
}

Status PackBits(const std::vector<uint32_t>& values, int bits,
                std::vector<uint32_t>* out) {
  if (!IsSupportedBitWidth(bits)) {
    return Status::InvalidArgument("unsupported bit width " +
                                   std::to_string(bits));
  }
  const uint32_t max_value = (bits == 32) ? ~0u : ((1u << bits) - 1);
  const size_t per_word = 32 / static_cast<size_t>(bits);
  out->assign(PackedWordCount(values.size(), bits), 0u);
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] > max_value) {
      return Status::OutOfRange("value " + std::to_string(values[i]) +
                                " does not fit in " + std::to_string(bits) +
                                " bits");
    }
    const size_t word = i / per_word;
    const int shift = static_cast<int>(i % per_word) * bits;
    (*out)[word] |= values[i] << shift;
  }
  return Status::OK();
}

Status UnpackBits(const std::vector<uint32_t>& packed, size_t count, int bits,
                  std::vector<uint32_t>* out) {
  if (!IsSupportedBitWidth(bits)) {
    return Status::InvalidArgument("unsupported bit width " +
                                   std::to_string(bits));
  }
  if (packed.size() < PackedWordCount(count, bits)) {
    return Status::InvalidArgument("packed buffer too small for count");
  }
  const uint32_t mask = (bits == 32) ? ~0u : ((1u << bits) - 1);
  const size_t per_word = 32 / static_cast<size_t>(bits);
  out->resize(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t word = i / per_word;
    const int shift = static_cast<int>(i % per_word) * bits;
    (*out)[i] = (packed[word] >> shift) & mask;
  }
  return Status::OK();
}

}  // namespace ecg
