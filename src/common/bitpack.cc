#include "common/bitpack.h"

#include <algorithm>
#include <string>

namespace ecg {

bool IsSupportedBitWidth(int bits) {
  return bits == 1 || bits == 2 || bits == 4 || bits == 8 || bits == 16;
}

size_t PackedWordCount(size_t count, int bits) {
  const size_t per_word = 32 / static_cast<size_t>(bits);
  return (count + per_word - 1) / per_word;
}

Status PackBits(const std::vector<uint32_t>& values, int bits,
                std::vector<uint32_t>* out) {
  if (!IsSupportedBitWidth(bits)) {
    return Status::InvalidArgument("unsupported bit width " +
                                   std::to_string(bits));
  }
  const uint32_t max_value = (1u << bits) - 1;
  const size_t per_word = 32 / static_cast<size_t>(bits);
  out->assign(PackedWordCount(values.size(), bits), 0u);
  // Every supported width divides 32, so each output word closes over
  // exactly per_word inputs; the word index and shift stay in registers
  // instead of costing a div/mod per element.
  size_t i = 0;
  for (size_t w = 0; w < out->size(); ++w) {
    const size_t n = std::min(per_word, values.size() - i);
    uint32_t word = 0;
    for (size_t j = 0; j < n; ++j, ++i) {
      if (values[i] > max_value) {
        return Status::OutOfRange("value " + std::to_string(values[i]) +
                                  " does not fit in " + std::to_string(bits) +
                                  " bits");
      }
      word |= values[i] << (j * static_cast<size_t>(bits));
    }
    (*out)[w] = word;
  }
  return Status::OK();
}

Status UnpackBits(const std::vector<uint32_t>& packed, size_t count, int bits,
                  std::vector<uint32_t>* out) {
  if (!IsSupportedBitWidth(bits)) {
    return Status::InvalidArgument("unsupported bit width " +
                                   std::to_string(bits));
  }
  if (packed.size() < PackedWordCount(count, bits)) {
    return Status::InvalidArgument("packed buffer too small for count");
  }
  const uint32_t mask = (1u << bits) - 1;
  const size_t per_word = 32 / static_cast<size_t>(bits);
  out->resize(count);
  size_t i = 0;
  for (size_t w = 0; i < count; ++w) {
    uint32_t word = packed[w];
    const size_t n = std::min(per_word, count - i);
    for (size_t j = 0; j < n; ++j, ++i) {
      (*out)[i] = word & mask;
      word >>= bits;
    }
  }
  return Status::OK();
}

}  // namespace ecg
