#ifndef ECGRAPH_COMMON_METRICS_HTTP_H_
#define ECGRAPH_COMMON_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/status.h"

namespace ecg::obs {

/// Minimal embedded HTTP/1.1 exposition endpoint for the metrics plane:
/// serves `GET /metrics` (Prometheus text format 0.0.4) and `GET /healthz`
/// from a single background accept thread. No keep-alive, no TLS, no
/// request body handling — it exists so `curl :PORT/metrics` and a
/// Prometheus scraper work against a training run, nothing more.
class MetricsHttpServer {
 public:
  /// Process-wide instance (leaked, like the registries).
  static MetricsHttpServer& Global();

  /// Binds `port` on all interfaces and starts the accept thread. Port 0
  /// picks an ephemeral port — read it back with port() (tests). Fails if
  /// already running or the bind/listen fails.
  Status Start(uint16_t port);

  /// Stops the accept thread and closes the socket. Safe to call when not
  /// running. Blocks until the thread has joined.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (0 when not running).
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

 private:
  MetricsHttpServer() = default;
  void Serve();

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
};

}  // namespace ecg::obs

#endif  // ECGRAPH_COMMON_METRICS_HTTP_H_
