#include "common/cpu_features.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace ecg::kern {
namespace {

CpuFeatures Probe() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2");
  f.avx512 = __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
#elif defined(__aarch64__)
#if defined(__linux__)
  f.neon = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  // AdvSIMD is architecturally mandatory on AArch64.
  f.neon = true;
#endif
#endif
  return f;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Probe();
  return features;
}

}  // namespace ecg::kern
