#ifndef ECGRAPH_COMMON_TIMER_H_
#define ECGRAPH_COMMON_TIMER_H_

#include <ctime>

#include <chrono>

namespace ecg {

/// Monotonic stopwatch used for compute-time accounting in the trainer and
/// the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Stopwatch over the calling thread's CPU time. The simulated cluster
/// charges each worker's compute with this clock, so N worker threads
/// time-sharing a smaller number of physical cores still measure what an
/// N-machine cluster would: the cycles the worker itself consumed, not the
/// wall time it spent descheduled.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(Now()) {}

  void Reset() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }

  double start_;
};

}  // namespace ecg

#endif  // ECGRAPH_COMMON_TIMER_H_
