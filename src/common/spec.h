#ifndef ECGRAPH_COMMON_SPEC_H_
#define ECGRAPH_COMMON_SPEC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ecg::config {

/// Typed key=value spec parser — the one grammar behind every textual
/// configuration surface of the system (train keys, `elastic=SPEC`,
/// `faults=SPEC`, `sampling=SPEC`, `serve=SPEC`).
///
/// A spec string is a list of clauses separated by ',' or ';' (spaces and
/// tabs are ignored). Most clauses are flat `key=value` pairs bound to a
/// typed field of a caller-owned options struct; grammars with structured
/// clauses (`leave@epoch=3:worker=1`, `drop=0.05@epoch=2:from=0`) register
/// a *clause handler* for the leading keyword and receive the clause
/// verbatim.
///
/// Contract enforced uniformly across every surface:
///   * unknown keys are errors (they used to be silently ignored by some
///     of the hand-rolled parsers this replaces);
///   * a flat key given twice is an error;
///   * values must parse completely in the field's type ("3x" is not an
///     integer) and pass the field's range checks;
///   * fields marked Required() must appear;
///   * `HelpText()` renders the registered fields — one source of truth
///     for --help output.
///
/// Usage:
///
///   ServeOptions opts;                   // carries the defaults
///   config::Spec spec("serve");
///   spec.U32("max_batch", &opts.max_batch).Min(1)
///       .Help("queries coalesced per execution");
///   spec.F64("slo_ms", &opts.slo_ms).MinExclusive(0);
///   ECG_RETURN_IF_ERROR(spec.Parse(text));
///
/// A Spec binds raw pointers into the options struct: it must not outlive
/// the struct, and Parse() writes through the pointers as clauses are
/// consumed (on error the struct may be partially updated — parse into a
/// scratch copy when that matters).
class Spec {
 public:
  explicit Spec(std::string name) : name_(std::move(name)) {}

  Spec(const Spec&) = delete;
  Spec& operator=(const Spec&) = delete;

  /// Per-field configuration, chainable off the registration call.
  class Field {
   public:
    /// One-line description rendered by HelpText().
    Field& Help(std::string text) {
      help_ = std::move(text);
      return *this;
    }
    /// Parse() fails when the key is absent.
    Field& Required() {
      required_ = true;
      return *this;
    }
    /// Inclusive lower bound (numeric fields).
    Field& Min(double bound) {
      min_ = bound;
      has_min_ = true;
      min_exclusive_ = false;
      return *this;
    }
    /// Exclusive lower bound (numeric fields).
    Field& MinExclusive(double bound) {
      min_ = bound;
      has_min_ = true;
      min_exclusive_ = true;
      return *this;
    }
    /// Inclusive upper bound (numeric fields).
    Field& Max(double bound) {
      max_ = bound;
      has_max_ = true;
      return *this;
    }
    /// Custom validation run after the typed conversion; return a non-OK
    /// Status to reject with a domain-specific message (e.g. "ewma must
    /// be in (0, 1]").
    Field& Check(std::function<Status()> fn) {
      check_ = std::move(fn);
      return *this;
    }

   private:
    friend class Spec;
    std::string key_;
    std::string type_text_;     // rendered in help: N, F, on|off, a|b|c, STR
    std::string default_text_;  // value at registration time
    std::string help_;
    bool required_ = false;
    bool numeric_ = false;
    bool has_min_ = false, min_exclusive_ = false, has_max_ = false;
    double min_ = 0.0, max_ = 0.0;
    /// Converts the raw value and stores it through the bound pointer.
    /// Numeric fields also report the converted value for range checks.
    std::function<Status(const std::string& value, double* numeric)> set_;
    std::function<Status()> check_;
  };

  Field& U32(const std::string& key, uint32_t* out);
  Field& U64(const std::string& key, uint64_t* out);
  Field& I32(const std::string& key, int32_t* out);
  Field& F64(const std::string& key, double* out);
  Field& F32(const std::string& key, float* out);
  /// Accepts on|off|true|false|1|0|yes|no.
  Field& Bool(const std::string& key, bool* out);
  Field& String(const std::string& key, std::string* out);
  /// `sep`-separated list of positive doubles, e.g. worker_scale=1:1:2.
  Field& F64List(const std::string& key, std::vector<double>* out,
                 char sep = ':');
  /// `sep`-separated list of u32, e.g. fanout=20x10x5.
  Field& U32List(const std::string& key, std::vector<uint32_t>* out,
                 char sep = 'x');

  /// Closed set of names mapped to values of any enum/struct type.
  template <typename T>
  Field& Enum(const std::string& key, T* out,
              std::vector<std::pair<std::string, T>> values) {
    std::string names;
    for (const auto& [n, unused] : values) {
      if (!names.empty()) names += '|';
      names += n;
    }
    std::string current;
    for (const auto& [n, v] : values) {
      if (v == *out) current = n;
    }
    Field& f = AddField(key, names, current, /*numeric=*/false);
    f.set_ = [this, key, out, values = std::move(values), names](
                 const std::string& value, double*) -> Status {
      for (const auto& [n, v] : values) {
        if (value == n) {
          *out = v;
          return Status::OK();
        }
      }
      return Error(key + " must be " + names + ", got '" + value + "'");
    };
    return f;
  }

  /// Registers a structured-clause keyword: any clause whose leading
  /// identifier (text before the first '=' or '@') equals `keyword` is
  /// passed to `handler` verbatim, duplicates allowed. `grammar` is the
  /// help-text form, e.g. "leave@epoch=E:worker=W".
  Spec& Clause(std::string keyword, std::string grammar, std::string help,
               std::function<Status(const std::string& clause)> handler);

  /// Parses a spec string: splits into clauses on ',' and ';', dispatches
  /// each to its clause handler or flat field, then enforces Required().
  /// The empty string parses to no clauses (all defaults kept).
  Status Parse(const std::string& spec);

  /// Parses pre-split clauses (e.g. trailing argv words). Each entry is
  /// one clause — values may therefore contain ',' and ';'.
  Status ParseClauses(const std::vector<std::string>& clauses);

  /// Auto-generated reference: one line per clause rule and field,
  /// `key=TYPE  help (default X)`, in registration order.
  std::string HelpText(const std::string& indent = "  ") const;

  const std::string& name() const { return name_; }

  /// "<spec name>: <msg>" InvalidArgument — uniform error shape.
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(name_ + ": " + msg);
  }

  /// Splits on single-char separators, dropping empty tokens and
  /// space/tab. Shared by spec grammars that nest lists inside values.
  static std::vector<std::string> Split(const std::string& text,
                                        const char* separators);

 private:
  Field& AddField(const std::string& key, std::string type_text,
                  std::string default_text, bool numeric);
  Status Apply(const std::string& key, const std::string& value,
               std::map<std::string, bool>* seen);

  std::string name_;
  std::vector<std::unique_ptr<Field>> fields_;  // registration order
  struct ClauseRule {
    std::string keyword;
    std::string grammar;
    std::string help;
    std::function<Status(const std::string&)> handler;
  };
  std::vector<ClauseRule> clause_rules_;
};

}  // namespace ecg::config

#endif  // ECGRAPH_COMMON_SPEC_H_
