#ifndef ECGRAPH_COMMON_STATUS_H_
#define ECGRAPH_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace ecg {

/// Error categories used across the library. Mirrors the Status idiom of
/// Arrow/RocksDB: no exceptions cross module boundaries; fallible functions
/// return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kNotImplemented,
  kIoError,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. OK status carries no allocation; error statuses
/// carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use at program
  /// top level (examples, benches) where propagation is pointless.
  void CheckOk() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-Status. Like arrow::Result: either holds a T or a non-OK
/// Status describing why the T could not be produced.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so `return value;` and
  /// `return Status::...;` both work in functions returning Result<T>.
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    if (std::get<Status>(var_).ok()) {
      var_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }

  /// Accesses the value; the caller must have checked ok().
  T& ValueOrDie() & {
    if (!ok()) std::get<Status>(var_).CheckOk();
    return std::get<T>(var_);
  }
  const T& ValueOrDie() const& {
    if (!ok()) std::get<Status>(var_).CheckOk();
    return std::get<T>(var_);
  }
  T&& ValueOrDie() && {
    if (!ok()) std::get<Status>(var_).CheckOk();
    return std::move(std::get<T>(var_));
  }

  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<Status, T> var_;
};

}  // namespace ecg

/// Propagates a non-OK Status to the caller.
#define ECG_RETURN_IF_ERROR(expr)                        \
  do {                                                   \
    ::ecg::Status _ecg_status = (expr);                  \
    if (!_ecg_status.ok()) return _ecg_status;           \
  } while (false)

#define ECG_CONCAT_IMPL(x, y) x##y
#define ECG_CONCAT(x, y) ECG_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs`.
#define ECG_ASSIGN_OR_RETURN(lhs, expr)                                \
  auto ECG_CONCAT(_ecg_result_, __LINE__) = (expr);                    \
  if (!ECG_CONCAT(_ecg_result_, __LINE__).ok())                        \
    return ECG_CONCAT(_ecg_result_, __LINE__).status();                \
  lhs = std::move(ECG_CONCAT(_ecg_result_, __LINE__)).ValueOrDie()

#endif  // ECGRAPH_COMMON_STATUS_H_
