#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace ecg {
namespace {
thread_local bool t_serial_mode = false;
// Set on pool worker threads for their whole lifetime; see the re-entrancy
// note on ParallelFor in the header.
thread_local bool t_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (shutting_down_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::SetSerialMode(bool serial) { t_serial_mode = serial; }
bool ThreadPool::serial_mode() { return t_serial_mode; }

void ThreadPool::ParallelFor(size_t total, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (total == 0) return;
  if (t_serial_mode || t_pool_worker) {
    fn(0, total);
    return;
  }
  grain = std::max<size_t>(grain, 1);
  const size_t max_chunks = num_threads() + 1;
  const size_t chunk = std::max(grain, (total + max_chunks - 1) / max_chunks);
  const size_t num_chunks = (total + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    fn(0, total);
    return;
  }

  std::atomic<size_t> remaining{num_chunks - 1};
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (size_t c = 1; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(total, begin + chunk);
    Enqueue([&, begin, end] {
      fn(begin, end);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_one();
      }
    });
  }
  // The calling thread takes the first chunk instead of idling.
  fn(0, std::min(total, chunk));
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    size_t n = 0;  // 0 -> hardware concurrency
    if (const char* env = std::getenv("ECG_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) n = static_cast<size_t>(v);
    }
    return new ThreadPool(n);
  }();
  return *pool;
}

}  // namespace ecg
