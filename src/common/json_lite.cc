#include "common/json_lite.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace ecg::json {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->type == Type::kNumber) ? v->number : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->type == Type::kString) ? v->string_value
                                                    : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text.c_str()) {}

  Result<JsonValue> Run() {
    JsonValue v;
    Status st = ParseValue(&v, /*depth=*/0);
    if (!st.ok()) return st;
    SkipWs();
    if (*s_ != '\0') return Fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const char* what) const {
    return Status::InvalidArgument(std::string("json: ") + what);
  }

  void SkipWs() {
    while (*s_ == ' ' || *s_ == '\t' || *s_ == '\n' || *s_ == '\r') ++s_;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    switch (*s_) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        if (std::strncmp(s_, "true", 4) != 0) return Fail("bad literal");
        s_ += 4;
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        if (std::strncmp(s_, "false", 5) != 0) return Fail("bad literal");
        s_ += 5;
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        if (std::strncmp(s_, "null", 4) != 0) return Fail("bad literal");
        s_ += 4;
        out->type = JsonValue::Type::kNull;
        return Status::OK();
      case '\0':
        return Fail("unexpected end of input");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++s_;  // '{'
    SkipWs();
    if (*s_ == '}') {
      ++s_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (*s_ != '"') return Fail("object key must be a string");
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (*s_ != ':') return Fail("expected ':' after object key");
      ++s_;
      JsonValue v;
      st = ParseValue(&v, depth + 1);
      if (!st.ok()) return st;
      out->object.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (*s_ == ',') {
        ++s_;
        continue;
      }
      if (*s_ == '}') {
        ++s_;
        return Status::OK();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++s_;  // '['
    SkipWs();
    if (*s_ == ']') {
      ++s_;
      return Status::OK();
    }
    while (true) {
      JsonValue v;
      Status st = ParseValue(&v, depth + 1);
      if (!st.ok()) return st;
      out->array.push_back(std::move(v));
      SkipWs();
      if (*s_ == ',') {
        ++s_;
        continue;
      }
      if (*s_ == ']') {
        ++s_;
        return Status::OK();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++s_;  // opening quote
    out->clear();
    while (true) {
      const char c = *s_;
      if (c == '\0') return Fail("unterminated string");
      if (c == '"') {
        ++s_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        ++s_;
        continue;
      }
      ++s_;  // backslash
      switch (*s_) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 1; i <= 4; ++i) {
            const char h = s_[i];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return Fail("bad \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          s_ += 4;
          // Encode as UTF-8; surrogate pairs are passed through as two
          // 3-byte sequences (fine for our own ASCII-dominated artifacts).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
      ++s_;
    }
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = s_;
    if (*s_ == '-') ++s_;
    if (!std::isdigit(static_cast<unsigned char>(*s_))) {
      return Fail("bad number");
    }
    while (std::isdigit(static_cast<unsigned char>(*s_))) ++s_;
    if (*s_ == '.') {
      ++s_;
      if (!std::isdigit(static_cast<unsigned char>(*s_))) {
        return Fail("bad number fraction");
      }
      while (std::isdigit(static_cast<unsigned char>(*s_))) ++s_;
    }
    if (*s_ == 'e' || *s_ == 'E') {
      ++s_;
      if (*s_ == '+' || *s_ == '-') ++s_;
      if (!std::isdigit(static_cast<unsigned char>(*s_))) {
        return Fail("bad number exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(*s_))) ++s_;
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(start, nullptr);
    return Status::OK();
  }

  const char* s_;
};

}  // namespace

Result<JsonValue> Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace ecg::json
