#ifndef ECGRAPH_COMMON_BITPACK_H_
#define ECGRAPH_COMMON_BITPACK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ecg {

/// Fixed-width bit packing used by the bucket quantizer: each value is a
/// bucket ID in [0, 2^bits) and `bits` is one of {1, 2, 4, 8, 16} so IDs
/// never straddle a 32-bit word (mirrors the paper's Fig. 3 concatenation
/// of 16-bit mapped values into a 32-bit unsigned integer).
///
/// The packed layout is little-endian within each word: value i occupies
/// bits [ (i % per_word) * bits , ... ) of word i / per_word.

/// True if `bits` is a supported packing width.
bool IsSupportedBitWidth(int bits);

/// Number of 32-bit words needed to pack `count` values of width `bits`.
size_t PackedWordCount(size_t count, int bits);

/// Packs `values` (each must be < 2^bits) into `out` (resized to fit).
Status PackBits(const std::vector<uint32_t>& values, int bits,
                std::vector<uint32_t>* out);

/// Unpacks `count` values of width `bits` from `packed` into `out`.
Status UnpackBits(const std::vector<uint32_t>& packed, size_t count, int bits,
                  std::vector<uint32_t>* out);

}  // namespace ecg

#endif  // ECGRAPH_COMMON_BITPACK_H_
