// Portable reference variant: no arch flags, no intrinsics. Every other
// variant must produce byte-identical outputs to this TU (kernels.h).
#define ECG_KERN_NS kern_scalar
#define ECG_KERN_VARIANT_NAME "scalar"
#define ECG_KERN_GETTER GetKernels_scalar
#include "common/kernels_impl.inc"
