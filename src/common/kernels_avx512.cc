// AVX-512 variant: compiled with -mavx512f -mavx512bw -mavx512vl, the
// subset runtime dispatch checks for (cpu_features.h).
#define ECG_KERN_NS kern_avx512
#define ECG_KERN_VARIANT_NAME "avx512"
#define ECG_KERN_GETTER GetKernels_avx512
#define ECG_KERN_ALLOW_SIMD 1
#include "common/kernels_impl.inc"
