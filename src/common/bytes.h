#ifndef ECGRAPH_COMMON_BYTES_H_
#define ECGRAPH_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace ecg {

/// Append-only little-endian byte sink used by every wire codec. The
/// simulated transport ships exactly these bytes, so message sizes in
/// CommStats are byte-accurate (this is what makes the compression-ratio
/// results exact rather than modelled).
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF32(float v) { PutRaw(&v, sizeof(v)); }

  void PutU32Vector(const std::vector<uint32_t>& v) {
    PutU64(v.size());
    PutRaw(v.data(), v.size() * sizeof(uint32_t));
  }
  void PutF32Vector(const std::vector<float>& v) {
    PutU64(v.size());
    PutRaw(v.data(), v.size() * sizeof(float));
  }
  void PutBytes(const std::vector<uint8_t>& v) {
    PutU64(v.size());
    PutRaw(v.data(), v.size());
  }
  /// Bulk write of `n` floats with no length prefix (caller knows n).
  void PutF32Array(const float* p, size_t n) { PutRaw(p, n * sizeof(float)); }

 private:
  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }

  std::vector<uint8_t>* out_;
};

/// Bounds-checked reader over a byte buffer written by ByteWriter.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  size_t remaining() const { return size_ - pos_; }

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetF32(float* v) { return GetRaw(v, sizeof(*v)); }

  Status GetU32Vector(std::vector<uint32_t>* v) {
    uint64_t n = 0;
    ECG_RETURN_IF_ERROR(GetU64(&n));
    if (n * sizeof(uint32_t) > remaining()) {
      return Status::OutOfRange("u32 vector length exceeds buffer");
    }
    v->resize(n);
    return GetRaw(v->data(), n * sizeof(uint32_t));
  }
  Status GetF32Vector(std::vector<float>* v) {
    uint64_t n = 0;
    ECG_RETURN_IF_ERROR(GetU64(&n));
    if (n * sizeof(float) > remaining()) {
      return Status::OutOfRange("f32 vector length exceeds buffer");
    }
    v->resize(n);
    return GetRaw(v->data(), n * sizeof(float));
  }
  /// Bulk read of `n` floats (no length prefix).
  Status GetF32Array(float* p, size_t n) {
    return GetRaw(p, n * sizeof(float));
  }
  Status GetBytes(std::vector<uint8_t>* v) {
    uint64_t n = 0;
    ECG_RETURN_IF_ERROR(GetU64(&n));
    if (n > remaining()) {
      return Status::OutOfRange("byte vector length exceeds buffer");
    }
    v->resize(n);
    return GetRaw(v->data(), n);
  }

 private:
  Status GetRaw(void* out, size_t n) {
    if (pos_ + n > size_) {
      return Status::OutOfRange("read past end of buffer at offset " +
                                std::to_string(pos_));
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace ecg

#endif  // ECGRAPH_COMMON_BYTES_H_
