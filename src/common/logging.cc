#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace ecg {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

namespace {
std::atomic<FatalHandler> g_fatal_handler{nullptr};
}  // namespace

void SetFatalHandler(FatalHandler handler) {
  g_fatal_handler.store(handler, std::memory_order_release);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line,
                       bool fatal)
    : enabled_(fatal || static_cast<int>(level) >=
                            g_min_level.load(std::memory_order_relaxed)),
      fatal_(fatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    // One fwrite per line keeps concurrent workers' lines unmangled.
    const std::string line = stream_.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (fatal_) {
    // Give the flight recorder (if armed) a post-mortem before dying.
    if (FatalHandler handler =
            g_fatal_handler.load(std::memory_order_acquire)) {
      handler(stream_.str().c_str());
    }
    std::abort();
  }
}

}  // namespace internal
}  // namespace ecg
