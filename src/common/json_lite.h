#ifndef ECGRAPH_COMMON_JSON_LITE_H_
#define ECGRAPH_COMMON_JSON_LITE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ecg::json {

/// Minimal JSON document model for the offline tooling that reads our own
/// emitted artifacts (Chrome traces, flight-recorder dumps, BENCH_*.json).
/// Strict on structure (a trailing comma or unterminated string is an
/// error — doubling as a validity checker in tests), permissive on
/// numbers (everything through strtod). Not a streaming parser: documents
/// are bounded (traces cap their rings), so one in-memory tree is fine.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience accessors with defaults for absent/mistyped members.
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
};

/// Parses one JSON document; trailing garbage after the value is an error.
Result<JsonValue> Parse(const std::string& text);

}  // namespace ecg::json

#endif  // ECGRAPH_COMMON_JSON_LITE_H_
