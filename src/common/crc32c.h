#ifndef ECGRAPH_COMMON_CRC32C_H_
#define ECGRAPH_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ecg {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) over
/// `size` bytes, starting from `seed` (0 for a fresh checksum). This is the
/// checksum the framed wire envelope uses to detect payload corruption on
/// the halo-exchange transport; the Castagnoli polynomial is the one used
/// by iSCSI/ext4/RocksDB because of its strong burst-error detection.
uint32_t Crc32c(const uint8_t* data, size_t size, uint32_t seed = 0);

}  // namespace ecg

#endif  // ECGRAPH_COMMON_CRC32C_H_
