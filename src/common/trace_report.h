#ifndef ECGRAPH_COMMON_TRACE_REPORT_H_
#define ECGRAPH_COMMON_TRACE_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/status.h"

namespace ecg::obs {

/// Offline digest of one observability artefact — either a Chrome trace
/// written by the tracer (`--trace=`) or a flight-recorder dump
/// (`flight_<worker>.json`). Built by `ecgraph trace-report` so a run can
/// be triaged without loading the file into a trace viewer.
struct TraceReport {
  /// "chrome_trace" or "flight".
  std::string source;
  /// Flight dumps carry their crash context; empty for Chrome traces.
  std::string reason;
  std::string commit;

  /// Simulated seconds per (worker, phase name). Phases named
  /// "barrier_stall" are stall time, "overlap_hidden" is wire time hidden
  /// under compute; everything else sim-domain is charged communication.
  std::map<std::pair<uint32_t, std::string>, double> sim_phase_seconds;
  /// Real (measured CPU) seconds per (worker, span name) — the compute
  /// side of the breakdown. Spans on untagged threads land on worker
  /// 0xFFFFFFFF ("-").
  std::map<std::pair<uint32_t, std::string>, double> real_span_seconds;

  /// Message-flow accounting per directed link sender→receiver:
  /// {sends ("s"), retransmits ("t"), receives ("f")}. A link whose
  /// retransmits > 0 saw NACK/retry traffic; sends > receives means
  /// messages were still in flight (or lost) when the artefact was cut.
  struct LinkFlow {
    uint64_t sends = 0;
    uint64_t retransmits = 0;
    uint64_t receives = 0;
  };
  std::map<std::pair<uint32_t, uint32_t>, LinkFlow> links;

  /// Fault counters copied from a flight dump's "fault_counters" section
  /// (empty for Chrome traces or fault-free runs).
  std::map<std::string, double> fault_counters;

  /// Elastic membership activity per (worker, event kind): scheduled
  /// join/leave, crash shrink/replace, and straggler-rebalance migrations.
  /// Filled from a flight dump's "elastic_state" section (full detail:
  /// event count, rows moved, transition downtime) or, for Chrome traces,
  /// from the "elastic_*" spans on the simulated timeline (count +
  /// seconds only). Empty for fixed-membership runs.
  struct MembershipRow {
    uint64_t events = 0;
    uint64_t moved_rows = 0;
    double seconds = 0.0;
  };
  std::map<std::pair<uint32_t, std::string>, MembershipRow> membership;
};

/// Parses `json_text` (auto-detecting the artefact kind) into a report.
Result<TraceReport> BuildTraceReport(const std::string& json_text);

/// Renders the report as the aligned text tables the CLI prints.
std::string FormatTraceReport(const TraceReport& report);

}  // namespace ecg::obs

#endif  // ECGRAPH_COMMON_TRACE_REPORT_H_
