// AVX2 variant: compiled with -mavx2 (see src/common/CMakeLists.txt), so
// the auto-vectorized loops widen to 256 bits and the int8 GEMM uses the
// maddubs intrinsic path.
#define ECG_KERN_NS kern_avx2
#define ECG_KERN_VARIANT_NAME "avx2"
#define ECG_KERN_GETTER GetKernels_avx2
#define ECG_KERN_ALLOW_SIMD 1
#include "common/kernels_impl.inc"
