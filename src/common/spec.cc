#include "common/spec.h"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace ecg::config {
namespace {

// Strict unsigned decimal parse: digits only, overflow-checked against max.
// Matches the behavior of the hand-rolled parsers this file replaces
// (leading '+'/'-', hex, and trailing junk all rejected).
Status ParseUnsigned(const std::string& text, uint64_t max, uint64_t* out) {
  if (text.empty()) return Status::InvalidArgument("empty integer");
  uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9')
      return Status::InvalidArgument("not an integer: '" + text + "'");
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (max - digit) / 10)
      return Status::InvalidArgument("integer out of range: '" + text + "'");
    v = v * 10 + digit;
  }
  *out = v;
  return Status::OK();
}

Status ParseSigned(const std::string& text, int64_t lo, int64_t hi,
                   int64_t* out) {
  bool neg = !text.empty() && text[0] == '-';
  uint64_t mag = 0;
  ECG_RETURN_IF_ERROR(ParseUnsigned(neg ? text.substr(1) : text,
                                    std::numeric_limits<int64_t>::max(), &mag));
  int64_t v = neg ? -static_cast<int64_t>(mag) : static_cast<int64_t>(mag);
  if (v < lo || v > hi)
    return Status::InvalidArgument("integer out of range: '" + text + "'");
  *out = v;
  return Status::OK();
}

// strtod that must consume the whole token.
Status ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE)
    return Status::InvalidArgument("not a number: '" + text + "'");
  *out = v;
  return Status::OK();
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::vector<std::string> Spec::Split(const std::string& text,
                                     const char* separators) {
  std::vector<std::string> out;
  std::string cur;
  auto is_sep = [separators](char c) {
    for (const char* s = separators; *s; ++s)
      if (*s == c) return true;
    return false;
  };
  for (char c : text) {
    if (is_sep(c)) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (c != ' ' && c != '\t') {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

Spec::Field& Spec::AddField(const std::string& key, std::string type_text,
                            std::string default_text, bool numeric) {
  fields_.push_back(std::make_unique<Field>());
  Field& f = *fields_.back();
  f.key_ = key;
  f.type_text_ = std::move(type_text);
  f.default_text_ = std::move(default_text);
  f.numeric_ = numeric;
  return f;
}

Spec::Field& Spec::U32(const std::string& key, uint32_t* out) {
  Field& f = AddField(key, "N", std::to_string(*out), /*numeric=*/true);
  f.set_ = [this, key, out](const std::string& value, double* num) -> Status {
    uint64_t v = 0;
    Status s = ParseUnsigned(value, std::numeric_limits<uint32_t>::max(), &v);
    if (!s.ok()) return Error(key + ": " + s.message());
    *out = static_cast<uint32_t>(v);
    *num = static_cast<double>(v);
    return Status::OK();
  };
  return f;
}

Spec::Field& Spec::U64(const std::string& key, uint64_t* out) {
  Field& f = AddField(key, "N", std::to_string(*out), /*numeric=*/true);
  f.set_ = [this, key, out](const std::string& value, double* num) -> Status {
    uint64_t v = 0;
    Status s = ParseUnsigned(value, std::numeric_limits<uint64_t>::max(), &v);
    if (!s.ok()) return Error(key + ": " + s.message());
    *out = v;
    *num = static_cast<double>(v);
    return Status::OK();
  };
  return f;
}

Spec::Field& Spec::I32(const std::string& key, int32_t* out) {
  Field& f = AddField(key, "N", std::to_string(*out), /*numeric=*/true);
  f.set_ = [this, key, out](const std::string& value, double* num) -> Status {
    int64_t v = 0;
    Status s = ParseSigned(value, std::numeric_limits<int32_t>::min(),
                           std::numeric_limits<int32_t>::max(), &v);
    if (!s.ok()) return Error(key + ": " + s.message());
    *out = static_cast<int32_t>(v);
    *num = static_cast<double>(v);
    return Status::OK();
  };
  return f;
}

Spec::Field& Spec::F64(const std::string& key, double* out) {
  Field& f = AddField(key, "F", FormatDouble(*out), /*numeric=*/true);
  f.set_ = [this, key, out](const std::string& value, double* num) -> Status {
    double v = 0.0;
    Status s = ParseDouble(value, &v);
    if (!s.ok()) return Error(key + ": " + s.message());
    *out = v;
    *num = v;
    return Status::OK();
  };
  return f;
}

Spec::Field& Spec::F32(const std::string& key, float* out) {
  Field& f = AddField(key, "F", FormatDouble(*out), /*numeric=*/true);
  f.set_ = [this, key, out](const std::string& value, double* num) -> Status {
    double v = 0.0;
    Status s = ParseDouble(value, &v);
    if (!s.ok()) return Error(key + ": " + s.message());
    *out = static_cast<float>(v);
    *num = v;
    return Status::OK();
  };
  return f;
}

Spec::Field& Spec::Bool(const std::string& key, bool* out) {
  Field& f = AddField(key, "on|off", *out ? "on" : "off", /*numeric=*/false);
  f.set_ = [this, key, out](const std::string& value, double*) -> Status {
    if (value == "on" || value == "true" || value == "1" || value == "yes") {
      *out = true;
    } else if (value == "off" || value == "false" || value == "0" ||
               value == "no") {
      *out = false;
    } else {
      return Error(key + " must be on|off, got '" + value + "'");
    }
    return Status::OK();
  };
  return f;
}

Spec::Field& Spec::String(const std::string& key, std::string* out) {
  Field& f = AddField(key, "STR", *out, /*numeric=*/false);
  f.set_ = [out](const std::string& value, double*) -> Status {
    *out = value;
    return Status::OK();
  };
  return f;
}

Spec::Field& Spec::F64List(const std::string& key, std::vector<double>* out,
                           char sep) {
  std::string type(1, sep);
  Field& f = AddField(key, "F" + type + "F" + type + "...", "",
                      /*numeric=*/false);
  f.set_ = [this, key, out, sep](const std::string& value, double*) -> Status {
    char seps[2] = {sep, '\0'};
    std::vector<double> parsed;
    for (const std::string& tok : Split(value, seps)) {
      double v = 0.0;
      Status s = ParseDouble(tok, &v);
      if (!s.ok()) return Error(key + ": " + s.message());
      parsed.push_back(v);
    }
    if (parsed.empty()) return Error(key + ": empty list");
    *out = std::move(parsed);
    return Status::OK();
  };
  return f;
}

Spec::Field& Spec::U32List(const std::string& key, std::vector<uint32_t>* out,
                           char sep) {
  std::string type(1, sep);
  Field& f = AddField(key, "N" + type + "N" + type + "...", "",
                      /*numeric=*/false);
  f.set_ = [this, key, out, sep](const std::string& value, double*) -> Status {
    char seps[2] = {sep, '\0'};
    std::vector<uint32_t> parsed;
    for (const std::string& tok : Split(value, seps)) {
      uint64_t v = 0;
      Status s = ParseUnsigned(tok, std::numeric_limits<uint32_t>::max(), &v);
      if (!s.ok()) return Error(key + ": " + s.message());
      parsed.push_back(static_cast<uint32_t>(v));
    }
    if (parsed.empty()) return Error(key + ": empty list");
    *out = std::move(parsed);
    return Status::OK();
  };
  return f;
}

Spec& Spec::Clause(std::string keyword, std::string grammar, std::string help,
                   std::function<Status(const std::string&)> handler) {
  clause_rules_.push_back({std::move(keyword), std::move(grammar),
                           std::move(help), std::move(handler)});
  return *this;
}

Status Spec::Apply(const std::string& key, const std::string& value,
                   std::map<std::string, bool>* seen) {
  for (auto& f : fields_) {
    if (f->key_ != key) continue;
    if ((*seen)[key]) return Error("duplicate key '" + key + "'");
    (*seen)[key] = true;
    double numeric = 0.0;
    ECG_RETURN_IF_ERROR(f->set_(value, &numeric));
    if (f->numeric_ && f->has_min_) {
      bool bad = f->min_exclusive_ ? numeric <= f->min_ : numeric < f->min_;
      if (bad)
        return Error(key + " must be " + (f->min_exclusive_ ? "> " : ">= ") +
                     FormatDouble(f->min_) + ", got " + value);
    }
    if (f->numeric_ && f->has_max_ && numeric > f->max_)
      return Error(key + " must be <= " + FormatDouble(f->max_) + ", got " +
                   value);
    if (f->check_) ECG_RETURN_IF_ERROR(f->check_());
    return Status::OK();
  }
  return Error("unknown key '" + key + "'");
}

Status Spec::ParseClauses(const std::vector<std::string>& clauses) {
  std::map<std::string, bool> seen;
  for (const std::string& clause : clauses) {
    // Leading identifier: text before the first '=' or '@'.
    size_t cut = clause.find_first_of("=@");
    std::string head = clause.substr(0, cut);
    // Structured clauses win over flat fields and may repeat; keywords are
    // disjoint from flat field keys by construction.
    const ClauseRule* rule = nullptr;
    for (const auto& r : clause_rules_)
      if (r.keyword == head) rule = &r;
    if (rule != nullptr) {
      ECG_RETURN_IF_ERROR(rule->handler(clause));
      continue;
    }
    if (cut == std::string::npos || clause[cut] != '=')
      return Error("expected key=value, got '" + clause + "'");
    ECG_RETURN_IF_ERROR(
        Apply(head, clause.substr(cut + 1), &seen));
  }
  for (const auto& f : fields_) {
    if (f->required_ && !seen[f->key_])
      return Error("missing required key '" + f->key_ + "'");
  }
  return Status::OK();
}

Status Spec::Parse(const std::string& spec) {
  return ParseClauses(Split(spec, ",;"));
}

std::string Spec::HelpText(const std::string& indent) const {
  std::ostringstream os;
  size_t width = 0;
  std::vector<std::pair<std::string, std::string>> lines;
  for (const auto& r : clause_rules_) {
    lines.emplace_back(r.grammar.empty() ? r.keyword : r.grammar, r.help);
  }
  for (const auto& f : fields_) {
    std::string lhs = f->key_ + "=" + f->type_text_;
    std::string rhs = f->help_;
    if (f->required_) {
      rhs += rhs.empty() ? "(required)" : " (required)";
    } else if (!f->default_text_.empty()) {
      rhs += rhs.empty() ? "(default " + f->default_text_ + ")"
                         : " (default " + f->default_text_ + ")";
    }
    lines.emplace_back(std::move(lhs), std::move(rhs));
  }
  for (const auto& [lhs, rhs] : lines) width = std::max(width, lhs.size());
  for (const auto& [lhs, rhs] : lines) {
    os << indent << lhs;
    if (!rhs.empty()) os << std::string(width - lhs.size() + 2, ' ') << rhs;
    os << '\n';
  }
  return os.str();
}

}  // namespace ecg::config
