#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "common/flight_recorder.h"
#include "common/kernels.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace ecg::obs {

int StatValue::HistBucket(double v) {
  const double mag = std::fabs(v);
  if (mag == 0.0 || !std::isfinite(mag)) return 0;
  const int exp = std::ilogb(mag);
  return std::clamp(exp + kHistBias, 1, kHistBuckets - 1);
}

void StatValue::Add(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
  last = v;
  ++hist[HistBucket(v)];
}

void StatValue::Merge(const StatValue& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  last = o.last;
  for (int b = 0; b < kHistBuckets; ++b) hist[b] += o.hist[b];
}

StatsRegistry& StatsRegistry::Global() {
  static StatsRegistry* registry = new StatsRegistry();  // leaked, see Tracer
  return *registry;
}

void StatsRegistry::Enable(const std::string& jsonl_path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    path_ = jsonl_path;
    if (!jsonl_path.empty()) {
      // Truncate once at enable; epoch flushes append. The first row is a
      // header stamping the run environment (same identity the benches
      // embed in their BENCH_*.json "stamp").
      std::ofstream out(jsonl_path, std::ios::trunc);
      out << "{\"header\":true,\"commit\":\"" << JsonEscape(BuildCommit())
          << "\",\"kernels\":\"" << kern::ActiveName()
          << "\",\"threads\":" << ThreadPool::Global().num_threads()
          << "}\n";
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void StatsRegistry::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void StatsRegistry::Record(const std::string& name, double value,
                           uint32_t epoch, int32_t layer, int32_t peer) {
  Histogram* bridged = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_[StatKey{name, epoch, layer, peer}].Add(value);
    // Bridge into the live metrics plane: every stat series doubles as a
    // Prometheus histogram labelled by (layer, peer) — epoch is
    // deliberately dropped (a scrape series per epoch would be unbounded
    // cardinality; the time dimension is the scraper's job). This one hook
    // is what makes exchangers, trainers, the param server and the fault
    // transport all visible live without touching each call site. Handle
    // acquisition (string building, metrics-registry lock) happens once
    // per series; steady state is the cache hit below.
    if (MetricsEnabled()) {
      Histogram*& slot = bridge_[std::make_tuple(name, layer, peer)];
      if (slot == nullptr) {
        std::string metric = "ecg_";
        metric.reserve(metric.size() + name.size());
        for (char c : name) metric += (c == '.' || c == '-') ? '_' : c;
        MetricLabels labels;
        if (layer >= 0) labels.emplace_back("layer", std::to_string(layer));
        if (peer >= 0) labels.emplace_back("peer", std::to_string(peer));
        slot = MetricsRegistry::Global().GetHistogram(
            metric, "Bridged from stat series '" + name + "'.",
            std::move(labels));
      }
      bridged = slot;
    }
  }
  if (bridged != nullptr) bridged->Observe(value);
}

namespace {

/// %.6g keeps integers exact through 2^31 and rows compact; stats are
/// telemetry, not wire data.
void AppendNumber(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

void StatsRegistry::WriteRow(std::ostream& os, const StatKey& key,
                             const StatValue& value, bool summary) const {
  std::string row = "{";
  if (summary) {
    row += "\"summary\":true";
  } else {
    row += "\"epoch\":" + std::to_string(key.epoch);
  }
  row += ",\"name\":\"" + key.name + "\"";
  if (key.layer >= 0) row += ",\"layer\":" + std::to_string(key.layer);
  if (key.peer >= 0) row += ",\"peer\":" + std::to_string(key.peer);
  row += ",\"count\":" + std::to_string(value.count);
  row += ",\"sum\":";
  AppendNumber(&row, value.sum);
  row += ",\"min\":";
  AppendNumber(&row, value.min);
  row += ",\"max\":";
  AppendNumber(&row, value.max);
  row += ",\"avg\":";
  AppendNumber(&row, value.Avg());
  row += ",\"last\":";
  AppendNumber(&row, value.last);
  // Histogram in sparse "bucket:count" form; bucket b>0 covers |v| in
  // [2^(b-32), 2^(b-31)), bucket 0 counts zeros/non-finites.
  row += ",\"hist\":\"";
  bool first = true;
  for (int b = 0; b < StatValue::kHistBuckets; ++b) {
    if (value.hist[b] == 0) continue;
    if (!first) row += ",";
    row += std::to_string(b) + ":" + std::to_string(value.hist[b]);
    first = false;
  }
  row += "\"}\n";
  os << row;
}

void StatsRegistry::DumpEpochTo(uint32_t epoch, std::ostream& os,
                                bool erase) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.lower_bound(StatKey{"", epoch, INT32_MIN, INT32_MIN});
  while (it != live_.end() && it->first.epoch == epoch) {
    WriteRow(os, it->first, it->second, /*summary=*/false);
    if (erase) {
      summary_[it->first.name].Merge(it->second);
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
}

void StatsRegistry::DumpSummaryTo(std::ostream& os) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : summary_) {
    WriteRow(os, StatKey{name, kNoEpoch, -1, -1}, value, /*summary=*/true);
  }
}

void StatsRegistry::FlushEpoch(uint32_t epoch) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = path_;
  }
  if (path.empty()) {
    // Still retire the epoch into the summary so memory stays bounded.
    std::ofstream null_sink;
    DumpEpochTo(epoch, null_sink, /*erase=*/true);
    return;
  }
  std::ofstream out(path, std::ios::app);
  DumpEpochTo(epoch, out, /*erase=*/true);
}

void StatsRegistry::FlushAll() {
  std::vector<uint32_t> epochs;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = path_;
    for (const auto& [key, value] : live_) {
      if (epochs.empty() || epochs.back() != key.epoch) {
        epochs.push_back(key.epoch);
      }
    }
  }
  if (path.empty()) {
    std::ofstream null_sink;
    for (uint32_t e : epochs) DumpEpochTo(e, null_sink, /*erase=*/true);
    return;
  }
  std::ofstream out(path, std::ios::app);
  for (uint32_t e : epochs) DumpEpochTo(e, out, /*erase=*/true);
  DumpSummaryTo(out);
}

std::map<StatKey, StatValue> StatsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

double StatsRegistry::SumFor(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  auto it = summary_.find(name);
  if (it != summary_.end()) total += it->second.sum;
  for (const auto& [key, value] : live_) {
    if (key.name == name) total += value.sum;
  }
  return total;
}

void StatsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  live_.clear();
  summary_.clear();
  path_.clear();
  bridge_.clear();
}

}  // namespace ecg::obs
