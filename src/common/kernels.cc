#include "common/kernels.h"

#include <atomic>
#include <cstdlib>

#include "common/cpu_features.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace ecg::kern {

// Variant accessors, one per TU compiled in (CMake defines the ECG_KERN_HAVE_*
// macros to match the source list it assembled for this arch).
const Kernels* GetKernels_scalar();
#if defined(ECG_KERN_HAVE_AVX2)
const Kernels* GetKernels_avx2();
#endif
#if defined(ECG_KERN_HAVE_AVX512)
const Kernels* GetKernels_avx512();
#endif
#if defined(ECG_KERN_HAVE_NEON)
const Kernels* GetKernels_neon();
#endif

namespace {

/// The forced table (tests / --kernels= / ECG_KERNELS), or null for auto.
std::atomic<const Kernels*> g_forced{nullptr};

const Kernels* SelectAuto() {
  const CpuFeatures& cpu = DetectCpuFeatures();
#if defined(ECG_KERN_HAVE_AVX512)
  if (cpu.avx512) return GetKernels_avx512();
#endif
#if defined(ECG_KERN_HAVE_AVX2)
  if (cpu.avx2) return GetKernels_avx2();
#endif
#if defined(ECG_KERN_HAVE_NEON)
  if (cpu.neon) return GetKernels_neon();
#endif
  return GetKernels_scalar();
}

const Kernels* Lookup(const std::string& name) {
  const CpuFeatures& cpu = DetectCpuFeatures();
  if (name == "scalar") return GetKernels_scalar();
#if defined(ECG_KERN_HAVE_AVX2)
  if (name == "avx2" && cpu.avx2) return GetKernels_avx2();
#endif
#if defined(ECG_KERN_HAVE_AVX512)
  if (name == "avx512" && cpu.avx512) return GetKernels_avx512();
#endif
#if defined(ECG_KERN_HAVE_NEON)
  if (name == "neon" && cpu.neon) return GetKernels_neon();
#endif
  return nullptr;
}

/// Resolves the ECG_KERNELS environment override once, at first dispatch.
const Kernels* ResolveInitial() {
  if (const char* env = std::getenv("ECG_KERNELS")) {
    const std::string name(env);
    if (!name.empty() && name != "auto") {
      if (const Kernels* k = Lookup(name)) return k;
      ECG_LOG(Warning) << "ECG_KERNELS='" << name
                       << "' is unknown or unsupported on this CPU; using "
                          "auto dispatch (scalar|avx2|avx512|neon|auto)";
    }
  }
  return SelectAuto();
}

/// One gauge sample per dispatch decision. Selection happens once (or on an
/// explicit ForceVariant), so this never touches the per-call hot path.
void PublishDispatch(const Kernels* k) {
  if (k == nullptr || !obs::MetricsEnabled()) return;
  obs::MetricsRegistry::Global()
      .GetCounter("ecg_kern_dispatch_total",
                  "SIMD kernel table selections, by chosen variant.",
                  {{"kernel_variant", k->name}})
      ->Inc();
}

}  // namespace

const Kernels& Active() {
  if (const Kernels* forced = g_forced.load(std::memory_order_acquire)) {
    return *forced;
  }
  static const Kernels* initial = [] {
    const Kernels* k = ResolveInitial();
    PublishDispatch(k);
    return k;
  }();
  return *initial;
}

const char* ActiveName() { return Active().name; }

std::vector<const Kernels*> AvailableVariants() {
  const CpuFeatures& cpu = DetectCpuFeatures();
  std::vector<const Kernels*> out;
#if defined(ECG_KERN_HAVE_AVX512)
  if (cpu.avx512) out.push_back(GetKernels_avx512());
#endif
#if defined(ECG_KERN_HAVE_AVX2)
  if (cpu.avx2) out.push_back(GetKernels_avx2());
#endif
#if defined(ECG_KERN_HAVE_NEON)
  if (cpu.neon) out.push_back(GetKernels_neon());
#endif
  out.push_back(GetKernels_scalar());
  return out;
}

bool ForceVariant(const std::string& name) {
  if (name.empty() || name == "auto") {
    g_forced.store(nullptr, std::memory_order_release);
    return true;
  }
  const Kernels* k = Lookup(name);
  if (k == nullptr) return false;
  g_forced.store(k, std::memory_order_release);
  PublishDispatch(k);
  return true;
}

}  // namespace ecg::kern
