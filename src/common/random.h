#ifndef ECGRAPH_COMMON_RANDOM_H_
#define ECGRAPH_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace ecg {

/// Deterministic, fast PRNG (xoshiro256** seeded via splitmix64).
///
/// Every stochastic component in the library (graph generation, feature
/// noise, weight init, neighbour sampling) draws from an explicitly seeded
/// Rng so that experiments are reproducible run-to-run and across machines.
/// <random> distributions are avoided because their outputs are not
/// guaranteed identical across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator; identical seeds give identical streams.
  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) {
    // Rejection-free Lemire multiply-shift; slight bias < 2^-64 acceptable.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Marsaglia polar method (deterministic given seed).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * mul;
    has_cached_gaussian_ = true;
    return u * mul;
  }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ecg

#endif  // ECGRAPH_COMMON_RANDOM_H_
