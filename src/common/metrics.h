#ifndef ECGRAPH_COMMON_METRICS_H_
#define ECGRAPH_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ecg::obs {

/// The live metrics plane (DESIGN.md §13). Unlike StatsRegistry — which is
/// a post-hoc per-epoch JSONL dump — this registry is continuously
/// queryable (Prometheus text over HTTP, or a file snapshot) and keeps
/// latency *distributions*, not just sums. Handles are acquired once
/// (mutex, string keys) and then recorded into lock-free (atomic adds), so
/// steady-state instrumentation never contends and never allocates.

namespace internal {
/// Global enable gate; one relaxed load on every instrumentation site.
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

/// True when the metrics plane is collecting. Instrumentation sites must be
/// shaped `if (MetricsEnabled()) {...}` so a disabled plane costs a single
/// predictable branch and zero allocations.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Label set attached to a metric cell. Keys are sorted at acquisition;
/// the `le` key is reserved for histogram buckets.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value (wire bytes, message counts, NACKs).
class Counter {
 public:
  void Inc(double v = 1.0);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};  // double stored via bit_cast + CAS
};

/// Last-write-wins value (loss, learning-rate, queue depth).
class Gauge {
 public:
  void Set(double v);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Log-bucketed histogram in the HdrHistogram style: each power-of-two
/// octave of the value range is split into 2^kSubBits linear sub-buckets,
/// so any recorded value lands in a bucket whose width is at most
/// 2^-kSubBits (~3.1%) of the value. Bucket counters are atomics: threads
/// record concurrently without locks, and a cross-thread merge (or a
/// snapshot for quantiles) is exact in counts — p50/p90/p99/p999 computed
/// from merged buckets equal the quantiles of the union of all threads'
/// samples, to within one bucket's width.
class Histogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Covered range: [2^kMinExp, 2^kMaxExp) ≈ [9.3e-10, 1.7e10]. Bucket 0
  /// catches zero / negative / underflow; the last bucket is overflow.
  static constexpr int kMinExp = -30;
  static constexpr int kMaxExp = 34;
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets + 2;

  void Observe(double v);

  uint64_t TotalCount() const;
  double Sum() const;

  /// Quantile from the current bucket contents: the upper bound of the
  /// bucket containing the ceil(q*count)-th smallest sample (0 when
  /// empty). Always >= the exact sample quantile and within a relative
  /// 2^-kSubBits of it for in-range values.
  double Quantile(double q) const;

  /// Maps a value to its bucket index / a bucket to its inclusive upper
  /// bound (+inf for the overflow bucket). Exposed for tests and the
  /// exposition writer.
  static int BucketIndex(double v);
  static double BucketUpperBound(int bucket);

  /// Consistent read of all buckets (counts) for exposition/merge.
  void SnapshotBuckets(uint64_t out[kNumBuckets]) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double via CAS add
};

/// Process-wide registry. Families are keyed by metric name; cells by
/// label set. Pointers returned by Get* stay valid for the process
/// lifetime (the registry is intentionally leaked, like Tracer), so hot
/// sites can cache them.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Turns the instrumentation gate on/off. Enable() leaves previously
  /// recorded values in place (a scrape plane accumulates); use Reset()
  /// for test isolation.
  void Enable();
  void Disable();

  /// Handle acquisition: creates the family/cell on first use. A name
  /// must keep one consistent type — mixing types on one name aborts
  /// (programming error). `help` is kept from the first acquisition.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  MetricLabels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          MetricLabels labels = {});

  /// Prometheus text exposition format 0.0.4: HELP/TYPE per family, one
  /// line per cell (histograms expand to cumulative _bucket/_sum/_count).
  /// Starts with an `ecg_build_info{commit,kernel_variant,threads} 1`
  /// gauge identifying the run. Families and cells are emitted in sorted
  /// order, so output is deterministic given deterministic values.
  void WritePrometheus(std::ostream& os) const;
  std::string PrometheusText() const;

  /// Writes PrometheusText() to `path` atomically (tmp + rename) — the
  /// --metrics_out CI snapshot mode.
  Status WriteSnapshotFile(const std::string& path) const;

  /// Drops every family and cell (invalidates outstanding handles — test
  /// isolation only, never during recording).
  void Reset();

 private:
  MetricsRegistry() = default;

  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Family {
    Kind kind;
    std::string help;
    // One map populated per family, keyed by the serialized label set
    // (which doubles as the exposition label string).
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> hists;
  };

  Family* FamilyFor(const std::string& name, const std::string& help,
                    Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Git commit this binary reports in `ecg_build_info`, bench stamps, the
/// stats JSONL header, and flight-recorder dumps ("unknown" outside a git
/// checkout). Resolved once per process and cached.
const std::string& BuildCommit();

/// Serializes labels canonically: sorted by key, values escaped per the
/// exposition format. Returns e.g. `layer="0",peer="3"` (no braces).
std::string SerializeLabels(MetricLabels labels);

}  // namespace ecg::obs

#endif  // ECGRAPH_COMMON_METRICS_H_
