#ifndef ECGRAPH_COMMON_LOGGING_H_
#define ECGRAPH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ecg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kInfo; set once at startup (not thread-safe to flip mid-run).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Hook invoked with the formatted message right before a fatal
/// LogMessage (ECG_CHECK failure) aborts. The flight recorder installs
/// its dump here; nullptr uninstalls. The handler runs on the failing
/// thread and must itself tolerate failing (the abort happens regardless).
using FatalHandler = void (*)(const char* message);
void SetFatalHandler(FatalHandler handler);

/// Collects one log line and emits it (with timestamp and level tag) to
/// stderr on destruction. Emission of a full line is atomic across threads.
class LogMessage {
 public:
  /// `fatal` messages always emit (the level gate cannot drop them) and
  /// abort the process after flushing the line — the ECG_CHECK contract.
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ecg

#define ECG_LOG(level)                                                    \
  ::ecg::internal::LogMessage(::ecg::LogLevel::k##level, __FILE__, __LINE__)

/// Always-on invariant check (kept in release builds: cheap and the failure
/// modes it guards — indexing bugs in message codecs — corrupt training
/// silently otherwise). A failed check prints the condition plus any
/// streamed context and then aborts: the LogMessage is constructed fatal,
/// so the abort is structural, not dependent on the message text or the
/// process log level.
#define ECG_CHECK(cond)                                                   \
  if (!(cond))                                                            \
  ::ecg::internal::LogMessage(::ecg::LogLevel::kError, __FILE__, __LINE__, \
                              /*fatal=*/true)                              \
      << "Check failed, aborting: " #cond " "

#endif  // ECGRAPH_COMMON_LOGGING_H_
