#ifndef ECGRAPH_COMMON_THREAD_POOL_H_
#define ECGRAPH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ecg {

/// A minimal fixed-size worker pool for data-parallel kernels (GEMM / SpMM
/// row blocks). Tasks are plain std::function<void()>; ParallelFor blocks
/// until the whole index range is processed.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 maps to hardware concurrency).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(begin, end) over disjoint chunks of [0, total) on the pool and
  /// the calling thread; returns when all chunks are done. Grain controls
  /// the minimum chunk size.
  ///
  /// Re-entrant: a ParallelFor issued from inside a pool task runs its whole
  /// range inline on that worker. Offloading nested chunks could park every
  /// worker on a queue none of them will ever drain (all blocked waiting on
  /// each other's subtasks), so kernels may freely call parallel kernels.
  void ParallelFor(size_t total, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Global pool shared by tensor and compression kernels; sized to
  /// ECG_THREADS when that env var is set, else hardware concurrency.
  static ThreadPool& Global();

  /// Thread-local switch: when true, ParallelFor on this thread runs the
  /// whole range inline instead of offloading chunks to pool threads. The
  /// simulated-cluster workers enable this so that all of a worker's
  /// compute lands on its own thread-CPU clock (each worker models one
  /// single-core machine; see ThreadCpuTimer).
  static void SetSerialMode(bool serial);
  static bool serial_mode();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace ecg

#endif  // ECGRAPH_COMMON_THREAD_POOL_H_
