#ifndef ECGRAPH_COMMON_KERNELS_H_
#define ECGRAPH_COMMON_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ecg::kern {

/// Runtime-dispatched kernel registry. Every hot inner loop of the
/// compression pipeline (quantize pack, dequantize unpack, min/max
/// reduction, bit packing) and the int8 packed-domain GEMM goes through
/// one of the function pointers below. The same implementation source
/// (kernels_impl.inc) is compiled once per architecture variant — scalar,
/// AVX2, AVX-512, NEON — each in its own translation unit with per-file
/// arch flags, and the table matching the host CPU (or the ECG_KERNELS
/// override) is selected at first use.
///
/// Bit-exactness contract: for identical inputs, every variant of every
/// kernel in this table produces byte-identical outputs to the scalar
/// variant. This holds structurally: the float kernels are element-wise
/// (no reductions that could reassociate) and all variant TUs compile
/// with -ffp-contract=off, so wider SIMD only changes instruction
/// selection, never arithmetic; the integer kernels (bitpack, int8 GEMM
/// accumulation) are exact in any evaluation order. The intrinsic paths
/// that diverge from the portable source (the int8 dot product) are
/// integer-only. tests/kern_test.cc enforces the contract across every
/// registered variant.
struct Kernels {
  /// Registry name: "scalar", "avx2", "avx512" or "neon".
  const char* name;

  /// Quantize hot loop for a contiguous buffer: clamps each element of
  /// data[word_begin*per_word, ...) to a bucket id in [0, 2^bits) via
  /// rel = (v - mn) * inv_width (min-then-max clamp order: NaN maps to
  /// the top bucket) and packs the ids little-endian into
  /// packed[word_begin, word_end). bits in {1, 2, 4, 8, 16}.
  void (*pack_flat)(int bits, const float* data, size_t count,
                    size_t word_begin, size_t word_end, float mn,
                    float inv_width, uint32_t* packed);

  /// Dequantize hot loop: decodes the ids backing
  /// packed[word_begin, word_end) through the 2^bits-entry table into
  /// data (flat indexing). bits in {1, 2, 4, 8, 16}.
  void (*unpack_flat)(int bits, const uint32_t* packed, size_t count,
                      size_t word_begin, size_t word_end, const float* table,
                      float* data);

  /// Serial min/max over data[0, count); count must be > 0. NaNs lose
  /// every comparison (same contract as the quantizer's reduction; the
  /// finite-ness check downstream is on the bounds).
  void (*minmax)(const float* data, size_t count, float* mn, float* mx);

  /// Bitpack word loop: packs values[0, count) (each < 2^bits,
  /// caller-validated) little-endian into out words. bits in
  /// {1, 2, 4, 8, 16}.
  void (*bitpack_pack)(const uint32_t* values, size_t count, int bits,
                       uint32_t* out);

  /// Bitpack decode loop: unpacks count ids from packed into out.
  void (*bitpack_unpack)(const uint32_t* packed, size_t count, int bits,
                         uint32_t* out);

  /// Int8 GEMM inner loop: acc[j] += sum_k a[k] * wt[j*wt_stride + k]
  /// for j in [0, n). Products and sums are exact in int32 (|a*b| <=
  /// 128*127, so k up to ~130k cannot overflow), hence bit-identical
  /// across variants regardless of accumulation order.
  void (*gemm_s8_row)(const int8_t* a, const int8_t* wt, size_t k, size_t n,
                      size_t wt_stride, int32_t* acc);

  /// Decodes count packed bucket ids (bits <= 8) into centered int8:
  /// out[i] = id[i] - 128 (mod 256, i.e. id XOR 0x80).
  void (*unpack_ids_s8)(int bits, const uint32_t* packed, size_t count,
                        int8_t* out);
};

/// The table the runtime dispatch (or a force) selected. First call
/// resolves the ECG_KERNELS environment override ("scalar" | "avx2" |
/// "avx512" | "neon" | "auto"); unknown or unsupported values log a
/// warning and fall back to auto. Thread-safe.
const Kernels& Active();

/// Name of the active table (for telemetry / bench stamps).
const char* ActiveName();

/// Variants compiled into this binary AND supported by the host CPU, in
/// dispatch preference order (widest first, scalar last).
std::vector<const Kernels*> AvailableVariants();

/// Forces the active table by name for the rest of the process (the
/// --kernels= flag and the property tests). "auto" or "" clears the
/// force. Returns false (and leaves the selection unchanged) if the name
/// is unknown, not compiled in, or unsupported on this host.
bool ForceVariant(const std::string& name);

}  // namespace ecg::kern

#endif  // ECGRAPH_COMMON_KERNELS_H_
