#include "common/flight_recorder.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/kernels.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ecg::obs {

namespace {

void FatalLogHook(const char* message) {
  (void)FlightRecorder::Global().DumpNow("check_abort",
                                         message ? message : "");
}

/// Not async-signal-safe (takes mutexes, allocates) — a flight recorder
/// trades strict safety for having *any* post-mortem on an orderly
/// SIGTERM (preemption, timeout kill). A wedged dump can't make the
/// process more dead than the signal already will.
void SigtermHook(int signo) {
  (void)FlightRecorder::Global().DumpNow("sigterm");
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

void AppendSpanJson(std::string* out, const TraceEvent& e) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"domain\":\"%s\",\"ts_us\":%" PRIu64
                ",\"dur_us\":%" PRIu64 ",\"worker\":%u,\"tid\":%u",
                e.name, e.domain == TraceDomain::kSim ? "sim" : "real",
                e.ts_us, e.dur_us, e.worker, e.tid);
  *out += buf;
  if (e.layer >= 0) *out += ",\"layer\":" + std::to_string(e.layer);
  if (e.flow != FlowPhase::kNone) {
    const char* ph = e.flow == FlowPhase::kStart
                         ? "s"
                         : e.flow == FlowPhase::kStep ? "t" : "f";
    std::snprintf(buf, sizeof(buf),
                  ",\"flow\":\"%s\",\"flow_id\":\"0x%" PRIx64
                  "\",\"peer\":%u",
                  ph, e.flow_id, e.peer);
    *out += buf;
  }
  *out += "}";
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked
  return *recorder;
}

Status FlightRecorder::Arm(const std::string& dir, size_t last_n_spans) {
  if (dir.empty()) return Status::InvalidArgument("flight dir is empty");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create flight dir '" + dir + "'");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    dir_ = dir;
    last_n_spans_ = last_n_spans == 0 ? 1 : last_n_spans;
  }
  // Pre-resolve the commit: DumpNow must not fork a git subprocess from a
  // crash/signal context.
  (void)BuildCommit();
  // Without tracing there would be no spans to dump; snapshot-only level 1
  // with a small ring bounds the memory cost.
  if (!TraceEnabled(1)) {
    Tracer::Global().Enable(/*level=*/1, /*chrome_trace_path=*/"",
                            /*capacity_per_thread=*/4096);
  }
  ::ecg::internal::SetFatalHandler(&FatalLogHook);
  std::signal(SIGTERM, &SigtermHook);
  armed_.store(true, std::memory_order_release);
  return Status::OK();
}

void FlightRecorder::Disarm() {
  armed_.store(false, std::memory_order_release);
  ::ecg::internal::SetFatalHandler(nullptr);
  std::signal(SIGTERM, SIG_DFL);
}

void FlightRecorder::AddSection(const std::string& name,
                                std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, existing_fn] : sections_) {
    if (existing == name) {
      existing_fn = std::move(fn);
      return;
    }
  }
  sections_.emplace_back(name, std::move(fn));
}

Result<std::string> FlightRecorder::DumpNow(const std::string& reason,
                                            const std::string& detail) {
  if (!armed()) return Status::FailedPrecondition("flight recorder unarmed");
  bool expected = false;
  if (!dumping_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("flight dump already in progress");
  }
  std::string dir;
  size_t last_n = 256;
  std::vector<std::pair<std::string, std::function<std::string()>>> sections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dir = dir_;
    last_n = last_n_spans_;
    sections = sections_;
  }

  const int32_t worker = CurrentThreadWorker();
  const std::string worker_tag =
      worker >= 0 ? std::to_string(worker) : "main";

  std::string body = "{";
  body += "\"reason\":\"" + JsonEscape(reason) + "\"";
  if (!detail.empty()) {
    body += ",\"detail\":\"" + JsonEscape(detail) + "\"";
  }
  body += ",\"worker\":" + std::to_string(worker);
  body += ",\"commit\":\"" + JsonEscape(BuildCommit()) + "\"";
  body += ",\"kernel_variant\":\"" + std::string(kern::ActiveName()) + "\"";

  // Last N spans per clock domain, oldest first within each.
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.domain != b.domain) return a.domain < b.domain;
                     return a.ts_us + a.dur_us < b.ts_us + b.dur_us;
                   });
  body += ",\"spans\":[";
  bool first = true;
  for (int domain = 0; domain < 2; ++domain) {
    size_t begin = 0, end = 0;
    for (size_t i = 0; i < events.size(); ++i) {
      if (static_cast<int>(events[i].domain) != domain) continue;
      if (end == 0) begin = i;
      end = i + 1;
    }
    if (end == 0) continue;
    if (end - begin > last_n) begin = end - last_n;
    for (size_t i = begin; i < end; ++i) {
      if (static_cast<int>(events[i].domain) != domain ||
          events[i].name == nullptr) {
        continue;
      }
      if (!first) body += ",";
      first = false;
      AppendSpanJson(&body, events[i]);
    }
  }
  body += "]";

  body += ",\"metrics_text\":\"" +
          JsonEscape(MetricsRegistry::Global().PrometheusText()) + "\"";

  body += ",\"sections\":{";
  first = true;
  for (const auto& [name, fn] : sections) {
    if (!first) body += ",";
    first = false;
    body += "\"" + JsonEscape(name) + "\":" + fn();
  }
  body += "}}\n";

  const std::string path = dir + "/flight_" + worker_tag + ".json";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      dumping_.store(false, std::memory_order_release);
      return Status::Internal("cannot open flight dump '" + tmp + "'");
    }
    out << body;
    if (!out.good()) {
      dumping_.store(false, std::memory_order_release);
      return Status::Internal("short write to flight dump '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    dumping_.store(false, std::memory_order_release);
    return Status::Internal("cannot rename flight dump into '" + path + "'");
  }
  dumping_.store(false, std::memory_order_release);
  return path;
}

}  // namespace ecg::obs
