#include "common/metrics_http.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"

namespace ecg::obs {

namespace {

/// Blocking write of the whole buffer (best effort; the peer may close).
void WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

void Respond(int fd, const char* status_line, const char* content_type,
             const std::string& body) {
  std::string head = std::string("HTTP/1.1 ") + status_line +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  WriteAll(fd, head.data(), head.size());
  WriteAll(fd, body.data(), body.size());
}

/// Reads the request head (up to a small cap) and extracts the path of a
/// GET request ("" when malformed).
std::string ReadRequestPath(int fd) {
  char buf[2048];
  size_t len = 0;
  while (len < sizeof(buf) - 1) {
    const ssize_t n = ::read(fd, buf + len, sizeof(buf) - 1 - len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    len += static_cast<size_t>(n);
    buf[len] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr) break;
  }
  buf[len] = '\0';
  if (std::strncmp(buf, "GET ", 4) != 0) return "";
  const char* start = buf + 4;
  const char* end = std::strchr(start, ' ');
  if (end == nullptr) return "";
  return std::string(start, end);
}

}  // namespace

MetricsHttpServer& MetricsHttpServer::Global() {
  static MetricsHttpServer* server = new MetricsHttpServer();  // leaked
  return *server;
}

Status MetricsHttpServer::Start(uint16_t port) {
  if (running()) return Status::InvalidArgument("metrics server already running");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("metrics server socket(): ") +
                            std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("metrics server bind(:" + std::to_string(port) +
                            "): " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("metrics server listen(): " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("metrics server getsockname(): " + err);
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&MetricsHttpServer::Serve, this);
  return Status::OK();
}

void MetricsHttpServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout / EINTR: re-check stop flag
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    const std::string path = ReadRequestPath(conn);
    if (path == "/metrics" || path == "/") {
      Respond(conn, "200 OK", "text/plain; version=0.0.4; charset=utf-8",
              MetricsRegistry::Global().PrometheusText());
    } else if (path == "/healthz") {
      Respond(conn, "200 OK", "text/plain", "ok\n");
    } else if (path.empty()) {
      Respond(conn, "400 Bad Request", "text/plain", "bad request\n");
    } else {
      Respond(conn, "404 Not Found", "text/plain", "not found\n");
    }
    ::shutdown(conn, SHUT_RDWR);
    ::close(conn);
  }
}

void MetricsHttpServer::Stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(0, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

}  // namespace ecg::obs
