#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/kernels.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace ecg::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

namespace {

/// Lock-free double accumulation: CAS on the bit pattern. Contention is
/// rare (handles are per-(name,labels) cells) so the loop almost always
/// succeeds first try.
void AtomicAddDouble(std::atomic<uint64_t>* bits, double v) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  while (true) {
    const double updated = std::bit_cast<double>(old_bits) + v;
    if (bits->compare_exchange_weak(old_bits, std::bit_cast<uint64_t>(updated),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Exposition number formatting: integers exact (counts, byte totals),
/// everything else shortest-ish %.10g.
std::string FormatValue(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::rint(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeHelp(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void Counter::Inc(double v) { AtomicAddDouble(&bits_, v); }

double Counter::Value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void Gauge::Set(double v) {
  bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::Value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // zero, negative, NaN
  if (std::isinf(v)) return kNumBuckets - 1;
  int frexp_exp = 0;
  const double m = std::frexp(v, &frexp_exp);  // v = m * 2^E, m in [0.5, 1)
  (void)m;
  const int e = frexp_exp - 1;  // v in [2^e, 2^(e+1))
  if (e < kMinExp) return 0;
  if (e >= kMaxExp) return kNumBuckets - 1;
  // Fraction above the octave base, scaled to sub-buckets.
  const double frac = std::ldexp(v, -e) - 1.0;  // in [0, 1)
  int sub = static_cast<int>(frac * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + (e - kMinExp) * kSubBuckets + sub;
}

double Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return std::ldexp(1.0, kMinExp);
  if (bucket >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const int e = kMinExp + (bucket - 1) / kSubBuckets;
  const int sub = (bucket - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, e);
}

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, v);
}

uint64_t Histogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::SnapshotBuckets(uint64_t out[kNumBuckets]) const {
  for (int b = 0; b < kNumBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
}

double Histogram::Quantile(double q) const {
  uint64_t snap[kNumBuckets];
  SnapshotBuckets(snap);
  uint64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) total += snap[b];
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // rank-th smallest sample, 1-based, with rank = ceil(q * total).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cum += snap[b];
    if (cum >= rank) return BucketUpperBound(b);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

void MetricsRegistry::Enable() {
  internal::g_metrics_enabled.store(true, std::memory_order_relaxed);
}

void MetricsRegistry::Disable() {
  internal::g_metrics_enabled.store(false, std::memory_order_relaxed);
}

std::string SerializeLabels(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ",";
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  return out;
}

MetricsRegistry::Family* MetricsRegistry::FamilyFor(const std::string& name,
                                                    const std::string& help,
                                                    Kind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.help = help;
  } else {
    ECG_CHECK(it->second.kind == kind)
        << "metric '" << name << "' re-registered with a different type";
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     MetricLabels labels) {
  const std::string key = SerializeLabels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = FamilyFor(name, help, Kind::kCounter);
  auto [it, inserted] = fam->counters.try_emplace(key);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 MetricLabels labels) {
  const std::string key = SerializeLabels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = FamilyFor(name, help, Kind::kGauge);
  auto [it, inserted] = fam->gauges.try_emplace(key);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         MetricLabels labels) {
  const std::string key = SerializeLabels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = FamilyFor(name, help, Kind::kHistogram);
  auto [it, inserted] = fam->hists.try_emplace(key);
  if (inserted) it->second = std::make_unique<Histogram>();
  return it->second.get();
}

namespace {

void WriteSample(std::ostream& os, const std::string& name,
                 const std::string& labels, const std::string& value) {
  os << name;
  if (!labels.empty()) os << "{" << labels << "}";
  os << " " << value << "\n";
}

}  // namespace

void MetricsRegistry::WritePrometheus(std::ostream& os) const {
  // Run identity first, so a scrape is self-describing.
  os << "# HELP ecg_build_info Build and dispatch identity; value is "
        "always 1.\n# TYPE ecg_build_info gauge\n";
  os << "ecg_build_info{commit=\"" << EscapeLabelValue(BuildCommit())
     << "\",kernel_variant=\"" << kern::ActiveName() << "\",threads=\""
     << ThreadPool::Global().num_threads() << "\"} 1\n";

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, fam] : families_) {
    os << "# HELP " << name << " " << EscapeHelp(fam.help) << "\n";
    os << "# TYPE " << name << " "
       << (fam.kind == Kind::kCounter
               ? "counter"
               : fam.kind == Kind::kGauge ? "gauge" : "histogram")
       << "\n";
    switch (fam.kind) {
      case Kind::kCounter:
        for (const auto& [labels, cell] : fam.counters) {
          WriteSample(os, name, labels, FormatValue(cell->Value()));
        }
        break;
      case Kind::kGauge:
        for (const auto& [labels, cell] : fam.gauges) {
          WriteSample(os, name, labels, FormatValue(cell->Value()));
        }
        break;
      case Kind::kHistogram:
        for (const auto& [labels, cell] : fam.hists) {
          uint64_t snap[Histogram::kNumBuckets];
          cell->SnapshotBuckets(snap);
          uint64_t cum = 0;
          const std::string sep = labels.empty() ? "" : ",";
          for (int b = 0; b < Histogram::kNumBuckets - 1; ++b) {
            if (snap[b] == 0) continue;  // sparse: skip empty buckets
            cum += snap[b];
            WriteSample(os, name + "_bucket",
                        labels + sep + "le=\"" +
                            FormatValue(Histogram::BucketUpperBound(b)) +
                            "\"",
                        std::to_string(cum));
          }
          cum += snap[Histogram::kNumBuckets - 1];
          WriteSample(os, name + "_bucket", labels + sep + "le=\"+Inf\"",
                      std::to_string(cum));
          WriteSample(os, name + "_sum", labels, FormatValue(cell->Sum()));
          WriteSample(os, name + "_count", labels, std::to_string(cum));
        }
        break;
    }
  }
}

std::string MetricsRegistry::PrometheusText() const {
  std::ostringstream oss;
  WritePrometheus(oss);
  return oss.str();
}

Status MetricsRegistry::WriteSnapshotFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open metrics snapshot '" + tmp + "'");
    }
    WritePrometheus(out);
    if (!out.good()) {
      return Status::Internal("short write to metrics snapshot '" + tmp +
                              "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename metrics snapshot into '" + path +
                            "'");
  }
  return Status::OK();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
}

const std::string& BuildCommit() {
  static const std::string* commit = [] {
    std::string c = "unknown";
    if (FILE* p = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
      char buf[64] = {0};
      if (std::fgets(buf, sizeof(buf), p) != nullptr) {
        std::string s(buf);
        while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
          s.pop_back();
        }
        if (!s.empty()) c = s;
      }
      pclose(p);
    }
    return new std::string(std::move(c));
  }();
  return *commit;
}

}  // namespace ecg::obs
