#ifndef ECGRAPH_COMMON_STATS_H_
#define ECGRAPH_COMMON_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <tuple>

namespace ecg::obs {

class Histogram;  // common/metrics.h; the bridge caches handles to it

/// Sentinel for "not epoch-scoped" (also what preprocessing-time exchanges
/// record; such rows are emitted with the final summary, not per epoch).
inline constexpr uint32_t kNoEpoch = 0xFFFFFFFFu;

/// A stat series is addressed by name plus the (epoch, layer, peer)
/// coordinates of the paper's pipeline; -1 means "not applicable".
struct StatKey {
  std::string name;
  uint32_t epoch = kNoEpoch;
  int32_t layer = -1;
  int32_t peer = -1;

  bool operator<(const StatKey& o) const {
    if (epoch != o.epoch) return epoch < o.epoch;
    if (name != o.name) return name < o.name;
    if (layer != o.layer) return layer < o.layer;
    return peer < o.peer;
  }
};

/// One aggregated series. The same cell serves as counter (read `sum`),
/// gauge (read `last`) and histogram (count/min/max/avg plus base-2
/// magnitude buckets): every Record folds into all views, so callers never
/// pre-declare a metric type.
struct StatValue {
  /// log2-magnitude histogram: bucket 0 counts zeros, bucket b (1..63)
  /// counts |v| in [2^(b-32), 2^(b-31)), exponents clamped to the range.
  static constexpr int kHistBuckets = 64;
  static constexpr int kHistBias = 32;

  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
  uint32_t hist[kHistBuckets] = {0};

  void Add(double v);
  void Merge(const StatValue& o);
  double Avg() const { return count == 0 ? 0.0 : sum / count; }
  static int HistBucket(double v);
};

/// Process-wide registry of named stats recorded per (epoch, layer, peer)
/// and exported as JSON Lines: one row per series per epoch (flushed by
/// the trainer as each epoch finalizes) plus a cross-epoch summary row per
/// name at shutdown. Recording takes a mutex — call sites are per-message
/// / per-phase (a few dozen per worker per epoch), never per-element — and
/// the disabled path is one relaxed atomic load.
class StatsRegistry {
 public:
  static StatsRegistry& Global();

  /// Starts collecting; rows are appended to `jsonl_path` as epochs flush
  /// ("" collects in memory only — tests and the MetricsBoard fold).
  void Enable(const std::string& jsonl_path = "");
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  const std::string& output_path() const { return path_; }

  /// Folds `value` into the (name, epoch, layer, peer) series. Callers on
  /// hot paths should gate on enabled() (or use RecordStat below).
  void Record(const std::string& name, double value,
              uint32_t epoch = kNoEpoch, int32_t layer = -1,
              int32_t peer = -1);

  /// Writes (and retires) every series of `epoch` as JSONL rows; the
  /// retired series keep contributing to the per-name summary.
  void FlushEpoch(uint32_t epoch);

  /// Flushes every remaining epoch plus the summary rows. Idempotent;
  /// wired to the CLI/bench exit paths.
  void FlushAll();

  /// Deterministic row serialization (key-sorted); `erase` retires the
  /// rows into the summary like FlushEpoch does. Exposed for golden tests.
  void DumpEpochTo(uint32_t epoch, std::ostream& os, bool erase);
  void DumpSummaryTo(std::ostream& os);

  /// Copies the live (unflushed) series out; test/inspection hook.
  std::map<StatKey, StatValue> Snapshot() const;

  /// Sum of every recorded value of `name` across live AND retired
  /// (epoch-flushed) series — the cross-epoch total a bench reads after a
  /// run (e.g. total fp.wire_bytes, the bit_alloc gate's numerator)
  /// without re-parsing the JSONL dump.
  double SumFor(const std::string& name) const;

  /// Drops all series, summaries and the output path.
  void Reset();

 private:
  StatsRegistry() = default;

  void WriteRow(std::ostream& os, const StatKey& key,
                const StatValue& value, bool summary) const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<StatKey, StatValue> live_;
  std::map<std::string, StatValue> summary_;
  std::string path_;
  /// Metrics-bridge handle cache, keyed by (name, layer, peer) — the
  /// coordinates that survive into the metric's labels. Handle acquisition
  /// builds strings and locks the metrics registry; with the cache, the
  /// steady-state bridge is one map hit under `mu_` plus a lock-free
  /// Observe. Cleared by Reset (handles die with MetricsRegistry::Reset).
  std::map<std::tuple<std::string, int32_t, int32_t>, Histogram*> bridge_;
};

/// One-liner used by instrumentation sites: a single branch when stats
/// collection is off.
inline void RecordStat(const std::string& name, double value,
                       uint32_t epoch = kNoEpoch, int32_t layer = -1,
                       int32_t peer = -1) {
  StatsRegistry& registry = StatsRegistry::Global();
  if (registry.enabled()) registry.Record(name, value, epoch, layer, peer);
}

/// Cheap global guard for instrumentation whose *inputs* are expensive to
/// compute (residual norms, bucket-saturation scans).
inline bool StatsEnabled() { return StatsRegistry::Global().enabled(); }

}  // namespace ecg::obs

#endif  // ECGRAPH_COMMON_STATS_H_
