#ifndef ECGRAPH_COMMON_FLIGHT_RECORDER_H_
#define ECGRAPH_COMMON_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ecg::obs {

/// Post-mortem crash dump for the simulated cluster (DESIGN.md §13.4).
/// Once armed, an ECG_CHECK abort, an injected crash, or SIGTERM dumps
/// `flight_<worker>.json` into the armed directory: the last N trace
/// spans (real + sim), a Prometheus metrics snapshot, and any registered
/// extra sections (the fault injector registers its counters). Writes are
/// atomic (tmp + rename) so a watcher never reads a torn file.
class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Arms dumping into `dir` (created if missing), keeping the most
  /// recent `last_n_spans` spans per clock domain. Arming installs the
  /// fatal-log hook and a SIGTERM handler, and enables snapshot-only
  /// tracing at level 1 when tracing is off (no spans, no post-mortem).
  Status Arm(const std::string& dir, size_t last_n_spans = 256);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Registers (or replaces) a named dump section; `fn` must return a
  /// self-contained JSON value. Lets higher layers (dist/ fault counters)
  /// contribute without a dependency from common/ upward.
  void AddSection(const std::string& name, std::function<std::string()> fn);

  /// Writes the dump now (no-op unless armed). `reason` is a short tag
  /// ("check_abort", "injected_crash", "sigterm", ...), `detail` free
  /// text (the failed check's message). Re-entrancy safe: a crash inside
  /// a dump does not recurse. Returns the path written.
  Result<std::string> DumpNow(const std::string& reason,
                              const std::string& detail = "");

 private:
  FlightRecorder() = default;

  std::atomic<bool> armed_{false};
  std::atomic<bool> dumping_{false};
  mutable std::mutex mu_;  // guards dir_/spans_/sections_
  std::string dir_;
  size_t last_n_spans_ = 256;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      sections_;
};

/// Escapes a string for embedding in a JSON string literal (shared by the
/// flight recorder and the stats header stamp).
std::string JsonEscape(const std::string& s);

}  // namespace ecg::obs

#endif  // ECGRAPH_COMMON_FLIGHT_RECORDER_H_
