#ifndef ECGRAPH_COMMON_BARRIER_H_
#define ECGRAPH_COMMON_BARRIER_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace ecg {

/// A reusable cyclic barrier for the simulated cluster's lock-step
/// supersteps (all workers finish layer l before any starts layer l+1,
/// matching the BSP execution of the paper's Algorithms 1-2).
class Barrier {
 public:
  explicit Barrier(size_t parties) : parties_(parties) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all parties have arrived; then all are released and the
  /// barrier resets for the next round.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    const size_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation != generation_; });
  }

 private:
  const size_t parties_;
  size_t arrived_ = 0;
  size_t generation_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace ecg

#endif  // ECGRAPH_COMMON_BARRIER_H_
