#ifndef ECGRAPH_COMMON_TRACE_H_
#define ECGRAPH_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ecg::obs {

/// Which clock a span lives on. The simulated cluster runs two timelines:
///   * kReal — measured wall time of the process (steady_clock), the time
///     the spans actually took on this machine's CPUs;
///   * kSim  — the modelled cluster time (per-worker compute + modelled
///     network seconds), the time the paper's experiments report.
/// The Chrome-trace exporter writes them as two separate "processes" so
/// both timelines are visible side by side in Perfetto / chrome://tracing.
enum class TraceDomain : uint8_t { kReal = 0, kSim = 1 };

/// One completed span. `name` must point at storage that outlives the
/// tracer (string literals; the recording hot path never copies).
struct TraceEvent {
  const char* name = nullptr;
  uint64_t ts_us = 0;   // start, microseconds in the event's domain
  uint64_t dur_us = 0;  // duration, microseconds
  uint32_t worker = 0;  // simulated worker id (args.worker)
  int32_t layer = -1;   // GNN layer, -1 = not layer-scoped (args.layer)
  uint32_t tid = 0;     // recording thread's registration index
  TraceDomain domain = TraceDomain::kReal;
};

namespace internal {
/// Global trace level: 0 = off, 1 = phase spans, 2 = + per-peer codec
/// detail. An atomic int so the disabled hot path is one relaxed load and
/// one predictable branch.
extern std::atomic<int> g_trace_level;
}  // namespace internal

/// True when tracing is enabled at `level` or finer. This is the only
/// check on the hot path; keep call sites shaped as
/// `if (TraceEnabled()) {...}` so a disabled tracer costs one branch.
inline bool TraceEnabled(int level = 1) {
  return internal::g_trace_level.load(std::memory_order_relaxed) >= level;
}

/// Thread-safe span recorder. Each recording thread owns a fixed-capacity
/// ring buffer (registered once under a mutex, then written lock-free by
/// its owner), so concurrent workers and pool threads never contend.
/// Export/snapshot is meant to run at quiescence (after a training job /
/// bench section), not concurrently with recording threads.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;  // events per thread

  /// Process-wide instance (never destroyed, so worker threads may record
  /// during static teardown without ordering hazards).
  static Tracer& Global();

  /// Turns tracing on at `level` (1 = phases, 2 = + codec detail), clears
  /// previously recorded events, and remembers `chrome_trace_path` as the
  /// Flush() destination ("" = snapshot-only). `capacity_per_thread` sizes
  /// each ring; events past capacity overwrite the oldest (and count as
  /// dropped).
  void Enable(int level, const std::string& chrome_trace_path = "",
              size_t capacity_per_thread = kDefaultCapacity);
  void Disable();

  int level() const { return internal::g_trace_level.load(); }
  const std::string& output_path() const { return path_; }

  /// Microseconds of real time since Enable() (0 when disabled).
  uint64_t NowUs() const;

  /// Records a completed real-time span. Caller must have checked
  /// TraceEnabled() — Record* assume an enabled tracer.
  void RecordComplete(const char* name, uint32_t worker, int32_t layer,
                      uint64_t ts_us, uint64_t dur_us);

  /// Records a span on the simulated timeline: `sim_start_seconds` is the
  /// worker's simulated clock when the modelled interval began.
  void RecordSimSpan(const char* name, uint32_t worker, int32_t layer,
                     double sim_start_seconds, double sim_dur_seconds);

  /// Serializes every recorded event as Chrome-trace JSON (the
  /// trace-event "X" complete-event format; loads in chrome://tracing and
  /// ui.perfetto.dev). Real spans are pid 1, simulated spans pid 2.
  Status WriteChromeTrace(const std::string& path) const;

  /// WriteChromeTrace to the path given at Enable(); no-op without one.
  Status Flush() const;

  /// Copies out all recorded events (test/inspection hook).
  std::vector<TraceEvent> Snapshot() const;

  /// Events that fell off the rings since Enable().
  uint64_t dropped_events() const;
  uint64_t recorded_events() const;

  /// Clears events and drop counters without toggling the level.
  void Reset();

 private:
  Tracer() = default;
  struct ThreadBuffer;
  ThreadBuffer* BufferForThisThread();

  mutable std::mutex mu_;  // guards buffers_ registration and export
  std::vector<ThreadBuffer*> buffers_;
  std::string path_;
  size_t capacity_ = kDefaultCapacity;
  std::atomic<uint64_t> epoch_gen_{0};  // bumped by Enable/Reset
  double start_real_s_ = 0.0;           // steady_clock origin of NowUs
};

/// RAII span: records [construction, destruction) as one real-time span
/// when tracing is enabled at `level`; otherwise the constructor is a
/// single branch and the destructor a dead store.
class TraceScope {
 public:
  TraceScope(const char* name, uint32_t worker, int32_t layer,
             int level = 1)
      : active_(TraceEnabled(level)) {
    if (active_) {
      name_ = name;
      worker_ = worker;
      layer_ = layer;
      start_us_ = Tracer::Global().NowUs();
    }
  }
  ~TraceScope() {
    if (active_) {
      Tracer& t = Tracer::Global();
      const uint64_t now = t.NowUs();
      t.RecordComplete(name_, worker_, layer_, start_us_,
                       now > start_us_ ? now - start_us_ : 0);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const bool active_;
  const char* name_ = nullptr;
  uint32_t worker_ = 0;
  int32_t layer_ = -1;
  uint64_t start_us_ = 0;
};

#define ECG_TRACE_CONCAT_INNER(a, b) a##b
#define ECG_TRACE_CONCAT(a, b) ECG_TRACE_CONCAT_INNER(a, b)

/// Phase-level span (trace level >= 1).
#define ECG_TRACE_SCOPE(name, worker, layer)            \
  ::ecg::obs::TraceScope ECG_TRACE_CONCAT(             \
      ecg_trace_scope_, __LINE__)((name), (worker), (layer), /*level=*/1)

/// Fine-grained span (per-peer codec work; trace level >= 2).
#define ECG_TRACE_SCOPE_DETAIL(name, worker, layer)     \
  ::ecg::obs::TraceScope ECG_TRACE_CONCAT(             \
      ecg_trace_scope_, __LINE__)((name), (worker), (layer), /*level=*/2)

/// Flushes both the tracer (Chrome trace, if a path was configured) and
/// the stats registry (JSONL summary). Safe to call repeatedly; used by
/// the CLI / bench atexit hooks.
Status FlushObservability();

/// Consumes the shared observability flags from (argc, argv) — recognized
/// flags are removed in place so downstream command parsers never see
/// them:
///   --trace_out=PATH    Chrome-trace JSON destination (implies level 1)
///   --trace_level=N     0 = off, 1 = phase spans, 2 = + per-peer codec
///                       detail
///   --stats_out=PATH    per-epoch JSONL destination (enables stats)
///   --log_level=LEVEL   debug | info | warning | error
/// Environment variables ECG_TRACE_OUT / ECG_TRACE_LEVEL / ECG_STATS_OUT /
/// ECG_LOG_LEVEL supply defaults when the flag is absent. When either
/// exporter ends up enabled, an atexit hook flushes both. Returns the
/// number of argv entries consumed.
int InitObservabilityFromArgs(int* argc, char** argv);

}  // namespace ecg::obs

#endif  // ECGRAPH_COMMON_TRACE_H_
