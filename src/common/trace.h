#ifndef ECGRAPH_COMMON_TRACE_H_
#define ECGRAPH_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ecg::obs {

/// Which clock a span lives on. The simulated cluster runs two timelines:
///   * kReal — measured wall time of the process (steady_clock), the time
///     the spans actually took on this machine's CPUs;
///   * kSim  — the modelled cluster time (per-worker compute + modelled
///     network seconds), the time the paper's experiments report.
/// The Chrome-trace exporter writes them as two separate "processes" so
/// both timelines are visible side by side in Perfetto / chrome://tracing.
enum class TraceDomain : uint8_t { kReal = 0, kSim = 1 };

/// Flow-event phase for cross-worker message correlation (Chrome trace
/// "s"/"t"/"f"): kStart on the sender when a message enters the hub,
/// kStep on each retransmitted delivery attempt, kEnd on the receiver
/// when the payload is accepted. kNone = an ordinary duration span.
enum class FlowPhase : uint8_t { kNone = 0, kStart, kStep, kEnd };

/// One completed span. `name` must point at storage that outlives the
/// tracer (string literals; the recording hot path never copies).
struct TraceEvent {
  const char* name = nullptr;
  uint64_t ts_us = 0;   // start, microseconds in the event's domain
  uint64_t dur_us = 0;  // duration, microseconds
  uint64_t flow_id = 0; // flow binding id (flow events only)
  uint32_t worker = 0;  // simulated worker id (args.worker)
  int32_t layer = -1;   // GNN layer, -1 = not layer-scoped (args.layer)
  uint32_t peer = 0;    // flow events: the other endpoint's worker id
  uint32_t tid = 0;     // recording thread's registration index
  TraceDomain domain = TraceDomain::kReal;
  FlowPhase flow = FlowPhase::kNone;
};

namespace internal {
/// Global trace level: 0 = off, 1 = phase spans, 2 = + per-peer codec
/// detail. An atomic int so the disabled hot path is one relaxed load and
/// one predictable branch.
extern std::atomic<int> g_trace_level;
}  // namespace internal

/// True when tracing is enabled at `level` or finer. This is the only
/// check on the hot path; keep call sites shaped as
/// `if (TraceEnabled()) {...}` so a disabled tracer costs one branch.
inline bool TraceEnabled(int level = 1) {
  return internal::g_trace_level.load(std::memory_order_relaxed) >= level;
}

/// Thread-safe span recorder. Each recording thread owns a fixed-capacity
/// ring buffer (registered once under a mutex, then written lock-free by
/// its owner), so concurrent workers and pool threads never contend.
/// Export/snapshot is meant to run at quiescence (after a training job /
/// bench section), not concurrently with recording threads.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;  // events per thread

  /// Process-wide instance (never destroyed, so worker threads may record
  /// during static teardown without ordering hazards).
  static Tracer& Global();

  /// Turns tracing on at `level` (1 = phases, 2 = + codec detail), clears
  /// previously recorded events, and remembers `chrome_trace_path` as the
  /// Flush() destination ("" = snapshot-only). `capacity_per_thread` sizes
  /// each ring; events past capacity overwrite the oldest (and count as
  /// dropped).
  void Enable(int level, const std::string& chrome_trace_path = "",
              size_t capacity_per_thread = kDefaultCapacity);
  void Disable();

  int level() const { return internal::g_trace_level.load(); }
  const std::string& output_path() const { return path_; }

  /// Microseconds of real time since Enable() (0 when disabled).
  uint64_t NowUs() const;

  /// Records a completed real-time span. Caller must have checked
  /// TraceEnabled() — Record* assume an enabled tracer.
  void RecordComplete(const char* name, uint32_t worker, int32_t layer,
                      uint64_t ts_us, uint64_t dur_us);

  /// Records a span on the simulated timeline: `sim_start_seconds` is the
  /// worker's simulated clock when the modelled interval began.
  void RecordSimSpan(const char* name, uint32_t worker, int32_t layer,
                     double sim_start_seconds, double sim_dur_seconds);

  /// Records an instantaneous flow event at NowUs() on the real timeline.
  /// All events of one logical message share `flow_id`; the exporter emits
  /// them as Chrome-trace "s"/"t"/"f" events, which viewers render as
  /// arrows from the sender's track to the receiver's. `worker` is the
  /// endpoint recording the event, `peer` the other endpoint.
  void RecordFlow(FlowPhase phase, const char* name, uint32_t worker,
                  uint32_t peer, int32_t layer, uint64_t flow_id);

  /// Serializes every recorded event as Chrome-trace JSON (the
  /// trace-event "X" complete-event format; loads in chrome://tracing and
  /// ui.perfetto.dev). Real spans are pid 1, simulated spans pid 2.
  Status WriteChromeTrace(const std::string& path) const;

  /// WriteChromeTrace to the path given at Enable(); no-op without one.
  Status Flush() const;

  /// Copies out all recorded events (test/inspection hook).
  std::vector<TraceEvent> Snapshot() const;

  /// Events that fell off the rings since Enable().
  uint64_t dropped_events() const;
  uint64_t recorded_events() const;

  /// Clears events and drop counters without toggling the level.
  void Reset();

  /// Associates the calling thread's tid with a simulated worker, naming
  /// its real-time track "worker-N" in exports (SetCurrentThreadWorker
  /// calls this; survives Reset/Enable).
  void TagCurrentThread(uint32_t worker);

 private:
  Tracer() = default;
  struct ThreadBuffer;
  ThreadBuffer* BufferForThisThread();

  mutable std::mutex mu_;  // guards buffers_ registration and export
  std::vector<ThreadBuffer*> buffers_;
  std::map<uint32_t, uint32_t> worker_by_tid_;  // real-track names
  std::string path_;
  size_t capacity_ = kDefaultCapacity;
  std::atomic<uint64_t> epoch_gen_{0};  // bumped by Enable/Reset
  double start_real_s_ = 0.0;           // steady_clock origin of NowUs
};

/// RAII span: records [construction, destruction) as one real-time span
/// when tracing is enabled at `level`; otherwise the constructor is a
/// single branch and the destructor a dead store.
class TraceScope {
 public:
  TraceScope(const char* name, uint32_t worker, int32_t layer,
             int level = 1)
      : active_(TraceEnabled(level)) {
    if (active_) {
      name_ = name;
      worker_ = worker;
      layer_ = layer;
      start_us_ = Tracer::Global().NowUs();
    }
  }
  ~TraceScope() {
    if (active_) {
      Tracer& t = Tracer::Global();
      const uint64_t now = t.NowUs();
      t.RecordComplete(name_, worker_, layer_, start_us_,
                       now > start_us_ ? now - start_us_ : 0);
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const bool active_;
  const char* name_ = nullptr;
  uint32_t worker_ = 0;
  int32_t layer_ = -1;
  uint64_t start_us_ = 0;
};

#define ECG_TRACE_CONCAT_INNER(a, b) a##b
#define ECG_TRACE_CONCAT(a, b) ECG_TRACE_CONCAT_INNER(a, b)

/// Phase-level span (trace level >= 1).
#define ECG_TRACE_SCOPE(name, worker, layer)            \
  ::ecg::obs::TraceScope ECG_TRACE_CONCAT(             \
      ecg_trace_scope_, __LINE__)((name), (worker), (layer), /*level=*/1)

/// Fine-grained span (per-peer codec work; trace level >= 2).
#define ECG_TRACE_SCOPE_DETAIL(name, worker, layer)     \
  ::ecg::obs::TraceScope ECG_TRACE_CONCAT(             \
      ecg_trace_scope_, __LINE__)((name), (worker), (layer), /*level=*/2)

/// Tags the calling thread with the simulated worker it is running
/// (SimulatedCluster::Run does this as each worker thread starts). The
/// tag names the thread's real-time track "worker-N" in exported traces
/// and selects the flight recorder's `flight_<worker>.json` filename.
void SetCurrentThreadWorker(uint32_t worker);

/// Worker tag of the calling thread, -1 when untagged (driver thread).
int32_t CurrentThreadWorker();

/// Flushes the tracer (Chrome trace, if a path was configured), the stats
/// registry (JSONL summary) and the metrics snapshot file (if configured
/// via --metrics_out). Safe to call repeatedly; used by the CLI / bench
/// atexit hooks.
Status FlushObservability();

/// Snapshot path set by --metrics_out / ECG_METRICS_OUT ("" = none);
/// FlushObservability writes the Prometheus text there atomically.
void SetMetricsSnapshotPath(const std::string& path);

/// Consumes the shared observability flags from (argc, argv) — recognized
/// flags are removed in place so downstream command parsers never see
/// them:
///   --trace_out=PATH    Chrome-trace JSON destination (implies level 1)
///   --trace_level=N     0 = off, 1 = phase spans, 2 = + per-peer codec
///                       detail
///   --stats_out=PATH    per-epoch JSONL destination (enables stats)
///   --log_level=LEVEL   debug | info | warning | error
///   --metrics_port=N    serve Prometheus text on :N (0 = ephemeral);
///                       enables the metrics plane
///   --metrics_out=PATH  write a Prometheus text snapshot to PATH at
///                       process exit (CI mode); enables the metrics plane
///   --flight_dir=DIR    arm the flight recorder: crash/SIGTERM dumps
///                       flight_<worker>.json into DIR
/// Environment variables ECG_TRACE_OUT / ECG_TRACE_LEVEL / ECG_STATS_OUT /
/// ECG_LOG_LEVEL / ECG_METRICS_PORT / ECG_METRICS_OUT / ECG_FLIGHT_DIR
/// supply defaults when the flag is absent. When any exporter ends up
/// enabled, an atexit hook flushes them all. Returns the number of argv
/// entries consumed.
int InitObservabilityFromArgs(int* argc, char** argv);

}  // namespace ecg::obs

#endif  // ECGRAPH_COMMON_TRACE_H_
