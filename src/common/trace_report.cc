#include "common/trace_report.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "common/json_lite.h"

namespace ecg::obs {

namespace {

constexpr uint32_t kUntagged = 0xFFFFFFFFu;

uint32_t WorkerOf(const json::JsonValue& obj, const char* key) {
  const json::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return kUntagged;
  return static_cast<uint32_t>(v->number);
}

/// Accumulates one flow marker: "s" counts on the sender→peer link as seen
/// from the sender; "t" (retransmit) and "f" (receive) are recorded on the
/// receiver's track, so their link is peer→worker.
void AddFlow(TraceReport* report, const std::string& ph, uint32_t worker,
             uint32_t peer) {
  if (worker == kUntagged || peer == kUntagged) return;
  if (ph == "s") {
    report->links[{worker, peer}].sends++;
  } else if (ph == "t") {
    report->links[{peer, worker}].retransmits++;
  } else if (ph == "f") {
    report->links[{peer, worker}].receives++;
  }
}

Status ParseChromeTrace(const json::JsonValue& root, TraceReport* report) {
  report->source = "chrome_trace";
  const json::JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument("trace has no traceEvents array");
  }
  for (const json::JsonValue& e : events->array) {
    if (!e.is_object()) continue;
    const std::string ph = e.GetString("ph", "");
    const std::string name = e.GetString("name", "");
    const json::JsonValue* args = e.Find("args");
    const uint32_t worker =
        args != nullptr && args->is_object() ? WorkerOf(*args, "worker")
                                             : kUntagged;
    if (ph == "X") {
      const std::string cat = e.GetString("cat", "");
      const double seconds = e.GetNumber("dur", 0.0) / 1e6;
      if (cat == "sim") {
        report->sim_phase_seconds[{worker, name}] += seconds;
        // Membership transitions mark the simulated timeline with
        // "elastic_*" spans; the trace carries no row counts, so only
        // the event tally and downtime are recoverable here.
        if (name.rfind("elastic", 0) == 0) {
          TraceReport::MembershipRow& row = report->membership[{worker, name}];
          row.events++;
          row.seconds += seconds;
        }
      } else if (cat == "real") {
        report->real_span_seconds[{worker, name}] += seconds;
      }
    } else if (ph == "s" || ph == "t" || ph == "f") {
      const uint32_t peer = args != nullptr && args->is_object()
                                ? WorkerOf(*args, "peer")
                                : kUntagged;
      AddFlow(report, ph, worker, peer);
    }
  }
  return Status::OK();
}

Status ParseFlightDump(const json::JsonValue& root, TraceReport* report) {
  report->source = "flight";
  report->reason = root.GetString("reason", "");
  report->commit = root.GetString("commit", "");
  const json::JsonValue* spans = root.Find("spans");
  if (spans == nullptr || !spans->is_array()) {
    return Status::InvalidArgument("flight dump has no spans array");
  }
  for (const json::JsonValue& s : spans->array) {
    if (!s.is_object()) continue;
    const std::string name = s.GetString("name", "");
    const uint32_t worker = WorkerOf(s, "worker");
    const std::string flow = s.GetString("flow", "");
    if (!flow.empty()) {
      AddFlow(report, flow, worker, WorkerOf(s, "peer"));
      continue;
    }
    const double seconds = s.GetNumber("dur_us", 0.0) / 1e6;
    if (s.GetString("domain", "") == "sim") {
      report->sim_phase_seconds[{worker, name}] += seconds;
    } else {
      report->real_span_seconds[{worker, name}] += seconds;
    }
  }
  const json::JsonValue* sections = root.Find("sections");
  if (sections != nullptr && sections->is_object()) {
    const json::JsonValue* counters = sections->Find("fault_counters");
    if (counters != nullptr && counters->is_object()) {
      for (const auto& [key, value] : counters->object) {
        if (value.is_number()) report->fault_counters[key] = value.number;
      }
    }
    // Membership history from the elastic_state section: one row per
    // (worker, kind) with full detail (rows moved + downtime).
    const json::JsonValue* elastic = sections->Find("elastic_state");
    if (elastic != nullptr && elastic->is_object()) {
      const json::JsonValue* events = elastic->Find("events");
      if (events != nullptr && events->is_array()) {
        for (const json::JsonValue& e : events->array) {
          if (!e.is_object()) continue;
          const std::string kind = e.GetString("kind", "");
          if (kind.empty()) continue;
          const uint32_t worker = WorkerOf(e, "worker");
          TraceReport::MembershipRow& row =
              report->membership[{worker, kind}];
          row.events++;
          row.moved_rows +=
              static_cast<uint64_t>(e.GetNumber("moved_rows", 0.0));
          row.seconds += e.GetNumber("downtime_seconds", 0.0);
        }
      }
    }
  }
  return Status::OK();
}

// ---- formatting ----------------------------------------------------------

using PhaseTable = std::map<std::pair<uint32_t, std::string>, double>;

std::string WorkerHeading(uint32_t worker) {
  return worker == kUntagged ? "other" : "w" + std::to_string(worker);
}

/// phase × worker seconds table, phases sorted by total descending so the
/// dominant cost is the first row.
void AppendPhaseTable(std::string* out, const std::string& title,
                      const PhaseTable& table) {
  if (table.empty()) return;
  std::set<uint32_t> workers;
  std::map<std::string, double> totals;
  for (const auto& [key, seconds] : table) {
    workers.insert(key.first);
    totals[key.second] += seconds;
  }
  std::vector<std::pair<std::string, double>> order(totals.begin(),
                                                    totals.end());
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  char buf[64];
  *out += title + "\n";
  *out += "  " + std::string(22, ' ');
  for (uint32_t w : workers) {
    std::snprintf(buf, sizeof(buf), "%10s", WorkerHeading(w).c_str());
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%12s\n", "total");
  *out += buf;
  for (const auto& [phase, total] : order) {
    std::snprintf(buf, sizeof(buf), "  %-22.22s", phase.c_str());
    *out += buf;
    for (uint32_t w : workers) {
      const auto it = table.find({w, phase});
      std::snprintf(buf, sizeof(buf), "%10.4f",
                    it == table.end() ? 0.0 : it->second);
      *out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%12.4f\n", total);
    *out += buf;
  }
  *out += "\n";
}

}  // namespace

Result<TraceReport> BuildTraceReport(const std::string& json_text) {
  json::JsonValue root;
  ECG_ASSIGN_OR_RETURN(root, json::Parse(json_text));
  if (!root.is_object()) {
    return Status::InvalidArgument("artefact root is not a JSON object");
  }
  TraceReport report;
  if (root.Find("traceEvents") != nullptr) {
    ECG_RETURN_IF_ERROR(ParseChromeTrace(root, &report));
  } else if (root.Find("spans") != nullptr) {
    ECG_RETURN_IF_ERROR(ParseFlightDump(root, &report));
  } else {
    return Status::InvalidArgument(
        "unrecognized artefact: neither a Chrome trace (traceEvents) nor "
        "a flight dump (spans)");
  }
  return report;
}

std::string FormatTraceReport(const TraceReport& report) {
  std::string out = "source: " + report.source;
  if (!report.reason.empty()) out += "  reason: " + report.reason;
  if (!report.commit.empty()) out += "  commit: " + report.commit;
  out += "\n\n";

  // Roll the sim phases up into the three-way split first: charged comm,
  // barrier stall, and wire time hidden under compute.
  std::map<std::pair<uint32_t, std::string>, double> rollup;
  for (const auto& [key, seconds] : report.sim_phase_seconds) {
    const std::string& phase = key.second;
    const char* bucket = phase == "barrier_stall"
                             ? "stall"
                             : phase == "overlap_hidden" ? "hidden" : "comm";
    rollup[{key.first, bucket}] += seconds;
  }
  AppendPhaseTable(&out, "sim clock — comm vs stall vs hidden (s):", rollup);
  AppendPhaseTable(&out, "sim clock — by phase (s):",
                   report.sim_phase_seconds);
  AppendPhaseTable(&out, "real clock — by span (s):",
                   report.real_span_seconds);

  if (!report.links.empty()) {
    out += "message flows (from flow events):\n";
    out += "  link            sends     retransmits   receives\n";
    char buf[96];
    for (const auto& [link, flow] : report.links) {
      std::snprintf(buf, sizeof(buf),
                    "  %2u -> %-2u   %10llu  %12llu %10llu\n", link.first,
                    link.second,
                    static_cast<unsigned long long>(flow.sends),
                    static_cast<unsigned long long>(flow.retransmits),
                    static_cast<unsigned long long>(flow.receives));
      out += buf;
    }
    out += "\n";
  }

  if (!report.fault_counters.empty()) {
    out += "fault counters:\n";
    char buf[96];
    for (const auto& [name, value] : report.fault_counters) {
      std::snprintf(buf, sizeof(buf), "  %-22.22s %14.0f\n", name.c_str(),
                    value);
      out += buf;
    }
    out += "\n";
  }

  if (!report.membership.empty()) {
    out += "membership events:\n";
    out += "  worker  kind                    events   moved_rows"
           "   downtime_s\n";
    char buf[128];
    for (const auto& [key, row] : report.membership) {
      std::snprintf(buf, sizeof(buf), "  %-6s  %-22.22s %7llu %12llu %12.4f\n",
                    WorkerHeading(key.first).c_str(), key.second.c_str(),
                    static_cast<unsigned long long>(row.events),
                    static_cast<unsigned long long>(row.moved_rows),
                    row.seconds);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace ecg::obs
