#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/flight_recorder.h"
#include "common/kernels.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/metrics_http.h"
#include "common/stats.h"

namespace ecg::obs {

namespace internal {
std::atomic<int> g_trace_level{0};
}  // namespace internal

namespace {

double RealNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// One thread's ring. Only the owning thread writes `events` and bumps
/// `count`; readers (export/snapshot) run at quiescence and take the
/// registration mutex, so the relaxed counter is a publication barrier in
/// practice, not a synchronization point.
struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(size_t capacity, uint32_t tid)
      : events(capacity), tid(tid) {}
  std::vector<TraceEvent> events;
  std::atomic<uint64_t> count{0};  // total ever recorded; ring index mod size
  const uint32_t tid;
  uint64_t generation = 0;  // which Enable/Reset epoch the contents belong to
};

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // intentionally leaked
  return *tracer;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  // Cache {generation, buffer} per thread; a stale generation means
  // Enable()/Reset() happened since this thread last recorded, so its
  // counter restarts from zero for the new trace.
  thread_local ThreadBuffer* buffer = nullptr;
  thread_local uint64_t buffer_gen = ~0ull;
  const uint64_t gen = epoch_gen_.load(std::memory_order_acquire);
  if (buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    buffer = new ThreadBuffer(capacity_,
                              static_cast<uint32_t>(buffers_.size()));
    buffer->generation = gen;
    buffers_.push_back(buffer);
    buffer_gen = gen;
  } else if (buffer_gen != gen) {
    std::lock_guard<std::mutex> lock(mu_);
    buffer->count.store(0, std::memory_order_relaxed);
    if (buffer->events.size() != capacity_) {
      buffer->events.assign(capacity_, TraceEvent{});
    }
    buffer->generation = gen;
    buffer_gen = gen;
  }
  return buffer;
}

void Tracer::Enable(int level, const std::string& chrome_trace_path,
                    size_t capacity_per_thread) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    path_ = chrome_trace_path;
    capacity_ = capacity_per_thread == 0 ? 1 : capacity_per_thread;
    start_real_s_ = RealNowSeconds();
  }
  epoch_gen_.fetch_add(1, std::memory_order_release);
  internal::g_trace_level.store(level, std::memory_order_relaxed);
}

void Tracer::Disable() {
  internal::g_trace_level.store(0, std::memory_order_relaxed);
}

uint64_t Tracer::NowUs() const {
  return static_cast<uint64_t>((RealNowSeconds() - start_real_s_) * 1e6);
}

void Tracer::RecordComplete(const char* name, uint32_t worker,
                            int32_t layer, uint64_t ts_us, uint64_t dur_us) {
  ThreadBuffer* buf = BufferForThisThread();
  const uint64_t n = buf->count.load(std::memory_order_relaxed);
  TraceEvent& e = buf->events[n % buf->events.size()];
  e.name = name;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.flow_id = 0;
  e.worker = worker;
  e.layer = layer;
  e.peer = 0;
  e.tid = buf->tid;
  e.domain = TraceDomain::kReal;
  e.flow = FlowPhase::kNone;
  buf->count.store(n + 1, std::memory_order_release);
}

void Tracer::RecordSimSpan(const char* name, uint32_t worker, int32_t layer,
                           double sim_start_seconds, double sim_dur_seconds) {
  ThreadBuffer* buf = BufferForThisThread();
  const uint64_t n = buf->count.load(std::memory_order_relaxed);
  TraceEvent& e = buf->events[n % buf->events.size()];
  e.name = name;
  e.ts_us = static_cast<uint64_t>(sim_start_seconds * 1e6);
  e.dur_us = static_cast<uint64_t>(sim_dur_seconds * 1e6);
  e.flow_id = 0;
  e.worker = worker;
  e.layer = layer;
  e.peer = 0;
  e.tid = buf->tid;
  e.domain = TraceDomain::kSim;
  e.flow = FlowPhase::kNone;
  buf->count.store(n + 1, std::memory_order_release);
}

void Tracer::RecordFlow(FlowPhase phase, const char* name, uint32_t worker,
                        uint32_t peer, int32_t layer, uint64_t flow_id) {
  ThreadBuffer* buf = BufferForThisThread();
  const uint64_t n = buf->count.load(std::memory_order_relaxed);
  TraceEvent& e = buf->events[n % buf->events.size()];
  e.name = name;
  e.ts_us = NowUs();
  e.dur_us = 0;
  e.flow_id = flow_id;
  e.worker = worker;
  e.layer = layer;
  e.peer = peer;
  e.tid = buf->tid;
  e.domain = TraceDomain::kReal;
  e.flow = phase;
  buf->count.store(n + 1, std::memory_order_release);
}

void Tracer::TagCurrentThread(uint32_t worker) {
  ThreadBuffer* buf = BufferForThisThread();
  std::lock_guard<std::mutex> lock(mu_);
  worker_by_tid_[buf->tid] = worker;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t gen = epoch_gen_.load(std::memory_order_acquire);
  for (const ThreadBuffer* buf : buffers_) {
    if (buf->generation != gen) continue;  // stale contents
    const uint64_t n = buf->count.load(std::memory_order_acquire);
    const uint64_t kept = std::min<uint64_t>(n, buf->events.size());
    for (uint64_t i = 0; i < kept; ++i) out.push_back(buf->events[i]);
  }
  return out;
}

uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t gen = epoch_gen_.load(std::memory_order_acquire);
  uint64_t dropped = 0;
  for (const ThreadBuffer* buf : buffers_) {
    if (buf->generation != gen) continue;
    const uint64_t n = buf->count.load(std::memory_order_acquire);
    if (n > buf->events.size()) dropped += n - buf->events.size();
  }
  return dropped;
}

uint64_t Tracer::recorded_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t gen = epoch_gen_.load(std::memory_order_acquire);
  uint64_t total = 0;
  for (const ThreadBuffer* buf : buffers_) {
    if (buf->generation != gen) continue;
    total += buf->count.load(std::memory_order_acquire);
  }
  return total;
}

void Tracer::Reset() {
  epoch_gen_.fetch_add(1, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  start_real_s_ = RealNowSeconds();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open trace output '" + path + "'");
  }
  const std::vector<TraceEvent> events = Snapshot();
  std::map<uint32_t, uint32_t> worker_by_tid;
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker_by_tid = worker_by_tid_;
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Process/thread naming metadata so the two clock domains read as two
  // labelled tracks in the viewer.
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"real (measured CPU time)\"}},\n";
  out << "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"sim (modelled cluster time)\"}}";
  std::vector<bool> tid_named;
  std::vector<bool> sim_worker_named;
  char buf[256];
  for (const TraceEvent& e : events) {
    if (e.name == nullptr) continue;
    const bool sim = e.domain == TraceDomain::kSim;
    const uint32_t tid = sim ? e.worker : e.tid;
    auto& named = sim ? sim_worker_named : tid_named;
    if (tid >= named.size()) named.resize(tid + 1, false);
    if (!named[tid]) {
      named[tid] = true;
      // Real-time tracks tagged by SetCurrentThreadWorker become
      // per-worker tracks ("worker-N"); untagged threads (driver, pool)
      // keep their registration index.
      const auto tag = worker_by_tid.find(tid);
      if (!sim && tag != worker_by_tid.end()) {
        std::snprintf(buf, sizeof(buf),
                      ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                      "\"name\":\"thread_name\","
                      "\"args\":{\"name\":\"worker-%u\"}}",
                      tid, tag->second);
      } else {
        std::snprintf(buf, sizeof(buf),
                      ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
                      "\"name\":\"thread_name\",\"args\":{\"name\":\"%s%u\"}}",
                      sim ? 2 : 1, tid, sim ? "sim-worker-" : "thread-", tid);
      }
      out << buf;
    }
    if (e.flow != FlowPhase::kNone) {
      // Chrome-trace flow events: "s" on the sender's track, "t" per
      // retransmit, "f" (bp:"e" = bind to enclosing slice) on the
      // receiver's. Viewers draw these as arrows between tracks, which is
      // the cross-worker comm causality view. The id is hex text: 64-bit
      // ids do not survive JSON number parsing.
      const char ph = e.flow == FlowPhase::kStart
                          ? 's'
                          : e.flow == FlowPhase::kStep ? 't' : 'f';
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"%c\","
                    "\"id\":\"0x%" PRIx64 "\",%s\"pid\":1,\"tid\":%u,"
                    "\"ts\":%" PRIu64 ",\"args\":{\"worker\":%u,\"peer\":%u",
                    e.name, ph, e.flow_id,
                    e.flow == FlowPhase::kEnd ? "\"bp\":\"e\"," : "", tid,
                    e.ts_us, e.worker, e.peer);
      out << buf;
      if (e.layer >= 0) out << ",\"layer\":" << e.layer;
      out << "}}";
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"pid\":%d,\"tid\":%u,\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64 ",\"args\":{\"worker\":%u",
                  e.name, sim ? "sim" : "real", sim ? 2 : 1, tid, e.ts_us,
                  e.dur_us, e.worker);
    out << buf;
    if (e.layer >= 0) out << ",\"layer\":" << e.layer;
    out << "}}";
  }
  out << "\n]}\n";
  if (!out.good()) {
    return Status::Internal("short write to trace output '" + path + "'");
  }
  return Status::OK();
}

Status Tracer::Flush() const {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = path_;
  }
  if (path.empty()) return Status::OK();
  return WriteChromeTrace(path);
}

namespace {

thread_local int32_t t_current_worker = -1;

std::mutex g_metrics_snapshot_mu;
std::string g_metrics_snapshot_path;

}  // namespace

void SetCurrentThreadWorker(uint32_t worker) {
  t_current_worker = static_cast<int32_t>(worker);
  Tracer::Global().TagCurrentThread(worker);
}

int32_t CurrentThreadWorker() { return t_current_worker; }

void SetMetricsSnapshotPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_metrics_snapshot_mu);
  g_metrics_snapshot_path = path;
}

Status FlushObservability() {
  Status trace_status = Tracer::Global().Flush();
  StatsRegistry::Global().FlushAll();
  std::string metrics_path;
  {
    std::lock_guard<std::mutex> lock(g_metrics_snapshot_mu);
    metrics_path = g_metrics_snapshot_path;
  }
  if (!metrics_path.empty()) {
    Status metrics_status =
        MetricsRegistry::Global().WriteSnapshotFile(metrics_path);
    if (trace_status.ok()) trace_status = metrics_status;
  }
  return trace_status;
}

namespace {

/// Matches "--name=value"; on match copies the value out.
bool ConsumeFlag(const char* arg, const char* name, std::string* value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

void FlushAtExit() { (void)FlushObservability(); }

}  // namespace

int InitObservabilityFromArgs(int* argc, char** argv) {
  std::string trace_out, stats_out, trace_level, log_level, kernels;
  std::string metrics_port, metrics_out, flight_dir;
  if (const char* env = std::getenv("ECG_TRACE_OUT")) trace_out = env;
  if (const char* env = std::getenv("ECG_STATS_OUT")) stats_out = env;
  if (const char* env = std::getenv("ECG_TRACE_LEVEL")) trace_level = env;
  if (const char* env = std::getenv("ECG_LOG_LEVEL")) log_level = env;
  if (const char* env = std::getenv("ECG_METRICS_PORT")) metrics_port = env;
  if (const char* env = std::getenv("ECG_METRICS_OUT")) metrics_out = env;
  if (const char* env = std::getenv("ECG_FLIGHT_DIR")) flight_dir = env;

  int kept = 1;
  int consumed = 0;
  for (int i = 1; i < *argc; ++i) {
    if (ConsumeFlag(argv[i], "--trace_out", &trace_out) ||
        ConsumeFlag(argv[i], "--stats_out", &stats_out) ||
        ConsumeFlag(argv[i], "--trace_level", &trace_level) ||
        ConsumeFlag(argv[i], "--log_level", &log_level) ||
        ConsumeFlag(argv[i], "--kernels", &kernels) ||
        ConsumeFlag(argv[i], "--metrics_port", &metrics_port) ||
        ConsumeFlag(argv[i], "--metrics_out", &metrics_out) ||
        ConsumeFlag(argv[i], "--flight_dir", &flight_dir)) {
      ++consumed;
    } else {
      argv[kept++] = argv[i];
    }
  }
  if (kept < *argc) argv[kept] = nullptr;
  *argc = kept;

  // --kernels overrides the ECG_KERNELS environment variable (which the
  // registry resolves itself on first dispatch).
  if (!kernels.empty() && !kern::ForceVariant(kernels)) {
    ECG_LOG(Warning) << "--kernels='" << kernels
                     << "' is unknown or unsupported on this CPU; using "
                        "auto dispatch (scalar|avx2|avx512|neon|auto)";
  }

  if (!log_level.empty()) {
    if (log_level == "debug") {
      SetLogLevel(LogLevel::kDebug);
    } else if (log_level == "info") {
      SetLogLevel(LogLevel::kInfo);
    } else if (log_level == "warning") {
      SetLogLevel(LogLevel::kWarning);
    } else if (log_level == "error") {
      SetLogLevel(LogLevel::kError);
    } else {
      ECG_LOG(Warning) << "unknown --log_level '" << log_level
                       << "' (debug|info|warning|error)";
    }
  }

  // --trace_out alone implies level 1; an explicit --trace_level wins
  // (including --trace_level=0 to collect nothing but still strip flags).
  int level = -1;
  if (!trace_level.empty()) level = std::atoi(trace_level.c_str());
  if (level < 0) level = trace_out.empty() ? 0 : 1;
  if (level > 0) Tracer::Global().Enable(level, trace_out);
  if (!stats_out.empty()) StatsRegistry::Global().Enable(stats_out);

  // Metrics plane: a port serves live scrapes, --metrics_out adds a CI
  // snapshot at exit; either one turns collection on. The stats registry
  // is brought up in memory-only mode when it is not already writing
  // JSONL, because the stats->metrics bridge only sees Record() calls.
  bool metrics_on = false;
  if (!metrics_port.empty()) {
    metrics_on = true;
    const int port = std::atoi(metrics_port.c_str());
    Status s = MetricsHttpServer::Global().Start(
        static_cast<uint16_t>(port < 0 ? 0 : port));
    if (s.ok()) {
      ECG_LOG(Info) << "metrics exposition on http://0.0.0.0:"
                    << MetricsHttpServer::Global().port() << "/metrics";
    } else {
      ECG_LOG(Warning) << "--metrics_port: " << s.ToString();
    }
  }
  if (!metrics_out.empty()) {
    metrics_on = true;
    SetMetricsSnapshotPath(metrics_out);
  }
  if (metrics_on) {
    MetricsRegistry::Global().Enable();
    if (!StatsRegistry::Global().enabled()) {
      StatsRegistry::Global().Enable("");
    }
  }

  if (!flight_dir.empty()) {
    Status s = FlightRecorder::Global().Arm(flight_dir);
    if (!s.ok()) ECG_LOG(Warning) << "--flight_dir: " << s.ToString();
  }

  if (level > 0 || !stats_out.empty() || metrics_on) {
    static bool registered = false;
    if (!registered) {
      registered = true;
      std::atexit(FlushAtExit);
    }
  }
  return consumed;
}

}  // namespace ecg::obs
