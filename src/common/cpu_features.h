#ifndef ECGRAPH_COMMON_CPU_FEATURES_H_
#define ECGRAPH_COMMON_CPU_FEATURES_H_

namespace ecg::kern {

/// SIMD capabilities of the host CPU, probed once at runtime. On x86 the
/// probe goes through the compiler's CPUID helpers; on AArch64 through the
/// ELF HWCAP auxiliary vector. Everything else reports scalar-only.
struct CpuFeatures {
  bool avx2 = false;
  /// True only when the F+BW+VL subset this repo's kernels use is present
  /// (Skylake-SP and later; BW/VL cover the byte/word integer ops of the
  /// int8 GEMM path).
  bool avx512 = false;
  bool neon = false;
};

/// Detects (and caches) the host's features. Thread-safe.
const CpuFeatures& DetectCpuFeatures();

}  // namespace ecg::kern

#endif  // ECGRAPH_COMMON_CPU_FEATURES_H_
