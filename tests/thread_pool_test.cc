#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/barrier.h"

namespace ecg {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, GrainLimitsSplitting) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(10, 100, [&](size_t begin, size_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, SerialModeRunsInline) {
  ThreadPool::SetSerialMode(true);
  std::atomic<int> calls{0};
  ThreadPool::Global().ParallelFor(1000, 1, [&](size_t begin, size_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1000u);
  });
  EXPECT_EQ(calls.load(), 1);
  ThreadPool::SetSerialMode(false);
  EXPECT_FALSE(ThreadPool::serial_mode());
}

TEST(ThreadPoolTest, SerialModeIsThreadLocal) {
  ThreadPool::SetSerialMode(true);
  bool other_thread_serial = true;
  std::thread t([&] { other_thread_serial = ThreadPool::serial_mode(); });
  t.join();
  EXPECT_FALSE(other_thread_serial);
  ThreadPool::SetSerialMode(false);
}

TEST(ThreadPoolTest, ManySmallParallelForsDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, 1, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 200u * 17);
}

TEST(BarrierTest, AlignsThreadsAcrossGenerations) {
  const int parties = 4;
  Barrier barrier(parties);
  std::atomic<int> phase_counts[3] = {{0}, {0}, {0}};
  std::vector<std::thread> threads;
  for (int p = 0; p < parties; ++p) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < 3; ++phase) {
        phase_counts[phase].fetch_add(1);
        barrier.Wait();
        // After the barrier, everyone must have bumped this phase.
        EXPECT_EQ(phase_counts[phase].load(), parties);
        barrier.Wait();
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace ecg
