#include "core/sampling.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/sampling_trainer.h"
#include "graph/datasets.h"
#include "graph/generator.h"

namespace ecg::core {
namespace {

graph::Graph DenseGraph() {
  graph::SbmConfig c;
  c.num_vertices = 400;
  c.num_classes = 4;
  c.avg_degree = 20.0;
  c.feature_dim = 8;
  c.homophily = 0.8;
  c.seed = 33;
  return *graph::GenerateSbm(c);
}

TEST(SampleLayerGraphTest, ZeroFanoutCopiesFullStructure) {
  const graph::Graph g = DenseGraph();
  auto sg = SampleLayerGraph(g, 0, 1);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(sg->adj.size(), g.num_edges());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(sg->SampledDegree(v), g.Degree(v));
  }
}

TEST(SampleLayerGraphTest, SampledEdgesAreSubsetAndSymmetric) {
  const graph::Graph g = DenseGraph();
  auto sg = SampleLayerGraph(g, 5, 42);
  ASSERT_TRUE(sg.ok());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    const auto full = g.Neighbors(v);
    const std::set<uint32_t> full_set(full.begin(), full.end());
    for (uint64_t i = sg->offsets[v]; i < sg->offsets[v + 1]; ++i) {
      const uint32_t u = sg->adj[i];
      EXPECT_TRUE(full_set.count(u)) << "sampled edge not in graph";
      // Symmetry: u must also list v.
      bool back = false;
      for (uint64_t j = sg->offsets[u]; j < sg->offsets[u + 1]; ++j) {
        back |= (sg->adj[j] == v);
      }
      EXPECT_TRUE(back) << "asymmetric sampled edge " << v << "-" << u;
    }
  }
}

TEST(SampleLayerGraphTest, FanoutBoundsNominations) {
  const graph::Graph g = DenseGraph();
  const uint32_t fanout = 4;
  auto sg = SampleLayerGraph(g, fanout, 7);
  ASSERT_TRUE(sg.ok());
  // Each vertex nominates <= fanout edges; with symmetrization its degree
  // can exceed fanout but is bounded by 2*fanout in expectation terms and
  // strictly reduces dense neighbourhoods.
  double avg = 0;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    avg += sg->SampledDegree(v);
  }
  avg /= g.num_vertices();
  EXPECT_LT(avg, 2.5 * fanout);
  EXPECT_LT(sg->adj.size(), g.num_edges());
}

TEST(SampleLayerGraphTest, DeterministicGivenSeed) {
  const graph::Graph g = DenseGraph();
  auto a = SampleLayerGraph(g, 5, 99);
  auto b = SampleLayerGraph(g, 5, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->adj, b->adj);
  auto c = SampleLayerGraph(g, 5, 100);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->adj, c->adj);
}

TEST(SamplingTrainerTest, LearnsOnTiny) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  SamplingTrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.fanouts = {8, 8};
  opt.fp_mode = FpMode::kCompressed;
  opt.bp_mode = BpMode::kCompressed;
  opt.exchange.fp_bits = 8;
  opt.exchange.bp_bits = 8;
  opt.epochs = 40;
  auto r = TrainSampled(g, 3, opt);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->best_val_acc, 0.85);
  EXPECT_GT(r->total_comm_bytes, 0u);
}

TEST(SamplingTrainerTest, SmallerFanoutShipsFewerBytes) {
  const graph::Graph g = DenseGraph();
  graph::Graph g2 = g;
  g2.SetSplits({0, 1, 2, 3, 4, 5, 6, 7}, {8, 9}, {10, 11});

  auto run = [&](uint32_t fanout) {
    SamplingTrainOptions opt;
    opt.model.num_layers = 2;
    opt.model.hidden_dim = 8;
    opt.fanouts = {fanout, fanout};
    opt.fp_mode = FpMode::kExact;
    opt.bp_mode = BpMode::kExact;
    opt.epochs = 3;
    return TrainSampled(g2, 3, opt);
  };
  auto small = run(2);
  auto large = run(12);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(small->total_comm_bytes, large->total_comm_bytes);
}

TEST(SamplingTrainerTest, OnlineSamplingCostsMoreTime) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  SamplingTrainOptions offline;
  offline.model.num_layers = 2;
  offline.fanouts = {5, 5};
  offline.fp_mode = FpMode::kExact;
  offline.bp_mode = BpMode::kExact;
  offline.epochs = 5;
  SamplingTrainOptions online = offline;
  online.online_sampling = true;

  auto r_off = TrainSampled(g, 3, offline);
  auto r_on = TrainSampled(g, 3, online);
  ASSERT_TRUE(r_off.ok());
  ASSERT_TRUE(r_on.ok());
  // Identical math (same seeds); the online variant pays sampling RPCs.
  EXPECT_NEAR(r_off->epochs.back().loss, r_on->epochs.back().loss, 1e-6);
  EXPECT_GT(r_on->total_sim_seconds, r_off->total_sim_seconds);
}

TEST(SamplingTrainerTest, RejectsStatefulCompensationModes) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  SamplingTrainOptions opt;
  opt.model.num_layers = 2;
  opt.fanouts = {5, 5};
  opt.fp_mode = FpMode::kReqEc;
  EXPECT_EQ(TrainSampled(g, 2, opt).status().code(),
            StatusCode::kInvalidArgument);
  opt.fp_mode = FpMode::kExact;
  opt.bp_mode = BpMode::kResEc;
  EXPECT_EQ(TrainSampled(g, 2, opt).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SamplingTrainerTest, RejectsWrongFanoutArity) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  SamplingTrainOptions opt;
  opt.model.num_layers = 3;
  opt.fanouts = {5, 5};  // needs 3
  opt.fp_mode = FpMode::kExact;
  opt.bp_mode = BpMode::kExact;
  EXPECT_EQ(TrainSampled(g, 2, opt).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ecg::core
