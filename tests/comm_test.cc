#include "dist/comm.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace ecg::dist {
namespace {

TEST(CommStatsTest, RecordsPerWorkerTraffic) {
  CommStats stats(3);
  stats.RecordSend(0, 1, 100);
  stats.RecordSend(0, 2, 50);
  stats.RecordSend(2, 0, 25);
  EXPECT_EQ(stats.TotalBytes(), 175u);
  EXPECT_EQ(stats.TotalMessages(), 3u);
  EXPECT_EQ(stats.BytesSent(0), 150u);
  EXPECT_EQ(stats.BytesSent(2), 25u);
  stats.Reset();
  EXPECT_EQ(stats.TotalBytes(), 0u);
}

TEST(MessageHubTest, PointToPointDelivery) {
  MessageHub hub(2);
  hub.Send(0, 1, 7, {1, 2, 3});
  const auto payload = hub.Recv(1, 0, 7);
  EXPECT_EQ(payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(hub.stats().TotalBytes(), 3u);
}

TEST(MessageHubTest, TagsIsolateSupersteps) {
  MessageHub hub(2);
  hub.Send(0, 1, MessageHub::MakeTag(5, 2, 1), {5});
  hub.Send(0, 1, MessageHub::MakeTag(6, 2, 1), {6});
  hub.Send(0, 1, MessageHub::MakeTag(5, 3, 1), {7});
  // Receive out of order; each tag gets its own payload.
  EXPECT_EQ(hub.Recv(1, 0, MessageHub::MakeTag(5, 3, 1))[0], 7);
  EXPECT_EQ(hub.Recv(1, 0, MessageHub::MakeTag(6, 2, 1))[0], 6);
  EXPECT_EQ(hub.Recv(1, 0, MessageHub::MakeTag(5, 2, 1))[0], 5);
}

TEST(MessageHubTest, MakeTagIsCollisionFreeAcrossFields) {
  const uint64_t t1 = MessageHub::MakeTag(1, 0, 0);
  const uint64_t t2 = MessageHub::MakeTag(0, 1, 0);
  const uint64_t t3 = MessageHub::MakeTag(0, 0, 1);
  EXPECT_NE(t1, t2);
  EXPECT_NE(t2, t3);
  EXPECT_NE(t1, t3);
}

TEST(MessageHubTest, TagRoundTripsEpochLayerKind) {
  const uint32_t epochs[] = {0u, 1u, 57u, 0xFFFFFFFEu, 0xFFFFFFFFu};
  const uint16_t layers[] = {0, 1, 3, 0xFFFF};
  const uint16_t kinds[] = {0, 1, 2, 3, 0xFFFF};
  for (uint32_t e : epochs) {
    for (uint16_t l : layers) {
      for (uint16_t k : kinds) {
        const uint64_t tag = MessageHub::MakeTag(e, l, k);
        EXPECT_EQ(MessageHub::TagEpoch(tag), e);
        EXPECT_EQ(MessageHub::TagLayer(tag), l);
        EXPECT_EQ(MessageHub::TagKind(tag), k);
      }
    }
  }
}

TEST(MessageHubTest, MakeTagCollisionFreeOverCoordinateSweep) {
  // Every (epoch, layer, kind) triple a training job can produce must map
  // to a distinct tag — a collision would cross-deliver supersteps.
  std::set<uint64_t> seen;
  size_t count = 0;
  for (uint32_t e = 0; e < 50; ++e) {
    for (uint16_t l = 0; l < 8; ++l) {
      for (uint16_t k = 1; k <= 3; ++k) {
        seen.insert(MessageHub::MakeTag(e, l, k));
        ++count;
      }
    }
  }
  EXPECT_EQ(seen.size(), count);
}

TEST(EnvelopeTest, FrameParseRoundTrip) {
  const uint64_t tag = MessageHub::MakeTag(3, 1, 2);
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 250, 0, 7};
  const auto frame = MessageHub::FrameEnvelope(tag, /*attempt=*/2, payload);
  EXPECT_EQ(frame.size(), MessageHub::kEnvelopeBytes + payload.size());
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(MessageHub::ParseEnvelope(frame, tag, &decoded).ok());
  EXPECT_EQ(decoded, payload);
}

TEST(EnvelopeTest, EmptyPayloadRoundTrips) {
  const uint64_t tag = MessageHub::MakeTag(0, 0, 1);
  const auto frame = MessageHub::FrameEnvelope(tag, 0, {});
  std::vector<uint8_t> decoded = {9};
  ASSERT_TRUE(MessageHub::ParseEnvelope(frame, tag, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(EnvelopeTest, TagEchoMismatchDetected) {
  const uint64_t tag = MessageHub::MakeTag(3, 1, 2);
  const auto frame = MessageHub::FrameEnvelope(tag, 0, {1, 2, 3});
  std::vector<uint8_t> decoded;
  const Status s = MessageHub::ParseEnvelope(
      frame, MessageHub::MakeTag(3, 1, 3), &decoded);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("tag echo"), std::string::npos);
}

TEST(EnvelopeTest, PayloadBitFlipCaughtByCrc) {
  const uint64_t tag = MessageHub::MakeTag(7, 0, 2);
  std::vector<uint8_t> payload(64, 0xAB);
  auto frame = MessageHub::FrameEnvelope(tag, 0, payload);
  frame[MessageHub::kEnvelopeBytes + 17] ^= 0x04;
  std::vector<uint8_t> decoded;
  const Status s = MessageHub::ParseEnvelope(frame, tag, &decoded);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("CRC"), std::string::npos);
}

TEST(EnvelopeTest, TruncatedFrameDetected) {
  const uint64_t tag = MessageHub::MakeTag(1, 1, 1);
  auto frame = MessageHub::FrameEnvelope(tag, 0, {1, 2, 3, 4});
  frame.resize(frame.size() - 2);  // lose payload bytes
  std::vector<uint8_t> decoded;
  EXPECT_EQ(MessageHub::ParseEnvelope(frame, tag, &decoded).code(),
            StatusCode::kInvalidArgument);
  frame.resize(MessageHub::kEnvelopeBytes - 3);  // lose header bytes too
  EXPECT_EQ(MessageHub::ParseEnvelope(frame, tag, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(MessageHubDeathTest, SendRejectsOutOfRangeWorkerIds) {
  MessageHub hub(2);
  EXPECT_DEATH(hub.Send(0, 5, 1, {1}), "out of range");
  EXPECT_DEATH(hub.Send(2, 0, 1, {1}), "out of range");
}

TEST(MessageHubDeathTest, RecvRejectsOutOfRangeWorkerIds) {
  MessageHub hub(2);
  hub.Send(0, 1, 1, {1});
  EXPECT_DEATH(hub.Recv(3, 0, 1), "out of range");
  EXPECT_DEATH(hub.Recv(1, 9, 1), "out of range");
  std::vector<uint8_t> out;
  EXPECT_DEATH((void)hub.TryRecv(1, 9, 1, &out), "out of range");
}

TEST(MessageHubTest, RecvBlocksUntilSendArrives) {
  MessageHub hub(2);
  std::vector<uint8_t> got;
  std::thread receiver([&] { got = hub.Recv(1, 0, 42); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  hub.Send(0, 1, 42, {9, 9});
  receiver.join();
  EXPECT_EQ(got.size(), 2u);
}

TEST(MessageHubTest, ConcurrentAllToAll) {
  const uint32_t n = 4;
  MessageHub hub(n);
  std::vector<std::thread> threads;
  std::vector<int> sums(n, 0);
  for (uint32_t w = 0; w < n; ++w) {
    threads.emplace_back([&, w] {
      for (uint32_t p = 0; p < n; ++p) {
        if (p != w) hub.Send(w, p, 1, {static_cast<uint8_t>(w)});
      }
      for (uint32_t p = 0; p < n; ++p) {
        if (p != w) sums[w] += hub.Recv(w, p, 1)[0];
      }
    });
  }
  for (auto& t : threads) t.join();
  // Worker w receives every other id once.
  for (uint32_t w = 0; w < n; ++w) {
    EXPECT_EQ(sums[w], static_cast<int>(0 + 1 + 2 + 3 - w));
  }
  EXPECT_EQ(hub.stats().TotalMessages(), n * (n - 1));
}

}  // namespace
}  // namespace ecg::dist
