#include "dist/comm.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ecg::dist {
namespace {

TEST(CommStatsTest, RecordsPerWorkerTraffic) {
  CommStats stats(3);
  stats.RecordSend(0, 1, 100);
  stats.RecordSend(0, 2, 50);
  stats.RecordSend(2, 0, 25);
  EXPECT_EQ(stats.TotalBytes(), 175u);
  EXPECT_EQ(stats.TotalMessages(), 3u);
  EXPECT_EQ(stats.BytesSent(0), 150u);
  EXPECT_EQ(stats.BytesSent(2), 25u);
  stats.Reset();
  EXPECT_EQ(stats.TotalBytes(), 0u);
}

TEST(MessageHubTest, PointToPointDelivery) {
  MessageHub hub(2);
  hub.Send(0, 1, 7, {1, 2, 3});
  const auto payload = hub.Recv(1, 0, 7);
  EXPECT_EQ(payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(hub.stats().TotalBytes(), 3u);
}

TEST(MessageHubTest, TagsIsolateSupersteps) {
  MessageHub hub(2);
  hub.Send(0, 1, MessageHub::MakeTag(5, 2, 1), {5});
  hub.Send(0, 1, MessageHub::MakeTag(6, 2, 1), {6});
  hub.Send(0, 1, MessageHub::MakeTag(5, 3, 1), {7});
  // Receive out of order; each tag gets its own payload.
  EXPECT_EQ(hub.Recv(1, 0, MessageHub::MakeTag(5, 3, 1))[0], 7);
  EXPECT_EQ(hub.Recv(1, 0, MessageHub::MakeTag(6, 2, 1))[0], 6);
  EXPECT_EQ(hub.Recv(1, 0, MessageHub::MakeTag(5, 2, 1))[0], 5);
}

TEST(MessageHubTest, MakeTagIsCollisionFreeAcrossFields) {
  const uint64_t t1 = MessageHub::MakeTag(1, 0, 0);
  const uint64_t t2 = MessageHub::MakeTag(0, 1, 0);
  const uint64_t t3 = MessageHub::MakeTag(0, 0, 1);
  EXPECT_NE(t1, t2);
  EXPECT_NE(t2, t3);
  EXPECT_NE(t1, t3);
}

TEST(MessageHubTest, RecvBlocksUntilSendArrives) {
  MessageHub hub(2);
  std::vector<uint8_t> got;
  std::thread receiver([&] { got = hub.Recv(1, 0, 42); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  hub.Send(0, 1, 42, {9, 9});
  receiver.join();
  EXPECT_EQ(got.size(), 2u);
}

TEST(MessageHubTest, ConcurrentAllToAll) {
  const uint32_t n = 4;
  MessageHub hub(n);
  std::vector<std::thread> threads;
  std::vector<int> sums(n, 0);
  for (uint32_t w = 0; w < n; ++w) {
    threads.emplace_back([&, w] {
      for (uint32_t p = 0; p < n; ++p) {
        if (p != w) hub.Send(w, p, 1, {static_cast<uint8_t>(w)});
      }
      for (uint32_t p = 0; p < n; ++p) {
        if (p != w) sums[w] += hub.Recv(w, p, 1)[0];
      }
    });
  }
  for (auto& t : threads) t.join();
  // Worker w receives every other id once.
  for (uint32_t w = 0; w < n; ++w) {
    EXPECT_EQ(sums[w], static_cast<int>(0 + 1 + 2 + 3 - w));
  }
  EXPECT_EQ(hub.stats().TotalMessages(), n * (n - 1));
}

}  // namespace
}  // namespace ecg::dist
