#include "tensor/nn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "tensor/matrix.h"

namespace ecg::tensor {
namespace {

TEST(NnTest, ReluClampsNegatives) {
  Matrix z(1, 4, {-1.0f, 0.0f, 2.0f, -0.5f});
  ReluInPlace(&z);
  EXPECT_TRUE(AllClose(z, Matrix(1, 4, {0, 0, 2, 0})));
}

TEST(NnTest, ReluGradIsIndicator) {
  const Matrix z(1, 4, {-1.0f, 0.0f, 2.0f, 1e-9f});
  const Matrix g = ReluGrad(z);
  EXPECT_TRUE(AllClose(g, Matrix(1, 4, {0, 0, 1, 1})));
}

TEST(NnTest, SoftmaxRowsSumToOne) {
  Matrix z(2, 3, {1, 2, 3, -100, 0, 100});
  SoftmaxRows(&z);
  for (size_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (size_t c = 0; c < 3; ++c) {
      sum += z.At(r, c);
      EXPECT_GE(z.At(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  // Large logits must not overflow (row max subtraction).
  EXPECT_NEAR(z.At(1, 2), 1.0f, 1e-5f);
}

TEST(NnTest, CrossEntropyLossValue) {
  // Uniform logits over C classes: loss per row = log(C).
  Matrix logits(2, 4);
  const std::vector<int32_t> labels = {1, 3};
  Matrix grad;
  const double loss =
      SoftmaxCrossEntropy(logits, labels, {0, 1}, 2, &grad);
  EXPECT_NEAR(loss, 2.0 * std::log(4.0), 1e-5);
}

TEST(NnTest, CrossEntropyGradMatchesNumerical) {
  Rng rng(77);
  Matrix logits(3, 5);
  for (size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  const std::vector<int32_t> labels = {4, 0, 2};
  const std::vector<uint32_t> rows = {0, 2};  // row 1 must get zero grad
  const size_t normalizer = 2;

  Matrix grad;
  SoftmaxCrossEntropy(logits, labels, rows, normalizer, &grad);

  const double eps = 1e-3;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      Matrix plus = logits, minus = logits;
      plus.At(r, c) += static_cast<float>(eps);
      minus.At(r, c) -= static_cast<float>(eps);
      Matrix unused;
      const double lp =
          SoftmaxCrossEntropy(plus, labels, rows, normalizer, &unused) /
          normalizer;
      const double lm =
          SoftmaxCrossEntropy(minus, labels, rows, normalizer, &unused) /
          normalizer;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(grad.At(r, c), numeric, 5e-3)
          << "at (" << r << "," << c << ")";
    }
  }
  // Non-selected rows contribute nothing.
  for (size_t c = 0; c < 5; ++c) EXPECT_EQ(grad.At(1, c), 0.0f);
}

TEST(NnTest, AccuracyCountsArgmaxHits) {
  Matrix logits(3, 3, {0.9f, 0.05f, 0.05f,   // argmax 0
                       0.1f, 0.2f, 0.7f,     // argmax 2
                       0.3f, 0.4f, 0.3f});   // argmax 1
  const std::vector<int32_t> labels = {0, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1, 2}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {}), 0.0);
}

TEST(NnTest, XavierInitBounds) {
  Rng rng(5);
  Matrix w(64, 32);
  XavierInit(&w, &rng);
  const double bound = std::sqrt(6.0 / (64 + 32));
  double sum = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w.data()[i]), bound + 1e-6);
    sum += w.data()[i];
  }
  // Mean near zero; some dispersion exists.
  EXPECT_NEAR(sum / w.size(), 0.0, bound / 4);
  EXPECT_GT(w.SquaredNorm(), 0.0);
}

TEST(NnTest, AdamStepMovesAgainstGradient) {
  Matrix param(1, 2, {1.0f, -1.0f});
  const Matrix grad(1, 2, {0.5f, -0.5f});
  AdamState adam(1, 2);
  adam.Step(grad, 0.1f, &param);
  EXPECT_LT(param.At(0, 0), 1.0f);
  EXPECT_GT(param.At(0, 1), -1.0f);
}

TEST(NnTest, AdamFirstStepIsLearningRateSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Matrix param(1, 1, {0.0f});
  const Matrix grad(1, 1, {123.0f});
  AdamState adam(1, 1);
  adam.Step(grad, 0.01f, &param);
  EXPECT_NEAR(param.At(0, 0), -0.01f, 1e-4f);
}

TEST(NnTest, AdamConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2; gradient 2(x-3).
  Matrix x(1, 1, {0.0f});
  AdamState adam(1, 1);
  for (int i = 0; i < 2000; ++i) {
    const Matrix grad(1, 1, {2.0f * (x.At(0, 0) - 3.0f)});
    adam.Step(grad, 0.05f, &x);
  }
  EXPECT_NEAR(x.At(0, 0), 3.0f, 0.05f);
}

}  // namespace
}  // namespace ecg::tensor
