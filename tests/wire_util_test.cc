#include "core/wire_util.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "tensor/matrix.h"

namespace ecg::core {
namespace {

using tensor::Matrix;

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

TEST(WireUtilTest, MatrixRoundTrip) {
  const Matrix m = RandomMatrix(5, 7, 1);
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  EncodeMatrix(m, &w);
  ByteReader r(buf);
  Matrix out;
  ASSERT_TRUE(DecodeMatrix(&r, &out).ok());
  EXPECT_TRUE(tensor::AllClose(out, m, 0.0f));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireUtilTest, EmptyMatrixRoundTrip) {
  const Matrix m(0, 4);
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  EncodeMatrix(m, &w);
  ByteReader r(buf);
  Matrix out;
  ASSERT_TRUE(DecodeMatrix(&r, &out).ok());
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 4u);
}

TEST(WireUtilTest, DecodeRejectsInconsistentHeader) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutU32(2);
  w.PutU32(3);
  w.PutU64(7);  // 2*3 != 7
  ByteReader r(buf);
  Matrix out;
  EXPECT_EQ(DecodeMatrix(&r, &out).code(), StatusCode::kInvalidArgument);
}

TEST(WireUtilTest, DecodeRejectsTruncatedPayload) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutU32(4);
  w.PutU32(4);
  w.PutU64(16);  // claims 16 floats, provides 1
  w.PutF32(1.0f);
  ByteReader r(buf);
  Matrix out;
  EXPECT_EQ(DecodeMatrix(&r, &out).code(), StatusCode::kOutOfRange);
}

TEST(WireUtilTest, AssignRowsPlacesRows) {
  const Matrix src(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix dst(4, 3);
  ASSERT_TRUE(AssignRows(src, {3, 0}, &dst).ok());
  EXPECT_EQ(dst.At(3, 0), 1.0f);
  EXPECT_EQ(dst.At(0, 2), 6.0f);
  EXPECT_EQ(dst.At(1, 0), 0.0f);  // untouched
}

TEST(WireUtilTest, AssignRowsValidates) {
  const Matrix src(2, 3);
  Matrix dst(4, 3);
  EXPECT_EQ(AssignRows(src, {0}, &dst).code(),
            StatusCode::kInvalidArgument);  // count mismatch
  EXPECT_EQ(AssignRows(src, {0, 9}, &dst).code(), StatusCode::kOutOfRange);
  Matrix narrow(4, 2);
  EXPECT_EQ(AssignRows(src, {0, 1}, &narrow).code(),
            StatusCode::kInvalidArgument);  // width mismatch
}

}  // namespace
}  // namespace ecg::core
