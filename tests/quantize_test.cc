#include "compress/quantize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace ecg::compress {
namespace {

using tensor::Matrix;

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed, float scale) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = scale * static_cast<float>(rng.NextGaussian());
  }
  return m;
}

TEST(QuantizeTest, PaperFigure3Buckets) {
  // Domain [0,1] with B=2: buckets [0,.25,.5,.75,1], midpoints
  // .125/.375/.625/.875. 0.7 lands in bucket 2.
  Matrix m(1, 4, {0.0f, 0.26f, 0.7f, 1.0f});
  QuantizerOptions opt{2, BucketValueMode::kMidpoint};
  auto q = Quantize(m, opt);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->bits, 2);
  ASSERT_EQ(q->bucket_values.size(), 4u);
  EXPECT_NEAR(q->bucket_values[2], 0.625f, 1e-6f);
  auto rec = Dequantize(*q);
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(rec->At(0, 2), 0.625f, 1e-6f);
  EXPECT_NEAR(rec->At(0, 0), 0.125f, 1e-6f);  // min maps to bucket 0
  EXPECT_NEAR(rec->At(0, 3), 0.875f, 1e-6f);  // max maps to top bucket
}

TEST(QuantizeTest, RejectsBadInput) {
  Matrix m(1, 2, {0.0f, 1.0f});
  EXPECT_EQ(Quantize(m, {3, BucketValueMode::kMidpoint}).status().code(),
            StatusCode::kInvalidArgument);
  Matrix nan_m(1, 1, {std::numeric_limits<float>::quiet_NaN()});
  EXPECT_EQ(
      Quantize(nan_m, {2, BucketValueMode::kMidpoint}).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(QuantizeTest, ConstantMatrixIsLossless) {
  Matrix m(3, 3);
  m.Fill(4.2f);
  auto q = Quantize(m, {1, BucketValueMode::kMidpoint});
  ASSERT_TRUE(q.ok());
  auto rec = Dequantize(*q);
  ASSERT_TRUE(rec.ok());
  // Range is empty; all values land in bucket 0 whose midpoint is ~min.
  for (size_t i = 0; i < rec->size(); ++i) {
    EXPECT_NEAR(rec->data()[i], 4.2f, 0.51f);
  }
}

TEST(QuantizeTest, WireRoundTrip) {
  const Matrix m = RandomMatrix(7, 13, 3, 2.0f);
  auto q = Quantize(m, {4, BucketValueMode::kMidpoint});
  ASSERT_TRUE(q.ok());
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  q->AppendTo(&w);
  EXPECT_EQ(buf.size(), q->WireBytes());

  ByteReader r(buf);
  QuantizedMatrix parsed;
  ASSERT_TRUE(QuantizedMatrix::ParseFrom(&r, &parsed).ok());
  EXPECT_EQ(parsed.rows, q->rows);
  EXPECT_EQ(parsed.cols, q->cols);
  EXPECT_EQ(parsed.bits, q->bits);
  EXPECT_EQ(parsed.bucket_values, q->bucket_values);
  EXPECT_EQ(parsed.packed_ids, q->packed_ids);
}

TEST(QuantizeTest, ParseRejectsCorruptPayload) {
  const Matrix m = RandomMatrix(2, 4, 4, 1.0f);
  auto q = Quantize(m, {2, BucketValueMode::kMidpoint});
  ASSERT_TRUE(q.ok());
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  q->AppendTo(&w);
  buf[8] = 33;  // corrupt the bits field
  ByteReader r(buf);
  QuantizedMatrix parsed;
  EXPECT_FALSE(QuantizedMatrix::ParseFrom(&r, &parsed).ok());
}

TEST(QuantizeTest, CompressionRatioMatchesTheory) {
  // Per Section IV-A: d*b bits -> d*B + 2^B*b. For a large matrix the
  // table amortizes and the ratio approaches 32/B.
  const Matrix m = RandomMatrix(500, 64, 5, 1.0f);
  for (int bits : {1, 2, 4, 8, 16}) {
    auto q = Quantize(m, {bits, BucketValueMode::kMidpoint});
    ASSERT_TRUE(q.ok());
    const double raw_bytes = m.size() * sizeof(float);
    const double ratio = raw_bytes / static_cast<double>(q->WireBytes());
    EXPECT_GT(ratio, 32.0 / bits * 0.8) << "bits=" << bits;
    EXPECT_LE(ratio, 32.0 / bits + 1.0) << "bits=" << bits;
  }
}

TEST(QuantizeTest, GatherQuantizedRowsKeepsTableAndValues) {
  const Matrix m = RandomMatrix(10, 6, 6, 1.0f);
  auto q = Quantize(m, {2, BucketValueMode::kMidpoint});
  ASSERT_TRUE(q.ok());
  auto full = Dequantize(*q);
  ASSERT_TRUE(full.ok());
  auto sub = GatherQuantizedRows(*q, {7, 0, 3});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->bucket_values, q->bucket_values);
  auto sub_dense = Dequantize(*sub);
  ASSERT_TRUE(sub_dense.ok());
  const std::vector<uint32_t> rows = {7, 0, 3};
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t c = 0; c < 6; ++c) {
      EXPECT_EQ(sub_dense->At(i, c), full->At(rows[i], c));
    }
  }
  EXPECT_EQ(GatherQuantizedRows(*q, {10}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(QuantizeTest, DataMeanModeIsAtLeastAsTight) {
  const Matrix m = RandomMatrix(200, 16, 7, 3.0f);
  auto a_mid = MeasureAlpha(m, {2, BucketValueMode::kMidpoint});
  auto a_mean = MeasureAlpha(m, {2, BucketValueMode::kDataMean});
  ASSERT_TRUE(a_mid.ok());
  ASSERT_TRUE(a_mean.ok());
  EXPECT_LE(*a_mean, *a_mid + 1e-9);
}

/// Property sweep over bit widths: reconstruction error bounded by half a
/// bucket width per element, alpha monotone in B, Eq. 13 contraction.
class QuantizeBits : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeBits, ErrorBoundedByHalfBucket) {
  const int bits = GetParam();
  const Matrix m = RandomMatrix(50, 20, 40 + bits, 2.0f);
  float mn = m.data()[0], mx = m.data()[0];
  for (size_t i = 0; i < m.size(); ++i) {
    mn = std::min(mn, m.data()[i]);
    mx = std::max(mx, m.data()[i]);
  }
  const float half_bucket = (mx - mn) / (1u << bits) / 2.0f;

  auto q = Quantize(m, {bits, BucketValueMode::kMidpoint});
  ASSERT_TRUE(q.ok());
  auto rec = Dequantize(*q);
  ASSERT_TRUE(rec.ok());
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i] - rec->data()[i]),
              half_bucket + 1e-5f);
  }
}

TEST_P(QuantizeBits, AlphaIsContractionAndShrinksWithBits) {
  const int bits = GetParam();
  const Matrix m = RandomMatrix(100, 32, 99, 1.5f);
  auto alpha = MeasureAlpha(m, {bits, BucketValueMode::kMidpoint});
  ASSERT_TRUE(alpha.ok());
  EXPECT_GE(*alpha, 0.0);
  if (bits >= 2) {
    // Eq. 13's contraction (alpha < 1) holds from 2 bits up. At B=1 the
    // two midpoint reconstruction levels sit far from zero-mean Gaussian
    // data and measured alpha exceeds 1 — Theorem 1's alpha < sqrt(2)/2
    // precondition genuinely fails there (documented in EXPERIMENTS.md).
    EXPECT_LT(*alpha, 1.0);
  } else {
    EXPECT_LT(*alpha, 2.0);
  }
  if (bits > 1) {
    auto coarser = MeasureAlpha(m, {bits / 2, BucketValueMode::kMidpoint});
    ASSERT_TRUE(coarser.ok());
    EXPECT_LT(*alpha, *coarser);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, QuantizeBits,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST_P(QuantizeBits, WireBytesMatchesAppendToExactly) {
  // The wire-size invariant: WireBytes() must equal the byte count
  // AppendTo actually produces, for every width and both bucket modes
  // (implicit (min,width) table vs explicit per-bucket table).
  const int bits = GetParam();
  const Matrix m = RandomMatrix(23, 17, 200 + bits, 1.3f);
  for (auto mode :
       {BucketValueMode::kMidpoint, BucketValueMode::kDataMean}) {
    auto q = Quantize(m, {bits, mode});
    ASSERT_TRUE(q.ok());
    std::vector<uint8_t> buf;
    ByteWriter w(&buf);
    q->AppendTo(&w);
    EXPECT_EQ(buf.size(), q->WireBytes())
        << "bits=" << bits << " mode=" << static_cast<int>(mode);
  }
}

TEST_P(QuantizeBits, GatherQuantizedRowsMatchesDenseGather) {
  // Property: slicing rows in the compressed domain then decoding must be
  // identical to decoding everything then gathering densely — including
  // empty, duplicate, and out-of-order row selections.
  const int bits = GetParam();
  const Matrix m = RandomMatrix(37, 11, 300 + bits, 2.5f);
  auto q = Quantize(m, {bits, BucketValueMode::kMidpoint});
  ASSERT_TRUE(q.ok());
  auto dense = Dequantize(*q);
  ASSERT_TRUE(dense.ok());

  const std::vector<std::vector<uint32_t>> selections = {
      {},                          // empty
      {36, 0, 12, 12, 3, 36, 5},   // duplicates + out of order
      {0, 1, 2, 3, 4, 5, 6, 7},    // aligned prefix
      {35},                        // single row near the end
  };
  for (const auto& rows : selections) {
    auto sub = GatherQuantizedRows(*q, rows);
    ASSERT_TRUE(sub.ok()) << "bits=" << bits;
    auto sub_dense = Dequantize(*sub);
    ASSERT_TRUE(sub_dense.ok());
    const Matrix want = tensor::GatherRows(*dense, rows);
    ASSERT_EQ(sub_dense->rows(), want.rows());
    ASSERT_EQ(sub_dense->cols(), want.cols());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(sub_dense->data()[i], want.data()[i])
          << "bits=" << bits << " flat=" << i;
    }
  }
}

TEST_P(QuantizeBits, QuantizeRowsMatchesGatherThenQuantize) {
  // The fused gather+quantize must be bit-identical to the unfused
  // two-pass form: same table, same packed words, same wire bytes.
  const int bits = GetParam();
  const Matrix m = RandomMatrix(41, 13, 400 + bits, 1.7f);
  const std::vector<uint32_t> rows = {40, 2, 2, 17, 0, 33, 9};
  for (auto mode :
       {BucketValueMode::kMidpoint, BucketValueMode::kDataMean}) {
    const QuantizerOptions opt{bits, mode};
    auto fused = QuantizeRows(m, rows, opt);
    ASSERT_TRUE(fused.ok()) << "bits=" << bits;
    auto unfused = Quantize(tensor::GatherRows(m, rows), opt);
    ASSERT_TRUE(unfused.ok());
    EXPECT_EQ(fused->rows, unfused->rows);
    EXPECT_EQ(fused->cols, unfused->cols);
    EXPECT_EQ(fused->bits, unfused->bits);
    EXPECT_EQ(fused->implicit_midpoints, unfused->implicit_midpoints);
    EXPECT_EQ(fused->bucket_values, unfused->bucket_values);
    EXPECT_EQ(fused->packed_ids, unfused->packed_ids);

    std::vector<uint8_t> a, b;
    ByteWriter wa(&a), wb(&b);
    fused->AppendTo(&wa);
    unfused->AppendTo(&wb);
    EXPECT_EQ(a, b) << "bits=" << bits;
  }
  // Bad row indices are rejected, matching GatherQuantizedRows.
  EXPECT_EQ(
      QuantizeRows(m, {41}, {bits, BucketValueMode::kMidpoint})
          .status()
          .code(),
      StatusCode::kOutOfRange);
}

TEST_P(QuantizeBits, DequantizeIntoMatchesDequantizeThenScatter) {
  // The fused unpack+scatter must land the same floats in the same rows
  // as the unfused decode-all-then-copy form, and leave untargeted rows
  // untouched.
  const int bits = GetParam();
  const Matrix m = RandomMatrix(9, 7, 500 + bits, 2.0f);
  auto q = Quantize(m, {bits, BucketValueMode::kMidpoint});
  ASSERT_TRUE(q.ok());
  auto dense = Dequantize(*q);
  ASSERT_TRUE(dense.ok());

  const std::vector<uint32_t> targets = {11, 0, 7, 3, 9, 1, 5, 13, 2};
  Matrix dst(14, 7);
  dst.Fill(-123.0f);
  ASSERT_TRUE(DequantizeInto(*q, targets, &dst).ok());
  for (size_t i = 0; i < targets.size(); ++i) {
    for (size_t c = 0; c < 7; ++c) {
      EXPECT_EQ(dst.At(targets[i], c), dense->At(i, c))
          << "bits=" << bits << " row=" << i;
    }
  }
  // Rows not named in `targets` keep their sentinel.
  for (uint32_t r : {4u, 6u, 8u, 10u, 12u}) {
    for (size_t c = 0; c < 7; ++c) {
      EXPECT_EQ(dst.At(r, c), -123.0f);
    }
  }
  // Shape and bounds violations are rejected.
  Matrix narrow(14, 6);
  EXPECT_FALSE(DequantizeInto(*q, targets, &narrow).ok());
  EXPECT_FALSE(DequantizeInto(*q, {0, 1}, &dst).ok());  // wrong row count
  std::vector<uint32_t> oob = targets;
  oob[4] = 14;  // out of range for dst
  EXPECT_FALSE(DequantizeInto(*q, oob, &dst).ok());
}

}  // namespace
}  // namespace ecg::compress
