#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace ecg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad bits");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad bits");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad bits");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kInternal);
  EXPECT_EQ(s.code(), StatusCode::kInternal);  // source intact

  Status moved = std::move(s);
  EXPECT_EQ(moved.message(), "boom");

  Status assigned;
  assigned = copy;
  EXPECT_EQ(assigned.message(), "boom");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Status UseMacros(int x, int* out) {
  ECG_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  *out = doubled;
  ECG_RETURN_IF_ERROR(Status::OK());
  return Status::OK();
}

TEST(ResultTest, MacrosPropagateAndAssign) {
  int out = 0;
  EXPECT_TRUE(UseMacros(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_EQ(UseMacros(-5, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 10);  // untouched on error
}

}  // namespace
}  // namespace ecg
