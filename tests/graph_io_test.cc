#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/datasets.h"
#include "tensor/matrix.h"

namespace ecg::graph {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(GraphIoTest, SaveLoadRoundTrip) {
  const Graph original = *LoadDataset("tiny");
  const std::string path = TempPath("tiny.ecg");
  ASSERT_TRUE(SaveGraph(original, path).ok());

  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_vertices(), original.num_vertices());
  EXPECT_EQ(loaded->num_edges(), original.num_edges());
  EXPECT_EQ(loaded->num_classes(), original.num_classes());
  EXPECT_EQ(loaded->labels(), original.labels());
  EXPECT_TRUE(tensor::AllClose(loaded->features(), original.features()));
  EXPECT_EQ(loaded->train_set(), original.train_set());
  EXPECT_EQ(loaded->val_set(), original.val_set());
  EXPECT_EQ(loaded->test_set(), original.test_set());
  for (uint32_t v = 0; v < original.num_vertices(); ++v) {
    ASSERT_EQ(loaded->Degree(v), original.Degree(v)) << "vertex " << v;
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsMissingFile) {
  EXPECT_EQ(LoadGraph("/nonexistent/nope.ecg").status().code(),
            StatusCode::kIoError);
}

TEST(GraphIoTest, LoadRejectsWrongMagic) {
  const std::string path = TempPath("bogus.ecg");
  std::ofstream out(path, std::ios::binary);
  out << "this is not a graph file at all, just filler bytes 123456";
  out.close();
  EXPECT_EQ(LoadGraph(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsTruncatedFile) {
  const Graph original = *LoadDataset("tiny");
  const std::string path = TempPath("trunc.ecg");
  ASSERT_TRUE(SaveGraph(original, path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  std::vector<char> half(static_cast<size_t>(size) / 2);
  in.seekg(0);
  in.read(half.data(), static_cast<std::streamsize>(half.size()));
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(half.data(), static_cast<std::streamsize>(half.size()));
  out.close();
  EXPECT_FALSE(LoadGraph(path).ok());
  std::remove(path.c_str());
}

TEST(GraphIoTest, EdgeListImport) {
  const std::string path = TempPath("edges.txt");
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "0 1\n1 2\n2 3\n% another comment\n3 0\n";
  }
  auto g = LoadEdgeList(path, /*feature_dim=*/4);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_vertices(), 4u);
  EXPECT_EQ(g->num_edges(), 8u);  // 4 undirected edges, both directions
  EXPECT_EQ(g->feature_dim(), 4u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, EdgeListRejectsGarbage) {
  const std::string path = TempPath("bad_edges.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot numbers\n";
  }
  EXPECT_EQ(LoadEdgeList(path, 1).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ecg::graph
