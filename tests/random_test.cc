#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace ecg {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.NextU64());
  a.Seed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextU64(), first[i]);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(5);
  const int buckets = 8;
  std::vector<int> counts(buckets, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(buckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / buckets, n / buckets * 0.1);
  }
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, FloatsInUnitInterval) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, UniformRange) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextUniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace ecg
