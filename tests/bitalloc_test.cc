#include "compress/bit_alloc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "core/exchange.h"
#include "core/halo.h"
#include "dist/cluster.h"
#include "dist/elastic.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "tensor/matrix.h"

namespace ecg {
namespace {

using compress::BitAllocConfig;
using compress::BitAllocGroup;
using compress::SolveBitAllocation;
using compress::SupportedAllocWidths;
using core::ExchangeConfig;
using core::WorkerPlan;
using dist::SimulatedCluster;
using dist::WorkerContext;
using tensor::Matrix;

constexpr size_t kDim = 8;

bool IsSupportedWidth(int b) {
  const auto& w = SupportedAllocWidths();
  return std::find(w.begin(), w.end(), b) != w.end();
}

double TotalBytes(const std::vector<BitAllocGroup>& groups,
                  const std::vector<int>& bits) {
  double total = 0.0;
  for (size_t g = 0; g < groups.size(); ++g) {
    total += groups[g].elements * bits[g] / 8.0;
  }
  return total;
}

TEST(BitAllocSolverTest, StaysWithinBudgetOnSupportedWidths) {
  std::vector<BitAllocGroup> groups = {
      {1000.0, 4.0}, {500.0, 90.0}, {2000.0, 0.5}, {100.0, 300.0}};
  BitAllocConfig config;
  config.budget_factor = 1.0;
  config.reference_bits = 2;
  const std::vector<int> bits = SolveBitAllocation(groups, config);
  ASSERT_EQ(bits.size(), groups.size());
  for (int b : bits) EXPECT_TRUE(IsSupportedWidth(b)) << b;
  double total_elements = 0.0;
  for (const auto& g : groups) total_elements += g.elements;
  EXPECT_LE(TotalBytes(groups, bits),
            config.budget_factor * total_elements * 2 / 8.0 + 1e-9);
}

TEST(BitAllocSolverTest, HigherSensitivityNeverGetsFewerBits) {
  // Equal-size groups differing only in sensitivity: the greedy order
  // must widen the needier group first at every budget level.
  for (double factor : {0.6, 1.0, 2.0, 4.0}) {
    std::vector<BitAllocGroup> groups = {{1000.0, 1.0}, {1000.0, 50.0}};
    BitAllocConfig config;
    config.budget_factor = factor;
    const std::vector<int> bits = SolveBitAllocation(groups, config);
    EXPECT_GE(bits[1], bits[0]) << "budget_factor=" << factor;
  }
}

TEST(BitAllocSolverTest, DeterministicWithLowerIndexWinningTies) {
  // Two identical groups and budget for exactly one 1->2 upgrade over the
  // floor: group 0 must win the tie, and re-solving must not flip it.
  std::vector<BitAllocGroup> groups = {{800.0, 10.0}, {800.0, 10.0}};
  BitAllocConfig config;
  config.reference_bits = 1;
  // floor spend = 1600 * 1/8 = 200 bytes; one upgrade costs 100 bytes.
  config.budget_factor = 300.0 / 200.0;
  const std::vector<int> first = SolveBitAllocation(groups, config);
  EXPECT_EQ(first[0], 2);
  EXPECT_EQ(first[1], 1);
  EXPECT_EQ(SolveBitAllocation(groups, config), first);
}

TEST(BitAllocSolverTest, ZeroSensitivityStaysAtTheFloor) {
  // A dead group (nothing shipped / perfectly predicted) never bids, even
  // under an effectively unlimited budget; live groups saturate at the
  // codec ceiling.
  std::vector<BitAllocGroup> groups = {{1000.0, 0.0}, {1000.0, 5.0}};
  BitAllocConfig config;
  config.budget_factor = 1000.0;
  const std::vector<int> bits = SolveBitAllocation(groups, config);
  EXPECT_EQ(bits[0], config.min_bits);
  EXPECT_EQ(bits[1], config.max_bits);
}

TEST(BitAllocSolverTest, RespectsMinAndMaxBitClamps) {
  std::vector<BitAllocGroup> groups = {{1000.0, 100.0}, {1000.0, 0.1}};
  BitAllocConfig config;
  config.budget_factor = 1000.0;
  config.min_bits = 2;
  config.max_bits = 8;
  const std::vector<int> bits = SolveBitAllocation(groups, config);
  for (int b : bits) {
    EXPECT_GE(b, 2);
    EXPECT_LE(b, 8);
  }
}

TEST(BitAllocSolverTest, EmptyAndZeroElementInputsYieldFloors) {
  BitAllocConfig config;
  EXPECT_TRUE(SolveBitAllocation({}, config).empty());
  const std::vector<int> bits =
      SolveBitAllocation({{0.0, 3.0}, {0.0, 0.0}}, config);
  EXPECT_EQ(bits, (std::vector<int>{config.min_bits, config.min_bits}));
}

/// Same 6-vertex two-worker ring the exchange tests use; every worker has
/// two boundary vertices toward its single peer.
struct TwoWorkerFixture {
  graph::Graph g;
  graph::Partition partition;
  std::vector<WorkerPlan> plans;

  TwoWorkerFixture() {
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (uint32_t v = 0; v < 6; ++v) edges.emplace_back(v, (v + 1) % 6);
    tensor::Matrix features(6, kDim);
    g = *graph::Graph::Build(6, edges, std::move(features),
                             {0, 0, 0, 1, 1, 1}, 2);
    partition.num_parts = 2;
    partition.owner = {0, 0, 0, 1, 1, 1};
    partition.members = {{0, 1, 2}, {3, 4, 5}};
    EXPECT_TRUE(core::BuildWorkerPlans(g, partition, &plans).ok());
  }
};

Matrix MakeOwned(const WorkerPlan& plan,
                 const std::function<float(uint32_t, size_t)>& value_fn) {
  Matrix m(plan.num_owned(), kDim);
  for (size_t r = 0; r < plan.num_owned(); ++r) {
    for (size_t c = 0; c < kDim; ++c) {
      m.At(r, c) = value_fn(plan.owned[r], c);
    }
  }
  return m;
}

/// bit_alloc config with a short trend period so the solver fires within a
/// handful of epochs.
ExchangeConfig BitAllocConfigForTests() {
  ExchangeConfig config;
  config.fp_bits = 2;
  config.bp_bits = 2;
  config.bit_alloc = true;
  config.trend_period = 2;
  return config;
}

TEST(BitAllocExchangeTest, FpWidthsRoundTripThroughCheckpointBitExactly) {
  TwoWorkerFixture fx;
  const ExchangeConfig config = BitAllocConfigForTests();
  SimulatedCluster cluster(2, dist::NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const WorkerPlan& plan = fx.plans[ctx->worker_id()];
    auto ex = core::MakeFpExchanger(core::FpMode::kReqEc, config,
                                    /*num_layers=*/2, plan);
    const uint32_t peer = 1 - ctx->worker_id();
    Matrix halo(plan.num_halo(), kDim);
    for (uint32_t epoch = 0; epoch < 6; ++epoch) {
      for (uint16_t layer = 0; layer < 2; ++layer) {
        // Layer 1 spans a far wider range than layer 0 so the solver has
        // a reason to split the widths per layer.
        const float scale = layer == 0 ? 0.05f : 40.0f;
        const Matrix owned = MakeOwned(plan, [&](uint32_t v, size_t c) {
          return scale * std::sin(static_cast<float>(v * 13 + c * 5 +
                                                     epoch * 7));
        });
        ECG_RETURN_IF_ERROR(
            ex->Exchange(ctx, plan, epoch, layer, owned, &halo));
      }
    }
    // The solver ran (trend_period = 2, six epochs) and must favour the
    // wide-range layer.
    EXPECT_GE(ex->BitsTowards(uint16_t{1}, peer),
              ex->BitsTowards(uint16_t{0}, peer));
    for (uint16_t layer = 0; layer < 2; ++layer) {
      EXPECT_TRUE(IsSupportedWidth(ex->BitsTowards(layer, peer)));
    }

    // Checkpoint round trip: restore into a fresh exchanger, then save
    // again — the two blobs (and the width vectors) must be bit-identical.
    std::vector<uint8_t> blob;
    ByteWriter w(&blob);
    ex->SaveState(&w);
    auto restored = core::MakeFpExchanger(core::FpMode::kReqEc, config,
                                          /*num_layers=*/2, plan);
    ByteReader r(blob);
    ECG_RETURN_IF_ERROR(restored->LoadState(&r));
    for (uint16_t layer = 0; layer < 2; ++layer) {
      EXPECT_EQ(restored->BitsTowards(layer, peer),
                ex->BitsTowards(layer, peer));
    }
    std::vector<uint8_t> blob2;
    ByteWriter w2(&blob2);
    restored->SaveState(&w2);
    EXPECT_EQ(blob, blob2);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
}

TEST(BitAllocExchangeTest, BpWidthsRoundTripThroughCheckpointBitExactly) {
  TwoWorkerFixture fx;
  const ExchangeConfig config = BitAllocConfigForTests();
  SimulatedCluster cluster(2, dist::NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const WorkerPlan& plan = fx.plans[ctx->worker_id()];
    auto ex = core::MakeBpExchanger(core::BpMode::kResEc, config,
                                    /*num_layers=*/2, plan);
    const uint32_t peer = 1 - ctx->worker_id();
    Matrix halo(plan.num_halo(), kDim);
    for (uint32_t epoch = 0; epoch < 6; ++epoch) {
      // BP walks layers top-down (2 then 1 for a 2-layer model).
      for (uint16_t layer = 2; layer >= 1; --layer) {
        const float scale = layer == 1 ? 0.05f : 40.0f;
        const Matrix owned = MakeOwned(plan, [&](uint32_t v, size_t c) {
          return scale * std::sin(static_cast<float>(v * 11 + c * 3 +
                                                     epoch * 5));
        });
        ECG_RETURN_IF_ERROR(
            ex->Exchange(ctx, plan, epoch, layer, owned, &halo));
      }
    }
    EXPECT_GE(ex->BitsTowards(uint16_t{2}, peer),
              ex->BitsTowards(uint16_t{1}, peer));
    for (uint16_t layer = 1; layer <= 2; ++layer) {
      EXPECT_TRUE(IsSupportedWidth(ex->BitsTowards(layer, peer)));
    }

    std::vector<uint8_t> blob;
    ByteWriter w(&blob);
    ex->SaveState(&w);
    auto restored = core::MakeBpExchanger(core::BpMode::kResEc, config,
                                          /*num_layers=*/2, plan);
    ByteReader r(blob);
    ECG_RETURN_IF_ERROR(restored->LoadState(&r));
    for (uint16_t layer = 1; layer <= 2; ++layer) {
      EXPECT_EQ(restored->BitsTowards(layer, peer),
                ex->BitsTowards(layer, peer));
    }
    std::vector<uint8_t> blob2;
    ByteWriter w2(&blob2);
    restored->SaveState(&w2);
    EXPECT_EQ(blob, blob2);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
}

TEST(BitAllocExchangeTest, WidthsSurviveElasticExportRemapImport) {
  // Export the solved widths into an ElasticStateBag, run them through the
  // (identity) worker remap a rebalance performs, and import into fresh
  // exchangers — every per-(layer, peer) width must survive unchanged.
  TwoWorkerFixture fx;
  const ExchangeConfig config = BitAllocConfigForTests();
  SimulatedCluster cluster(2, dist::NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const WorkerPlan& plan = fx.plans[ctx->worker_id()];
    auto fp = core::MakeFpExchanger(core::FpMode::kReqEc, config,
                                    /*num_layers=*/2, plan);
    auto bp = core::MakeBpExchanger(core::BpMode::kResEc, config,
                                    /*num_layers=*/2, plan);
    const uint32_t peer = 1 - ctx->worker_id();
    Matrix halo(plan.num_halo(), kDim);
    for (uint32_t epoch = 0; epoch < 6; ++epoch) {
      for (uint16_t layer = 0; layer < 2; ++layer) {
        const float scale = layer == 0 ? 0.05f : 40.0f;
        const Matrix owned = MakeOwned(plan, [&](uint32_t v, size_t c) {
          return scale * std::sin(static_cast<float>(v * 13 + c * 5 +
                                                     epoch * 7));
        });
        ECG_RETURN_IF_ERROR(
            fp->Exchange(ctx, plan, epoch, layer, owned, &halo));
      }
      for (uint16_t layer = 2; layer >= 1; --layer) {
        const float scale = layer == 1 ? 0.05f : 40.0f;
        const Matrix owned = MakeOwned(plan, [&](uint32_t v, size_t c) {
          return scale * std::sin(static_cast<float>(v * 11 + c * 3 +
                                                     epoch * 5));
        });
        ECG_RETURN_IF_ERROR(
            bp->Exchange(ctx, plan, epoch, layer, owned, &halo));
      }
    }

    elastic::ElasticStateBag bag;
    fp->ExportElasticState(plan, &bag);
    bp->ExportElasticState(plan, &bag);
    EXPECT_FALSE(bag.fp_group_bits.empty());
    EXPECT_FALSE(bag.bp_group_bits.empty());
    bag.RemapWorkers({0, 1});  // identity rebalance

    auto fp2 = core::MakeFpExchanger(core::FpMode::kReqEc, config,
                                     /*num_layers=*/2, plan);
    auto bp2 = core::MakeBpExchanger(core::BpMode::kResEc, config,
                                     /*num_layers=*/2, plan);
    ECG_RETURN_IF_ERROR(fp2->ImportElasticState(plan, bag));
    ECG_RETURN_IF_ERROR(bp2->ImportElasticState(plan, bag));
    for (uint16_t layer = 0; layer < 2; ++layer) {
      EXPECT_EQ(fp2->BitsTowards(layer, peer), fp->BitsTowards(layer, peer))
          << "fp layer " << layer;
    }
    for (uint16_t layer = 1; layer <= 2; ++layer) {
      EXPECT_EQ(bp2->BitsTowards(layer, peer), bp->BitsTowards(layer, peer))
          << "bp layer " << layer;
    }
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
}

TEST(BitAllocElasticTest, GroupWidthsRemapAcrossWorkerLeaveAndJoin) {
  // Worker 1 departs; worker 2 is renumbered to 1 and a fresh worker joins
  // later (new ids simply have no entries — they start at the configured
  // width until the next solve). Any group touching the departed worker on
  // either end must be dropped; survivors keep their exact width.
  elastic::ElasticStateBag bag;
  bag.fp_group_bits[{0, 0u, 1u}] = 8;   // responder departs -> dropped
  bag.fp_group_bits[{0, 1u, 2u}] = 4;   // requester departs -> dropped
  bag.fp_group_bits[{0, 2u, 0u}] = 16;  // survives as (0, 1, 0)
  bag.fp_group_bits[{1, 0u, 2u}] = 2;   // survives as (1, 0, 1)
  bag.bp_group_bits[{1, 1u, 0u}] = 8;   // sender departs -> dropped
  bag.bp_group_bits[{2, 2u, 0u}] = 4;   // survives as (2, 1, 0)
  bag.RemapWorkers({0, -1, 1});

  ASSERT_EQ(bag.fp_group_bits.size(), 2u);
  EXPECT_EQ(bag.fp_group_bits.at({0, 1u, 0u}), 16);
  EXPECT_EQ(bag.fp_group_bits.at({1, 0u, 1u}), 2);
  ASSERT_EQ(bag.bp_group_bits.size(), 1u);
  EXPECT_EQ(bag.bp_group_bits.at({2, 1u, 0u}), 4);
}

}  // namespace
}  // namespace ecg
