// Cross-module integration: the full user pipeline — generate a replica,
// round-trip it through the on-disk format, partition it three ways, train
// with every message policy, and check the pieces compose.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/sampling_trainer.h"
#include "core/trainer.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "graph/partition.h"

namespace ecg {
namespace {

TEST(IntegrationTest, SavedGraphTrainsIdenticallyToInMemory) {
  const graph::Graph original = *graph::LoadDataset("tiny");
  const std::string path =
      std::string(::testing::TempDir()) + "/pipeline.ecg";
  ASSERT_TRUE(graph::SaveGraph(original, path).ok());
  auto loaded = graph::LoadGraph(path);
  ASSERT_TRUE(loaded.ok());

  core::TrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.epochs = 8;
  auto r1 = core::TrainDistributed(original, 3, opt);
  auto r2 = core::TrainDistributed(*loaded, 3, opt);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t e = 0; e < 8; ++e) {
    EXPECT_DOUBLE_EQ(r1->epochs[e].loss, r2->epochs[e].loss) << e;
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, AllPartitionersTrainToSameMath) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  core::TrainOptions opt;
  opt.model.num_layers = 2;
  opt.epochs = 6;

  auto hash = graph::HashPartition(g, 4);
  auto metis = graph::MetisLikePartition(g, 4);
  auto streaming = graph::StreamingPartition(g, 4);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(metis.ok());
  ASSERT_TRUE(streaming.ok());

  core::DistributedTrainer t1(g, *hash, opt);
  core::DistributedTrainer t2(g, *metis, opt);
  core::DistributedTrainer t3(g, *streaming, opt);
  auto r1 = t1.Train();
  auto r2 = t2.Train();
  auto r3 = t3.Train();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  for (size_t e = 0; e < 6; ++e) {
    EXPECT_NEAR(r1->epochs[e].loss, r2->epochs[e].loss, 1e-3);
    EXPECT_NEAR(r1->epochs[e].loss, r3->epochs[e].loss, 1e-3);
  }
}

TEST(IntegrationTest, EveryFpBpCombinationTrains) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  for (auto fp : {core::FpMode::kExact, core::FpMode::kCompressed,
                  core::FpMode::kReqEc, core::FpMode::kDelayed}) {
    for (auto bp : {core::BpMode::kExact, core::BpMode::kCompressed,
                    core::BpMode::kResEc}) {
      core::TrainOptions opt;
      opt.model.num_layers = 2;
      opt.epochs = 16;  // Delayed mode converges slower, by design
      opt.fp_mode = fp;
      opt.bp_mode = bp;
      opt.exchange.fp_bits = 8;
      opt.exchange.bp_bits = 8;
      auto r = core::TrainDistributed(g, 3, opt);
      ASSERT_TRUE(r.ok()) << core::FpModeName(fp) << "/"
                          << core::BpModeName(bp) << ": " << r.status();
      EXPECT_GT(r->epochs.back().train_acc, 0.8)
          << core::FpModeName(fp) << "/" << core::BpModeName(bp);
    }
  }
}

TEST(IntegrationTest, AdaptiveBitTunerStaysInLadder) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  core::TrainOptions opt;
  opt.model.num_layers = 2;
  opt.epochs = 40;
  opt.fp_mode = core::FpMode::kReqEc;
  opt.exchange.fp_bits = 2;
  opt.exchange.adaptive_bits = true;
  auto r = core::TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok());
  // Training completes and converges with the tuner active.
  EXPECT_GT(r->best_val_acc, 0.9);
}

TEST(IntegrationTest, SampledTrainerComposesWithMetisPartition) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  auto metis = graph::MetisLikePartition(g, 3);
  ASSERT_TRUE(metis.ok());
  core::SamplingTrainOptions opt;
  opt.model.num_layers = 2;
  opt.fanouts = {6, 6};
  opt.exchange.fp_bits = 8;
  opt.exchange.bp_bits = 8;
  opt.epochs = 30;
  core::SamplingTrainer trainer(g, *metis, opt);
  auto r = trainer.Train();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->best_val_acc, 0.85);
}

}  // namespace
}  // namespace ecg
