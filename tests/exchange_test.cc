#include "core/exchange.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "core/halo.h"
#include "dist/cluster.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "tensor/ops.h"

namespace ecg::core {
namespace {

using dist::SimulatedCluster;
using dist::WorkerContext;
using tensor::Matrix;

constexpr size_t kDim = 8;

/// A 6-vertex ring split between two workers so every worker has remote
/// neighbours: worker 0 owns {0,1,2}, worker 1 owns {3,4,5}.
struct TwoWorkerFixture {
  graph::Graph g;
  graph::Partition partition;
  std::vector<WorkerPlan> plans;

  TwoWorkerFixture() {
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (uint32_t v = 0; v < 6; ++v) edges.emplace_back(v, (v + 1) % 6);
    tensor::Matrix features(6, kDim);
    g = *graph::Graph::Build(6, edges, std::move(features),
                             {0, 0, 0, 1, 1, 1}, 2);
    partition.num_parts = 2;
    partition.owner = {0, 0, 0, 1, 1, 1};
    partition.members = {{0, 1, 2}, {3, 4, 5}};
    EXPECT_TRUE(BuildWorkerPlans(g, partition, &plans).ok());
  }
};

/// Fills owned rows with value_fn(global_id, dim_index).
Matrix MakeOwned(const WorkerPlan& plan,
                 const std::function<float(uint32_t, size_t)>& value_fn) {
  Matrix m(plan.num_owned(), kDim);
  for (size_t r = 0; r < plan.num_owned(); ++r) {
    for (size_t c = 0; c < kDim; ++c) {
      m.At(r, c) = value_fn(plan.owned[r], c);
    }
  }
  return m;
}

/// Runs `epochs` rounds of FP exchange on the fixture and hands each
/// worker's halo to `check(worker, epoch, plan, halo)` after every round.
void RunFpRounds(
    TwoWorkerFixture* fx, FpMode mode, const ExchangeConfig& config,
    uint32_t epochs,
    const std::function<float(uint32_t, size_t, uint32_t)>& value_fn,
    const std::function<void(uint32_t, uint32_t, const WorkerPlan&,
                             const Matrix&)>& check) {
  SimulatedCluster cluster(2, dist::NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const WorkerPlan& plan = fx->plans[ctx->worker_id()];
    auto ex = MakeFpExchanger(mode, config, /*num_layers=*/2, plan);
    Matrix halo(plan.num_halo(), kDim);
    for (uint32_t epoch = 0; epoch < epochs; ++epoch) {
      const Matrix owned = MakeOwned(plan, [&](uint32_t v, size_t c) {
        return value_fn(v, c, epoch);
      });
      ECG_RETURN_IF_ERROR(ex->Exchange(ctx, plan, epoch, 1, owned, &halo));
      check(ctx->worker_id(), epoch, plan, halo);
    }
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
}

TEST(ExchangeTest, ActivePeersAreSymmetricInFixture) {
  TwoWorkerFixture fx;
  EXPECT_EQ(fx.plans[0].send_rows[1].size(), 2u);  // vertices 0 and 2
  EXPECT_EQ(fx.plans[1].send_rows[0].size(), 2u);  // vertices 3 and 5
  EXPECT_EQ(fx.plans[0].num_halo(), 2u);
  EXPECT_EQ(fx.plans[1].num_halo(), 2u);
}

TEST(ExchangeTest, ExactFpDeliversExactRows) {
  TwoWorkerFixture fx;
  auto value = [](uint32_t v, size_t c, uint32_t) {
    return static_cast<float>(v * 10 + c);
  };
  RunFpRounds(&fx, FpMode::kExact, {}, 3, value,
              [&](uint32_t, uint32_t epoch, const WorkerPlan& plan,
                  const Matrix& halo) {
                for (size_t i = 0; i < plan.num_halo(); ++i) {
                  for (size_t c = 0; c < kDim; ++c) {
                    EXPECT_EQ(halo.At(i, c), value(plan.halo[i], c, epoch));
                  }
                }
              });
}

TEST(ExchangeTest, CompressedFpWithinQuantizationError) {
  TwoWorkerFixture fx;
  ExchangeConfig config;
  config.fp_bits = 4;
  auto value = [](uint32_t v, size_t c, uint32_t) {
    return static_cast<float>(v) + 0.1f * static_cast<float>(c);
  };
  // Values per message span < 6.0; 4-bit buckets -> error <= 6/16/2.
  const float tol = 6.0f / 16.0f / 2.0f + 1e-4f;
  RunFpRounds(&fx, FpMode::kCompressed, config, 2, value,
              [&](uint32_t, uint32_t epoch, const WorkerPlan& plan,
                  const Matrix& halo) {
                for (size_t i = 0; i < plan.num_halo(); ++i) {
                  for (size_t c = 0; c < kDim; ++c) {
                    EXPECT_NEAR(halo.At(i, c), value(plan.halo[i], c, epoch),
                                tol);
                  }
                }
              });
}

TEST(ExchangeTest, CompressedFpShipsFewerBytesThanExact) {
  TwoWorkerFixture fx;
  uint64_t exact_bytes = 0, compressed_bytes = 0;
  {
    SimulatedCluster cluster(2, dist::NetworkModel{});
    ASSERT_TRUE(cluster
                    .Run([&](WorkerContext* ctx) -> Status {
                      const WorkerPlan& plan = fx.plans[ctx->worker_id()];
                      auto ex = MakeFpExchanger(FpMode::kExact, {}, 2, plan);
                      Matrix owned = MakeOwned(
                          plan, [](uint32_t v, size_t c) {
                            return static_cast<float>(v + c);
                          });
                      Matrix halo(plan.num_halo(), kDim);
                      return ex->Exchange(ctx, plan, 0, 1, owned, &halo);
                    })
                    .ok());
    exact_bytes = cluster.stats().TotalBytes();
  }
  {
    ExchangeConfig config;
    config.fp_bits = 2;
    SimulatedCluster cluster(2, dist::NetworkModel{});
    ASSERT_TRUE(cluster
                    .Run([&](WorkerContext* ctx) -> Status {
                      const WorkerPlan& plan = fx.plans[ctx->worker_id()];
                      auto ex = MakeFpExchanger(FpMode::kCompressed, config,
                                                2, plan);
                      Matrix owned = MakeOwned(
                          plan, [](uint32_t v, size_t c) {
                            return static_cast<float>(v + c);
                          });
                      Matrix halo(plan.num_halo(), kDim);
                      return ex->Exchange(ctx, plan, 0, 1, owned, &halo);
                    })
                    .ok());
    compressed_bytes = cluster.stats().TotalBytes();
  }
  EXPECT_LT(compressed_bytes, exact_bytes);
}

TEST(ExchangeTest, DelayedFpRefreshesOnlyScheduledRows) {
  TwoWorkerFixture fx;
  ExchangeConfig config;
  config.delay_rounds = 2;
  // Values change every epoch; with r=2 only half the halo tracks the
  // current epoch, the other half is one epoch stale (except epoch 0).
  auto value = [](uint32_t v, size_t c, uint32_t epoch) {
    return static_cast<float>(v) + 100.0f * static_cast<float>(epoch);
  };
  RunFpRounds(&fx, FpMode::kDelayed, config, 4, value,
              [&](uint32_t, uint32_t epoch, const WorkerPlan& plan,
                  const Matrix& halo) {
                size_t fresh = 0, stale = 0;
                for (size_t i = 0; i < plan.num_halo(); ++i) {
                  const float now = value(plan.halo[i], 0, epoch);
                  if (halo.At(i, 0) == now) {
                    ++fresh;
                  } else {
                    ++stale;
                  }
                }
                if (epoch == 0) {
                  EXPECT_EQ(fresh, plan.num_halo());
                } else {
                  EXPECT_EQ(fresh, 1u) << "epoch " << epoch;
                  EXPECT_EQ(stale, 1u) << "epoch " << epoch;
                }
              });
}

TEST(ExchangeTest, ReqEcTrendEpochsDeliverExactValues) {
  TwoWorkerFixture fx;
  ExchangeConfig config;
  config.fp_bits = 2;
  config.trend_period = 4;  // trend epochs: 3, 7, ...
  auto value = [](uint32_t v, size_t c, uint32_t epoch) {
    return std::sin(static_cast<float>(v + c)) +
           0.25f * static_cast<float>(epoch);
  };
  RunFpRounds(&fx, FpMode::kReqEc, config, 8, value,
              [&](uint32_t, uint32_t epoch, const WorkerPlan& plan,
                  const Matrix& halo) {
                if ((epoch + 1) % 4 != 0) return;
                for (size_t i = 0; i < plan.num_halo(); ++i) {
                  for (size_t c = 0; c < kDim; ++c) {
                    EXPECT_FLOAT_EQ(halo.At(i, c),
                                    value(plan.halo[i], c, epoch))
                        << "trend epoch " << epoch;
                  }
                }
              });
}

TEST(ExchangeTest, ReqEcPredictsLinearTrendsPerfectly) {
  TwoWorkerFixture fx;
  ExchangeConfig config;
  config.fp_bits = 1;       // terrible quantizer: predictions must win
  config.trend_period = 3;  // trend at 2, 5, 8...
  auto value = [](uint32_t v, size_t c, uint32_t epoch) {
    // Perfectly linear in epoch: after two trend snapshots, M_cr is exact
    // and the predictor reproduces embeddings with zero error.
    return static_cast<float>(v + c) + 2.0f * static_cast<float>(epoch);
  };
  RunFpRounds(&fx, FpMode::kReqEc, config, 9, value,
              [&](uint32_t, uint32_t epoch, const WorkerPlan& plan,
                  const Matrix& halo) {
                if (epoch < 6) return;  // after second trend snapshot
                for (size_t i = 0; i < plan.num_halo(); ++i) {
                  for (size_t c = 0; c < kDim; ++c) {
                    EXPECT_NEAR(halo.At(i, c), value(plan.halo[i], c, epoch),
                                1e-3f)
                        << "epoch " << epoch;
                  }
                }
              });
}

TEST(ExchangeTest, BitTunerGrowsBitsWhenPredictionsDominate) {
  TwoWorkerFixture fx;
  ExchangeConfig config;
  config.fp_bits = 2;
  config.adaptive_bits = true;
  config.trend_period = 3;
  // Linear trend again: after the first trend group predictions dominate
  // (proportion > 0.6), so the Bit-Tuner must double B towards each peer.
  SimulatedCluster cluster(2, dist::NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const WorkerPlan& plan = fx.plans[ctx->worker_id()];
    auto ex = MakeFpExchanger(FpMode::kReqEc, config, /*num_layers=*/2, plan);
    const uint32_t peer = 1 - ctx->worker_id();
    EXPECT_EQ(ex->BitsTowards(peer), 2);
    Matrix halo(plan.num_halo(), kDim);
    for (uint32_t epoch = 0; epoch < 9; ++epoch) {
      const Matrix owned = MakeOwned(plan, [&](uint32_t v, size_t c) {
        return static_cast<float>(v + c) + 3.0f * static_cast<float>(epoch);
      });
      // layer 1 == last FP layer for a 2-layer model -> tuner runs.
      ECG_RETURN_IF_ERROR(ex->Exchange(ctx, plan, epoch, 1, owned, &halo));
    }
    EXPECT_GT(ex->BitsTowards(peer), 2);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
}

TEST(ExchangeTest, BitTunerSaturatesAtTheSixteenBitCeiling) {
  TwoWorkerFixture fx;
  ExchangeConfig config;
  config.fp_bits = 2;
  config.adaptive_bits = true;
  config.trend_period = 3;
  // A steep linear trend keeps predictions dominating every epoch, so the
  // tuner doubles 2 -> 4 -> 8 -> 16 and must then hold at the ceiling —
  // 16 is the widest id the packed codecs can encode, so overshooting
  // would fault in the quantizer, and the old `b < 16` guard silently
  // capped growth one doubling early on any non-power-of-two start.
  SimulatedCluster cluster(2, dist::NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const WorkerPlan& plan = fx.plans[ctx->worker_id()];
    auto ex = MakeFpExchanger(FpMode::kReqEc, config, /*num_layers=*/2, plan);
    const uint32_t peer = 1 - ctx->worker_id();
    Matrix halo(plan.num_halo(), kDim);
    for (uint32_t epoch = 0; epoch < 12; ++epoch) {
      const Matrix owned = MakeOwned(plan, [&](uint32_t v, size_t c) {
        return static_cast<float>(v + c) + 3.0f * static_cast<float>(epoch);
      });
      ECG_RETURN_IF_ERROR(ex->Exchange(ctx, plan, epoch, 1, owned, &halo));
      EXPECT_LE(ex->BitsTowards(peer), kBitTunerMaxBits);
    }
    EXPECT_EQ(ex->BitsTowards(peer), kBitTunerMaxBits);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
}

/// All three selector granularities must deliver halos whose error never
/// exceeds the compression-only error (the selector can always fall back
/// to cps), and the element-wise schema must be at least as accurate as
/// vertex-wise on mixed drifting/noisy streams.
class SelectorGranularityTest
    : public ::testing::TestWithParam<SelectorGranularity> {};

TEST_P(SelectorGranularityTest, ReconstructionBeatsCompressionOnly) {
  TwoWorkerFixture fx;
  ExchangeConfig config;
  config.fp_bits = 1;
  config.trend_period = 3;
  config.selector = GetParam();
  // Half the coordinates drift linearly (predictable), half stay noisy.
  auto value = [](uint32_t v, size_t c, uint32_t epoch) {
    if (c < kDim / 2) {
      return static_cast<float>(v) + 1.5f * static_cast<float>(epoch);
    }
    return std::sin(static_cast<float>(v * 31 + c * 7 + epoch * 13));
  };
  double total_err = 0.0;
  RunFpRounds(&fx, FpMode::kReqEc, config, 9, value,
              [&](uint32_t worker, uint32_t epoch, const WorkerPlan& plan,
                  const Matrix& halo) {
                if (worker != 0 || epoch < 6) return;
                for (size_t i = 0; i < plan.num_halo(); ++i) {
                  for (size_t c = 0; c < kDim; ++c) {
                    total_err += std::fabs(halo.At(i, c) -
                                           value(plan.halo[i], c, epoch));
                  }
                }
              });
  // Compression-only reference at the same bit width.
  double cp_err = 0.0;
  RunFpRounds(&fx, FpMode::kCompressed, config, 9, value,
              [&](uint32_t worker, uint32_t epoch, const WorkerPlan& plan,
                  const Matrix& halo) {
                if (worker != 0 || epoch < 6) return;
                for (size_t i = 0; i < plan.num_halo(); ++i) {
                  for (size_t c = 0; c < kDim; ++c) {
                    cp_err += std::fabs(halo.At(i, c) -
                                        value(plan.halo[i], c, epoch));
                  }
                }
              });
  EXPECT_LT(total_err, cp_err * 1.001)
      << "granularity " << static_cast<int>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSchemas, SelectorGranularityTest,
                         ::testing::Values(SelectorGranularity::kElement,
                                           SelectorGranularity::kVertex,
                                           SelectorGranularity::kMatrix));

TEST(ExchangeTest, ElementSelectorBeatsVertexOnMixedCoordinates) {
  TwoWorkerFixture fx;
  auto run = [&](SelectorGranularity granularity) {
    ExchangeConfig config;
    config.fp_bits = 1;
    config.trend_period = 3;
    config.selector = granularity;
    auto value = [](uint32_t v, size_t c, uint32_t epoch) {
      // Per-coordinate mix: even coords drift linearly, odd are noisy.
      if (c % 2 == 0) {
        return static_cast<float>(v + c) + 2.0f * epoch;
      }
      return 10.0f * std::sin(static_cast<float>(v * 17 + c * 3 +
                                                 epoch * 11));
    };
    double err = 0.0;
    RunFpRounds(&fx, FpMode::kReqEc, config, 9, value,
                [&](uint32_t worker, uint32_t epoch, const WorkerPlan& plan,
                    const Matrix& halo) {
                  if (worker != 0 || epoch < 6) return;
                  for (size_t i = 0; i < plan.num_halo(); ++i) {
                    for (size_t c = 0; c < kDim; ++c) {
                      err += std::fabs(halo.At(i, c) -
                                       value(plan.halo[i], c, epoch));
                    }
                  }
                });
    return err;
  };
  const double element_err = run(SelectorGranularity::kElement);
  const double vertex_err = run(SelectorGranularity::kVertex);
  // Per-coordinate decisions dominate when drift is per-coordinate.
  EXPECT_LT(element_err, vertex_err * 0.75);
}

TEST(ExchangeTest, ExactBpDeliversExactRows) {
  TwoWorkerFixture fx;
  SimulatedCluster cluster(2, dist::NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const WorkerPlan& plan = fx.plans[ctx->worker_id()];
    auto ex = MakeBpExchanger(BpMode::kExact, {}, 2, plan);
    const Matrix owned = MakeOwned(plan, [](uint32_t v, size_t c) {
      return static_cast<float>(v) - static_cast<float>(c);
    });
    Matrix halo(plan.num_halo(), kDim);
    ECG_RETURN_IF_ERROR(ex->Exchange(ctx, plan, 0, 2, owned, &halo));
    for (size_t i = 0; i < plan.num_halo(); ++i) {
      for (size_t c = 0; c < kDim; ++c) {
        EXPECT_EQ(halo.At(i, c),
                  static_cast<float>(plan.halo[i]) - static_cast<float>(c));
      }
    }
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
}

TEST(ExchangeTest, ResEcErrorFeedbackAveragesOutBias) {
  // With a CONSTANT gradient stream and coarse 1-bit quantization, plain
  // compression repeats the same biased reconstruction forever, while
  // ResEC-BP's residual carry makes the time-average converge to the true
  // gradient (the whole point of Eqs. 11-12).
  TwoWorkerFixture fx;
  const uint32_t epochs = 64;
  auto run = [&](BpMode mode, Matrix* avg_out) {
    ExchangeConfig config;
    config.bp_bits = 1;
    SimulatedCluster cluster(2, dist::NetworkModel{});
    Matrix sums[2] = {Matrix(fx.plans[0].num_halo(), kDim),
                      Matrix(fx.plans[1].num_halo(), kDim)};
    auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
      const WorkerPlan& plan = fx.plans[ctx->worker_id()];
      auto ex = MakeBpExchanger(mode, config, 2, plan);
      const Matrix owned = MakeOwned(plan, [](uint32_t v, size_t c) {
        return 0.123f * static_cast<float>(v) + 0.017f * c;
      });
      Matrix halo(plan.num_halo(), kDim);
      for (uint32_t epoch = 0; epoch < epochs; ++epoch) {
        ECG_RETURN_IF_ERROR(ex->Exchange(ctx, plan, epoch, 2, owned, &halo));
        tensor::AddInPlace(&sums[ctx->worker_id()], halo);
      }
      return Status::OK();
    });
    EXPECT_TRUE(status.ok()) << status;
    *avg_out = sums[0];
    tensor::ScaleInPlace(avg_out, 1.0f / epochs);
  };

  Matrix avg_plain, avg_ec;
  run(BpMode::kCompressed, &avg_plain);
  run(BpMode::kResEc, &avg_ec);

  const WorkerPlan& plan = fx.plans[0];
  double err_plain = 0.0, err_ec = 0.0;
  for (size_t i = 0; i < plan.num_halo(); ++i) {
    for (size_t c = 0; c < kDim; ++c) {
      const float truth = 0.123f * static_cast<float>(plan.halo[i]) +
                          0.017f * static_cast<float>(c);
      err_plain += std::fabs(avg_plain.At(i, c) - truth);
      err_ec += std::fabs(avg_ec.At(i, c) - truth);
    }
  }
  EXPECT_LT(err_ec, err_plain / 4)
      << "EC avg err " << err_ec << " vs plain " << err_plain;
}

TEST(ExchangeTest, ModeNamesAreStable) {
  EXPECT_STREQ(FpModeName(FpMode::kExact), "Non-cp");
  EXPECT_STREQ(FpModeName(FpMode::kReqEc), "ReqEC-FP");
  EXPECT_STREQ(BpModeName(BpMode::kResEc), "ResEC-BP");
}

}  // namespace
}  // namespace ecg::core
