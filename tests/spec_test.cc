#include "common/spec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/train_spec.h"
#include "dist/elastic.h"
#include "dist/fault.h"

namespace ecg {
namespace {

// ---------------------------------------------------------------------------
// Grammar and typed-field behavior of config::Spec itself.
// ---------------------------------------------------------------------------

struct Demo {
  uint32_t count = 3;
  double rate = 0.5;
  bool flag = false;
  std::string name = "default";
  int mode = 0;
};

config::Spec& BindDemo(config::Spec& spec, Demo* d) {
  spec.U32("count", &d->count).Min(1).Max(100).Help("a bounded counter");
  spec.F64("rate", &d->rate).MinExclusive(0).Help("a positive rate");
  spec.Bool("flag", &d->flag);
  spec.String("name", &d->name);
  spec.Enum<int>("mode", &d->mode, {{"off", 0}, {"slow", 1}, {"fast", 2}});
  return spec;
}

TEST(SpecTest, EmptySpecKeepsDefaults) {
  Demo d;
  config::Spec spec("demo");
  ASSERT_TRUE(BindDemo(spec, &d).Parse("").ok());
  EXPECT_EQ(d.count, 3u);
  EXPECT_EQ(d.rate, 0.5);
  EXPECT_FALSE(d.flag);
  EXPECT_EQ(d.name, "default");
}

TEST(SpecTest, ParsesAllFieldTypes) {
  Demo d;
  config::Spec spec("demo");
  ASSERT_TRUE(
      BindDemo(spec, &d)
          .Parse("count=42,rate=1.25,flag=on,name=hello,mode=fast")
          .ok());
  EXPECT_EQ(d.count, 42u);
  EXPECT_EQ(d.rate, 1.25);
  EXPECT_TRUE(d.flag);
  EXPECT_EQ(d.name, "hello");
  EXPECT_EQ(d.mode, 2);
}

TEST(SpecTest, IgnoresSpacesAndSemicolons) {
  Demo d;
  config::Spec spec("demo");
  ASSERT_TRUE(BindDemo(spec, &d).Parse(" count=7 ; flag=true ").ok());
  EXPECT_EQ(d.count, 7u);
  EXPECT_TRUE(d.flag);
}

TEST(SpecTest, UnknownKeyIsAnError) {
  Demo d;
  config::Spec spec("demo");
  const Status st = BindDemo(spec, &d).Parse("bogus=1");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("demo"), std::string::npos);
}

TEST(SpecTest, DuplicateFlatKeyIsAnError) {
  Demo d;
  config::Spec spec("demo");
  EXPECT_FALSE(BindDemo(spec, &d).Parse("count=1,count=2").ok());
}

TEST(SpecTest, RejectsMalformedValues) {
  const std::vector<std::string> bad = {
      "count=3x",    // trailing junk on an integer
      "count=-1",    // unsigned field
      "count=",      // empty value
      "rate=fast",   // not a double
      "flag=maybe",  // not a bool token
      "mode=warp",   // not in the enum set
      "count",       // no '='
  };
  for (const std::string& s : bad) {
    Demo d;
    config::Spec spec("demo");
    EXPECT_FALSE(BindDemo(spec, &d).Parse(s).ok()) << s;
  }
}

TEST(SpecTest, EnforcesRangeBounds) {
  {
    Demo d;
    config::Spec spec("demo");
    EXPECT_FALSE(BindDemo(spec, &d).Parse("count=0").ok());  // Min(1)
  }
  {
    Demo d;
    config::Spec spec("demo");
    EXPECT_FALSE(BindDemo(spec, &d).Parse("count=101").ok());  // Max(100)
  }
  {
    Demo d;
    config::Spec spec("demo");
    EXPECT_FALSE(BindDemo(spec, &d).Parse("rate=0").ok());  // MinExclusive(0)
  }
  {
    Demo d;
    config::Spec spec("demo");
    EXPECT_TRUE(BindDemo(spec, &d).Parse("count=100").ok());  // boundary
    EXPECT_EQ(d.count, 100u);
  }
}

TEST(SpecTest, RequiredFieldMustAppear) {
  uint32_t v = 0;
  config::Spec spec("demo");
  spec.U32("v", &v).Required();
  EXPECT_FALSE(spec.Parse("").ok());
  config::Spec spec2("demo");
  spec2.U32("v", &v).Required();
  EXPECT_TRUE(spec2.Parse("v=5").ok());
  EXPECT_EQ(v, 5u);
}

TEST(SpecTest, ParsesLists) {
  std::vector<uint32_t> fanouts;
  std::vector<double> scales;
  config::Spec spec("demo");
  spec.U32List("fanout", &fanouts);
  spec.F64List("scale", &scales);
  ASSERT_TRUE(spec.Parse("fanout=20x10x5,scale=1:2:0.5").ok());
  EXPECT_EQ(fanouts, (std::vector<uint32_t>{20, 10, 5}));
  EXPECT_EQ(scales, (std::vector<double>{1.0, 2.0, 0.5}));
}

TEST(SpecTest, ClauseHandlersReceiveStructuredClauses) {
  std::vector<std::string> seen;
  uint32_t flat = 0;
  config::Spec spec("demo");
  spec.U32("flat", &flat);
  spec.Clause("ev", "ev@k=V", "an event clause",
              [&seen](const std::string& clause) {
                seen.push_back(clause);
                return Status::OK();
              });
  ASSERT_TRUE(spec.Parse("ev@k=1,flat=9,ev@k=2").ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"ev@k=1", "ev@k=2"}));
  EXPECT_EQ(flat, 9u);
}

TEST(SpecTest, ClauseHandlerErrorsPropagate) {
  config::Spec spec("demo");
  spec.Clause("ev", "ev@k=V", "always fails", [&spec](const std::string&) {
    return spec.Error("nope");
  });
  const Status st = spec.Parse("ev@k=1");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("nope"), std::string::npos);
}

TEST(SpecTest, HelpTextListsKeysDefaultsAndClauses) {
  Demo d;
  config::Spec spec("demo");
  spec.Clause("ev", "ev@k=V", "an event clause",
              [](const std::string&) { return Status::OK(); });
  const std::string help = BindDemo(spec, &d).HelpText();
  for (const char* needle :
       {"count", "rate", "flag", "name", "off|slow|fast", "ev@k=V",
        "a bounded counter", "default 3"}) {
    EXPECT_NE(help.find(needle), std::string::npos) << needle;
  }
}

TEST(SpecTest, SplitDropsEmptyTokens) {
  const auto parts = config::Spec::Split("a,,b; c ,", ",;");
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "b", "c"}));
}

// ---------------------------------------------------------------------------
// Round-trips of the ported surfaces: every spec string the hand-rolled
// parsers accepted must still parse (and the rejects must still reject).
// ---------------------------------------------------------------------------

TEST(ElasticSpecTest, AcceptsFullGrammar) {
  const auto r = elastic::ElasticOptions::Parse(
      "leave@epoch=3:worker=1,join@epoch=5,on_crash=replace,rebalance=on,"
      "ewma=0.5,threshold=1.3,hysteresis=2,budget=0.2,cooldown=1,"
      "downtime=0.5,cap=2.0,max_imbalance=1.4,seed=9");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r->active);
  ASSERT_EQ(r->events.size(), 2u);
  EXPECT_EQ(r->events[0].epoch, 3u);
  EXPECT_EQ(r->events[1].epoch, 5u);
}

TEST(ElasticSpecTest, EmptySpecIsInactive) {
  const auto r = elastic::ElasticOptions::Parse("");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->active);
}

TEST(ElasticSpecTest, RejectsInvalidSpecs) {
  const std::vector<std::string> bad = {
      "leave@epoch=0:worker=1",              // epoch must be >= 1
      "leave@epoch=3",                       // leave needs a worker
      "join@epoch=2:worker=1",               // join forbids a worker
      "threshold=1.0",                       // must exceed 1
      "budget=0",                            // (0, 1]
      "ewma=1.5",                            // (0, 1]
      "rebalance=maybe",                     // not a bool
      "on_crash=explode",                    // unknown enum value
      "bogus=1",                             // unknown key
      "leave@epoch=4:worker=0,join@epoch=4"  // two events on one epoch
  };
  for (const std::string& s : bad) {
    EXPECT_FALSE(elastic::ElasticOptions::Parse(s).ok()) << s;
  }
}

TEST(FaultSpecTest, AcceptsExistingGrammar) {
  const std::vector<std::string> good = {
      "drop=0.05,corrupt=0.01,seed=7",
      "crash@epoch=5:worker=1",
      "drop=1@from=0:to=1,retries=2",
      "delay=1@secs=0.25:from=0:to=1",
      "straggle=1@worker=0:secs=0.125",
      "timeout_ms=50,retries=0",
      "crash@epoch=4:worker=1,restart=0.5",
      "dup=0.5@epoch=2-3",
  };
  for (const std::string& s : good) {
    EXPECT_TRUE(dist::FaultInjector::Parse(s).ok()) << s;
  }
}

TEST(FaultSpecTest, RejectsInvalidSpecs) {
  const std::vector<std::string> bad = {
      "drop=1.5",        // probability > 1
      "explode=1",       // unknown fault kind
      "drop=abc",        // not a probability
      "drop=0.1@banana", // unknown filter
      "drop=0.1@epoch=x",
      "seed=-3",
      "crash",           // crash needs epoch + worker
      "crash@worker=1",
      "crash@epoch=2",
  };
  for (const std::string& s : bad) {
    EXPECT_FALSE(dist::FaultInjector::Parse(s).ok()) << s;
  }
}

TEST(TrainSpecTest, DefaultsMatchTheCli) {
  const auto r = core::ParseTrainSpec({});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->workers, 6u);
  EXPECT_FALSE(r->use_sampling);
  EXPECT_EQ(r->options.fp_mode, core::FpMode::kReqEc);
  EXPECT_EQ(r->options.bp_mode, core::BpMode::kResEc);
  EXPECT_EQ(r->options.log_every, 10u);
}

TEST(TrainSpecTest, ParsesFlatKeys) {
  const auto r = core::ParseTrainSpec(
      {"workers=4", "epochs=12", "model=sage", "layers=3", "hidden=8",
       "fp=cp", "bp=exact", "fp_bits=4", "partitioner=metis",
       "overlap=off"});
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r->workers, 4u);
  EXPECT_EQ(r->options.epochs, 12u);
  EXPECT_EQ(r->options.model.kind, core::GnnKind::kSage);
  EXPECT_EQ(r->options.model.num_layers, 3);
  EXPECT_EQ(r->options.fp_mode, core::FpMode::kCompressed);
  EXPECT_EQ(r->options.bp_mode, core::BpMode::kExact);
  EXPECT_EQ(r->partitioner, core::PartitionerKind::kMetis);
}

TEST(TrainSpecTest, UnknownKeyAndBadValuesError) {
  EXPECT_FALSE(core::ParseTrainSpec({"bogus=1"}).ok());
  EXPECT_FALSE(core::ParseTrainSpec({"epochs=0"}).ok());
  EXPECT_FALSE(core::ParseTrainSpec({"workers=zero"}).ok());
  EXPECT_FALSE(core::ParseTrainSpec({"fp=magic"}).ok());
}

TEST(TrainSpecTest, QuantizationBitsMustBeACodecWidth) {
  // The packed codecs only know {1,2,4,8,16}; anything else must fail at
  // the CLI instead of deep inside the first quantized exchange.
  for (const char* clause : {"fp_bits=3", "fp_bits=5", "bp_bits=6",
                             "bp_bits=12", "fp_bits=17", "bp_bits=0"}) {
    EXPECT_FALSE(core::ParseTrainSpec({clause}).ok()) << clause;
  }
  const auto r = core::ParseTrainSpec({"fp_bits=16", "bp_bits=8"});
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r->options.exchange.fp_bits, 16);
  EXPECT_EQ(r->options.exchange.bp_bits, 8);
}

TEST(TrainSpecTest, TunerThresholdsMustFormABand) {
  // hi <= lo would make the Bit-Tuner oscillate every epoch; the spec
  // rejects the inverted (and the degenerate hi == lo) band up front.
  const auto inverted = core::ParseTrainSpec({"tuner_hi=0.2", "tuner_lo=0.6"});
  ASSERT_FALSE(inverted.ok());
  EXPECT_NE(inverted.status().message().find("tuner_hi"),
            std::string::npos);
  EXPECT_FALSE(core::ParseTrainSpec({"tuner_lo=0.5", "tuner_hi=0.5"}).ok());
  EXPECT_FALSE(core::ParseTrainSpec({"tuner_hi=1.5"}).ok());  // Max(1)
  const auto ok = core::ParseTrainSpec({"tuner_lo=0.1", "tuner_hi=0.9"});
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  EXPECT_DOUBLE_EQ(ok->options.exchange.tuner_hi, 0.9);
  EXPECT_DOUBLE_EQ(ok->options.exchange.tuner_lo, 0.1);
}

TEST(TrainSpecTest, BitAllocKeysParse) {
  const auto r = core::ParseTrainSpec({"bit_alloc=on", "bit_budget=0.5"});
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r->options.exchange.bit_alloc);
  EXPECT_DOUBLE_EQ(r->options.exchange.bit_budget, 0.5);
  EXPECT_FALSE(core::ParseTrainSpec({"bit_budget=0"}).ok());
}

TEST(TrainSpecTest, NestedElasticSpecIsValidatedEagerly) {
  EXPECT_TRUE(
      core::ParseTrainSpec({"elastic=leave@epoch=3:worker=1"}).ok());
  EXPECT_FALSE(core::ParseTrainSpec({"elastic=threshold=0.5"}).ok());
}

TEST(TrainSpecTest, SamplingSpecSwitchesTrainerAndMapsModes) {
  const auto r = core::ParseTrainSpec(
      {"sampling=fanout=5x5:online=on:seed=3", "epochs=4", "layers=2"});
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r->use_sampling);
  EXPECT_EQ(r->sampling.fanouts, (core::Fanouts{5, 5}));
  EXPECT_TRUE(r->sampling.online_sampling);
  EXPECT_EQ(r->sampling.sample_seed, 3u);
  // CLI-default reqec/resec are not supported by the sampling trainer and
  // map to the compressed modes unless explicitly requested.
  EXPECT_EQ(r->sampling.fp_mode, core::FpMode::kCompressed);
  EXPECT_EQ(r->sampling.bp_mode, core::BpMode::kCompressed);
}

TEST(TrainSpecTest, HelpTextCoversAllSurfaces) {
  const std::string help = core::TrainSpecHelp();
  for (const char* needle : {"workers", "fp=", "sampling", "fanout",
                             "elastic", "leave@", "threshold"}) {
    EXPECT_NE(help.find(needle), std::string::npos) << needle;
  }
}

// The serve surface is registered through the same Spec type; its
// round-trip lives in serve_test.cc next to the server it configures.

}  // namespace
}  // namespace ecg
