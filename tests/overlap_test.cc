// Split-phase halo exchange and the overlapped training schedule.
//
// Three layers of guarantees:
//  * clock model — EndCommPhaseOverlapped charges max(0, comm − credit)
//    and reports hidden = min(comm, credit), deterministically (the comm
//    clock is modelled, never measured);
//  * split-phase equivalence — for every FP/BP mode, with and without a
//    fault schedule, Start+Finish+EndCommPhase delivers bit-identical
//    halos and identical compensation state to the one-shot Exchange;
//  * trainer equivalence — the overlapped schedule (interior aggregation
//    under the in-flight exchange, boundary rows after Finish) reproduces
//    the sequential schedule's losses and accuracies bit-for-bit.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "core/exchange.h"
#include "core/halo.h"
#include "core/sampling_trainer.h"
#include "core/trainer.h"
#include "dist/cluster.h"
#include "dist/fault.h"
#include "graph/datasets.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "tensor/ops.h"

namespace ecg::core {
namespace {

using dist::ScopedFaultInjector;
using dist::SimulatedCluster;
using dist::WorkerContext;
using tensor::Matrix;

constexpr size_t kDim = 8;
constexpr uint32_t kEpochs = 9;  // covers ReqEC trend epochs and Bit-Tuner

/// Same 6-vertex two-worker ring as exchange_test: every worker has two
/// remote neighbours, so both directions of every exchange carry data.
struct TwoWorkerFixture {
  graph::Graph g;
  graph::Partition partition;
  std::vector<WorkerPlan> plans;

  TwoWorkerFixture() {
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (uint32_t v = 0; v < 6; ++v) edges.emplace_back(v, (v + 1) % 6);
    tensor::Matrix features(6, kDim);
    g = *graph::Graph::Build(6, edges, std::move(features),
                             {0, 0, 0, 1, 1, 1}, 2);
    partition.num_parts = 2;
    partition.owner = {0, 0, 0, 1, 1, 1};
    partition.members = {{0, 1, 2}, {3, 4, 5}};
    EXPECT_TRUE(BuildWorkerPlans(g, partition, &plans).ok());
  }
};

Matrix MakeOwned(const WorkerPlan& plan,
                 const std::function<float(uint32_t, size_t)>& value_fn) {
  Matrix m(plan.num_owned(), kDim);
  for (size_t r = 0; r < plan.num_owned(); ++r) {
    for (size_t c = 0; c < kDim; ++c) {
      m.At(r, c) = value_fn(plan.owned[r], c);
    }
  }
  return m;
}

float StreamValue(uint32_t v, size_t c, uint32_t epoch) {
  // Mixes a drifting trend (exercises ReqEC prediction) with per-vertex
  // texture (exercises quantizer buckets).
  return std::sin(static_cast<float>(v * 7 + c)) +
         0.5f * static_cast<float>(epoch);
}

/// Everything one run produces that the split and one-shot paths must
/// agree on.
struct RunCapture {
  std::vector<Matrix> halos;                // [worker * kEpochs + epoch]
  std::vector<std::vector<uint8_t>> state;  // final SaveState per worker
};

RunCapture RunFp(TwoWorkerFixture* fx, FpMode mode,
                 const ExchangeConfig& config, bool split) {
  RunCapture cap;
  cap.halos.resize(2 * kEpochs);
  cap.state.resize(2);
  SimulatedCluster cluster(2, dist::NetworkModel{});
  cluster.hub().set_fault_injector(dist::GlobalFaultInjector());
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const WorkerPlan& plan = fx->plans[ctx->worker_id()];
    auto ex = MakeFpExchanger(mode, config, /*num_layers=*/2, plan);
    Matrix halo(plan.num_halo(), kDim);
    for (uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
      const Matrix owned = MakeOwned(plan, [&](uint32_t v, size_t c) {
        return StreamValue(v, c, epoch);
      });
      if (split) {
        ECG_RETURN_IF_ERROR(ex->Start(ctx, plan, epoch, 1, owned));
        ECG_RETURN_IF_ERROR(ex->Finish(ctx, plan, epoch, 1, &halo));
        ctx->EndCommPhase("fp_comm");
      } else {
        ECG_RETURN_IF_ERROR(ex->Exchange(ctx, plan, epoch, 1, owned, &halo));
      }
      cap.halos[ctx->worker_id() * kEpochs + epoch] = halo;
    }
    ByteWriter w(&cap.state[ctx->worker_id()]);
    ex->SaveState(&w);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status;
  return cap;
}

RunCapture RunBp(TwoWorkerFixture* fx, BpMode mode,
                 const ExchangeConfig& config, bool split) {
  RunCapture cap;
  cap.halos.resize(2 * kEpochs);
  cap.state.resize(2);
  SimulatedCluster cluster(2, dist::NetworkModel{});
  cluster.hub().set_fault_injector(dist::GlobalFaultInjector());
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const WorkerPlan& plan = fx->plans[ctx->worker_id()];
    auto ex = MakeBpExchanger(mode, config, /*num_layers=*/2, plan);
    Matrix halo(plan.num_halo(), kDim);
    for (uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
      const Matrix owned = MakeOwned(plan, [&](uint32_t v, size_t c) {
        return StreamValue(v, c, epoch);
      });
      if (split) {
        ECG_RETURN_IF_ERROR(ex->Start(ctx, plan, epoch, 2, owned));
        ECG_RETURN_IF_ERROR(ex->Finish(ctx, plan, epoch, 2, &halo));
        ctx->EndCommPhase("bp_comm");
      } else {
        ECG_RETURN_IF_ERROR(ex->Exchange(ctx, plan, epoch, 2, owned, &halo));
      }
      cap.halos[ctx->worker_id() * kEpochs + epoch] = halo;
    }
    ByteWriter w(&cap.state[ctx->worker_id()]);
    ex->SaveState(&w);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status;
  return cap;
}

void ExpectIdentical(const RunCapture& a, const RunCapture& b) {
  ASSERT_EQ(a.halos.size(), b.halos.size());
  for (size_t i = 0; i < a.halos.size(); ++i) {
    ASSERT_EQ(a.halos[i].rows(), b.halos[i].rows());
    ASSERT_EQ(a.halos[i].cols(), b.halos[i].cols());
    EXPECT_EQ(std::memcmp(a.halos[i].data(), b.halos[i].data(),
                          a.halos[i].size() * sizeof(float)),
              0)
        << "halo " << i << " differs";
  }
  ASSERT_EQ(a.state.size(), b.state.size());
  for (size_t wkr = 0; wkr < a.state.size(); ++wkr) {
    EXPECT_EQ(a.state[wkr], b.state[wkr])
        << "compensation state of worker " << wkr << " differs";
  }
}

// A schedule exercising drops (with recovery AND permanent loss), delays,
// and corruption — every degradation path of Finish. Decisions depend only
// on (from, to, tag, attempt), so two runs see the same faults.
constexpr char kFaultSpec[] =
    "drop=0.3,corrupt=0.05,delay=0.2@secs=0.002,"
    "seed=11,retries=2,timeout_ms=250,backoff=0.001";

class FpSplitEquivalence
    : public ::testing::TestWithParam<std::tuple<FpMode, bool>> {};

TEST_P(FpSplitEquivalence, SplitPhaseMatchesOneShot) {
  const auto [mode, faults] = GetParam();
  ExchangeConfig config;
  config.fp_bits = 2;
  config.trend_period = 4;
  config.adaptive_bits = true;  // exercise the Bit-Tuner under both paths
  config.delay_rounds = 2;
  auto run_both = [&] {
    TwoWorkerFixture fx_one, fx_split;
    const RunCapture one = RunFp(&fx_one, mode, config, /*split=*/false);
    const RunCapture split = RunFp(&fx_split, mode, config, /*split=*/true);
    ExpectIdentical(one, split);
  };
  if (faults) {
    auto inj = dist::FaultInjector::Parse(kFaultSpec);
    ASSERT_TRUE(inj.ok()) << inj.status();
    ScopedFaultInjector scoped(&*inj);
    run_both();
  } else {
    run_both();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, FpSplitEquivalence,
    ::testing::Combine(::testing::Values(FpMode::kExact, FpMode::kCompressed,
                                         FpMode::kReqEc, FpMode::kDelayed),
                       ::testing::Bool()));

class BpSplitEquivalence
    : public ::testing::TestWithParam<std::tuple<BpMode, bool>> {};

TEST_P(BpSplitEquivalence, SplitPhaseMatchesOneShot) {
  const auto [mode, faults] = GetParam();
  ExchangeConfig config;
  config.bp_bits = 2;
  auto run_both = [&] {
    TwoWorkerFixture fx_one, fx_split;
    const RunCapture one = RunBp(&fx_one, mode, config, /*split=*/false);
    const RunCapture split = RunBp(&fx_split, mode, config, /*split=*/true);
    ExpectIdentical(one, split);
  };
  if (faults) {
    auto inj = dist::FaultInjector::Parse(kFaultSpec);
    ASSERT_TRUE(inj.ok()) << inj.status();
    ScopedFaultInjector scoped(&*inj);
    run_both();
  } else {
    run_both();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, BpSplitEquivalence,
    ::testing::Combine(::testing::Values(BpMode::kExact, BpMode::kCompressed,
                                         BpMode::kResEc),
                       ::testing::Bool()));

// ---------------------------------------------------------------------
// Overlap clock model: comm is modelled, so the charge is deterministic.

TEST(OverlapClockTest, CreditHidesCommUpToItsFullDuration) {
  TwoWorkerFixture fx;
  // hidden/charged per worker for the three credit regimes.
  double comm_ref[2], charged_zero[2], charged_half[2], charged_full[2];
  SimulatedCluster cluster(2, dist::NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const WorkerPlan& plan = fx.plans[ctx->worker_id()];
    auto ex = MakeFpExchanger(FpMode::kExact, {}, 2, plan);
    Matrix halo(plan.num_halo(), kDim);
    const Matrix owned = MakeOwned(plan, [](uint32_t v, size_t c) {
      return static_cast<float>(v + c);
    });
    const uint32_t me = ctx->worker_id();

    // Credit 0: exactly EndCommPhase.
    ECG_RETURN_IF_ERROR(ex->Start(ctx, plan, 0, 1, owned));
    ECG_RETURN_IF_ERROR(ex->Finish(ctx, plan, 0, 1, &halo));
    double before = ctx->comm_seconds();
    double hidden = ctx->EndCommPhaseOverlapped("fp_comm", 0.0, &comm_ref[me]);
    EXPECT_EQ(hidden, 0.0);
    charged_zero[me] = ctx->comm_seconds() - before;

    // Credit half the comm time: hides exactly the credit.
    ECG_RETURN_IF_ERROR(ex->Start(ctx, plan, 1, 1, owned));
    ECG_RETURN_IF_ERROR(ex->Finish(ctx, plan, 1, 1, &halo));
    before = ctx->comm_seconds();
    double comm_s = 0.0;
    hidden = ctx->EndCommPhaseOverlapped("fp_comm", comm_ref[me] / 2, &comm_s);
    EXPECT_DOUBLE_EQ(comm_s, comm_ref[me]);
    EXPECT_DOUBLE_EQ(hidden, comm_ref[me] / 2);
    charged_half[me] = ctx->comm_seconds() - before;

    // Credit far above the comm time: the whole phase is hidden.
    ECG_RETURN_IF_ERROR(ex->Start(ctx, plan, 2, 1, owned));
    ECG_RETURN_IF_ERROR(ex->Finish(ctx, plan, 2, 1, &halo));
    before = ctx->comm_seconds();
    hidden = ctx->EndCommPhaseOverlapped("fp_comm", 1e9, &comm_s);
    EXPECT_DOUBLE_EQ(hidden, comm_ref[me]);
    charged_full[me] = ctx->comm_seconds() - before;
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
  for (int wkr = 0; wkr < 2; ++wkr) {
    EXPECT_GT(comm_ref[wkr], 0.0);
    EXPECT_DOUBLE_EQ(charged_zero[wkr], comm_ref[wkr]);
    EXPECT_DOUBLE_EQ(charged_half[wkr], comm_ref[wkr] / 2);
    EXPECT_DOUBLE_EQ(charged_full[wkr], 0.0);
  }
}

// ---------------------------------------------------------------------
// Trainer-level equivalence: the overlapped schedule splits the SpMM into
// interior + boundary row sets that partition the owned rows, preserving
// each row's accumulation order — activations, gradients, and therefore
// the whole training curve must match bit-for-bit.

struct TrainerCase {
  FpMode fp;
  BpMode bp;
  GnnKind kind;
  bool cache_features;
  const char* name;
};

class OverlapTrainerEquivalence
    : public ::testing::TestWithParam<TrainerCase> {};

TEST_P(OverlapTrainerEquivalence, OverlapMatchesSequentialBitForBit) {
  const TrainerCase& tc = GetParam();
  const graph::Graph g = *graph::LoadDataset("tiny");
  TrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.model.kind = tc.kind;
  opt.fp_mode = tc.fp;
  opt.bp_mode = tc.bp;
  opt.cache_features = tc.cache_features;
  opt.epochs = 8;
  opt.exchange.trend_period = 3;

  opt.overlap = false;
  auto sequential = TrainDistributed(g, 3, opt);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  opt.overlap = true;
  auto overlapped = TrainDistributed(g, 3, opt);
  ASSERT_TRUE(overlapped.ok()) << overlapped.status();

  ASSERT_EQ(sequential->epochs.size(), overlapped->epochs.size()) << tc.name;
  for (size_t e = 0; e < sequential->epochs.size(); ++e) {
    EXPECT_EQ(sequential->epochs[e].loss, overlapped->epochs[e].loss)
        << tc.name << " epoch " << e;
    EXPECT_EQ(sequential->epochs[e].train_acc,
              overlapped->epochs[e].train_acc)
        << tc.name << " epoch " << e;
    EXPECT_EQ(sequential->epochs[e].val_acc, overlapped->epochs[e].val_acc)
        << tc.name << " epoch " << e;
    EXPECT_EQ(sequential->epochs[e].test_acc, overlapped->epochs[e].test_acc)
        << tc.name << " epoch " << e;
    // The split schedule ships exactly the same messages.
    EXPECT_EQ(sequential->epochs[e].comm_bytes,
              overlapped->epochs[e].comm_bytes)
        << tc.name << " epoch " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, OverlapTrainerEquivalence,
    ::testing::Values(
        TrainerCase{FpMode::kExact, BpMode::kExact, GnnKind::kGcn, true,
                    "noncp_gcn"},
        TrainerCase{FpMode::kCompressed, BpMode::kCompressed, GnnKind::kGcn,
                    false, "cp_gcn_nocache"},
        TrainerCase{FpMode::kReqEc, BpMode::kResEc, GnnKind::kGcn, true,
                    "ec_gcn"},
        TrainerCase{FpMode::kDelayed, BpMode::kExact, GnnKind::kSage, true,
                    "delayed_sage"}),
    [](const ::testing::TestParamInfo<TrainerCase>& info) {
      return info.param.name;
    });

TEST(OverlapTrainerTest, OverlapNeverChargesMoreCommThanSequential) {
  // A slow interconnect makes comm dominate; hiding interior compute can
  // only shrink the modelled comm share, never grow it. (Compute is
  // measured, so total makespans are compared in bench_microkernels
  // --overlap, not here.)
  const graph::Graph g = *graph::LoadDataset("tiny");
  TrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.epochs = 4;
  opt.network.bandwidth_bytes_per_sec = 1e6;
  opt.network.latency_sec = 5e-3;

  auto sum_comm = [&](bool overlap) {
    opt.overlap = overlap;
    auto r = TrainDistributed(g, 3, opt);
    EXPECT_TRUE(r.ok()) << r.status();
    double comm = 0.0;
    for (const auto& e : r->epochs) {
      comm += e.PhaseSeconds("fp_exchange") + e.PhaseSeconds("bp_exchange");
    }
    return comm;
  };
  const double sequential = sum_comm(false);
  const double overlapped = sum_comm(true);
  EXPECT_GT(sequential, 0.0);
  EXPECT_LE(overlapped, sequential + 1e-9);
}

TEST(OverlapTrainerTest, SamplingTrainerOverlapMatchesSequential) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  SamplingTrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.epochs = 6;
  opt.fanouts = {4, 4};

  opt.overlap = false;
  auto sequential = TrainSampled(g, 3, opt);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  opt.overlap = true;
  auto overlapped = TrainSampled(g, 3, opt);
  ASSERT_TRUE(overlapped.ok()) << overlapped.status();

  ASSERT_EQ(sequential->epochs.size(), overlapped->epochs.size());
  for (size_t e = 0; e < sequential->epochs.size(); ++e) {
    EXPECT_EQ(sequential->epochs[e].loss, overlapped->epochs[e].loss)
        << "epoch " << e;
    EXPECT_EQ(sequential->epochs[e].val_acc, overlapped->epochs[e].val_acc)
        << "epoch " << e;
  }
}

}  // namespace
}  // namespace ecg::core
