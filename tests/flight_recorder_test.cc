#include "common/flight_recorder.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json_lite.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ecg::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return "";
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FlightRecorder::Global().Disarm();
    Tracer::Global().Disable();
    MetricsRegistry::Global().Disable();
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(FlightRecorderTest, UnarmedDumpIsError) {
  FlightRecorder::Global().Disarm();
  auto res = FlightRecorder::Global().DumpNow("manual");
  EXPECT_FALSE(res.ok());
}

TEST_F(FlightRecorderTest, ArmRejectsEmptyDir) {
  EXPECT_FALSE(FlightRecorder::Global().Arm("").ok());
}

TEST_F(FlightRecorderTest, DumpNowRoundTripsThroughJson) {
  const std::string dir = ::testing::TempDir() + "/flight_rt";
  MetricsRegistry::Global().Enable();
  MetricsRegistry::Global().GetCounter("ecg_rt_total", "h")->Inc(5);

  ASSERT_TRUE(FlightRecorder::Global().Arm(dir, /*last_n_spans=*/16).ok());
  ASSERT_TRUE(TraceEnabled(1));  // Arm turned on snapshot-only tracing

  Tracer::Global().RecordComplete("unit_phase", /*worker=*/2, /*layer=*/1,
                                  /*ts_us=*/10, /*dur_us=*/5);
  Tracer::Global().RecordFlow(FlowPhase::kStart, "halo_msg", /*worker=*/0,
                              /*peer=*/1, /*layer=*/-1, /*flow_id=*/0xabcd);
  FlightRecorder::Global().AddSection("unit", [] {
    return std::string("{\"x\":42}");
  });

  auto res =
      FlightRecorder::Global().DumpNow("manual", "detail \"quoted\" text");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  // Driver thread is untagged -> worker "main" in the filename.
  EXPECT_NE(res->find("flight_main.json"), std::string::npos);

  auto doc = json::Parse(ReadFile(*res));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("reason"), "manual");
  EXPECT_EQ(doc->GetString("detail"), "detail \"quoted\" text");
  EXPECT_EQ(doc->GetNumber("worker"), -1);
  EXPECT_FALSE(doc->GetString("commit").empty());
  EXPECT_FALSE(doc->GetString("kernel_variant").empty());

  // The recorded spans survive the round-trip with their coordinates.
  const json::JsonValue* spans = doc->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  bool saw_phase = false, saw_flow = false;
  for (const auto& s : spans->array) {
    if (s.GetString("name") == "unit_phase") {
      saw_phase = true;
      EXPECT_EQ(s.GetString("domain"), "real");
      EXPECT_EQ(s.GetNumber("worker"), 2);
      EXPECT_EQ(s.GetNumber("layer"), 1);
      EXPECT_EQ(s.GetNumber("dur_us"), 5);
    }
    if (s.GetString("name") == "halo_msg") {
      saw_flow = true;
      EXPECT_EQ(s.GetString("flow"), "s");
      EXPECT_EQ(s.GetString("flow_id"), "0xabcd");
      EXPECT_EQ(s.GetNumber("peer"), 1);
    }
  }
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_flow);

  // The metrics snapshot is embedded as escaped Prometheus text.
  EXPECT_NE(doc->GetString("metrics_text").find("ecg_rt_total 5"),
            std::string::npos);

  // Registered sections are inlined as raw JSON values.
  const json::JsonValue* sections = doc->Find("sections");
  ASSERT_NE(sections, nullptr);
  const json::JsonValue* unit = sections->Find("unit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->GetNumber("x"), 42);
}

TEST_F(FlightRecorderTest, AddSectionReplacesByName) {
  const std::string dir = ::testing::TempDir() + "/flight_sec";
  ASSERT_TRUE(FlightRecorder::Global().Arm(dir).ok());
  FlightRecorder::Global().AddSection("dup", [] {
    return std::string("{\"v\":1}");
  });
  FlightRecorder::Global().AddSection("dup", [] {
    return std::string("{\"v\":2}");
  });
  auto res = FlightRecorder::Global().DumpNow("manual");
  ASSERT_TRUE(res.ok());
  auto doc = json::Parse(ReadFile(*res));
  ASSERT_TRUE(doc.ok());
  const json::JsonValue* sections = doc->Find("sections");
  ASSERT_NE(sections, nullptr);
  int dup_keys = 0;
  for (const auto& [key, value] : sections->object) {
    if (key == "dup") ++dup_keys;
  }
  EXPECT_EQ(dup_keys, 1);
  EXPECT_EQ(sections->Find("dup")->GetNumber("v"), 2);
}

TEST_F(FlightRecorderTest, SpanRingKeepsOnlyLastN) {
  const std::string dir = ::testing::TempDir() + "/flight_ring";
  ASSERT_TRUE(FlightRecorder::Global().Arm(dir, /*last_n_spans=*/4).ok());
  for (int i = 0; i < 32; ++i) {
    Tracer::Global().RecordComplete("ring_span", 0, -1, i * 10, 1);
  }
  auto res = FlightRecorder::Global().DumpNow("manual");
  ASSERT_TRUE(res.ok());
  auto doc = json::Parse(ReadFile(*res));
  ASSERT_TRUE(doc.ok());
  const json::JsonValue* spans = doc->Find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_LE(spans->array.size(), 4u);
  // The survivors are the most recent spans.
  for (const auto& s : spans->array) {
    EXPECT_GE(s.GetNumber("ts_us"), 28 * 10);
  }
}

// ---- death tests: the dump happens on the way down ------------------------

using FlightRecorderDeathTest = FlightRecorderTest;

TEST_F(FlightRecorderDeathTest, CheckAbortWritesWellFormedDump) {
  const std::string dir = ::testing::TempDir() + "/flight_death";
  const std::string path = dir + "/flight_main.json";
  std::remove(path.c_str());

  EXPECT_DEATH(
      {
        ECG_CHECK(FlightRecorder::Global().Arm(dir, 32).ok());
        ECG_CHECK(false) << "boom from death test";
      },
      "boom from death test");

  // The child process dumped before aborting; validate from the parent.
  const std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty()) << "no flight dump at " << path;
  auto doc = json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("reason"), "check_abort");
  EXPECT_NE(doc->GetString("detail").find("boom from death test"),
            std::string::npos);
  EXPECT_NE(doc->Find("spans"), nullptr);
  EXPECT_NE(doc->Find("sections"), nullptr);
  EXPECT_FALSE(doc->GetString("commit").empty());
}

TEST_F(FlightRecorderDeathTest, SigtermWritesDumpThenDies) {
  const std::string dir = ::testing::TempDir() + "/flight_sigterm";
  const std::string path = dir + "/flight_main.json";
  std::remove(path.c_str());

  EXPECT_EXIT(
      {
        ECG_CHECK(FlightRecorder::Global().Arm(dir, 32).ok());
        std::raise(SIGTERM);
      },
      ::testing::KilledBySignal(SIGTERM), "");

  auto doc = json::Parse(ReadFile(path));
  ASSERT_TRUE(doc.ok()) << "no valid flight dump at " << path;
  EXPECT_EQ(doc->GetString("reason"), "sigterm");
}

}  // namespace
}  // namespace ecg::obs
