#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_lite.h"
#include "common/thread_pool.h"
#include "dist/comm.h"
#include "dist/fault.h"

// Allocation counter for the zero-allocation check: the disabled tracer
// hot path must be a branch, never a malloc. Counting in the test binary's
// global operator new sees every allocation the scopes would make.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ecg::obs {
namespace {

/// Minimal recursive-descent JSON syntax checker — enough to prove the
/// Chrome-trace export is well-formed without a JSON dependency.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& s) : s_(s) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip the escaped char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool ParseLiteral(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Every test drives the process-wide tracer; reset it around each.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Reset();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Reset();
  }
};

TEST_F(TraceTest, DisabledScopesRecordNothingAndAllocateNothing) {
  ASSERT_FALSE(TraceEnabled());
  const uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    ECG_TRACE_SCOPE("phase", /*worker=*/0, /*layer=*/0);
    ECG_TRACE_SCOPE_DETAIL("detail", 0, 0);
  }
  const uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before);

  // Nothing reached a ring either.
  Tracer::Global().Enable(1);
  EXPECT_EQ(Tracer::Global().recorded_events(), 0u);
}

TEST_F(TraceTest, RecordsNamedSpansWithCoordinates) {
  Tracer::Global().Enable(1);
  {
    ECG_TRACE_SCOPE("fp_compute", /*worker=*/3, /*layer=*/1);
  }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "fp_compute");
  EXPECT_EQ(events[0].worker, 3u);
  EXPECT_EQ(events[0].layer, 1);
  EXPECT_EQ(events[0].domain, TraceDomain::kReal);
}

TEST_F(TraceTest, LevelOneDropsDetailSpans) {
  Tracer::Global().Enable(1);
  {
    ECG_TRACE_SCOPE("phase", 0, 0);
    ECG_TRACE_SCOPE_DETAIL("codec", 0, 0);
  }
  EXPECT_EQ(Tracer::Global().recorded_events(), 1u);

  Tracer::Global().Enable(2);
  {
    ECG_TRACE_SCOPE("phase", 0, 0);
    ECG_TRACE_SCOPE_DETAIL("codec", 0, 0);
  }
  EXPECT_EQ(Tracer::Global().recorded_events(), 2u);
}

TEST_F(TraceTest, NestedSpansAcrossPoolWorkersStayContained) {
  Tracer::Global().Enable(1);
  ThreadPool pool(4);
  std::atomic<uint32_t> chunk{0};
  pool.ParallelFor(8, /*grain=*/1, [&](size_t begin, size_t end) {
    const uint32_t worker = chunk.fetch_add(1);
    for (size_t i = begin; i < end; ++i) {
      ECG_TRACE_SCOPE("outer", worker, -1);
      volatile double acc = 0;
      for (int k = 0; k < 10000; ++k) acc += k;
      {
        ECG_TRACE_SCOPE("inner", worker, -1);
        for (int k = 0; k < 10000; ++k) acc += k;
      }
    }
  });

  const auto events = Tracer::Global().Snapshot();
  size_t inner_count = 0;
  for (const auto& inner : events) {
    if (std::string(inner.name) != "inner") continue;
    ++inner_count;
    // Each inner span must sit inside an outer span recorded by the SAME
    // thread: per-thread rings keep concurrent workers from interleaving.
    bool contained = false;
    for (const auto& outer : events) {
      if (std::string(outer.name) != "outer" || outer.tid != inner.tid) {
        continue;
      }
      if (outer.ts_us <= inner.ts_us &&
          outer.ts_us + outer.dur_us >= inner.ts_us + inner.dur_us) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "inner span on tid " << inner.tid
                           << " not nested in any outer span";
  }
  EXPECT_EQ(inner_count, 8u);
  EXPECT_EQ(events.size(), 16u);
  EXPECT_EQ(Tracer::Global().dropped_events(), 0u);
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  Tracer::Global().Enable(1, /*chrome_trace_path=*/"",
                          /*capacity_per_thread=*/8);
  for (uint64_t i = 0; i < 20; ++i) {
    Tracer::Global().RecordComplete("e", 0, -1, i, 1);
  }
  EXPECT_EQ(Tracer::Global().recorded_events(), 20u);
  EXPECT_EQ(Tracer::Global().dropped_events(), 12u);
  EXPECT_EQ(Tracer::Global().Snapshot().size(), 8u);
}

TEST_F(TraceTest, SimSpansLiveOnTheSimulatedClock) {
  Tracer::Global().Enable(1);
  Tracer::Global().RecordSimSpan("fp_comm", /*worker=*/2, /*layer=*/1,
                                 /*sim_start_seconds=*/1.5,
                                 /*sim_dur_seconds=*/0.25);
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].domain, TraceDomain::kSim);
  EXPECT_EQ(events[0].ts_us, 1500000u);
  EXPECT_EQ(events[0].dur_us, 250000u);
  EXPECT_EQ(events[0].worker, 2u);
}

TEST_F(TraceTest, ChromeTraceExportIsWellFormedJson) {
  const std::string path = ::testing::TempDir() + "/ecg_trace_test.json";
  Tracer::Global().Enable(2, path);
  {
    ECG_TRACE_SCOPE("fp_compute", 0, 0);
    ECG_TRACE_SCOPE_DETAIL("fp_encode", 0, 0);
  }
  Tracer::Global().RecordSimSpan("comm", 1, -1, 0.5, 0.1);
  ASSERT_TRUE(Tracer::Global().Flush().ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  MiniJsonParser parser(text);
  EXPECT_TRUE(parser.Valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  // One "X" complete event per recorded span; the two clock domains are
  // exported as two processes (real = pid 1, sim = pid 2).
  EXPECT_EQ(CountOccurrences(text, "\"ph\":\"X\""), 3u);
  EXPECT_GE(CountOccurrences(text, "\"ph\":\"M\""), 2u);
  EXPECT_NE(text.find("\"cat\":\"sim\",\"ph\":\"X\",\"pid\":2"),
            std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"real\",\"ph\":\"X\",\"pid\":1"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, FaultyHubEmitsFlowEventsWithRetransmitSteps) {
  const std::string path = ::testing::TempDir() + "/ecg_flow_trace.json";
  Tracer::Global().Enable(1, path);

  // Deterministic schedule: half the delivery attempts drop, so some
  // messages need a NACK/retransmit round and almost all still arrive.
  auto injector = dist::FaultInjector::Parse("drop=0.5,seed=3");
  ASSERT_TRUE(injector.ok());
  dist::MessageHub hub(2);
  hub.set_fault_injector(&*injector);

  constexpr int kMessages = 64;
  int received = 0;
  for (int m = 0; m < kMessages; ++m) {
    const uint64_t tag = dist::MessageHub::MakeTag(/*epoch=*/0,
                                                   /*layer=*/m, /*kind=*/7);
    hub.Send(0, 1, tag, std::vector<uint8_t>(16, static_cast<uint8_t>(m)));
    std::vector<uint8_t> out;
    if (hub.TryRecv(1, 0, tag, &out).ok()) {
      ++received;
      EXPECT_EQ(out.size(), 16u);
    }
  }
  ASSERT_GT(received, 0);
  EXPECT_GE(injector->counters().nacks.load(), 1u);
  ASSERT_TRUE(Tracer::Global().Flush().ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto doc = json::Parse(buffer.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Collect flow ids by phase: "s" on the sender, "t" per retransmit,
  // "f" on the receiver when the payload is accepted.
  std::vector<std::string> starts, steps, ends;
  for (const auto& e : events->array) {
    const std::string ph = e.GetString("ph");
    if (ph != "s" && ph != "t" && ph != "f") continue;
    EXPECT_EQ(e.GetString("cat"), "flow");
    const std::string id = e.GetString("id");
    EXPECT_FALSE(id.empty());
    const json::JsonValue* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->Find("worker"), nullptr);
    EXPECT_NE(args->Find("peer"), nullptr);
    if (ph == "s") starts.push_back(id);
    if (ph == "t") steps.push_back(id);
    if (ph == "f") ends.push_back(id);
  }
  EXPECT_EQ(starts.size(), static_cast<size_t>(kMessages));
  EXPECT_EQ(ends.size(), static_cast<size_t>(received));
  EXPECT_GE(steps.size(), 1u) << "no retransmit step under drop=0.5";
  // Every step/end binds to a flow some send started: that is what makes
  // the viewer draw sender->receiver arrows.
  auto in_starts = [&starts](const std::string& id) {
    return std::find(starts.begin(), starts.end(), id) != starts.end();
  };
  for (const auto& id : steps) EXPECT_TRUE(in_starts(id)) << id;
  for (const auto& id : ends) EXPECT_TRUE(in_starts(id)) << id;
}

TEST_F(TraceTest, InitFromArgsStripsFlagsInPlace) {
  char a0[] = "ecgraph";
  char a1[] = "--trace_level=0";
  char a2[] = "train";
  char a3[] = "--log_level=bogus-but-harmless";
  char a4[] = "fp=reqec";
  char* argv[] = {a0, a1, a2, a3, a4, nullptr};
  int argc = 5;
  const int consumed = InitObservabilityFromArgs(&argc, argv);
  EXPECT_EQ(consumed, 2);
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "ecgraph");
  EXPECT_STREQ(argv[1], "train");
  EXPECT_STREQ(argv[2], "fp=reqec");
  EXPECT_EQ(argv[3], nullptr);
  // --trace_level=0 means "strip the flags, collect nothing".
  EXPECT_FALSE(TraceEnabled());
}

}  // namespace
}  // namespace ecg::obs
