#include <gtest/gtest.h>

#include <vector>

#include "baselines/single_machine.h"
#include "common/random.h"
#include "core/sampling_trainer.h"
#include "core/trainer.h"
#include "graph/datasets.h"
#include "graph/generator.h"
#include "tensor/nn.h"
#include "tensor/ops.h"

namespace ecg::core {
namespace {

using tensor::Matrix;

TEST(SageTest, LayerShapesStackSelfAndNeighborWeights) {
  GcnConfig c;
  c.kind = GnnKind::kSage;
  c.num_layers = 2;
  c.hidden_dim = 8;
  const auto shapes = GcnLayerShapes(c, 10, 3);
  ASSERT_EQ(shapes.size(), 2u);
  EXPECT_EQ(shapes[0].in_dim, 20u);  // 2 * feature_dim
  EXPECT_EQ(shapes[0].out_dim, 8u);
  EXPECT_EQ(shapes[1].in_dim, 16u);  // 2 * hidden
  EXPECT_EQ(shapes[1].out_dim, 3u);
}

TEST(SageTest, MeanWeightExcludesSelfAndNormalizesRows) {
  graph::SbmConfig cfg;
  cfg.num_vertices = 50;
  cfg.num_classes = 2;
  cfg.avg_degree = 6.0;
  cfg.feature_dim = 3;
  cfg.seed = 8;
  const graph::Graph g = *graph::GenerateSbm(cfg);
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.MeanWeight(v, v), 0.0f);
    float row_sum = 0.0f;
    for (uint32_t u : g.Neighbors(v)) row_sum += g.MeanWeight(v, u);
    if (g.Degree(v) > 0) EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
  }
}

TEST(SageTest, GradientCheckOnFullSage) {
  graph::SbmConfig cfg;
  cfg.num_vertices = 20;
  cfg.num_classes = 3;
  cfg.avg_degree = 4.0;
  cfg.feature_dim = 4;
  cfg.seed = 12;
  graph::Graph g = *graph::GenerateSbm(cfg);
  ASSERT_TRUE(graph::AssignSplits(&g, 10, 5, 5, 2).ok());

  Rng rng(77);
  std::vector<Matrix> w = {Matrix(8, 5), Matrix(10, 3)};
  std::vector<Matrix> b = {Matrix(1, 5), Matrix(1, 3)};
  for (auto& m : w) tensor::XavierInit(&m, &rng);
  for (auto& m : b) tensor::XavierInit(&m, &rng);

  auto grads =
      baselines::ComputeFullBatchGradients(g, w, b, GnnKind::kSage);
  ASSERT_TRUE(grads.ok()) << grads.status();

  const double eps = 1e-2;
  for (size_t layer = 0; layer < w.size(); ++layer) {
    for (size_t i = 0; i < w[layer].size(); i += 3) {  // sampled entries
      auto wp = w, wm = w;
      wp[layer].data()[i] += static_cast<float>(eps);
      wm[layer].data()[i] -= static_cast<float>(eps);
      const double lp =
          baselines::ComputeFullBatchGradients(g, wp, b, GnnKind::kSage)
              ->loss;
      const double lm =
          baselines::ComputeFullBatchGradients(g, wm, b, GnnKind::kSage)
              ->loss;
      EXPECT_NEAR(grads->dw[layer].data()[i], (lp - lm) / (2 * eps), 2e-2)
          << "W[" << layer << "][" << i << "]";
    }
  }
}

TEST(SageTest, DistributedSageMatchesSingleMachine) {
  const graph::Graph g = *graph::LoadDataset("tiny");

  baselines::SingleMachineOptions sopt;
  sopt.model.kind = GnnKind::kSage;
  sopt.model.num_layers = 2;
  sopt.model.hidden_dim = 16;
  sopt.epochs = 10;
  auto single = baselines::TrainSingleMachine(g, sopt);
  ASSERT_TRUE(single.ok());

  TrainOptions dopt;
  dopt.model = sopt.model;
  dopt.epochs = 10;
  auto dist = TrainDistributed(g, 3, dopt);
  ASSERT_TRUE(dist.ok()) << dist.status();

  ASSERT_EQ(single->epochs.size(), dist->epochs.size());
  for (size_t e = 0; e < single->epochs.size(); ++e) {
    EXPECT_NEAR(single->epochs[e].loss, dist->epochs[e].loss, 1e-4)
        << "epoch " << e;
    EXPECT_DOUBLE_EQ(single->epochs[e].val_acc, dist->epochs[e].val_acc);
  }
}

TEST(SageTest, SageWithEcCompressionLearns) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  TrainOptions opt;
  opt.model.kind = GnnKind::kSage;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.fp_mode = FpMode::kReqEc;
  opt.bp_mode = BpMode::kResEc;
  opt.exchange.fp_bits = 4;
  opt.exchange.bp_bits = 4;
  opt.epochs = 40;
  auto r = TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->best_val_acc, 0.9);
}

TEST(SageTest, ThreeLayerSageTrains) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  TrainOptions opt;
  opt.model.kind = GnnKind::kSage;
  opt.model.num_layers = 3;
  opt.model.hidden_dim = 8;
  opt.epochs = 25;
  auto r = TrainDistributed(g, 2, opt);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->best_val_acc, 0.85);
}

TEST(SageTest, SamplingModeRejectsSage) {
  const graph::Graph g = *graph::LoadDataset("tiny");
  SamplingTrainOptions opt;
  opt.model.kind = GnnKind::kSage;
  opt.fanouts = {5, 5};
  opt.fp_mode = FpMode::kExact;
  opt.bp_mode = BpMode::kExact;
  EXPECT_EQ(TrainSampled(g, 2, opt).status().code(),
            StatusCode::kNotImplemented);
}

}  // namespace
}  // namespace ecg::core
