#include "dist/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "dist/network_model.h"

namespace ecg::dist {
namespace {

TEST(NetworkModelTest, TransferSecondsIsLatencyPlusBandwidth) {
  NetworkModel net;
  net.bandwidth_bytes_per_sec = 1e6;
  net.latency_sec = 1e-3;
  EXPECT_DOUBLE_EQ(net.TransferSeconds(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(net.TransferSeconds(1e6, 1), 1e-3 + 1.0);
  EXPECT_DOUBLE_EQ(net.TransferSeconds(0, 10), 1e-2);
}

TEST(NetworkModelTest, PhaseIsFullDuplexMax) {
  NetworkModel net;
  net.bandwidth_bytes_per_sec = 1e6;
  net.latency_sec = 0.0;
  EXPECT_DOUBLE_EQ(net.PhaseSeconds(2e6, 1, 1e6, 1), 2.0);
  EXPECT_DOUBLE_EQ(net.PhaseSeconds(1e6, 1, 3e6, 1), 3.0);
}

TEST(MachineModelTest, SpeedupScalesCompute) {
  MachineModel m;
  m.cores = 4;
  m.parallel_efficiency = 1.0;
  EXPECT_DOUBLE_EQ(m.Speedup(), 4.0);
  EXPECT_DOUBLE_EQ(m.ComputeSeconds(8.0), 2.0);
  m.cores = 1;
  EXPECT_DOUBLE_EQ(m.Speedup(), 1.0);
}

TEST(ClusterTest, RunsEveryWorkerOnce) {
  SimulatedCluster cluster(5, NetworkModel{});
  std::vector<std::atomic<int>> hits(5);
  auto status = cluster.Run([&](WorkerContext* ctx) {
    hits[ctx->worker_id()].fetch_add(1);
    EXPECT_EQ(ctx->num_workers(), 5u);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ClusterTest, PropagatesWorkerError) {
  SimulatedCluster cluster(3, NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    if (ctx->worker_id() == 1) return Status::Internal("worker 1 died");
    return Status::OK();
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ClusterTest, SendRecvAcrossWorkersAndPhaseAccounting) {
  NetworkModel net;
  net.bandwidth_bytes_per_sec = 1000.0;  // 1 KB/s for visible charges
  net.latency_sec = 0.5;
  SimulatedCluster cluster(2, net);
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    const uint32_t peer = 1 - ctx->worker_id();
    ctx->Send(peer, 1, std::vector<uint8_t>(500));  // 0.5 s of bandwidth
    const auto got = ctx->Recv(peer, 1);
    EXPECT_EQ(got.size(), 500u);
    ctx->EndCommPhase();
    // Full duplex: max(send, recv) = 0.5 latency + 0.5 transfer = 1.0 s.
    EXPECT_NEAR(ctx->comm_seconds(), 1.0, 1e-9);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(cluster.stats().TotalBytes(), 1000u);
}

TEST(ClusterTest, BarrierSyncAlignsClocksToSlowest) {
  SimulatedCluster cluster(3, NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    // Worker w pretends to spend w seconds; slowest is worker 2.
    ctx->ChargeCommSeconds(static_cast<double>(ctx->worker_id()));
    ctx->BarrierSync();
    // Everyone's clock must now equal the slowest worker's.
    EXPECT_DOUBLE_EQ(ctx->total_seconds(), 2.0);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_GT(cluster.MakespanSeconds(), 0.0);
}

TEST(ClusterTest, ChargeCommSecondsAddsDirectly) {
  SimulatedCluster cluster(1, NetworkModel{});
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    ctx->ChargeCommSeconds(2.5);
    EXPECT_DOUBLE_EQ(ctx->comm_seconds(), 2.5);
    EXPECT_DOUBLE_EQ(ctx->total_seconds(), 2.5);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_DOUBLE_EQ(cluster.MakespanSeconds(), 2.5);
  EXPECT_DOUBLE_EQ(cluster.TotalCommSeconds(), 2.5);
}

TEST(ClusterTest, ComputeChargesAreScaledByMachineModel) {
  MachineModel machine;
  machine.cores = 4;
  machine.parallel_efficiency = 1.0;  // speedup exactly 4
  SimulatedCluster cluster(1, NetworkModel{}, machine);
  auto status = cluster.Run([&](WorkerContext* ctx) -> Status {
    ctx->ChargeCompute(8.0);
    EXPECT_DOUBLE_EQ(ctx->compute_seconds(), 2.0);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok());
}

}  // namespace
}  // namespace ecg::dist
