#include <gtest/gtest.h>

#include <vector>

#include "baselines/ml_centered.h"
#include "baselines/single_machine.h"
#include "core/trainer.h"
#include "graph/datasets.h"

namespace ecg::baselines {
namespace {

graph::Graph Tiny() { return *graph::LoadDataset("tiny"); }

TEST(SingleMachineTest, ConvergesOnTiny) {
  SingleMachineOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.epochs = 60;
  opt.patience = 15;
  auto r = TrainSingleMachine(Tiny(), opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->best_val_acc, 0.95);
  EXPECT_EQ(r->total_comm_bytes, 0u);
  EXPECT_GT(r->avg_epoch_seconds, 0.0);
}

TEST(SingleMachineTest, RejectsBadInput) {
  SingleMachineOptions opt;
  opt.model.num_layers = 0;
  EXPECT_FALSE(TrainSingleMachine(Tiny(), opt).ok());
}

TEST(MlCenteredTest, FullExpansionMatchesSingleMachineLoss) {
  // With full L-hop expansion, every worker computes exact embeddings for
  // its targets, so the global loss curve must match the single-machine
  // trainer (same seeds) up to float reduction order.
  const graph::Graph g = Tiny();

  SingleMachineOptions sopt;
  sopt.model.num_layers = 2;
  sopt.model.hidden_dim = 16;
  sopt.epochs = 8;
  auto single = TrainSingleMachine(g, sopt);
  ASSERT_TRUE(single.ok());

  MlCenteredOptions mopt;
  mopt.model = sopt.model;
  mopt.epochs = 8;
  auto ml = TrainMlCentered(g, 3, mopt);
  ASSERT_TRUE(ml.ok()) << ml.status();

  ASSERT_EQ(ml->epochs.size(), single->epochs.size());
  for (size_t e = 0; e < ml->epochs.size(); ++e) {
    EXPECT_NEAR(ml->epochs[e].loss, single->epochs[e].loss, 1e-3)
        << "epoch " << e;
    EXPECT_DOUBLE_EQ(ml->epochs[e].val_acc, single->epochs[e].val_acc);
  }
}

TEST(MlCenteredTest, CachedVerticesShowRedundancyBlowup) {
  const graph::Graph g = Tiny();
  MlCenteredOptions opt;
  opt.model.num_layers = 2;
  opt.epochs = 1;
  MlCenteredCosts costs;
  auto r = TrainMlCentered(g, 4, opt, &costs);
  ASSERT_TRUE(r.ok());
  // Summed caches exceed |V|: boundary vertices are replicated (the ḡ^L
  // blow-up of Table II). On a small-diameter SBM each worker's 2-hop
  // cache approaches the whole graph.
  EXPECT_GT(costs.cached_vertices, g.num_vertices() * 2ull);
  EXPECT_GT(costs.preprocess_bytes,
            static_cast<uint64_t>(g.num_vertices()) * g.feature_dim() * 4);
}

TEST(MlCenteredTest, SampledEgoNetsAreSmaller) {
  const graph::Graph g = Tiny();
  MlCenteredOptions full;
  full.model.num_layers = 2;
  full.epochs = 2;
  MlCenteredOptions sampled = full;
  sampled.fanouts = {3, 3};

  MlCenteredCosts full_costs, sampled_costs;
  ASSERT_TRUE(TrainMlCentered(g, 3, full, &full_costs).ok());
  ASSERT_TRUE(TrainMlCentered(g, 3, sampled, &sampled_costs).ok());
  EXPECT_LT(sampled_costs.cached_vertices, full_costs.cached_vertices);
  EXPECT_LT(sampled_costs.preprocess_bytes, full_costs.preprocess_bytes);
}

TEST(MlCenteredTest, NoWorkerToWorkerTrafficDuringTraining) {
  const graph::Graph g = Tiny();
  MlCenteredOptions opt;
  opt.model.num_layers = 2;
  opt.epochs = 3;
  auto r = TrainMlCentered(g, 3, opt);
  ASSERT_TRUE(r.ok());
  // All traffic is parameter pulls/pushes; epoch comm_bytes (worker to
  // worker) must be zero.
  for (const auto& e : r->epochs) {
    EXPECT_EQ(e.comm_bytes, 0u);
    EXPECT_GT(e.param_bytes, 0u);
  }
}

TEST(MlCenteredTest, SampledStillLearns) {
  const graph::Graph g = Tiny();
  MlCenteredOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.fanouts = {6, 6};
  opt.epochs = 40;
  auto r = TrainMlCentered(g, 3, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->best_val_acc, 0.85);
}

TEST(MlCenteredTest, RejectsWrongFanoutArity) {
  MlCenteredOptions opt;
  opt.model.num_layers = 3;
  opt.fanouts = {5};
  EXPECT_EQ(TrainMlCentered(Tiny(), 2, opt).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ecg::baselines
