#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace ecg::obs {
namespace {

/// Every test drives the process-wide registry; reset it around each.
class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatsRegistry::Global().Disable();
    StatsRegistry::Global().Reset();
  }
  void TearDown() override {
    StatsRegistry::Global().Disable();
    StatsRegistry::Global().Reset();
  }
};

TEST_F(StatsTest, SumForSpansLiveAndRetiredSeries) {
  auto& registry = StatsRegistry::Global();
  registry.Enable();
  registry.Record("fp.wire_bytes", 100.0, /*epoch=*/0, 0, 1);
  registry.Record("fp.wire_bytes", 200.0, 0, 1, 1);
  registry.Record("bp.wire_bytes", 7.0, 0, 1, 1);
  registry.FlushEpoch(0);  // retires epoch 0 into the summary
  registry.Record("fp.wire_bytes", 50.0, /*epoch=*/1, 0, 1);

  EXPECT_DOUBLE_EQ(registry.SumFor("fp.wire_bytes"), 350.0);
  EXPECT_DOUBLE_EQ(registry.SumFor("bp.wire_bytes"), 7.0);
  EXPECT_DOUBLE_EQ(registry.SumFor("absent"), 0.0);
}

TEST_F(StatsTest, OneCellServesCounterGaugeAndHistogram) {
  auto& registry = StatsRegistry::Global();
  registry.Enable();
  registry.Record("fp.wire_bytes", 1000.0, /*epoch=*/3, /*layer=*/1,
                  /*peer=*/2);
  registry.Record("fp.wire_bytes", 3000.0, 3, 1, 2);
  registry.Record("fp.wire_bytes", 500.0, 3, 1, 2);

  const auto live = registry.Snapshot();
  ASSERT_EQ(live.size(), 1u);
  const StatValue& v = live.begin()->second;
  EXPECT_EQ(v.count, 3u);          // counter view
  EXPECT_DOUBLE_EQ(v.sum, 4500.0);
  EXPECT_DOUBLE_EQ(v.last, 500.0);  // gauge view
  EXPECT_DOUBLE_EQ(v.min, 500.0);   // histogram view
  EXPECT_DOUBLE_EQ(v.max, 3000.0);
  EXPECT_DOUBLE_EQ(v.Avg(), 1500.0);
}

TEST_F(StatsTest, DistinctCoordinatesAreDistinctSeries) {
  auto& registry = StatsRegistry::Global();
  registry.Enable();
  registry.Record("bp.ratio", 4.0, 1, 0, 0);
  registry.Record("bp.ratio", 8.0, 1, 0, 1);  // other peer
  registry.Record("bp.ratio", 2.0, 1, 1, 0);  // other layer
  registry.Record("bp.ratio", 6.0, 2, 0, 0);  // other epoch
  EXPECT_EQ(registry.Snapshot().size(), 4u);
}

TEST_F(StatsTest, HistogramBucketsFollowLog2Magnitude) {
  EXPECT_EQ(StatValue::HistBucket(0.0), 0);
  EXPECT_EQ(StatValue::HistBucket(
                std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(StatValue::HistBucket(1.0), 32);   // [1, 2)
  EXPECT_EQ(StatValue::HistBucket(1.99), 32);
  EXPECT_EQ(StatValue::HistBucket(2.0), 33);   // [2, 4)
  EXPECT_EQ(StatValue::HistBucket(0.5), 31);   // [0.5, 1)
  EXPECT_EQ(StatValue::HistBucket(-4.0), 34);  // sign-blind
  // Extremes clamp into the open-ended edge buckets.
  EXPECT_EQ(StatValue::HistBucket(1e300), StatValue::kHistBuckets - 1);
  EXPECT_EQ(StatValue::HistBucket(1e-300), 1);
}

TEST_F(StatsTest, JsonlRowMatchesSchemaGolden) {
  auto& registry = StatsRegistry::Global();
  registry.Enable();
  registry.Record("fp.wire_bytes", 1000.0, 3, 1, 2);
  registry.Record("fp.wire_bytes", 3000.0, 3, 1, 2);

  std::ostringstream out;
  registry.DumpEpochTo(3, out, /*erase=*/false);
  // 1000 has magnitude 2^9..2^10 -> bucket 9+32=41; 3000 -> bucket 43.
  EXPECT_EQ(out.str(),
            "{\"epoch\":3,\"name\":\"fp.wire_bytes\",\"layer\":1,"
            "\"peer\":2,\"count\":2,\"sum\":4000,\"min\":1000,"
            "\"max\":3000,\"avg\":2000,\"last\":3000,"
            "\"hist\":\"41:1,43:1\"}\n");
}

TEST_F(StatsTest, CoordinateFreeRowsOmitLayerAndPeer) {
  auto& registry = StatsRegistry::Global();
  registry.Enable();
  registry.Record("epoch.loss", 0.5, 7);

  std::ostringstream out;
  registry.DumpEpochTo(7, out, /*erase=*/false);
  const std::string row = out.str();
  EXPECT_EQ(row.find("\"layer\""), std::string::npos);
  EXPECT_EQ(row.find("\"peer\""), std::string::npos);
  EXPECT_NE(row.find("\"epoch\":7"), std::string::npos);
}

TEST_F(StatsTest, FlushEpochRetiresSeriesIntoSummary) {
  auto& registry = StatsRegistry::Global();
  registry.Enable();
  registry.Record("fp.ratio", 4.0, 1);
  registry.Record("fp.ratio", 8.0, 2);

  registry.FlushEpoch(1);
  // Epoch 1 rows are gone from the live map but feed the summary.
  EXPECT_EQ(registry.Snapshot().size(), 1u);
  registry.FlushEpoch(2);
  EXPECT_TRUE(registry.Snapshot().empty());

  std::ostringstream summary;
  registry.DumpSummaryTo(summary);
  EXPECT_NE(summary.str().find("\"summary\":true"), std::string::npos);
  EXPECT_NE(summary.str().find("\"name\":\"fp.ratio\",\"count\":2"),
            std::string::npos);
}

TEST_F(StatsTest, FlushAllWritesEpochRowsThenSummaryToFile) {
  const std::string path = ::testing::TempDir() + "/ecg_stats_test.jsonl";
  auto& registry = StatsRegistry::Global();
  registry.Enable(path);
  registry.Record("a", 1.0, /*epoch=*/2);
  registry.Record("b", 2.0, /*epoch=*/1);
  registry.Record("pre", 3.0);  // kNoEpoch: flushed with the summary
  registry.FlushAll();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 7u);  // header + 3 epoch rows + 3 summary rows
  // The file opens with a run-identity header stamping commit, kernel
  // variant and thread count.
  EXPECT_NE(lines[0].find("\"header\":true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"commit\":\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"kernels\":\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"threads\":"), std::string::npos);
  // Epoch-major key order: epoch 1 flushes before epoch 2, sentinel
  // (kNoEpoch) rows last before the summaries.
  EXPECT_NE(lines[1].find("\"epoch\":1,\"name\":\"b\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"epoch\":2,\"name\":\"a\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"name\":\"pre\""), std::string::npos);
  for (size_t i = 4; i < 7; ++i) {
    EXPECT_NE(lines[i].find("\"summary\":true"), std::string::npos) << i;
  }
  // Every row is a single JSON object on its own line.
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  std::remove(path.c_str());
}

TEST_F(StatsTest, RecordStatGatesOnEnabledFlag) {
  RecordStat("dropped", 1.0, 0);
  EXPECT_TRUE(StatsRegistry::Global().Snapshot().empty());
  EXPECT_FALSE(StatsEnabled());

  StatsRegistry::Global().Enable();
  EXPECT_TRUE(StatsEnabled());
  RecordStat("kept", 1.0, 0);
  EXPECT_EQ(StatsRegistry::Global().Snapshot().size(), 1u);
}

TEST_F(StatsTest, MergePreservesEveryView) {
  StatValue a, b;
  a.Add(1.0);
  a.Add(4.0);
  b.Add(0.25);
  a.Merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.sum, 5.25);
  EXPECT_DOUBLE_EQ(a.min, 0.25);
  EXPECT_DOUBLE_EQ(a.max, 4.0);
  EXPECT_DOUBLE_EQ(a.last, 0.25);
  EXPECT_EQ(a.hist[StatValue::HistBucket(0.25)], 1u);
  EXPECT_EQ(a.hist[StatValue::HistBucket(4.0)], 1u);
}

}  // namespace
}  // namespace ecg::obs
