#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/metrics_http.h"
#include "common/random.h"
#include "common/stats.h"

// Allocation counter for the disabled-path check: with the plane off, the
// instrumentation shape `if (MetricsEnabled()) {...}` and RecordStat must
// never reach an allocation.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ecg::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    StatsRegistry::Global().Reset();
    MetricsRegistry::Global().Enable();
  }
  void TearDown() override {
    MetricsRegistry::Global().Disable();
    MetricsRegistry::Global().Reset();
    StatsRegistry::Global().Disable();
    StatsRegistry::Global().Reset();
  }
};

// ---- counters / gauges ---------------------------------------------------

TEST_F(MetricsTest, CounterAccumulatesAcrossThreads) {
  Counter* c = MetricsRegistry::Global().GetCounter("t_c", "help");
  constexpr int kThreads = 8, kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncs; ++i) c->Inc(1.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(c->Value(), kThreads * kIncs * 1.5);
}

TEST_F(MetricsTest, GaugeIsLastWriteWins) {
  Gauge* g = MetricsRegistry::Global().GetGauge("t_g", "help");
  g->Set(3.25);
  EXPECT_DOUBLE_EQ(g->Value(), 3.25);
  g->Set(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), -1.0);
}

TEST_F(MetricsTest, HandlesAreStablePerLabelSet) {
  Counter* a = MetricsRegistry::Global().GetCounter("t_l", "h",
                                                    {{"peer", "1"}});
  Counter* b = MetricsRegistry::Global().GetCounter("t_l", "h",
                                                    {{"peer", "2"}});
  Counter* a2 = MetricsRegistry::Global().GetCounter("t_l", "h",
                                                     {{"peer", "1"}});
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
}

// ---- histogram buckets ---------------------------------------------------

TEST_F(MetricsTest, BucketIndexEdges) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e-300), 0);  // underflow
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
}

TEST_F(MetricsTest, BucketBoundsAreConsistent) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    // Log-uniform across the whole covered range.
    const int e = Histogram::kMinExp +
                  static_cast<int>(rng.NextBelow(
                      Histogram::kMaxExp - Histogram::kMinExp - 1));
    const double v = std::ldexp(1.0 + rng.NextDouble(), e);
    const int b = Histogram::BucketIndex(v);
    ASSERT_GT(b, 0) << v;
    ASSERT_LT(b, Histogram::kNumBuckets - 1) << v;
    // Buckets are half-open: v in [upper(b-1), upper(b)).
    ASSERT_LT(v, Histogram::BucketUpperBound(b)) << v;
    ASSERT_GE(v, Histogram::BucketUpperBound(b - 1)) << v;
  }
}

// ---- quantile property test vs exact sorted reference --------------------

void CheckQuantiles(const std::vector<double>& samples, double rel_tol) {
  Histogram h;
  for (double v : samples) h.Observe(v);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const size_t rank = std::min(
        sorted.size() - 1,
        static_cast<size_t>(
            std::ceil(q * static_cast<double>(sorted.size()))) -
            1);
    const double exact = sorted[rank];
    const double est = h.Quantile(q);
    // The estimate is the inclusive upper bound of the exact sample's
    // bucket: never below the exact value, at most one sub-bucket above.
    EXPECT_GE(est, exact * (1.0 - 1e-12)) << "q=" << q;
    EXPECT_LE(est, exact * (1.0 + rel_tol) + 1e-12) << "q=" << q;
  }
}

TEST_F(MetricsTest, QuantileMatchesSortedReferenceUniform) {
  Rng rng(1);
  std::vector<double> s(20000);
  for (double& v : s) v = rng.NextDouble() * 100.0 + 1e-3;
  CheckQuantiles(s, 1.0 / Histogram::kSubBuckets);
}

TEST_F(MetricsTest, QuantileMatchesSortedReferenceLognormal) {
  Rng rng(2);
  std::vector<double> s(20000);
  for (double& v : s) v = std::exp(rng.NextGaussian() * 3.0);
  CheckQuantiles(s, 1.0 / Histogram::kSubBuckets);
}

TEST_F(MetricsTest, QuantileMatchesSortedReferenceExponentialTail) {
  Rng rng(3);
  std::vector<double> s(20000);
  for (double& v : s) {
    v = -std::log(1.0 - rng.NextDouble() * (1.0 - 1e-12)) * 0.01;
  }
  CheckQuantiles(s, 1.0 / Histogram::kSubBuckets);
}

TEST_F(MetricsTest, QuantileOfConstantSeriesIsTight) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Observe(0.125);  // exact power of two
  // 0.125 is the lower bound of its bucket; the estimate is the bucket's
  // upper bound, one sub-bucket (1/32) above.
  const double expected = 0.125 * 33.0 / 32.0;
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), expected);
  }
  EXPECT_EQ(h.TotalCount(), 1000u);
  EXPECT_DOUBLE_EQ(h.Sum(), 125.0);
}

TEST_F(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

// ---- multi-thread merge determinism --------------------------------------

TEST_F(MetricsTest, ConcurrentObserveMergesExactly) {
  constexpr int kThreads = 8, kPerThread = 50000;
  // Reference: the union of all threads' samples recorded serially.
  Histogram serial;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(100 + t);
    for (int i = 0; i < kPerThread; ++i) {
      serial.Observe(std::exp(rng.NextGaussian()));
    }
  }

  for (int round = 0; round < 3; ++round) {
    Histogram concurrent;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&concurrent, t] {
        Rng rng(100 + t);
        for (int i = 0; i < kPerThread; ++i) {
          concurrent.Observe(std::exp(rng.NextGaussian()));
        }
      });
    }
    for (auto& t : threads) t.join();

    // Counts merge exactly regardless of interleaving: every bucket equals
    // the serial reference, so every quantile is identical too.
    uint64_t a[Histogram::kNumBuckets], b[Histogram::kNumBuckets];
    serial.SnapshotBuckets(a);
    concurrent.SnapshotBuckets(b);
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      ASSERT_EQ(a[i], b[i]) << "bucket " << i << " round " << round;
    }
    EXPECT_EQ(serial.TotalCount(), concurrent.TotalCount());
    EXPECT_NEAR(serial.Sum(), concurrent.Sum(),
                std::abs(serial.Sum()) * 1e-9);
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_DOUBLE_EQ(serial.Quantile(q), concurrent.Quantile(q));
    }
  }
}

// ---- Prometheus exposition ----------------------------------------------

/// Strict line-level validator for text format 0.0.4: every line is a
/// comment (# HELP / # TYPE with a known type) or a sample
/// `name{labels} value` with a parseable float value; every sample's
/// family was announced by a preceding TYPE line.
void ValidatePrometheusText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> typed_families;
  auto family_of = [](const std::string& sample_name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t n = std::strlen(suffix);
      if (sample_name.size() > n &&
          sample_name.compare(sample_name.size() - n, n, suffix) == 0) {
        return sample_name.substr(0, sample_name.size() - n);
      }
    }
    return sample_name;
  };
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    ASSERT_FALSE(line.empty()) << "blank line " << lineno;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, family;
      ls >> hash >> kind >> family;
      ASSERT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      ASSERT_FALSE(family.empty()) << line;
      if (kind == "TYPE") {
        std::string type;
        ls >> type;
        ASSERT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram" || type == "summary" ||
                    type == "untyped")
            << line;
        typed_families.push_back(family);
      }
      continue;
    }
    // Sample: metric_name[{labels}] value
    size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    for (char c : name) {
      ASSERT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << line;
    }
    size_t value_pos;
    if (line[name_end] == '{') {
      const size_t close = line.find('}', name_end);
      ASSERT_NE(close, std::string::npos) << line;
      // Labels: key="value" pairs separated by commas; quotes must pair.
      const std::string labels = line.substr(name_end + 1,
                                             close - name_end - 1);
      ASSERT_EQ(std::count(labels.begin(), labels.end(), '"') % 2, 0)
          << line;
      ASSERT_NE(labels.find('='), std::string::npos) << line;
      value_pos = close + 2;
      ASSERT_EQ(line[close + 1], ' ') << line;
    } else {
      value_pos = name_end + 1;
    }
    const std::string value = line.substr(value_pos);
    ASSERT_FALSE(value.empty()) << line;
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      ASSERT_EQ(*end, '\0') << "unparseable value in: " << line;
    }
    // Family must be announced (build_info included — it is written with
    // HELP/TYPE like everything else).
    const std::string fam = family_of(name);
    ASSERT_TRUE(std::find(typed_families.begin(), typed_families.end(),
                          fam) != typed_families.end())
        << "sample before TYPE: " << line;
  }
  ASSERT_FALSE(typed_families.empty());
}

TEST_F(MetricsTest, PrometheusTextIsValidAndGolden) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("ecg_test_bytes_total", "Bytes moved.",
                 {{"peer", "1"}, {"layer", "0"}})
      ->Inc(4096);
  reg.GetGauge("ecg_test_loss", "Epoch loss.")->Set(0.5);
  Histogram* h = reg.GetHistogram("ecg_test_seconds", "Span seconds.");
  h->Observe(0.25);
  h->Observe(0.5);
  h->Observe(2.0);

  const std::string text = reg.PrometheusText();
  ValidatePrometheusText(text);

  // Golden fragments (the full text embeds the volatile commit hash).
  EXPECT_NE(text.find("# TYPE ecg_build_info gauge"), std::string::npos);
  EXPECT_NE(text.find("ecg_build_info{commit=\""), std::string::npos);
  EXPECT_NE(text.find("# HELP ecg_test_bytes_total Bytes moved.\n"
                      "# TYPE ecg_test_bytes_total counter\n"
                      "ecg_test_bytes_total{layer=\"0\",peer=\"1\"} 4096\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ecg_test_loss gauge\necg_test_loss 0.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ecg_test_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ecg_test_seconds_bucket{le=\"+Inf\"} 3\n"
                      "ecg_test_seconds_sum 2.75\n"
                      "ecg_test_seconds_count 3\n"),
            std::string::npos);
  // Cumulative buckets: each power-of-two value is the lower bound of its
  // bucket, whose upper bound is value * 33/32.
  EXPECT_NE(text.find("ecg_test_seconds_bucket{le=\"0.2578125\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ecg_test_seconds_bucket{le=\"0.515625\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("ecg_test_seconds_bucket{le=\"2.0625\"} 3\n"),
            std::string::npos);
}

TEST_F(MetricsTest, StatsBridgePublishesLayerPeerSeries) {
  StatsRegistry::Global().Enable("");
  RecordStat("comm.sent_bytes", 1024.0, /*epoch=*/3, /*layer=*/1,
             /*peer=*/2);
  RecordStat("fp.saturation", 0.125, /*epoch=*/3, /*layer=*/1);
  const std::string text = MetricsRegistry::Global().PrometheusText();
  ValidatePrometheusText(text);
  // Stat '.' become '_'; layer/peer survive as labels; epoch is dropped.
  EXPECT_NE(
      text.find(
          "ecg_comm_sent_bytes_count{layer=\"1\",peer=\"2\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("ecg_fp_saturation_sum{layer=\"1\"} 0.125"),
            std::string::npos);
  EXPECT_EQ(text.find("epoch="), std::string::npos);
}

// ---- disabled path -------------------------------------------------------

TEST_F(MetricsTest, DisabledPathAllocatesNothing) {
  MetricsRegistry::Global().Disable();
  StatsRegistry::Global().Disable();
  Histogram* h = MetricsRegistry::Global().GetHistogram("t_dis", "h");

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    // The three shapes every instrumentation site uses.
    if (MetricsEnabled()) h->Observe(1.0);
    RecordStat("comm.sent_bytes", 1.0, 0, 0, 1);
    if (StatsEnabled()) {
      ADD_FAILURE() << "stats must be disabled here";
    }
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST_F(MetricsTest, EnabledObserveOnCachedHandleAllocatesNothing) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("t_hot", "h");
  h->Observe(1.0);  // touch once
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    if (MetricsEnabled()) h->Observe(static_cast<double>(i));
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

// ---- snapshot file and HTTP endpoint ------------------------------------

TEST_F(MetricsTest, SnapshotFileIsWrittenAtomically) {
  MetricsRegistry::Global().GetCounter("ecg_snap_total", "h")->Inc(7);
  const std::string path =
      ::testing::TempDir() + "/metrics_snapshot_test.prom";
  ASSERT_TRUE(MetricsRegistry::Global().WriteSnapshotFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("ecg_snap_total 7"), std::string::npos);
  std::remove(path.c_str());
}

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(MetricsTest, HttpEndpointServesPrometheusText) {
  MetricsRegistry::Global().GetCounter("ecg_http_total", "h")->Inc(3);
  auto& server = MetricsHttpServer::Global();
  ASSERT_TRUE(server.Start(0).ok());  // ephemeral port
  ASSERT_TRUE(server.running());
  const uint16_t port = server.port();
  ASSERT_GT(port, 0);

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("ecg_http_total 3"), std::string::npos);
  EXPECT_NE(metrics.find("ecg_build_info{"), std::string::npos);

  EXPECT_NE(HttpGet(port, "/healthz").find("ok"), std::string::npos);
  EXPECT_NE(HttpGet(port, "/nope").find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace ecg::obs
