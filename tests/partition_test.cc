#include "graph/partition.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/generator.h"

namespace ecg::graph {
namespace {

Graph ClusteredGraph() {
  SbmConfig c;
  c.num_vertices = 1200;
  c.num_classes = 6;
  c.avg_degree = 10.0;
  c.feature_dim = 4;
  c.homophily = 0.95;  // strong communities -> partitioners can win big
  c.degree_skew = 0.3;
  c.seed = 21;
  return *GenerateSbm(c);
}

void CheckIsPartition(const Partition& p, uint32_t n) {
  ASSERT_EQ(p.owner.size(), n);
  std::vector<uint32_t> counted(p.num_parts, 0);
  for (uint32_t v = 0; v < n; ++v) {
    ASSERT_LT(p.owner[v], p.num_parts);
    ++counted[p.owner[v]];
  }
  // members mirrors owner exactly, sorted, covering each vertex once.
  std::set<uint32_t> seen;
  ASSERT_EQ(p.members.size(), p.num_parts);
  for (uint32_t part = 0; part < p.num_parts; ++part) {
    EXPECT_EQ(p.members[part].size(), counted[part]);
    uint32_t prev = 0;
    bool first = true;
    for (uint32_t v : p.members[part]) {
      EXPECT_EQ(p.owner[v], part);
      EXPECT_TRUE(seen.insert(v).second) << "vertex " << v << " duplicated";
      if (!first) EXPECT_GT(v, prev);
      prev = v;
      first = false;
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(PartitionTest, HashCoversAllVerticesRoundRobin) {
  const Graph g = ClusteredGraph();
  auto p = HashPartition(g, 4);
  ASSERT_TRUE(p.ok());
  CheckIsPartition(*p, g.num_vertices());
  EXPECT_EQ(p->owner[0], 0u);
  EXPECT_EQ(p->owner[5], 1u);
  EXPECT_LE(p->BalanceFactor(), 1.01);
}

TEST(PartitionTest, RejectsDegenerateArgs) {
  const Graph g = ClusteredGraph();
  EXPECT_FALSE(HashPartition(g, 0).ok());
  EXPECT_FALSE(MetisLikePartition(g, g.num_vertices() + 1).ok());
}

TEST(PartitionTest, SinglePartHasNoCut) {
  const Graph g = ClusteredGraph();
  auto p = HashPartition(g, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->EdgeCut(g), 0u);
}

TEST(PartitionTest, EdgeCutCountsCrossPartEdgesOnce) {
  // Path 0-1-2-3 split as {0,1} {2,3}: exactly one cut edge (1,2).
  const std::vector<std::pair<uint32_t, uint32_t>> edges = {
      {0, 1}, {1, 2}, {2, 3}};
  tensor::Matrix f(4, 1);
  auto g = Graph::Build(4, edges, std::move(f), {0, 0, 0, 0}, 1);
  ASSERT_TRUE(g.ok());
  Partition p;
  p.num_parts = 2;
  p.owner = {0, 0, 1, 1};
  p.members = {{0, 1}, {2, 3}};
  EXPECT_EQ(p.EdgeCut(*g), 1u);
}

/// MetisLike must beat Hash on clustered graphs for every part count
/// (the Fig. 11 premise), while staying balanced.
class MetisVsHash : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MetisVsHash, LowerCutAndBalanced) {
  const uint32_t parts = GetParam();
  const Graph g = ClusteredGraph();
  auto hash = HashPartition(g, parts);
  auto metis = MetisLikePartition(g, parts);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(metis.ok());
  CheckIsPartition(*metis, g.num_vertices());
  EXPECT_LT(metis->EdgeCut(g), hash->EdgeCut(g))
      << "parts=" << parts << " metis=" << metis->EdgeCut(g)
      << " hash=" << hash->EdgeCut(g);
  EXPECT_LE(metis->BalanceFactor(), 1.35) << "parts=" << parts;
}

INSTANTIATE_TEST_SUITE_P(PartCounts, MetisVsHash,
                         ::testing::Values(2, 3, 4, 6, 8, 13));

/// The streaming partitioner (Fennel-style) must also beat Hash on
/// clustered graphs while staying balanced — it is the paper's stated
/// future-work path for graphs too big for METIS.
class StreamingVsHash : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StreamingVsHash, LowerCutAndBalanced) {
  const uint32_t parts = GetParam();
  const Graph g = ClusteredGraph();
  auto hash = HashPartition(g, parts);
  auto streaming = StreamingPartition(g, parts);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(streaming.ok());
  CheckIsPartition(*streaming, g.num_vertices());
  EXPECT_LT(streaming->EdgeCut(g), hash->EdgeCut(g)) << "parts=" << parts;
  EXPECT_LE(streaming->BalanceFactor(), 1.25) << "parts=" << parts;
}

INSTANTIATE_TEST_SUITE_P(PartCounts, StreamingVsHash,
                         ::testing::Values(2, 4, 8));

TEST(PartitionTest, StreamingDeterministicAndValidated) {
  const Graph g = ClusteredGraph();
  StreamingOptions opt;
  opt.seed = 3;
  auto p1 = StreamingPartition(g, 4, opt);
  auto p2 = StreamingPartition(g, 4, opt);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->owner, p2->owner);

  StreamingOptions bad;
  bad.gamma = 1.0;
  EXPECT_EQ(StreamingPartition(g, 4, bad).status().code(),
            StatusCode::kInvalidArgument);
}

/// Regression: Phase 1b used to drain overweight parts against
/// `target_weight` while the overweight trigger and Phase 2 both used
/// `max_weight` — the drain rejected almost every candidate part (any part
/// near the ideal weight already exceeded target), so on degree-skewed
/// graphs the heaviest part kept its whole degree surplus. Rebalancing
/// must bring every part's degree weight under the advertised cap.
TEST(PartitionTest, MetisRebalanceBoundsPartDegreeWeight) {
  SbmConfig c;
  c.num_vertices = 1200;
  c.num_classes = 6;
  c.avg_degree = 10.0;
  c.feature_dim = 4;
  c.homophily = 0.95;
  c.degree_skew = 0.8;  // heavy-tailed degrees concentrate weight
  c.seed = 21;
  const Graph g = *GenerateSbm(c);

  for (uint32_t parts : {2u, 4u, 8u}) {
    MetisLikeOptions opt;
    auto p = MetisLikePartition(g, parts, opt);
    ASSERT_TRUE(p.ok()) << "parts=" << parts;
    CheckIsPartition(*p, g.num_vertices());
    const double max_weight =
        static_cast<double>(g.num_edges()) / parts * opt.max_imbalance;
    std::vector<double> part_weight(parts, 0.0);
    for (uint32_t v = 0; v < g.num_vertices(); ++v) {
      part_weight[p->owner[v]] += g.Degree(v);
    }
    for (uint32_t part = 0; part < parts; ++part) {
      EXPECT_LE(part_weight[part], max_weight)
          << "parts=" << parts << " part=" << part;
    }
  }
}

/// StreamingOptions::max_imbalance must drive the hard cap (it was a
/// hard-coded 1.1 before): a tight cap yields a tight balance factor, and
/// MetisLike's Phase-1 seed inherits the caller's cap.
TEST(PartitionTest, StreamingHonorsMaxImbalanceOption) {
  const Graph g = ClusteredGraph();
  const uint32_t parts = 4;
  StreamingOptions tight;
  tight.max_imbalance = 1.02;
  auto p = StreamingPartition(g, parts, tight);
  ASSERT_TRUE(p.ok());
  CheckIsPartition(*p, g.num_vertices());
  const size_t cap = static_cast<size_t>(
      tight.max_imbalance * g.num_vertices() / parts) + 1;
  for (const auto& members : p->members) {
    EXPECT_LE(members.size(), cap);
  }

  // A looser cap must actually loosen the constraint (the option is live,
  // not decorative): the partitions differ once the cap differs.
  StreamingOptions loose = tight;
  loose.max_imbalance = 1.5;
  auto q = StreamingPartition(g, parts, loose);
  ASSERT_TRUE(q.ok());
  EXPECT_NE(p->owner, q->owner);
}

TEST(PartitionTest, MetisDeterministicGivenSeed) {
  const Graph g = ClusteredGraph();
  MetisLikeOptions opt;
  opt.seed = 5;
  auto p1 = MetisLikePartition(g, 4, opt);
  auto p2 = MetisLikePartition(g, 4, opt);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->owner, p2->owner);
}

}  // namespace
}  // namespace ecg::graph
