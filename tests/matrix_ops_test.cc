#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace ecg::tensor {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

/// Triple-loop reference GEMM for validating the blocked kernel.
Matrix NaiveGemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) acc += a.At(i, k) * b.At(k, j);
      c.At(i, j) = acc;
    }
  }
  return c;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
  m.At(1, 2) = 5.0f;
  EXPECT_EQ(m.Row(1)[2], 5.0f);
}

TEST(MatrixTest, FromDataAndNorms) {
  Matrix m(2, 2, {1.0f, -2.0f, 3.0f, -4.0f});
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 30.0);
  EXPECT_DOUBLE_EQ(m.L1Norm(), 10.0);
}

TEST(MatrixTest, FillAndReset) {
  Matrix m(2, 3);
  m.Fill(2.5f);
  EXPECT_EQ(m.At(1, 2), 2.5f);
  m.Reset(4, 2);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.At(3, 1), 0.0f);
}

TEST(MatrixTest, AllClose) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b = a;
  EXPECT_TRUE(AllClose(a, b));
  b.At(0, 0) += 1e-6f;
  EXPECT_TRUE(AllClose(a, b, 1e-5f));
  b.At(0, 0) += 1.0f;
  EXPECT_FALSE(AllClose(a, b, 1e-5f));
  Matrix c(2, 3);
  EXPECT_FALSE(AllClose(a, c));
}

TEST(OpsTest, GemmMatchesNaive) {
  const Matrix a = RandomMatrix(37, 19, 1);
  const Matrix b = RandomMatrix(19, 23, 2);
  Matrix c;
  Gemm(a, b, &c);
  EXPECT_TRUE(AllClose(c, NaiveGemm(a, b), 1e-4f));
}

TEST(OpsTest, GemmTransposeAMatchesNaive) {
  const Matrix a = RandomMatrix(29, 13, 3);
  const Matrix b = RandomMatrix(29, 17, 4);
  Matrix c;
  GemmTransposeA(a, b, &c);
  EXPECT_TRUE(AllClose(c, NaiveGemm(Transpose(a), b), 1e-4f));
}

TEST(OpsTest, GemmTransposeBMatchesNaive) {
  const Matrix a = RandomMatrix(11, 21, 5);
  const Matrix b = RandomMatrix(31, 21, 6);
  Matrix c;
  GemmTransposeB(a, b, &c);
  EXPECT_TRUE(AllClose(c, NaiveGemm(a, Transpose(b)), 1e-4f));
}

TEST(OpsTest, TransposeInvolution) {
  const Matrix a = RandomMatrix(8, 5, 7);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a));
}

TEST(OpsTest, ElementwiseOps) {
  Matrix a(1, 4, {1, 2, 3, 4});
  const Matrix b(1, 4, {10, 20, 30, 40});
  AddInPlace(&a, b);
  EXPECT_TRUE(AllClose(a, Matrix(1, 4, {11, 22, 33, 44})));
  SubInPlace(&a, b);
  EXPECT_TRUE(AllClose(a, Matrix(1, 4, {1, 2, 3, 4})));
  ScaleInPlace(&a, 2.0f);
  EXPECT_TRUE(AllClose(a, Matrix(1, 4, {2, 4, 6, 8})));
  Axpy(0.5f, b, &a);
  EXPECT_TRUE(AllClose(a, Matrix(1, 4, {7, 14, 21, 28})));
  HadamardInPlace(&a, Matrix(1, 4, {0, 1, 0, 1}));
  EXPECT_TRUE(AllClose(a, Matrix(1, 4, {0, 14, 0, 28})));
}

TEST(OpsTest, AddRowBiasAndColumnSums) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix bias(1, 3, {10, 20, 30});
  AddRowBias(&a, bias);
  EXPECT_TRUE(AllClose(a, Matrix(2, 3, {11, 22, 33, 14, 25, 36})));
  const Matrix sums = ColumnSums(a);
  EXPECT_TRUE(AllClose(sums, Matrix(1, 3, {25, 47, 69})));
}

TEST(OpsTest, GatherAndScatterRows) {
  const Matrix src(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix picked = GatherRows(src, {2, 0, 2});
  EXPECT_TRUE(AllClose(picked, Matrix(3, 2, {5, 6, 1, 2, 5, 6})));

  Matrix dst(3, 2);
  ScatterAddRows(picked, {0, 1, 0}, &dst);
  EXPECT_TRUE(AllClose(dst, Matrix(3, 2, {10, 12, 1, 2, 0, 0})));
}

TEST(OpsTest, RowL1Distance) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {2, 2, 1, 1});
  const std::vector<float> d = RowL1Distance(a, b);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_FLOAT_EQ(d[0], 1.0f);
  EXPECT_FLOAT_EQ(d[1], 5.0f);
}

/// Shape sweep: GEMM correctness across edge-case shapes (1-row, 1-col,
/// column vectors, larger-than-grain row counts).
class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  const Matrix a = RandomMatrix(m, k, 100 + m);
  const Matrix b = RandomMatrix(k, n, 200 + n);
  Matrix c;
  Gemm(a, b, &c);
  EXPECT_TRUE(AllClose(c, NaiveGemm(a, b), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{1, 7, 5},
                                           std::tuple{5, 1, 7},
                                           std::tuple{64, 3, 1},
                                           std::tuple{100, 16, 8},
                                           std::tuple{33, 48, 9}));

}  // namespace
}  // namespace ecg::tensor
