#include "core/halo.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/generator.h"
#include "graph/partition.h"
#include "tensor/ops.h"

namespace ecg::core {
namespace {

graph::Graph TestGraph() {
  graph::SbmConfig c;
  c.num_vertices = 300;
  c.num_classes = 3;
  c.avg_degree = 6.0;
  c.feature_dim = 4;
  c.homophily = 0.7;
  c.seed = 17;
  return *graph::GenerateSbm(c);
}

class HaloPlanTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HaloPlanTest, PlansSatisfyStructuralInvariants) {
  const graph::Graph g = TestGraph();
  const uint32_t parts = GetParam();
  auto partition = graph::HashPartition(g, parts);
  ASSERT_TRUE(partition.ok());
  std::vector<WorkerPlan> plans;
  ASSERT_TRUE(BuildWorkerPlans(g, *partition, &plans).ok());
  ASSERT_EQ(plans.size(), parts);

  size_t total_owned = 0;
  for (uint32_t w = 0; w < parts; ++w) {
    const WorkerPlan& plan = plans[w];
    EXPECT_EQ(plan.worker_id, w);
    total_owned += plan.num_owned();

    // Halo = exactly the remote neighbours of owned vertices.
    std::set<uint32_t> expected_halo;
    for (uint32_t v : plan.owned) {
      for (uint32_t u : g.Neighbors(v)) {
        if (partition->owner[u] != w) expected_halo.insert(u);
      }
    }
    EXPECT_EQ(std::vector<uint32_t>(expected_halo.begin(),
                                    expected_halo.end()),
              plan.halo);
    for (size_t i = 0; i < plan.halo.size(); ++i) {
      EXPECT_EQ(plan.halo_owner[i], partition->owner[plan.halo[i]]);
    }

    // Adjacency shape: owned rows over [owned | halo] columns.
    EXPECT_EQ(plan.adj.rows(), plan.num_owned());
    EXPECT_EQ(plan.adj.cols(), plan.cat_rows());
  }
  EXPECT_EQ(total_owned, g.num_vertices());
}

TEST_P(HaloPlanTest, SendRecvListsMirror) {
  const graph::Graph g = TestGraph();
  const uint32_t parts = GetParam();
  auto partition = graph::MetisLikePartition(g, parts);
  ASSERT_TRUE(partition.ok());
  std::vector<WorkerPlan> plans;
  ASSERT_TRUE(BuildWorkerPlans(g, *partition, &plans).ok());

  for (uint32_t w = 0; w < parts; ++w) {
    for (uint32_t p = 0; p < parts; ++p) {
      if (w == p) {
        EXPECT_TRUE(plans[w].send_rows[p].empty());
        continue;
      }
      // What w sends to p == what p receives from w, same order.
      const auto& send = plans[w].send_rows[p];
      const auto& recv = plans[p].recv_halo_rows[w];
      ASSERT_EQ(send.size(), recv.size());
      for (size_t i = 0; i < send.size(); ++i) {
        const uint32_t sent_global = plans[w].owned[send[i]];
        const uint32_t recv_global = plans[p].halo[recv[i]];
        EXPECT_EQ(sent_global, recv_global);
      }
    }
  }
}

TEST_P(HaloPlanTest, PartitionedAggregationMatchesGlobal) {
  // SpMM over the worker sub-adjacency with a perfectly filled halo must
  // reproduce the global Â·X rows for owned vertices.
  const graph::Graph g = TestGraph();
  const uint32_t parts = GetParam();
  auto partition = graph::HashPartition(g, parts);
  ASSERT_TRUE(partition.ok());
  std::vector<WorkerPlan> plans;
  ASSERT_TRUE(BuildWorkerPlans(g, *partition, &plans).ok());

  // Global reference: Â X.
  std::vector<std::tuple<uint32_t, uint32_t, float>> trips;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    trips.emplace_back(v, v, g.NormWeight(v, v));
    for (uint32_t u : g.Neighbors(v)) {
      trips.emplace_back(v, u, g.NormWeight(v, u));
    }
  }
  auto global_adj = tensor::CsrMatrix::FromTriplets(g.num_vertices(),
                                                    g.num_vertices(), trips);
  ASSERT_TRUE(global_adj.ok());
  tensor::Matrix global_out;
  global_adj->SpMM(g.features(), &global_out);

  for (const auto& plan : plans) {
    // Build H_cat = [X_owned ; X_halo] with exact halo values.
    tensor::Matrix cat(plan.cat_rows(), g.feature_dim());
    const tensor::Matrix owned = tensor::GatherRows(g.features(), plan.owned);
    const tensor::Matrix halo = tensor::GatherRows(g.features(), plan.halo);
    for (size_t r = 0; r < owned.rows(); ++r) {
      std::copy(owned.Row(r), owned.Row(r) + owned.cols(), cat.Row(r));
    }
    for (size_t r = 0; r < halo.rows(); ++r) {
      std::copy(halo.Row(r), halo.Row(r) + halo.cols(),
                cat.Row(owned.rows() + r));
    }
    tensor::Matrix local_out;
    plan.adj.SpMM(cat, &local_out);
    for (size_t r = 0; r < plan.num_owned(); ++r) {
      for (size_t c = 0; c < g.feature_dim(); ++c) {
        EXPECT_NEAR(local_out.At(r, c), global_out.At(plan.owned[r], c),
                    1e-4f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, HaloPlanTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(HaloPlanTest, RejectsMismatchedPartition) {
  const graph::Graph g = TestGraph();
  graph::Partition p;
  p.num_parts = 2;
  p.owner = {0, 1};  // too short
  std::vector<WorkerPlan> plans;
  EXPECT_FALSE(BuildWorkerPlans(g, p, &plans).ok());
}

}  // namespace
}  // namespace ecg::core
