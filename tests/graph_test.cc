#include "graph/graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/matrix.h"

namespace ecg::graph {
namespace {

Graph MakePath4() {
  // 0 - 1 - 2 - 3 path with duplicate and self-loop noise in the input.
  const std::vector<std::pair<uint32_t, uint32_t>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {1, 0} /*dup reversed*/, {2, 2} /*self*/};
  tensor::Matrix features(4, 2);
  std::vector<int32_t> labels = {0, 1, 0, 1};
  auto g = Graph::Build(4, edges, std::move(features), std::move(labels), 2);
  return *g;
}

TEST(GraphTest, BuildDedupesAndDropsSelfLoops) {
  const Graph g = MakePath4();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);  // 3 undirected edges stored twice
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 2u);  // self loop dropped
  EXPECT_EQ(g.Degree(3), 1u);
}

TEST(GraphTest, NeighborsSortedAndSymmetric) {
  const Graph g = MakePath4();
  const auto n1 = g.Neighbors(1);
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0], 0u);
  EXPECT_EQ(n1[1], 2u);
  // Symmetry: u in N(v) <=> v in N(u).
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (uint32_t u : g.Neighbors(v)) {
      bool found = false;
      for (uint32_t back : g.Neighbors(u)) found |= (back == v);
      EXPECT_TRUE(found) << u << " -> " << v;
    }
  }
}

TEST(GraphTest, NormWeightMatchesGcnFormula) {
  const Graph g = MakePath4();
  // deg(0)=1, deg(1)=2 -> 1/sqrt(2*3).
  EXPECT_NEAR(g.NormWeight(0, 1), 1.0f / std::sqrt(6.0f), 1e-6f);
  // Self loop of vertex 2: 1/(deg+1) = 1/3.
  EXPECT_NEAR(g.NormWeight(2, 2), 1.0f / 3.0f, 1e-6f);
}

TEST(GraphTest, AverageDegree) {
  const Graph g = MakePath4();
  EXPECT_DOUBLE_EQ(g.average_degree(), 6.0 / 4.0);
}

TEST(GraphTest, BuildValidatesInputs) {
  tensor::Matrix bad_features(3, 2);
  EXPECT_EQ(Graph::Build(4, {}, std::move(bad_features), {0, 0, 0, 0}, 2)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  tensor::Matrix features(2, 1);
  EXPECT_EQ(Graph::Build(2, {}, std::move(features), {0}, 2).status().code(),
            StatusCode::kInvalidArgument);

  tensor::Matrix features2(2, 1);
  EXPECT_EQ(
      Graph::Build(2, {}, std::move(features2), {0, 5}, 2).status().code(),
      StatusCode::kOutOfRange);

  tensor::Matrix features3(2, 1);
  EXPECT_EQ(Graph::Build(2, {{0, 7}}, std::move(features3), {0, 1}, 2)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(GraphTest, SplitsInstallable) {
  Graph g = MakePath4();
  g.SetSplits({0, 1}, {2}, {3});
  EXPECT_EQ(g.train_set().size(), 2u);
  EXPECT_EQ(g.val_set()[0], 2u);
  EXPECT_EQ(g.test_set()[0], 3u);
}

}  // namespace
}  // namespace ecg::graph
