#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace ecg {
namespace {

TEST(TimerTest, WallClockAdvances) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const double s = t.ElapsedSeconds();
  EXPECT_GE(s, 0.010);
  EXPECT_LT(s, 5.0);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), s);
}

TEST(ThreadCpuTimerTest, CountsOwnCpuOnly) {
  ThreadCpuTimer t;
  // Busy work on this thread registers...
  volatile double acc = 0;
  for (int i = 0; i < 2000000; ++i) acc += i * 0.5;
  const double busy = t.ElapsedSeconds();
  EXPECT_GT(busy, 0.0);

  // ...but sleeping does not (the property the simulated cluster relies
  // on: descheduled workers accrue no compute time).
  t.Reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LT(t.ElapsedSeconds(), 0.02);
}

TEST(ThreadCpuTimerTest, OtherThreadsCpuIsInvisible) {
  ThreadCpuTimer t;
  std::thread burner([] {
    volatile double acc = 0;
    for (int i = 0; i < 5000000; ++i) acc += i;
  });
  burner.join();
  // The burner's cycles must not appear on this thread's clock.
  EXPECT_LT(t.ElapsedSeconds(), 0.05);
}

TEST(LoggingTest, LevelGateDropsBelowMinimum) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash and must be cheap no-ops below the gate.
  ECG_LOG(Debug) << "dropped";
  ECG_LOG(Info) << "dropped";
  ECG_LOG(Warning) << "dropped";
  SetLogLevel(old_level);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  ECG_CHECK(1 + 1 == 2) << "never printed";
  SUCCEED();
}

TEST(LoggingTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ ECG_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingTest, CheckAbortsWithoutStreamedMessage) {
  // The abort is structural (LogMessage's fatal flag), not dependent on
  // the caller streaming anything into the check.
  EXPECT_DEATH({ ECG_CHECK(2 + 2 == 5); },
               "Check failed, aborting: 2 \\+ 2 == 5");
}

TEST(LoggingTest, CheckAbortsEvenBelowLogGate) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_DEATH({ ECG_CHECK(false) << "gated?"; }, "Check failed");
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace ecg
