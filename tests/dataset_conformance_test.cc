// Conformance of every dataset replica against the paper's Table III
// (full-scale sets) or the documented scale-down (DESIGN.md §5): exact
// vertex counts, degree targets, feature dims, class counts and split
// sizes, plus determinism of the whole generation pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/datasets.h"

namespace ecg::graph {
namespace {

struct Expected {
  const char* name;
  uint32_t vertices;
  double degree;
  uint32_t features;
  int32_t classes;
  uint32_t train, val, test;
};

class DatasetConformance : public ::testing::TestWithParam<Expected> {};

TEST_P(DatasetConformance, MatchesSpec) {
  const Expected& e = GetParam();
  auto g = LoadDataset(e.name);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_vertices(), e.vertices);
  EXPECT_NEAR(g->average_degree(), e.degree, e.degree * 0.05);
  EXPECT_EQ(g->feature_dim(), e.features);
  EXPECT_EQ(g->num_classes(), e.classes);
  EXPECT_EQ(g->train_set().size(), e.train);
  EXPECT_EQ(g->val_set().size(), e.val);
  EXPECT_EQ(g->test_set().size(), e.test);
}

TEST_P(DatasetConformance, GenerationIsDeterministic) {
  const Expected& e = GetParam();
  auto g1 = LoadDataset(e.name);
  auto g2 = LoadDataset(e.name);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g1->num_edges(), g2->num_edges());
  EXPECT_EQ(g1->labels(), g2->labels());
  EXPECT_EQ(g1->train_set(), g2->train_set());
}

INSTANTIATE_TEST_SUITE_P(
    TableIII, DatasetConformance,
    ::testing::Values(
        // Full-scale replicas: published Cora and Pubmed shapes.
        Expected{"cora-sim", 2708, 3.90, 1433, 7, 1408, 300, 1000},
        Expected{"pubmed-sim", 19717, 4.50, 500, 3, 12816, 1971, 4930},
        // Scaled replicas (DESIGN.md §5): paper's split proportions kept.
        Expected{"reddit-sim", 16000, 48.0, 602, 41, 10571, 1627, 3800},
        Expected{"products-sim", 32000, 24.0, 100, 47, 2569, 514, 28917},
        Expected{"papers-sim", 32000, 16.0, 128, 172, 348, 36, 62}),
    [](const ::testing::TestParamInfo<Expected>& info) {
      std::string name = info.param.name;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ecg::graph
